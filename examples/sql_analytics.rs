//! The §6.6 SQL comparison (Table 6): Spark RDD rows vs a Spark SQL-style
//! columnar store vs Deca decomposed rows, on the two exploratory queries.
//!
//! Run with: `cargo run --release --example sql_analytics`

use deca_apps::sql::{run_query1, run_query2, SqlParams, SqlSystem};

fn main() {
    let base = SqlParams::small(SqlSystem::Spark);
    println!(
        "rankings: {} rows   uservisits: {} rows ({} groups)\n",
        base.rankings_rows, base.uservisits_rows, base.groups
    );

    println!("Query 1  SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100");
    for system in SqlSystem::ALL {
        let mut p = base.clone();
        p.system = system;
        let r = run_query1(&p);
        println!(
            "  {:<10} exec={:>8.2}ms gc={:>7.2}ms cache={:>7.2}MB",
            system.name(),
            r.exec().as_secs_f64() * 1e3,
            r.gc().as_secs_f64() * 1e3,
            r.cache_bytes as f64 / (1 << 20) as f64
        );
    }

    println!("\nQuery 2  SELECT SUBSTR(sourceIP,1,5), SUM(adRevenue) FROM uservisits GROUP BY ...");
    for system in SqlSystem::ALL {
        let mut p = base.clone();
        p.system = system;
        let r = run_query2(&p);
        println!(
            "  {:<10} exec={:>8.2}ms gc={:>7.2}ms cache={:>7.2}MB",
            system.name(),
            r.exec().as_secs_f64() * 1e3,
            r.gc().as_secs_f64() * 1e3,
            r.cache_bytes as f64 / (1 << 20) as f64
        );
    }
}
