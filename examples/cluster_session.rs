//! The cluster driver API: describe a map/exchange/reduce job once, run it
//! over any number of parallel executors, and read per-stage metrics back.
//!
//! Run with: `cargo run --release --example cluster_session`

use deca_apps::wordcount::{run_local, WcParams};
use deca_engine::{ClusterSession, ExecutionMode, ExecutorConfig};

fn main() {
    // ---- the driver in miniature: a two-stage job by hand ------------
    let config = ExecutorConfig::builder().mode(ExecutionMode::Deca).heap_mb(16).build();
    let mut session = ClusterSession::new(2, config);

    // Map: 4 tasks, each emitting one byte run per reducer. Reduce: 2
    // tasks, each seeing every map task's run in map-task order.
    let totals = session
        .run_shuffle_job(
            "demo",
            4,
            2,
            |ctx, e| {
                // Each run's pages transfer to the exchange copy-free.
                Ok((0..2)
                    .map(|_| {
                        let mut run = e.new_run();
                        run.push(&mut e.arena, &[ctx.task as u8; 3]);
                        e.hand_over(run)
                    })
                    .collect())
            },
            |_ctx, _e, inputs| Ok(inputs.iter().map(|run| run.len()).sum::<usize>()),
        )
        .expect("demo job");
    assert_eq!(totals, vec![12, 12]);
    for stage in session.stages() {
        println!(
            "stage {:<12} tasks={} shuffle_bytes={}",
            stage.name, stage.tasks, stage.shuffle_bytes
        );
    }

    // ---- a real workload through the same driver ---------------------
    // WordCount over 1, 2, and 4 executors: same checksum at every
    // width, wall time governed by the busiest executor.
    println!("\n{:<10}{:>14}{:>16}{:>14}", "executors", "slowest", "exec_ms", "checksum");
    let params = WcParams::small(ExecutionMode::Deca);
    let mut reference = None;
    for executors in [1usize, 2, 4] {
        let report = run_local(&params, executors);
        let expected = *reference.get_or_insert(report.checksum);
        assert_eq!(report.checksum, expected, "width must not change the answer");
        println!(
            "{:<10}{:>14}{:>16.1}{:>14.0}",
            executors,
            report.slowest_task.as_ref().map(|t| t.name.clone()).unwrap_or_default(),
            report.metrics.exec.as_secs_f64() * 1e3,
            report.checksum,
        );
    }
    println!("\nOne job description, any cluster width — same bytes, same answer.");
}
