//! WordCount with the shuffle-buffer lifetime timeline of Figure 8(a).
//!
//! Spark's hash-based eager aggregation creates a `Tuple2` per input word
//! and a new boxed count per combine; the census fluctuates and the GC
//! curve climbs. Deca reuses the aggregate's page segment in place and no
//! tuple object ever exists.
//!
//! Run with: `cargo run --release --example wordcount_shuffle`

use deca_apps::wordcount::{run, WcParams};
use deca_engine::ExecutionMode;

fn main() {
    let mut params = WcParams::small(ExecutionMode::Spark);
    params.words = 400_000;
    params.distinct = 50_000;
    params.sample_every = 20_000;

    println!("WordCount: {} words, {} distinct keys\n", params.words, params.distinct);

    for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
        let mut p = params.clone();
        p.mode = mode;
        let r = run(&p);
        println!("{}", r.line());
        println!("  Tuple2 lifetime samples (time ms, live objects, cum. GC ms):");
        for s in r.timeline.samples.iter().step_by(4).take(8) {
            println!(
                "    t={:>7.1}ms  live={:>8}  gc={:>7.2}ms",
                s.at.as_secs_f64() * 1e3,
                s.live_objects,
                s.cumulative_gc.as_secs_f64() * 1e3
            );
        }
        println!();
    }
}
