//! PageRank on a power-law graph in all three modes (Figure 10a's shape):
//! cached adjacency lists plus an aggregated message shuffle per iteration.
//!
//! Run with: `cargo run --release --example pagerank_graph`

use deca_apps::pagerank::{run, PrParams};
use deca_apps::report::speedup;
use deca_engine::ExecutionMode;

fn main() {
    let mut params = PrParams::small(ExecutionMode::Spark);
    params.vertices = 20_000;
    params.edges = 200_000;
    params.iterations = 5;

    println!(
        "PageRank: |V|={} |E|={} ({} iterations)\n",
        params.vertices, params.edges, params.iterations
    );

    let mut reports = Vec::new();
    for mode in ExecutionMode::ALL {
        let mut p = params.clone();
        p.mode = mode;
        let r = run(&p);
        println!("{}", r.line());
        reports.push(r);
    }
    let (spark, deca) = (&reports[0], &reports[2]);
    assert!((spark.checksum - deca.checksum).abs() < 1e-6);
    println!("\nDeca speedup over Spark: {:.1}x", speedup(spark, deca));
}
