//! The high-level session API: cache, iterate, aggregate — one call each,
//! in any execution mode — and read the measured cost profile back.
//!
//! Run with: `cargo run --release --example session_api`

use deca_engine::{DecaSession, ExecutionMode, ExecutorConfig};

fn main() {
    let data: Vec<(f64, i64)> = (0..200_000).map(|i| ((i % 1000) as f64, i)).collect();

    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "mode", "cache_ms", "fold_ms", "rbk_ms", "gc_ms", "heap_objs"
    );
    for mode in ExecutionMode::ALL {
        let mut s = DecaSession::new(ExecutorConfig::builder().mode(mode).heap_mb(32).build());

        let t = std::time::Instant::now();
        let cached = s.cache("pairs", &data, 8).expect("cache");
        let cache_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = std::time::Instant::now();
        let sum = s.fold(&cached, 0.0, |acc, (x, _)| acc + x).expect("fold");
        let fold_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(sum, data.iter().map(|(x, _)| x).sum::<f64>());

        let t = std::time::Instant::now();
        let counts = s
            .reduce_by_key(data.iter().map(|&(x, _)| (x as i64, 1)), |a, b| a + b)
            .expect("reduce_by_key");
        let rbk_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(counts.len(), 1000);

        println!(
            "{:<10}{:>10.1}{:>10.1}{:>10.1}{:>12.2}{:>10}",
            mode.name(),
            cache_ms,
            fold_ms,
            rbk_ms,
            s.metrics().gc.as_secs_f64() * 1e3,
            s.executor().object_count(),
        );
        s.unpersist(cached);
    }
    println!("\nSame answers, three memory disciplines — the paper in one table.");
}
