//! Heap profiling: the class histogram and reachability census the paper's
//! JProfiler instrumentation provides (§6.1), on a miniature LR heap.
//!
//! Shows the Figure 2 story numerically: a cached LabeledPoint costs three
//! objects and ~1.9x its raw data in Spark's layout, and the live set is
//! exactly what every full collection must re-trace.
//!
//! Run with: `cargo run --release --example heap_profile`

use deca_apps::records::LabeledPointRec;
use deca_engine::record::HeapRecord;
use deca_heap::{FieldKind, Heap, HeapConfig};

fn main() {
    let mut heap = Heap::new(HeapConfig::with_total(64 << 20));
    let classes = LabeledPointRec::register(&mut heap);
    let object_array = heap.define_array_class("Object[]", FieldKind::Ref);

    // Cache 50k ten-dimensional points the way Spark does.
    let n = 50_000;
    let cache = heap.alloc_array(object_array, n).expect("cache array");
    let root = heap.add_root(cache);
    for i in 0..n {
        let rec = LabeledPointRec {
            label: if i % 2 == 0 { 1.0 } else { -1.0 },
            features: (0..10).map(|j| (i * j) as f64).collect(),
        };
        let obj = rec.store(&mut heap, &classes).expect("record");
        let cache = heap.root_ref(root);
        heap.array_set_ref(cache, i, obj);
    }
    // Plus some floating garbage from a half-finished iteration.
    for _ in 0..20_000 {
        let _ = heap.alloc_array(classes.double_array, 10).expect("temp vector");
    }

    println!("class histogram (allocated, jmap -histo style):");
    println!("{:<16}{:>12}{:>14}", "class", "instances", "bytes");
    for row in heap.class_histogram() {
        println!("{:<16}{:>12}{:>14}", row.name, row.instances, row.bytes);
    }

    let reachable = heap.reachable_census();
    println!("\nreachable (what a full collection must trace and re-trace):");
    println!(
        "  LabeledPoint: {} live of {} allocated",
        reachable[classes.labeled_point.index()],
        heap.live_count(classes.labeled_point)
    );
    println!(
        "  double[]:     {} live of {} allocated (temp vectors are garbage)",
        reachable[classes.double_array.index()],
        heap.live_count(classes.double_array)
    );

    let raw = n * LabeledPointRec::sfst_size(10);
    let spark: usize = heap.class_histogram().iter().map(|r| r.bytes).sum();
    println!(
        "\nfootprint: raw data {:.1} MB vs heap layout {:.1} MB ({:.2}x bloat — Figure 2)",
        raw as f64 / (1 << 20) as f64,
        spark as f64 / (1 << 20) as f64,
        spark as f64 / raw as f64
    );
    println!("tenuring threshold currently: {}", heap.tenuring_threshold());
}
