//! Logistic Regression in all three execution modes — the paper's running
//! example (Figure 1) at laptop scale.
//!
//! Shows the shape of Figure 9(b): with the cache saturating the old
//! generation, Spark spends most of its time in futile full collections
//! while Deca's decomposed cache leaves the collector almost nothing to
//! trace.
//!
//! Run with: `cargo run --release --example logistic_regression`

use deca_apps::logreg::{run, LrParams};
use deca_apps::report::{gc_reduction, speedup};
use deca_engine::ExecutionMode;

fn main() {
    let mut params = LrParams::small(ExecutionMode::Spark);
    params.points = 60_000;
    params.dims = 10;
    params.iterations = 15;
    params.heap_bytes = 16 << 20; // the cache nearly fills the old gen

    println!(
        "LogisticRegression: {} points x {} dims, {} iterations, {} MB heap\n",
        params.points,
        params.dims,
        params.iterations,
        params.heap_bytes >> 20
    );

    let mut reports = Vec::new();
    for mode in ExecutionMode::ALL {
        let mut p = params.clone();
        p.mode = mode;
        let r = run(&p);
        println!("{}", r.line());
        reports.push(r);
    }

    let (spark, deca) = (&reports[0], &reports[2]);
    assert!((spark.checksum - deca.checksum).abs() < 1e-9, "modes must agree");
    println!(
        "\nDeca speedup over Spark: {:.1}x   GC reduction: {:.1}%",
        speedup(spark, deca),
        gc_reduction(spark, deca) * 100.0
    );
    println!(
        "Cache footprint: Spark {:.1} MB -> Deca {:.1} MB",
        spark.cache_bytes as f64 / (1 << 20) as f64,
        deca.cache_bytes as f64 / (1 << 20) as f64
    );
}
