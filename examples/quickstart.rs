//! Quickstart: the core idea of the paper in sixty lines.
//!
//! We fill a simulated JVM heap with long-living cached records and churn
//! temporaries against it, twice: once with the records as object graphs
//! (Spark-style), once decomposed into Deca pages. Watch the full-GC count
//! and the collection time collapse.
//!
//! Run with: `cargo run --release --example quickstart`

use deca_core::{DecaCacheBlock, MemoryManager};
use deca_heap::{ClassBuilder, FieldKind, Heap, HeapConfig};

const RECORDS: usize = 120_000;
const CHURN: usize = 400_000;

fn main() {
    let spark = run_object_graphs();
    let deca = run_decomposed();

    println!("\n{:<28}{:>14}{:>14}", "", "objects", "deca pages");
    println!("{:<28}{:>14}{:>14}", "live objects traced per GC", spark.0, deca.0);
    println!("{:<28}{:>13}m{:>13}m", "minor collections", spark.1, deca.1);
    println!("{:<28}{:>13}f{:>13}f", "full collections", spark.2, deca.2);
    println!("{:<28}{:>12.1}ms{:>12.1}ms", "total GC time", spark.3, deca.3);
    println!(
        "\nGC time reduction: {:.1}%  (the paper reports up to 99.9%)",
        (1.0 - deca.3 / spark.3.max(0.001)) * 100.0
    );
}

/// Spark-style: each record is a (f64, i64) pair object graph, pinned by a
/// cache array; temporaries churn eden while full GCs re-trace everything.
fn run_object_graphs() -> (usize, u64, u64, f64) {
    let mut heap = Heap::new(HeapConfig::with_total(24 << 20));
    let pair = heap.define_class(
        ClassBuilder::new("Record").field("key", FieldKind::F64).field("value", FieldKind::I64),
    );
    let object_array = heap.define_array_class("Object[]", FieldKind::Ref);

    let cache = heap.alloc_array(object_array, RECORDS).expect("cache array");
    let root = heap.add_root(cache);
    for i in 0..RECORDS {
        let rec = heap.alloc(pair).expect("record");
        heap.write_f64(rec, 0, i as f64);
        heap.write_i64(rec, 1, i as i64);
        let cache = heap.root_ref(root);
        heap.array_set_ref(cache, i, rec);
    }
    churn(&mut heap, pair);
    let live = heap.object_count();
    let s = heap.stats();
    (live, s.minor_collections, s.full_collections, s.total_gc_time().as_secs_f64() * 1e3)
}

/// Deca-style: the same records decomposed into page segments; the GC sees
/// a handful of page registrations instead of 120k objects.
fn run_decomposed() -> (usize, u64, u64, f64) {
    let mut heap = Heap::new(HeapConfig::with_total(24 << 20));
    let pair = heap.define_class(
        ClassBuilder::new("Record").field("key", FieldKind::F64).field("value", FieldKind::I64),
    );
    let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-quickstart"));
    let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
    for i in 0..RECORDS {
        block.append(&mut mm, &mut heap, &(i as f64, i as i64)).expect("append");
    }
    churn(&mut heap, pair);
    let live = heap.object_count() + heap.external_count();
    let s = heap.stats();
    let out =
        (live, s.minor_collections, s.full_collections, s.total_gc_time().as_secs_f64() * 1e3);
    block.release(&mut mm, &mut heap); // lifetime-based reclamation: O(pages)
    assert_eq!(heap.external_bytes(), 0);
    out
}

/// The iteration workload: allocate short-lived temporaries.
fn churn(heap: &mut Heap, class: deca_heap::ClassId) {
    for i in 0..CHURN {
        let tmp = heap.alloc(class).expect("temp");
        heap.write_i64(tmp, 1, i as i64);
    }
}
