//! Export a structured run trace: run a shuffle job under an injected
//! fault, then write the merged trace as Chrome trace-event JSON (open in
//! `chrome://tracing` or Perfetto) and as a flat run manifest.
//!
//! Run with: `cargo run --release --example trace_export`

use deca_engine::{
    ClusterSession, ExecutionMode, ExecutorConfig, FaultPlan, FaultSite, RetryPolicy, RunTrace,
    TraceEventKind,
};

fn main() {
    // Tracing is on by default; a retry policy plus one forced task
    // failure makes the fault-handling events show up in the timeline.
    let config = ExecutorConfig::builder()
        .mode(ExecutionMode::Deca)
        .heap_mb(16)
        .retry(RetryPolicy::resilient())
        .build();
    let mut session = ClusterSession::new(2, config);
    // (run_shuffle_job names its stages `<job>-map` / `<job>-reduce`.)
    session.install_faults(FaultPlan::quiet().force(
        FaultSite::TaskBody,
        "map-map",
        Some(1),
        Some(0),
    ));

    let totals = session
        .run_shuffle_job(
            "map",
            4,
            2,
            |ctx, e| {
                Ok((0..2)
                    .map(|_| {
                        let mut run = e.new_run();
                        run.push(&mut e.arena, &[ctx.task as u8; 4]);
                        e.hand_over(run)
                    })
                    .collect())
            },
            |_ctx, _e, inputs| Ok(inputs.iter().map(|run| run.len()).sum::<usize>()),
        )
        .expect("survivable job");
    assert_eq!(totals, vec![16, 16]);
    session.finish_job();

    // The merged trace orders driver + executor events deterministically
    // by logical position (stage, task, attempt) — never by wall clock.
    let trace = session.merged_trace();
    println!("{} events:", trace.events.len());
    for ev in &trace.events {
        println!(
            "  {:<18} stage={:<8} task={:<4} attempt={} executor={:?}",
            ev.kind.name(),
            ev.stage,
            ev.task.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            ev.attempt,
            ev.executor,
        );
    }
    let retries = trace.of_kind(TraceEventKind::Retry).count();
    assert_eq!(retries, 1, "the forced failure shows up as exactly one retry");

    // Both exporters are hand-rolled JSON — no registry dependencies —
    // and the Chrome document round-trips losslessly through the in-repo
    // parser, so exported traces stay diffable and machine-checkable.
    let dir = std::env::temp_dir().join("deca-trace-export");
    std::fs::create_dir_all(&dir).expect("create output dir");
    let chrome = dir.join("trace.json");
    let manifest = dir.join("manifest.json");
    session.export_chrome_trace(&chrome).expect("write chrome trace");
    session.export_manifest(&manifest).expect("write manifest");

    let text = std::fs::read_to_string(&chrome).expect("read back");
    let n = RunTrace::validate_chrome_document(&text).expect("chrome-valid document");
    let back = RunTrace::from_chrome_string(&text).expect("parse back");
    assert_eq!(back, trace, "round-trip is lossless");
    println!("\nwrote {} ({n} events) and {}", chrome.display(), manifest.display());
    println!("load the first in chrome://tracing or https://ui.perfetto.dev");
}
