//! The multi-job service: one [`DecaServer`] sharing a 4-executor cluster
//! (and its tiered cache) between concurrent tenants.
//!
//! Run with `cargo run --release --example job_service`. The code below is
//! the README's "Job service" snippet — keep the two in sync.

use deca_apps::pagerank::{self, PrParams};
use deca_apps::wordcount::{self, WcParams};
use deca_engine::{AppJob, DecaServer, ExecutionMode, ExecutorConfig, JobSpec};

fn main() {
    // One server = one long-lived cluster. Tenants get an in-flight job
    // cap and a shielded share of the executors' storage pools.
    let server = DecaServer::new(4, ExecutorConfig::new(ExecutionMode::Deca, 24 << 20));
    server.configure_tenant("etl", 2);
    server.set_tenant_cache_budget("etl", 4 << 20);

    // Apps describe themselves once as an `AppJob` (a body over the same
    // stage API `ClusterSession` exposes) and any harness submits them.
    let wc = WcParams::small(ExecutionMode::Deca);
    let pr = PrParams::small(ExecutionMode::Deca);
    let ad_hoc = AppJob::new("squares", |ctx| {
        let parts = ctx.run_stage("square", 8, |t, _executor| Ok(((t.task + 1) as f64).powi(2)))?;
        Ok(parts.iter().sum())
    });

    // Submission never blocks on other jobs: each handle resolves when
    // its job finishes. Widths are per-job virtual executor counts, so a
    // width-2 job and two width-4 jobs share the same 4 workers fairly.
    let jobs = [
        server.submit(JobSpec::new("etl").executors(4).app(wordcount::job(&wc))),
        server.submit(JobSpec::new("etl").executors(4).app(pagerank::job(&pr))),
        server.submit(JobSpec::new("adhoc").executors(2).app(ad_hoc)),
    ];
    for handle in jobs {
        let out = handle.expect("admitted").wait().expect("job ran");
        println!(
            "job {:>2}  checksum {:>24.6}  stages {:>2}  task attempts {:>3}",
            out.job,
            out.checksum,
            out.stages.len(),
            out.metrics.attempts,
        );
    }

    // Results are bit-identical to a standalone run at the same width.
    let reference = wordcount::run_local(&wc, 4).checksum;
    let served = server
        .submit(JobSpec::new("etl").executors(4).app(wordcount::job(&wc)))
        .expect("admitted")
        .wait()
        .expect("job ran");
    assert_eq!(served.checksum, reference);
    println!("served checksum == standalone run_local checksum: {reference}");
}
