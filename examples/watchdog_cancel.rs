//! The robustness layer: hung-task watchdog, speculative execution, and
//! deadline-aware job cancellation.
//!
//! Run with `cargo run --release --example watchdog_cancel`. The code
//! below is the README's "Watchdog and cancellation" snippet — keep the
//! two in sync.

use std::time::Duration;

use deca_engine::{
    AppJob, ClusterSession, DecaServer, EngineError, ExecutionMode, ExecutorConfig, FaultPlan,
    FaultSite, JobSpec, RetryPolicy, SchedulerMode,
};

fn main() {
    // 1. The watchdog: an attempt that hangs (here force-injected) is
    //    timed out at the stage's task deadline, charged as a transient
    //    retry, and the fault-free retry completes the stage.
    let policy = RetryPolicy::resilient().task_deadline(Duration::from_millis(25));
    let mut session =
        ClusterSession::new(2, ExecutorConfig::new(ExecutionMode::Deca, 16 << 20).retry(policy));
    session.install_faults(FaultPlan::quiet().force(FaultSite::TaskHang, "sum", Some(1), Some(0)));
    let parts = session
        .run_stage("sum", 4, |t, _e| Ok((t.task + 1) as f64))
        .expect("the watchdog retries the hung attempt");
    session.finish_job();
    let m = session.job_summary();
    assert_eq!(parts.iter().sum::<f64>(), 10.0);
    assert_eq!((m.timeouts, m.retries), (1, 1));
    println!("watchdog: {} hung attempt timed out at its 25ms budget, retried, job green", 1);

    // 2. Speculative execution: under the Pull scheduler a running
    //    attempt that blows past the round's 2x-median threshold is
    //    duplicated on an idle executor; the first completion wins and
    //    the loser is cancelled cooperatively through its task context.
    let policy = RetryPolicy::resilient().speculate(true);
    let config = ExecutorConfig::new(ExecutionMode::Deca, 16 << 20)
        .retry(policy)
        .scheduler(SchedulerMode::Pull);
    let mut session = ClusterSession::new(2, config);
    let parts = session
        .run_stage("straggle", 8, |t, _e| {
            if t.task == 0 && t.executor == 0 {
                // A straggling attempt: sleeps in slices, polling the
                // token the duplicate's win raises.
                for _ in 0..200 {
                    if t.is_cancelled() {
                        return Err(EngineError::Cancelled { reason: "duplicate won".to_string() });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok((t.task + 1) as f64)
        })
        .expect("the duplicate's result completes the stage");
    session.finish_job();
    let m = session.job_summary();
    assert_eq!(parts.iter().sum::<f64>(), 36.0);
    assert!(m.speculative_launched >= 1 && m.speculative_wins >= 1);
    println!(
        "speculation: {} duplicate(s) launched, {} won the race, result unchanged",
        m.speculative_launched, m.speculative_wins
    );

    // 3. Job deadlines and cancellation on the server: an overdue job is
    //    cancelled before (or at the first boundary after) it runs, and
    //    `JobHandle::cancel` stops a running job cooperatively. Either
    //    way the partial roll-up stays reachable and every slot the job
    //    held — admission, claim-pool, cache — is released.
    let server = DecaServer::new(2, ExecutorConfig::new(ExecutionMode::Deca, 16 << 20));
    let overdue = server
        .submit(
            JobSpec::new("etl").deadline(Duration::ZERO).app(AppJob::new("late", |_ctx| Ok(1.0))),
        )
        .expect("admitted");
    let err = overdue.wait().expect_err("overdue before it started");
    assert!(err.to_string().contains("deadline"));
    assert_eq!(overdue.metrics().expect("partial roll-up").cancelled, 1);

    let spinner = AppJob::new("spin", |ctx| {
        ctx.run_stage("spin", 2, |t, _e| -> Result<(), EngineError> {
            while !t.is_cancelled() {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(EngineError::Cancelled { reason: "token observed".to_string() })
        })?;
        Ok(0.0)
    });
    let running = server.submit(JobSpec::new("etl").app(spinner)).expect("admitted");
    running.cancel();
    let err = running.wait().expect_err("cancelled mid-flight");
    println!("server: {err}");

    // The cancelled jobs released everything: the tenant's next job runs
    // to completion on the same server.
    let sum = AppJob::new("squares", |ctx| {
        let parts = ctx.run_stage("square", 8, |t, _e| Ok(((t.task + 1) as f64).powi(2)))?;
        Ok(parts.iter().sum())
    });
    let out = server.submit(JobSpec::new("etl").app(sum)).expect("slots freed").wait();
    assert_eq!(out.expect("job ran").checksum, 204.0);
    println!("post-cancel job completed: the cancelled jobs' slots were all released");
}
