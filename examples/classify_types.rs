//! The size-type classification pipeline on the paper's examples:
//! local analysis (Algorithm 1), global refinement (Algorithms 2–4), and
//! phased refinement (§3.4), with the resulting optimizer decisions.
//!
//! Run with: `cargo run --example classify_types`

use deca_core::{ContainerDecision, ContainerInfo, Optimizer};
use deca_udt::fixtures::{group_by_program, lr_program};
use deca_udt::{classify_local, ContainerId, ContainerKind, GlobalAnalysis, JobPhases, TypeRef};

fn main() {
    // ----------------------------------------------------------- LR
    let lr = lr_program();
    let lp = TypeRef::Udt(lr.types.labeled_point);
    let dv = TypeRef::Udt(lr.types.dense_vector);

    println!("LogisticRegression types (Figures 1-3):");
    println!("  local  DenseVector  = {}", classify_local(&lr.types.registry, dv));
    println!("  local  LabeledPoint = {}", classify_local(&lr.types.registry, lp));
    let ga = GlobalAnalysis::new(&lr.types.registry, &lr.program, lr.stage_entry);
    println!("  global DenseVector  = {}", ga.classify(dv));
    println!("  global LabeledPoint = {}  (features init-only, data length == D)", ga.classify(lp));

    let opt = Optimizer::new(&lr.types.registry, &lr.program);
    let phases = JobPhases::new().phase("map", lr.stage_entry);
    let plan = opt.plan(
        &phases,
        &[ContainerInfo {
            id: ContainerId(0),
            kind: ContainerKind::CachedRdd,
            created_seq: 0,
            content: lp,
            write_phase: 0,
        }],
        &[],
    );
    println!("  optimizer decision for the cached RDD: {:?}", plan.decision(ContainerId(0)));

    // ------------------------------------------------- phased groupBy
    let g = group_by_program();
    let group_ty = TypeRef::Udt(g.group);
    println!("\ngroupByKey phased refinement (§3.4):");
    let phases = JobPhases::new().phase("combine", g.build_entry).phase("iterate", g.read_entry);
    for result in deca_udt::classify_phased(&g.registry, &g.program, &phases, &[group_ty]) {
        println!("  phase {:<8} Group = {}", result.phase, result.of(group_ty).unwrap());
    }
    let opt = Optimizer::new(&g.registry, &g.program);
    let plan = opt.plan(
        &phases,
        &[
            ContainerInfo {
                id: ContainerId(0),
                kind: ContainerKind::ShuffleBuffer,
                created_seq: 0,
                content: group_ty,
                write_phase: 0,
            },
            ContainerInfo {
                id: ContainerId(1),
                kind: ContainerKind::CachedRdd,
                created_seq: 1,
                content: group_ty,
                write_phase: 0,
            },
        ],
        &[],
    );
    println!("  shuffle buffer: {:?}", plan.decision(ContainerId(0)));
    println!("  downstream cache: {:?}  (Figure 7b)", plan.decision(ContainerId(1)));
    assert_eq!(plan.decision(ContainerId(1)), &ContainerDecision::DecomposeOnCopy);
}
