#!/usr/bin/env bash
# Hermetic CI gate: everything here must pass on a machine with NO network
# access. The workspace has zero registry dependencies by policy (see
# DESIGN.md "Hermetic builds"), so --offline is a constraint we enforce,
# not a convenience flag.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== build (release, offline) =="
cargo build --release --offline

echo "== build examples (release, offline) =="
cargo build --release --offline --examples

echo "== tests (offline) =="
cargo test -q --offline

echo "== fault-tolerance suite (replayed seeds, both schedulers) =="
# `cargo test` above already ran the suite under its pinned seed trio;
# these explicit replays prove the DECA_CHECK_SEED knob reproduces a
# scenario byte-for-byte under each scheduler mode (DECA_SCHEDULER sets
# the session default), and hand the reader the exact replay line.
for sched in wave pull; do
  for seed in 11 29 47; do
    if ! DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed \
        cargo test -q --offline -p deca-bench --test fault_tolerance; then
      echo "fault suite failed under seed $seed with the $sched scheduler; replay locally with:"
      echo "  DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed cargo test --offline -p deca-bench --test fault_tolerance"
      exit 1
    fi
  done
done

echo "== fault-tolerance suite with speculative execution (both schedulers) =="
# The same matrix with DECA_SPECULATE=1: every Pull-mode stage arms the
# straggler watcher, so speculative duplicates race real injected-fault
# recovery. Checksums and the six-counter roll-ups must not move — the
# winner is reconciled deterministically in task order, so duplicates
# are invisible to the accounting.
for sched in wave pull; do
  for seed in 11 29 47; do
    if ! DECA_SPECULATE=1 DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed \
        cargo test -q --offline -p deca-bench --test fault_tolerance; then
      echo "fault suite failed with speculation under seed $seed with the $sched scheduler; replay locally with:"
      echo "  DECA_SPECULATE=1 DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed cargo test --offline -p deca-bench --test fault_tolerance"
      exit 1
    fi
  done
done

echo "== hang kill matrix (watchdog: TaskHang x schedulers x widths x seeds) =="
# The watchdog acceptance leg: a hang-only storm across both workloads,
# both execution modes, widths {1,2,4} and the pinned seeds must always
# complete — every hang is timed out at its deadline, charged, and
# retried — with checksums bit-identical to fault-free runs and roll-ups
# identical across Wave and Pull. (The full matrix already ran inside
# `cargo test` above; this leg re-runs it per seed so a failure hands
# the reader the exact replay line.)
for seed in 11 29 47; do
  if ! DECA_CHECK_SEED=$seed \
      cargo test -q --offline -p deca-bench --test fault_tolerance hang_matrix; then
    echo "hang kill matrix failed under seed $seed; replay locally with:"
    echo "  DECA_CHECK_SEED=$seed cargo test --offline -p deca-bench --test fault_tolerance hang_matrix"
    exit 1
  fi
done

echo "== crash-recovery kill-point suite (replayed seeds, both schedulers) =="
# Same replay discipline for the cache's spill/manifest/rehydrate kill
# points: the suite re-runs its kill matrix, rehydration-evidence and
# property-storm cells under each pinned seed and scheduler, and a
# failure hands the reader the exact one-line reproduction.
for sched in wave pull; do
  for seed in 11 29 47; do
    if ! DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed \
        cargo test -q --offline -p deca-bench --test crash_recovery; then
      echo "crash-recovery suite failed under seed $seed with the $sched scheduler; replay locally with:"
      echo "  DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed cargo test --offline -p deca-bench --test crash_recovery"
      exit 1
    fi
  done
done

echo "== GC plan matrix (every plan x modes x widths x fault seeds, both schedulers) =="
# The gc_plans suite proves a collector never computes: every GcPlanKind
# (semispace, gencopy, marksweep, immix — the concurrent ones racing a
# real marker thread) must produce bit-identical WC/PR checksums under
# the pinned fault storm at every width, with recovery roll-ups
# identical across Wave and Pull. It already ran inside `cargo test`
# above; this leg re-runs it under each scheduler default so a failure
# hands the reader the exact replay line.
for sched in wave pull; do
  if ! DECA_SCHEDULER=$sched \
      cargo test -q --offline -p deca-bench --test gc_plans; then
    echo "GC plan matrix failed under the $sched scheduler; replay locally with:"
    echo "  DECA_SCHEDULER=$sched cargo test --offline -p deca-bench --test gc_plans"
    exit 1
  fi
done

echo "== DECA_GC_PLAN env plumbing (cross-mode equivalence under every plan) =="
# Executors built from default configs read DECA_GC_PLAN
# (ExecutorConfig::builder -> GcPlanKind::from_env), so this leg is the
# env branch the unit tests deliberately leave alone (env vars race
# across parallel test threads): the whole cross-mode checksum suite
# must hold unchanged under each plan name.
for plan in semispace gencopy marksweep immix; do
  if ! DECA_GC_PLAN=$plan \
      cargo test -q --offline -p deca-bench --test cross_mode_equivalence; then
    echo "cross-mode equivalence failed under DECA_GC_PLAN=$plan; replay locally with:"
    echo "  DECA_GC_PLAN=$plan cargo test --offline -p deca-bench --test cross_mode_equivalence"
    exit 1
  fi
done

echo "== server soak (concurrent submissions, both schedulers, replayed seeds) =="
# The soak pushes DECA_SOAK_JOBS mixed WC/PR jobs per leg from 16 client
# threads through one shared DecaServer and asserts every job is
# bit-identical — checksum and recovery counters — to a serial
# ClusterSession run of the same width. 34 jobs x 6 legs > 200 jobs.
for sched in wave pull; do
  for seed in 11 29 47; do
    if ! DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed DECA_SOAK_JOBS=${DECA_SOAK_JOBS:-34} \
        cargo test -q --offline -p deca-bench --test server_soak; then
      echo "server soak failed under seed $seed with the $sched scheduler; replay locally with:"
      echo "  DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed DECA_SOAK_JOBS=${DECA_SOAK_JOBS:-34} cargo test --offline -p deca-bench --test server_soak"
      exit 1
    fi
  done
done

echo "== partial-handover kill matrix (zero-copy retry safety, both schedulers, replayed seeds) =="
# A map attempt that dies after handing over part of its page runs must
# leave the arena ledger exactly balanced: no page leaked, none freed
# twice, and no reducer ever observes a page from the failed attempt.
# The test asserts live_pages == 0 on every executor, zero copied bytes
# on the Deca hand-over path, and pointer-uniqueness of every page slice
# across reducers while all exchanged pages are simultaneously live.
for sched in wave pull; do
  for seed in 11 29 47; do
    if ! DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed \
        cargo test -q --offline -p deca-engine --lib partial_handover; then
      echo "partial-handover kill matrix failed under seed $seed with the $sched scheduler; replay locally with:"
      echo "  DECA_SCHEDULER=$sched DECA_CHECK_SEED=$seed cargo test --offline -p deca-engine --lib partial_handover"
      exit 1
    fi
  done
done

echo "== bench smoke (fig8 wordcount, tiny scale) =="
DECA_BENCH_SCALE=0.05 cargo run --release --offline -q -p deca-bench --bin fig8_wordcount

echo "== observability (trace export + lossless chrome round-trip) =="
cargo run --release --offline -q --example trace_export

echo "== job service example (the README DecaServer snippet, checksum-asserted) =="
cargo run --release --offline -q --example job_service

echo "== watchdog/cancel example (the README robustness snippet, checksum-asserted) =="
cargo run --release --offline -q --example watchdog_cancel

echo "== perf gate (vs committed BENCH baselines) =="
# The gate re-measures every cell at the committed record's scale and
# compares best-of-N times against the newest committed BENCH_*.json — copied
# beside a scratch output so the comparison never dirties the tree. It
# exits non-zero on regression beyond the tolerance band, validates the
# Chrome-trace round-trip in-process, and checks the tracing overhead.
mkdir -p target/ci
cp BENCH_*.json target/ci/
# The tracing-overhead ceiling is widened from the 5% default: on a
# single-core CI host the probe's noise floor is a few percent either
# way (observed 2-6% for a true ~2% overhead), while a real tracing
# regression lands far beyond 10%. DECA_GATE_SCALE=10 pins the
# shuffle-bound cells (WC-SHUF/* and the zero-copy A/B) at 10x the base
# workload so the exchange volume, not per-record compute, dominates
# what they time.
DECA_GATE_SAMPLES=3 DECA_GATE_TRACE_OVERHEAD=10 DECA_GATE_SCALE=10 \
  DECA_BENCH_OUT=target/ci/BENCH_current.json \
  cargo run --release --offline -q -p deca-bench --bin perf_gate

echo "== ci green =="
