#!/usr/bin/env bash
# Hermetic CI gate: everything here must pass on a machine with NO network
# access. The workspace has zero registry dependencies by policy (see
# DESIGN.md "Hermetic builds"), so --offline is a constraint we enforce,
# not a convenience flag.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== build (release, offline) =="
cargo build --release --offline

echo "== build examples (release, offline) =="
cargo build --release --offline --examples

echo "== tests (offline) =="
cargo test -q --offline

echo "== bench smoke (fig8 wordcount, tiny scale) =="
DECA_BENCH_SCALE=0.05 cargo run --release --offline -q -p deca-bench --bin fig8_wordcount

echo "== ci green =="
