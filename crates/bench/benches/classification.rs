//! Classification-analysis cost: the paper stresses that the local
//! analysis has "negligible computational overhead" and the global one is
//! run per submitted job by the hybrid optimizer (Appendix A). Both should
//! be microseconds at workload scale.

use deca_check::{criterion_group, criterion_main, Criterion};
use deca_udt::fixtures::lr_program;
use deca_udt::{classify_local, GlobalAnalysis, TypeRef};

fn analysis_cost(c: &mut Criterion) {
    let f = lr_program();
    let lp = TypeRef::Udt(f.types.labeled_point);

    c.bench_function("local_classification_lr", |b| {
        b.iter(|| std::hint::black_box(classify_local(&f.types.registry, lp)));
    });

    c.bench_function("global_classification_lr", |b| {
        b.iter(|| {
            let ga = GlobalAnalysis::new(&f.types.registry, &f.program, f.stage_entry);
            std::hint::black_box(ga.classify(lp))
        });
    });
}

criterion_group!(benches, analysis_cost);
criterion_main!(benches);
