//! Serializer micro-benchmarks backing Table 5's bottom rows: Deca's flat
//! encode ≈ Kryo's encode, while Deca reads fields in place and pays no
//! deserialization at all.

use deca_apps::records::LabeledPointRec;
use deca_check::{criterion_group, criterion_main, Criterion};
use deca_core::DecaRecord;
use deca_engine::KryoSim;

fn per_object_costs(c: &mut Criterion) {
    let recs: Vec<LabeledPointRec> = (0..1000)
        .map(|i| LabeledPointRec {
            label: if i % 2 == 0 { 1.0 } else { -1.0 },
            features: (0..10).map(|j| (i * j) as f64 * 0.25).collect(),
        })
        .collect();

    c.bench_function("kryo_serialize_1k_points", |b| {
        b.iter(|| {
            let mut k = KryoSim::new();
            std::hint::black_box(k.serialize_all(&recs));
        });
    });

    c.bench_function("kryo_deserialize_1k_points", |b| {
        let mut k = KryoSim::new();
        let buf = k.serialize_all(&recs);
        b.iter(|| {
            let mut k = KryoSim::new();
            std::hint::black_box(k.deserialize_all::<LabeledPointRec>(&buf));
        });
    });

    c.bench_function("deca_encode_1k_points", |b| {
        let size = recs[0].data_size();
        let mut buf = vec![0u8; size * recs.len()];
        b.iter(|| {
            for (i, r) in recs.iter().enumerate() {
                r.encode(&mut buf[i * size..(i + 1) * size]);
            }
            std::hint::black_box(&buf);
        });
    });

    c.bench_function("deca_read_in_place_1k_points", |b| {
        // The "deserialization" equivalent: direct field reads, no object.
        let size = recs[0].data_size();
        let mut buf = vec![0u8; size * recs.len()];
        for (i, r) in recs.iter().enumerate() {
            r.encode(&mut buf[i * size..(i + 1) * size]);
        }
        b.iter(|| {
            let mut sum = 0.0;
            for chunk in buf.chunks_exact(size) {
                sum += f64::from_le_bytes(chunk[..8].try_into().unwrap());
                sum += f64::from_le_bytes(chunk[8..16].try_into().unwrap());
            }
            std::hint::black_box(sum);
        });
    });
}

criterion_group!(benches, per_object_costs);
criterion_main!(benches);
