//! Serializer micro-benchmarks backing Table 5's bottom rows: Deca's flat
//! encode ≈ Kryo's encode, while Deca reads fields in place and pays no
//! deserialization at all.
//!
//! Timing-granularity note: `KryoSim` charges `ser_time`/`deser_time` at
//! *batch* scope (one `Instant` pair around a whole loop, via
//! `time_ser`/`time_deser` or the `*_all` helpers), not per record. The
//! `kryo_timer_granularity_*` pair below measures why: encoding one small
//! tuple costs a few nanoseconds, while an `Instant::now()` pair costs
//! tens — per-record bracketing multiplies the measured "serialization"
//! cost several-fold and the harness becomes the workload. Run with
//! `cargo bench --bench serializer` and compare the two cells.

use deca_apps::records::LabeledPointRec;
use deca_check::{criterion_group, criterion_main, Criterion};
use deca_core::DecaRecord;
use deca_engine::KryoSim;

fn per_object_costs(c: &mut Criterion) {
    let recs: Vec<LabeledPointRec> = (0..1000)
        .map(|i| LabeledPointRec {
            label: if i % 2 == 0 { 1.0 } else { -1.0 },
            features: (0..10).map(|j| (i * j) as f64 * 0.25).collect(),
        })
        .collect();

    c.bench_function("kryo_serialize_1k_points", |b| {
        b.iter(|| {
            let mut k = KryoSim::new();
            std::hint::black_box(k.serialize_all(&recs));
        });
    });

    c.bench_function("kryo_deserialize_1k_points", |b| {
        let mut k = KryoSim::new();
        let buf = k.serialize_all(&recs);
        b.iter(|| {
            let mut k = KryoSim::new();
            std::hint::black_box(k.deserialize_all::<LabeledPointRec>(&buf));
        });
    });

    c.bench_function("deca_encode_1k_points", |b| {
        let size = recs[0].data_size();
        let mut buf = vec![0u8; size * recs.len()];
        b.iter(|| {
            for (i, r) in recs.iter().enumerate() {
                r.encode(&mut buf[i * size..(i + 1) * size]);
            }
            std::hint::black_box(&buf);
        });
    });

    c.bench_function("deca_read_in_place_1k_points", |b| {
        // The "deserialization" equivalent: direct field reads, no object.
        let size = recs[0].data_size();
        let mut buf = vec![0u8; size * recs.len()];
        for (i, r) in recs.iter().enumerate() {
            r.encode(&mut buf[i * size..(i + 1) * size]);
        }
        b.iter(|| {
            let mut sum = 0.0;
            for chunk in buf.chunks_exact(size) {
                sum += f64::from_le_bytes(chunk[..8].try_into().unwrap());
                sum += f64::from_le_bytes(chunk[8..16].try_into().unwrap());
            }
            std::hint::black_box(sum);
        });
    });
}

fn timer_granularity(c: &mut Criterion) {
    // The same 10k-pair encode, timed the two ways. "batch" is the shipped
    // design (one timer pair per phase); "per_record" re-creates the old
    // per-record bracketing to show the overhead it added to ser_time.
    let recs: Vec<(i64, i64)> = (0..10_000).map(|i| (i, i * 3)).collect();

    c.bench_function("kryo_timer_granularity_batch", |b| {
        b.iter(|| {
            let mut k = KryoSim::new();
            let buf = k.time_ser(|k| {
                let mut buf = Vec::new();
                for r in &recs {
                    k.serialize(r, &mut buf);
                }
                buf
            });
            std::hint::black_box((buf, k.ser_time));
        });
    });

    c.bench_function("kryo_timer_granularity_per_record", |b| {
        b.iter(|| {
            let mut k = KryoSim::new();
            let mut buf = Vec::new();
            for r in &recs {
                k.time_ser(|k| k.serialize(r, &mut buf));
            }
            std::hint::black_box((buf, k.ser_time));
        });
    });
}

criterion_group!(benches, per_object_costs, timer_granularity);
criterion_main!(benches);
