//! Shuffle-buffer micro-benchmarks: heap-object eager combining (new
//! Value object per combine) vs decomposed in-place segment reuse —
//! the §4.3.2 optimisation in isolation.

use deca_check::{criterion_group, criterion_main, Criterion};
use deca_core::{DecaHashShuffle, MemoryManager};
use deca_engine::SparkHashShuffle;
use deca_heap::{Heap, HeapConfig};

fn combine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle_combine");
    group.sample_size(20);

    group.bench_function("spark_heap_objects", |b| {
        let mut heap = Heap::new(HeapConfig::with_total(32 << 20));
        let mut buf: SparkHashShuffle<i64, i64> = SparkHashShuffle::new(&mut heap).unwrap();
        b.iter(|| {
            for i in 0..5_000i64 {
                buf.insert(&mut heap, i % 97, 1, |a, b| a + b).unwrap();
            }
        });
    });

    group.bench_function("deca_segment_reuse", |b| {
        let mut heap = Heap::new(HeapConfig::with_total(32 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-bench-shuffle"));
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        let one = 1i64.to_le_bytes();
        b.iter(|| {
            for i in 0..5_000i64 {
                let k = (i % 97).to_le_bytes();
                buf.insert(&mut mm, &mut heap, &k, &one, |acc, add| {
                    let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
                    let b = i64::from_le_bytes(add[..8].try_into().unwrap());
                    acc[..8].copy_from_slice(&(a + b).to_le_bytes());
                })
                .unwrap();
            }
        });
    });

    group.finish();
}

criterion_group!(benches, combine_throughput);
criterion_main!(benches);
