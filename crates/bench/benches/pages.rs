//! Page-group micro-benchmarks: append/scan throughput and the page-size
//! ablation (§2.3: pages too small cost GC overhead, too large waste
//! space — here we also see the framing and per-page registration costs).

use deca_check::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deca_core::{DecaCacheBlock, MemoryManager};
use deca_heap::{Heap, HeapConfig};

fn setup(page_size: usize) -> (Heap, MemoryManager) {
    (
        Heap::new(HeapConfig::with_total(64 << 20)),
        MemoryManager::new(page_size, std::env::temp_dir().join("deca-bench-pages")),
    )
}

fn append_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_append_scan");
    group.bench_function("append_16B_sfst", |b| {
        let (mut heap, mut mm) = setup(64 << 10);
        b.iter(|| {
            let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
            for i in 0..1000i64 {
                block.append(&mut mm, &mut heap, &(i as f64, i)).unwrap();
            }
            block.release(&mut mm, &mut heap);
        });
    });
    group.bench_function("scan_16B_sfst", |b| {
        let (mut heap, mut mm) = setup(64 << 10);
        let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
        for i in 0..10_000i64 {
            block.append(&mut mm, &mut heap, &(i as f64, i)).unwrap();
        }
        b.iter(|| {
            let mut sum = 0.0;
            block
                .scan_bytes(
                    &mut mm,
                    &mut heap,
                    |bytes| {
                        sum += f64::from_le_bytes(bytes[..8].try_into().unwrap());
                    },
                    |_| {},
                )
                .unwrap();
            std::hint::black_box(sum);
        });
    });
    group.finish();
}

fn page_size_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_size_ablation");
    group.sample_size(20);
    for &page in &[1usize << 10, 16 << 10, 256 << 10] {
        group.bench_with_input(BenchmarkId::from_parameter(page), &page, |b, &page| {
            b.iter(|| {
                let (mut heap, mut mm) = setup(page);
                let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
                for i in 0..20_000i64 {
                    block.append(&mut mm, &mut heap, &(i as f64, i)).unwrap();
                }
                // The GC cost of the pages themselves:
                heap.full_gc();
                block.release(&mut mm, &mut heap);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, append_scan, page_size_ablation);
criterion_main!(benches);
