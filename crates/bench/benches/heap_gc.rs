//! Collector micro-benchmarks: allocation + minor-GC throughput, and
//! full-GC trace cost as a function of the live cached set — the scaling
//! law behind the paper's §6.2 (full collections cost O(live objects)).

use deca_check::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deca_heap::{ClassBuilder, FieldKind, Heap, HeapConfig};

fn alloc_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_churn");
    group.bench_function("alloc_24B_with_minor_gcs", |b| {
        let mut heap = Heap::new(HeapConfig::with_total(8 << 20));
        let cls = heap.define_class(ClassBuilder::new("T").field("v", FieldKind::I64));
        b.iter(|| {
            for _ in 0..1000 {
                std::hint::black_box(heap.alloc(cls).unwrap());
            }
        });
    });
    group.finish();
}

fn full_gc_scales_with_live_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_gc_vs_live_objects");
    group.sample_size(10);
    for &live in &[10_000usize, 50_000, 200_000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            let mut heap = Heap::new(HeapConfig::with_total(64 << 20));
            let cls = heap.define_class(
                ClassBuilder::new("Cached").field("a", FieldKind::I64).field("b", FieldKind::Ref),
            );
            let arr = heap.define_array_class("Object[]", FieldKind::Ref);
            let holder = heap.alloc_array(arr, live).unwrap();
            let root = heap.add_root(holder);
            for i in 0..live {
                let o = heap.alloc(cls).unwrap();
                let holder = heap.root_ref(root);
                heap.array_set_ref(holder, i, o);
            }
            b.iter(|| heap.full_gc());
        });
    }
    group.finish();
}

fn full_gc_with_external_pages(c: &mut Criterion) {
    // The Deca counterpoint: the same bytes as external pages trace in
    // O(#pages) instead of O(#objects).
    let mut group = c.benchmark_group("full_gc_external_pages");
    group.sample_size(20);
    group.bench_function("200k_records_as_pages", |b| {
        let mut heap = Heap::new(HeapConfig::with_total(64 << 20));
        // 200k x 24B = 4.8MB in 64KB pages = ~75 externals.
        let mut ids = Vec::new();
        for _ in 0..75 {
            ids.push(heap.register_external(64 << 10).unwrap());
        }
        b.iter(|| heap.full_gc());
    });
    group.finish();
}

criterion_group!(benches, alloc_churn, full_gc_scales_with_live_set, full_gc_with_external_pages);
criterion_main!(benches);
