//! # deca-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's §6 (see DESIGN.md §3 for the
//! index), plus micro-benchmarks in `benches/` on the `deca-check`
//! wall-clock timer. This library
//! holds the shared pieces: the scale presets mapping the paper's
//! cluster-scale datasets onto laptop-scale equivalents, and tabular
//! output helpers whose rows EXPERIMENTS.md records.
//!
//! Run a harness with e.g.
//! `cargo run --release -p deca-bench --bin fig9_lr_kmeans`.

use std::time::Duration;

/// Global scale preset. The paper's experiments use 2–200 GB datasets on
/// 30 GB executors; we preserve the *ratios* (live set : heap capacity)
/// at MB scale. `SCALE` multiplies the per-experiment record counts.
#[derive(Copy, Clone, Debug)]
pub struct Scale {
    /// Multiplier over the default record counts (1.0 ≈ seconds per cell).
    pub factor: f64,
    /// Iterations for iterative workloads (paper: 30 for LR/KMeans, 10 for
    /// PR/CC; defaults are reduced for wall-clock sanity).
    pub lr_iterations: usize,
    pub graph_iterations: usize,
}

impl Scale {
    /// Read the scale factor from `DECA_BENCH_SCALE` (default 1.0).
    pub fn from_env() -> Scale {
        let factor =
            std::env::var("DECA_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
        Scale { factor, lr_iterations: 15, graph_iterations: 5 }
    }

    pub fn records(&self, base: usize) -> usize {
        ((base as f64) * self.factor) as usize
    }
}

/// Format a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format bytes as MB with 2 decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

/// Print a header row followed by a separator, TSV-ish aligned.
pub fn table_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
    println!("{}", "-".repeat(cols.len() * 12));
}

/// Print one row.
pub fn table_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// A named series of (x, y) points for figure-style output.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    print!("{name}:");
    for (x, y) in points {
        print!(" ({x:.2},{y:.3})");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing() {
        let s = Scale { factor: 2.0, lr_iterations: 15, graph_iterations: 5 };
        assert_eq!(s.records(100), 200);
        let d = Scale::from_env();
        assert!(d.factor > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(mb(3 << 20), "3.00");
    }
}
