//! Table 4 — GC tuning: storage/shuffle memory fractions and collector
//! algorithms (PS / CMS / G1), on LR and PR — plus the plan matrix the
//! algorithms are implemented over: every [`GcPlanKind`] run on both
//! apps, with measured pauses and concurrent-mark overlap.
//!
//! Expected shape (paper): LR is very sensitive — lowering the storage
//! fraction or switching to a concurrent collector helps dramatically,
//! yet tuned Spark still loses to Deca by a wide margin. PR is much less
//! sensitive (its per-iteration shuffle release already relieves
//! pressure), and concurrent collectors can even hurt its execution time
//! via mutator overhead. The checksum column of the plan matrix is the
//! equivalence witness: every plan must produce the identical result.

use deca_apps::logreg::{self, LrParams};
use deca_apps::pagerank::{self, PrParams};
use deca_bench::{secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;
use deca_heap::{GcAlgorithm, GcPlanKind};

fn main() {
    let scale = Scale::from_env();

    // ------------------------------------------------------------- LR
    println!("# Table 4 (LR): storage-fraction sweep and GC algorithms");
    println!("# LR config: saturating dataset, Spark mode\n");
    table_header(&["knob", "value", "exec_s", "gc_s"]);
    let lr = |storage: f64, algo: GcAlgorithm, mode: ExecutionMode| {
        let mut p = LrParams::small(mode);
        p.points = scale.records(92_000);
        p.iterations = scale.lr_iterations;
        p.heap_bytes = 24 << 20;
        p.storage_fraction = storage;
        p.gc_algorithm = algo;
        logreg::run(&p)
    };
    for &(frac, label) in &[(0.8, "0.8:0.2"), (0.6, "0.6:0.4"), (0.4, "0.4:0.6")] {
        let r = lr(frac, GcAlgorithm::ParallelScavenge, ExecutionMode::Spark);
        table_row(&["fraction".into(), label.into(), secs(r.exec()), secs(r.gc())]);
    }
    for algo in [GcAlgorithm::ParallelScavenge, GcAlgorithm::Cms, GcAlgorithm::G1] {
        let r = lr(0.8, algo, ExecutionMode::Spark);
        table_row(&["algorithm".into(), algo.name().into(), secs(r.exec()), secs(r.gc())]);
    }
    let deca = lr(0.8, GcAlgorithm::ParallelScavenge, ExecutionMode::Deca);
    table_row(&["deca".into(), "-".into(), secs(deca.exec()), secs(deca.gc())]);

    // ------------------------------------------------------------- PR
    println!("\n# Table 4 (PR): the same knobs on PageRank\n");
    table_header(&["knob", "value", "exec_s", "gc_s"]);
    let pr = |storage: f64, algo: GcAlgorithm, mode: ExecutionMode| {
        let mut p = PrParams::small(mode);
        p.vertices = scale.records(24_000);
        p.edges = scale.records(250_000);
        p.iterations = scale.graph_iterations;
        p.heap_bytes = 32 << 20;
        p.storage_fraction = storage;
        p.gc_algorithm = algo;
        pagerank::run(&p)
    };
    for &(frac, label) in &[(0.4, "0.4"), (0.1, "0.1"), (0.05, "0.05")] {
        let r = pr(frac, GcAlgorithm::ParallelScavenge, ExecutionMode::Spark);
        table_row(&["fraction".into(), label.into(), secs(r.exec()), secs(r.gc())]);
    }
    for algo in [GcAlgorithm::ParallelScavenge, GcAlgorithm::Cms, GcAlgorithm::G1] {
        let r = pr(0.4, algo, ExecutionMode::Spark);
        table_row(&["algorithm".into(), algo.name().into(), secs(r.exec()), secs(r.gc())]);
    }
    let deca = pr(0.4, GcAlgorithm::ParallelScavenge, ExecutionMode::Deca);
    table_row(&["deca".into(), "-".into(), secs(deca.exec()), secs(deca.gc())]);

    // ------------------------------------------------- plan matrix
    println!("\n# Table 4 (plan matrix): every GC plan on LR and PR, Spark mode");
    println!("# conc_mark_s is measured marker-thread overlap (not pause)\n");
    table_header(&["app", "plan", "exec_s", "gc_pause_s", "conc_mark_s", "checksum"]);
    for plan in GcPlanKind::ALL {
        let mut p = LrParams::small(ExecutionMode::Spark);
        p.points = scale.records(92_000);
        p.iterations = scale.lr_iterations;
        p.heap_bytes = 24 << 20;
        p.storage_fraction = 0.8;
        let r = deca_apps::run_job_local(&logreg::job(&p), logreg::lr_config(&p).gc_plan(plan), 1);
        table_row(&[
            "LR".into(),
            plan.name().into(),
            secs(r.exec()),
            secs(r.gc()),
            secs(r.metrics.gc_concurrent),
            format!("{:.6}", r.checksum),
        ]);
    }
    for plan in GcPlanKind::ALL {
        let mut p = PrParams::small(ExecutionMode::Spark);
        p.vertices = scale.records(24_000);
        p.edges = scale.records(250_000);
        p.iterations = scale.graph_iterations;
        p.heap_bytes = 32 << 20;
        p.storage_fraction = 0.4;
        let r =
            deca_apps::run_job_local(&pagerank::job(&p), pagerank::pr_config(&p).gc_plan(plan), 1);
        table_row(&[
            "PR".into(),
            plan.name().into(),
            secs(r.exec()),
            secs(r.gc()),
            secs(r.metrics.gc_concurrent),
            format!("{:.6}", r.checksum),
        ]);
    }
}
