//! Table 5 — controlled microbenchmarks: LR and PR in a single executor
//! with a small vs a large heap, plus per-object serialization costs.
//!
//! Expected shape (paper):
//! * small heap: Spark GC-bound; SparkSer and Deca keep GC low; Deca
//!   fastest (no deser);
//! * large heap: negligible GC; Deca ≈ Spark for LR (no boxing on the
//!   hot path there), SparkSer pays deserialization; for PR Deca also
//!   beats Spark because Spark's shuffle path reads auto-boxed objects;
//! * avg serialize per object: Deca ≈ Kryo; Deca deserialize: none.

use std::time::Instant;

use deca_apps::logreg::{self, LrParams};
use deca_apps::pagerank::{self, PrParams};
use deca_apps::records::LabeledPointRec;
use deca_bench::{secs, table_header, table_row, Scale};
use deca_core::DecaRecord;
use deca_engine::{ExecutionMode, KryoSim};

fn main() {
    let scale = Scale::from_env();

    println!("# Table 5: single-executor microbenchmarks\n");
    table_header(&["app", "heap", "metric", "Spark", "Deca", "SparkSer"]);

    // --------------------------------------------------------- LR
    let lr = |heap_bytes: usize, mode| {
        let mut p = LrParams::small(mode);
        p.points = scale.records(60_000);
        p.dims = 10;
        p.iterations = scale.lr_iterations;
        p.heap_bytes = heap_bytes;
        p.storage_fraction = 0.65;
        logreg::run(&p)
    };
    for (heap_bytes, label) in [(14 << 20, "small"), (64 << 20, "large")] {
        let spark = lr(heap_bytes, ExecutionMode::Spark);
        let deca = lr(heap_bytes, ExecutionMode::Deca);
        let ser = lr(heap_bytes, ExecutionMode::SparkSer);
        table_row(&[
            "LR".into(),
            label.into(),
            "exec_s".into(),
            secs(spark.exec()),
            secs(deca.exec()),
            secs(ser.exec()),
        ]);
        table_row(&[
            "LR".into(),
            label.into(),
            "gc_s".into(),
            secs(spark.gc()),
            secs(deca.gc()),
            secs(ser.gc()),
        ]);
    }

    // --------------------------------------------------------- PR
    let pr = |heap_bytes: usize, mode| {
        let mut p = PrParams::small(mode);
        p.vertices = scale.records(16_000); // Pokec-shaped
        p.edges = scale.records(300_000);
        p.iterations = scale.graph_iterations;
        p.heap_bytes = heap_bytes;
        pagerank::run(&p)
    };
    for (heap_bytes, label) in [(12 << 20, "small"), (64 << 20, "large")] {
        let spark = pr(heap_bytes, ExecutionMode::Spark);
        let deca = pr(heap_bytes, ExecutionMode::Deca);
        let ser = pr(heap_bytes, ExecutionMode::SparkSer);
        table_row(&[
            "PR".into(),
            label.into(),
            "exec_s".into(),
            secs(spark.exec()),
            secs(deca.exec()),
            secs(ser.exec()),
        ]);
        table_row(&[
            "PR".into(),
            label.into(),
            "gc_s".into(),
            secs(spark.gc()),
            secs(deca.gc()),
            secs(ser.gc()),
        ]);
    }

    // ------------------------------------------- per-object ser costs
    println!("\n# per-object (de-)serialization (10-dim LabeledPoint):");
    let recs: Vec<LabeledPointRec> = deca_apps::datagen::labeled_vectors(10_000, 10, 5);

    let mut kryo = KryoSim::new();
    let buf = kryo.serialize_all(&recs);
    let _back: Vec<LabeledPointRec> = kryo.deserialize_all(&buf);
    println!(
        "kryo:  serialize {:>8.1} ns/obj   deserialize {:>8.1} ns/obj",
        kryo.avg_ser().as_nanos() as f64,
        kryo.avg_deser().as_nanos() as f64
    );

    let size = recs[0].data_size();
    let mut flat = vec![0u8; size * recs.len()];
    let t = Instant::now();
    for (i, r) in recs.iter().enumerate() {
        r.encode(&mut flat[i * size..(i + 1) * size]);
    }
    let deca_ser = t.elapsed().as_nanos() as f64 / recs.len() as f64;
    let t = Instant::now();
    let mut sum = 0.0;
    for chunk in flat.chunks_exact(size) {
        // In-place field access: the Deca "deserialization" equivalent.
        sum += f64::from_le_bytes(chunk[..8].try_into().unwrap());
    }
    std::hint::black_box(sum);
    let deca_read = t.elapsed().as_nanos() as f64 / recs.len() as f64;
    println!(
        "deca:  serialize {deca_ser:>8.1} ns/obj   in-place read {deca_read:>8.1} ns/obj (no deserialization)"
    );
}
