//! Table 3 — GC time reduction per application.
//!
//! For each app, the largest configuration without spilling: Spark's
//! execution and GC times, the GC ratio, Deca's GC time, and the
//! reduction. Paper: Spark GC ratios 40.5–78.9%; Deca reductions
//! 97.5–99.9%.

use deca_apps::concomp::{self, CcParams};
use deca_apps::kmeans::{self, KmParams};
use deca_apps::logreg::{self, LrParams};
use deca_apps::pagerank::{self, PrParams};
use deca_apps::report::{gc_reduction, AppReport};
use deca_apps::wordcount::{self, WcParams};
use deca_bench::{secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

fn main() {
    let scale = Scale::from_env();
    println!("# Table 3: GC time and reduction (largest no-spill configs)\n");
    table_header(&["app", "Spark_exec_s", "Spark_gc_s", "gc_ratio", "Deca_gc_s", "reduction"]);

    let wc = move |mode| {
        let mut p = WcParams::small(mode);
        p.words = scale.records(1_000_000);
        p.distinct = scale.records(150_000);
        p.heap_bytes = 24 << 20;
        wordcount::run(&p)
    };
    let lr = move |mode| {
        let mut p = LrParams::small(mode);
        p.points = scale.records(64_000);
        p.iterations = scale.lr_iterations;
        p.heap_bytes = 16 << 20;
        logreg::run(&p)
    };
    let km = move |mode| {
        let mut p = KmParams::small(mode);
        p.points = scale.records(64_000);
        p.iterations = scale.lr_iterations.min(10);
        p.heap_bytes = 16 << 20;
        kmeans::run(&p)
    };
    let pr = move |mode| {
        let mut p = PrParams::small(mode);
        p.vertices = scale.records(24_000);
        p.edges = scale.records(250_000);
        p.iterations = scale.graph_iterations;
        p.heap_bytes = 32 << 20;
        pagerank::run(&p)
    };
    let cc = move |mode| {
        let mut p = CcParams::small(mode);
        p.vertices = scale.records(24_000);
        p.edges = scale.records(250_000);
        p.heap_bytes = 32 << 20;
        concomp::run(&p)
    };

    type Runner = Box<dyn Fn(ExecutionMode) -> AppReport>;
    let apps: Vec<(&str, Runner)> = vec![
        ("WC", Box::new(wc)),
        ("LR", Box::new(lr)),
        ("KMeans", Box::new(km)),
        ("PR", Box::new(pr)),
        ("CC", Box::new(cc)),
    ];

    for (name, runner) in apps {
        let spark = runner(ExecutionMode::Spark);
        let deca = runner(ExecutionMode::Deca);
        assert!(
            (spark.checksum - deca.checksum).abs() < 1e-6 * spark.checksum.abs().max(1.0),
            "{name}: modes must agree"
        );
        table_row(&[
            name.to_string(),
            secs(spark.exec()),
            secs(spark.gc()),
            format!("{:.1}%", spark.gc_ratio() * 100.0),
            secs(deca.gc()),
            format!("{:.1}%", gc_reduction(&spark, &deca) * 100.0),
        ]);
    }
}
