//! Figure 11 — slowest-task execution-time breakdown.
//!
//! * LR at two dataset sizes: compute vs GC (and deserialization for
//!   SparkSer) — at the small size everything is compute; at the large
//!   size Spark is GC-dominated while SparkSer shows deser time;
//! * WC/PR shuffle tasks: compute vs shuffle read/write — Spark pays
//!   shuffle serialization, Deca moves raw bytes.

use deca_apps::logreg::{self, LrParams};
use deca_apps::pagerank::{self, PrParams};
use deca_bench::{table_header, table_row, Scale};
use deca_engine::{ExecutionMode, TaskMetrics};

fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn breakdown_row(label: &str, mode: &str, t: &TaskMetrics) {
    table_row(&[
        label.to_string(),
        mode.to_string(),
        t.name.clone(),
        fmt_ms(t.compute),
        fmt_ms(t.gc_pause),
        fmt_ms(t.deser),
        fmt_ms(t.ser + t.shuffle_write),
        fmt_ms(t.shuffle_read),
        fmt_ms(t.io),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 11: slowest-task breakdown (ms)\n");
    table_header(&["workload", "mode", "task", "compute", "gc", "deser", "shufW", "shufR", "io"]);

    // LR small (fits) vs large (saturated): compute vs GC vs deser.
    for (points, label) in [(30_000usize, "LR-small"), (66_000, "LR-large")] {
        for mode in ExecutionMode::ALL {
            let mut p = LrParams::small(mode);
            p.points = scale.records(points);
            p.iterations = scale.lr_iterations;
            p.heap_bytes = 16 << 20;
            p.storage_fraction = 0.62;
            let r = logreg::run(&p);
            let t = r.slowest_task.expect("tasks ran");
            breakdown_row(label, mode.name(), &t);
        }
        println!();
    }

    // PR: the shuffle-heavy case (the paper's PR-60G bars).
    for mode in ExecutionMode::ALL {
        let mut p = PrParams::small(mode);
        p.vertices = scale.records(24_000);
        p.edges = scale.records(250_000);
        p.iterations = scale.graph_iterations;
        p.heap_bytes = 32 << 20;
        let r = pagerank::run(&p);
        let t = r.slowest_task.expect("tasks ran");
        breakdown_row("PR", mode.name(), &t);
    }
}
