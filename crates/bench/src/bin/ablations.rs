//! Ablations of Deca's design choices (DESIGN.md §3):
//!
//! * **page size** (§2.3/§4.3.1): too small ⇒ many traced page objects and
//!   per-page overhead; too large ⇒ wasted tail space;
//! * **segment reuse** (§4.3.2): combining in place vs appending a new
//!   value segment per combine (what a naive implementation would do);
//! * **pointer-array elision** (§4.3.2): SFST key/value pairs need no
//!   pointer array — measured as table overhead per entry;
//! * **phased refinement** (§3.4): how many of the workload UDTs become
//!   decomposable with and without it.

use std::time::Instant;

use deca_bench::{mb, table_header, table_row};
use deca_core::{DecaCacheBlock, DecaHashShuffle, DecaVarHashShuffle, MemoryManager};
use deca_heap::{GcPlanKind, Heap, HeapConfig};
use deca_udt::fixtures::group_by_program;
use deca_udt::{classify_phased, GlobalAnalysis, JobPhases, TypeRef};

fn main() {
    page_size_ablation();
    segment_reuse_ablation();
    pointer_array_elision_ablation();
    thrash_avoidance_ablation();
    full_gc_strategy_ablation();
    phased_refinement_ablation();
}

/// Sweep the page size and report GC-visible object count, wasted bytes,
/// and footprint for a fixed cache.
fn page_size_ablation() {
    println!("# Ablation: page size (fixed 4MB of 88-byte records)\n");
    table_header(&["page_size", "pages(GC-traced)", "wasted_MB", "footprint_MB", "full_gc_us"]);
    let rec: (f64, Vec<f64>) = (1.0, vec![0.5; 10]); // 88+4 framed bytes
    for &page in &[512usize, 4 << 10, 64 << 10, 1 << 20, 8 << 20] {
        let mut heap = Heap::new(HeapConfig::with_total(96 << 20));
        let mut mm = MemoryManager::new(page, std::env::temp_dir().join("deca-abl"));
        let mut block = DecaCacheBlock::new::<(f64, Vec<f64>)>(&mut mm);
        for _ in 0..45_000 {
            block.append(&mut mm, &mut heap, &rec).unwrap();
        }
        let t = Instant::now();
        heap.full_gc();
        let gc = t.elapsed();
        let footprint = block.footprint(&mut mm, &mut heap).unwrap();
        table_row(&[
            format!("{}", page),
            format!("{}", heap.external_count()),
            mb(footprint.saturating_sub(45_000 * 92)),
            mb(footprint),
            format!("{:.1}", gc.as_secs_f64() * 1e6),
        ]);
        block.release(&mut mm, &mut heap);
    }
    println!();
}

/// Compare in-place combining against append-per-combine.
fn segment_reuse_ablation() {
    println!("# Ablation: shuffle value segment reuse (1M combines, 1000 keys)\n");
    table_header(&["strategy", "footprint_MB", "time_ms"]);

    // With reuse (the Deca design).
    {
        let mut heap = Heap::new(HeapConfig::with_total(96 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-abl"));
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        let t = Instant::now();
        for i in 0..1_000_000i64 {
            let k = (i % 1000).to_le_bytes();
            buf.insert(&mut mm, &mut heap, &k, &1i64.to_le_bytes(), |acc, add| {
                let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
                let b = i64::from_le_bytes(add[..8].try_into().unwrap());
                acc[..8].copy_from_slice(&(a + b).to_le_bytes());
            })
            .unwrap();
        }
        let elapsed = t.elapsed();
        table_row(&[
            "reuse-in-place".into(),
            mb(heap.external_bytes()),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
        ]);
        buf.release(&mut mm, &mut heap);
    }

    // Without reuse: append a new segment per combine (naive).
    {
        let mut heap = Heap::new(HeapConfig::with_total(512 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-abl"));
        let mut group_block = DecaCacheBlock::new::<(i64, i64)>(&mut mm);
        let mut latest: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
        let t = Instant::now();
        for i in 0..1_000_000i64 {
            let k = i % 1000;
            let v = latest.get(&k).copied().unwrap_or(0) + 1;
            latest.insert(k, v);
            group_block.append(&mut mm, &mut heap, &(k, v)).unwrap(); // dead segments pile up
        }
        let elapsed = t.elapsed();
        table_row(&[
            "append-per-combine".into(),
            mb(heap.external_bytes()),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
        ]);
        group_block.release(&mut mm, &mut heap);
    }
    println!();
}

/// Quantify §4.3.2's pointer-array elision: the same fixed-size-key
/// aggregation through the elided buffer (offsets computed, value follows
/// key) vs the general pointer-table buffer (framed keys + Slot entries).
fn pointer_array_elision_ablation() {
    println!("# Ablation: pointer-array elision (1M inserts, 50k 8-byte keys)\n");
    table_header(&["buffer", "footprint_MB", "time_ms"]);
    let keys: Vec<[u8; 8]> = (0..1_000_000i64).map(|i| (i % 50_000).to_le_bytes()).collect();
    let one = 1i64.to_le_bytes();
    let add = |acc: &mut [u8], add: &[u8]| {
        let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
        let b = i64::from_le_bytes(add[..8].try_into().unwrap());
        acc[..8].copy_from_slice(&(a + b).to_le_bytes());
    };

    {
        let mut heap = Heap::new(HeapConfig::with_total(96 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-abl"));
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        let t = Instant::now();
        for k in &keys {
            buf.insert(&mut mm, &mut heap, k, &one, add).unwrap();
        }
        let elapsed = t.elapsed();
        table_row(&[
            "elided (SFST fast path)".into(),
            mb(heap.external_bytes()),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
        ]);
        buf.release(&mut mm, &mut heap);
    }
    {
        let mut heap = Heap::new(HeapConfig::with_total(96 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-abl"));
        let mut buf = DecaVarHashShuffle::new(&mut mm, 8);
        let t = Instant::now();
        for k in &keys {
            buf.insert(&mut mm, &mut heap, k, &one, add).unwrap();
        }
        let elapsed = t.elapsed();
        table_row(&[
            "pointer table (general)".into(),
            mb(heap.external_bytes()),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
        ]);
        buf.release(&mut mm, &mut heap);
    }
    println!();
}

/// §4.3.2's thrash avoidance: when a phase changes decomposed objects'
/// data-sizes, Deca re-constructs them — and never re-decomposes that
/// container. Without the rule, every job pays a decompose + reconstruct
/// round trip.
fn thrash_avoidance_ablation() {
    println!("# Ablation: re-decomposition thrash avoidance (8 jobs over a mutating cache)\n");
    table_header(&["policy", "decompositions", "reconstructions", "time_ms"]);

    let base: Vec<(i64, Vec<f64>)> = (0..20_000).map(|i| (i, vec![i as f64; 4])).collect();

    for avoidance in [true, false] {
        let mut heap = Heap::new(HeapConfig::with_total(96 << 20));
        let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-abl"));
        let mut records = base.clone();
        let mut decompositions = 0u32;
        let mut reconstructions = 0u32;
        let mut decomposed: Option<DecaCacheBlock> = None;
        let t = Instant::now();
        for job in 0..8 {
            if decomposed.is_none() && (!avoidance || reconstructions == 0) {
                // (Re-)decompose the cache.
                let mut block = DecaCacheBlock::new::<(i64, Vec<f64>)>(&mut mm);
                for r in &records {
                    block.append(&mut mm, &mut heap, r).unwrap();
                }
                decompositions += 1;
                decomposed = Some(block);
            }
            // The job grows every record's vector: a data-size change that
            // forces re-construction of decomposed blocks.
            if let Some(mut block) = decomposed.take() {
                records = block.decode_all(&mut mm, &mut heap).unwrap();
                block.release(&mut mm, &mut heap);
                reconstructions += 1;
            }
            for r in &mut records {
                r.1.push(job as f64);
            }
        }
        if let Some(mut block) = decomposed.take() {
            block.release(&mut mm, &mut heap);
        }
        let elapsed = t.elapsed();
        table_row(&[
            if avoidance { "avoidance-on (paper)" } else { "re-decompose-every-job" }.into(),
            decompositions.to_string(),
            reconstructions.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!();
}

/// Compare the full-collection strategies on a mixed-lifetime workload:
/// the copying plans pay to move every survivor; the sweeping plans leave
/// survivors in place but fragment the old generation (CMS's real
/// trade-off, §2.1), with immix recycling only coarse holes.
fn full_gc_strategy_ablation() {
    println!("# Ablation: GC plan (mixed-lifetime churn, 6 collections)\n");
    table_header(&["plan", "total_gc_ms", "old_arena_KB", "free_blocks"]);
    for kind in GcPlanKind::ALL {
        let mut h =
            Heap::new(HeapConfig::with_total(24 << 20).with_plan(kind).with_concurrent(false));
        let small =
            h.define_class(deca_heap::ClassBuilder::new("S").field("v", deca_heap::FieldKind::I64));
        let arr = h.define_array_class("long[]", deca_heap::FieldKind::I64);
        // Interleave long-living small objects with medium arrays so dead
        // arrays leave isolated holes between survivors (worst case for a
        // non-compacting sweep).
        let mut keep = Vec::new();
        let mut batch = Vec::new();
        for i in 0..8_000 {
            let o = h.alloc(small).unwrap();
            keep.push(h.add_root(o));
            if i % 20 == 0 {
                let a = h.alloc_array(arr, 128).unwrap();
                batch.push(h.add_root(a));
            }
        }
        // Six rounds: drop the arrays, collect, pin a fresh interleaving.
        for _ in 0..6 {
            h.full_gc();
            for r in batch.drain(..) {
                h.remove_root(r);
            }
            h.full_gc();
            for i in 0..400 {
                let a = h.alloc_array(arr, 128).unwrap();
                batch.push(h.add_root(a));
                if i % 4 == 0 {
                    let o = h.alloc(small).unwrap();
                    keep.push(h.add_root(o));
                }
            }
        }
        let old_kb = h.old_used_bytes() / 1024;
        table_row(&[
            kind.to_string(),
            format!("{:.2}", h.stats().full_time.as_secs_f64() * 1e3),
            old_kb.to_string(),
            // Free-list length is only populated by mark-sweep.
            format!("{}", h.free_block_count()),
        ]);
    }
    println!();
}

/// Count decomposable container types with and without phased refinement.
fn phased_refinement_ablation() {
    println!("# Ablation: phased refinement (groupByKey job, §3.4)\n");
    let g = group_by_program();
    let ty = TypeRef::Udt(g.group);

    // Without phased refinement: one scope covering the whole job (both
    // phases' methods reachable from a synthetic whole-job entry is not
    // expressible here, so the paper's fallback is the *writing* phase).
    let whole = GlobalAnalysis::new(&g.registry, &g.program, g.build_entry);
    let without = whole.classify(ty);

    // With phased refinement: per-phase classification.
    let phases = JobPhases::new().phase("combine", g.build_entry).phase("iterate", g.read_entry);
    let per_phase = classify_phased(&g.registry, &g.program, &phases, &[ty]);

    println!("without phased refinement: Group = {without}  (never decomposable)");
    for p in &per_phase {
        println!("with    phased refinement: phase {:<8} Group = {}", p.phase, p.of(ty).unwrap());
    }
    println!(
        "=> phased refinement makes the cached copy decomposable in the read phase\n   (the partially-decomposable case of Figure 7b)"
    );
}
