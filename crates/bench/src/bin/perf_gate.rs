//! perf_gate — the BENCH perf-regression gate.
//!
//! Runs pinned smoke workloads (WC, LR, PR, and a PR cache-pressure cell
//! whose storage budget forces every cached block through all three cache
//! tiers, at `DECA_BENCH_SCALE`) in Spark and Deca mode, times each cell
//! with the `deca-check` sampling discipline (median/p95 over
//! `DECA_GATE_SAMPLES` runs), and writes the
//! results to `BENCH_PR9.json` (`DECA_BENCH_OUT` overrides). If an older
//! `BENCH_*.json` exists next to the output, the gate compares the
//! best-of-N wall time cell-by-cell (the min is the noise-free estimate
//! for deterministic work; medians over few ~50 ms samples swing with
//! host load) and **exits non-zero** when any cell regressed beyond the
//! tolerance band (`DECA_GATE_TOLERANCE`, default 1.6× — the band
//! catches order-of-magnitude breakage, the committed history catches
//! drift).
//!
//! Two in-process validity checks ride along, so the gate also guards the
//! observability layer it reports through:
//!
//! * the fig8 (WordCount) smoke cell is re-run with tracing disabled and
//!   the tracing overhead printed — it must stay under
//!   `DECA_GATE_TRACE_OVERHEAD` percent (default 5);
//! * a traced run's Chrome trace-event export must validate and
//!   round-trip losslessly through the in-repo JSON parser.
//!
//! A third in-process check gates the scheduler itself: a skewed stage
//! (one straggler ~8× the rest, base task `DECA_TEST_STRAGGLER_MS`,
//! default 2 ms) is timed under both scheduler modes, and
//! the pull scheduler must beat the wave scheduler by at least
//! `DECA_GATE_SKEW_MIN` (default 1.3×) on the median. The skew cell is
//! recorded in its own JSON section, not under `workloads`, so it never
//! enters the cross-PR baseline band. A fourth check validates the
//! cache-pressure cell: its tier traffic (demotions, evictions, spill
//! bytes) must be nonzero, or the cell's timing gates nothing.
//!
//! A fifth check gates the multi-job service ([`DecaServer`]): eight
//! jobs — six real WC/PR jobs plus two I/O-wait jobs (sleeping tasks,
//! the same wait model as the skew cell) — are pushed through one
//! 4-executor server twice, all at once and one at a time. Run
//! serially the cluster idles through every I/O wait; run concurrently
//! the server must hide those waits under the other jobs' compute, so
//! the concurrent batch must reach `DECA_GATE_SERVER_MIN` (default
//! 1.0×) of the serial-sum throughput even on a single-core host.
//! Every job's checksum is asserted against its standalone reference.
//! Like the skew cell it is recorded in its own JSON section.
//!
//! A sixth check gates speculative execution: a stage with one hung
//! straggler (sleep-modelled, cooperatively cancellable) is timed under
//! the Pull scheduler with speculation off and on, and speculation must
//! win by at least `DECA_GATE_SPEC_MIN` (default 1.3×) on the median.
//!
//! A seventh check gates the zero-copy shuffle hand-over: a
//! shuffle-bound WordCount (high distinct count, so combining collapses
//! little and most records cross the exchange) at `DECA_GATE_SCALE`
//! (default 10× the base workload) is timed in Deca mode with the
//! copying baseline (`copying_shuffle`) on and off, and the zero-copy
//! path must be at least `DECA_GATE_ZC_MIN` (default 1.0×: no worse
//! than copying; ownership transfer strictly removes work) as fast on
//! the best-of-N. The same shuffle-bound workload is also recorded as
//! `WC-SHUF/{Spark,Deca}` cells in the cross-PR baseline band.
//!
//! An eighth check gates parallel tracing on a GC-bound cell: a tenured
//! graph is marked repeatedly (`Heap::mark_census`, the mark phase in
//! isolation) with one worker and with `min(cores, 4)` workers. On a
//! multi-core host the parallel mark must win by
//! `DECA_GATE_GCPAR_MIN` (default 1.3×); on a single-core host a
//! wall-clock speedup is physically impossible — the workers time-slice
//! one CPU — so the floor degrades to parity-with-overhead (0.7×) and
//! the cell leans on its structural assert instead: every thread count
//! must mark the exact same object census. The host's core count and
//! the effective floor are recorded in the JSON so the committed record
//! says which gate actually ran.
//!
//! A ninth check gates the concurrent marker: the same tenured graph is
//! collected once with a stop-the-world full GC and once by a
//! concurrent cycle racing an allocating mutator. The cycle's worst
//! stop-the-world pause (initial mark + remark) must stay under the
//! full GC's pause by `DECA_GATE_CONC_MIN` (default 1.0×: never worse),
//! and its remark must trace only a sliver of the full collection's
//! whole-heap census.
//!
//! The timing-thin floor cells (skew, SERVER, SPEC, zero-copy, GCPAR,
//! CONC-PAUSE) are re-measured once on a miss: both runs are printed
//! and the gate takes the better one.

use std::time::{Duration, Instant};

use deca_apps::logreg::{self, LrParams};
use deca_apps::pagerank::{self, PrParams};
use deca_apps::report::AppReport;
use deca_apps::wordcount::{self, WcParams};
use deca_bench::Scale;
use deca_check::bench::summarize;
use deca_check::Json;
use deca_engine::{
    ClusterSession, DecaServer, EngineError, ExecutionMode, ExecutorConfig, JobSpec, RetryPolicy,
    RunTrace, SchedulerMode,
};
use deca_heap::{ClassBuilder, FieldKind, GcEventKind, GcPlanKind, Heap, HeapConfig};

const OUT_DEFAULT: &str = "BENCH_PR10.json";
const MODES: [ExecutionMode; 2] = [ExecutionMode::Spark, ExecutionMode::Deca];

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn wc_params(scale: Scale, mode: ExecutionMode) -> WcParams {
    WcParams {
        words: scale.records(200_000).max(1_000),
        distinct: scale.records(20_000).max(100),
        partitions: 4,
        heap_bytes: 24 << 20,
        mode,
        seed: 42,
        sample_every: 0,
    }
}

/// The shuffle-bound cell: WordCount with a distinct count near the word
/// count, so map-side combining collapses almost nothing and nearly every
/// record crosses the exchange — the byte volume the zero-copy hand-over
/// moves (or the baseline copies) dominates the run.
fn wc_shuffle_params(scale: Scale, mode: ExecutionMode) -> WcParams {
    WcParams {
        words: scale.records(40_000).max(4_000),
        distinct: scale.records(20_000).max(2_000),
        partitions: 4,
        heap_bytes: 32 << 20,
        mode,
        seed: 42,
        sample_every: 0,
    }
}

fn lr_params(scale: Scale, mode: ExecutionMode) -> LrParams {
    let mut p = LrParams::small(mode);
    p.points = scale.records(16_000).max(500);
    p.iterations = 5;
    p.heap_bytes = 16 << 20;
    p
}

fn pr_params(scale: Scale, mode: ExecutionMode) -> PrParams {
    let mut p = PrParams::small(mode);
    p.vertices = scale.records(4_000).max(200);
    p.edges = scale.records(40_000).max(2_000);
    p.iterations = 3;
    p.heap_bytes = 24 << 20;
    p
}

/// The cache-pressure cell: PageRank with a storage budget far below one
/// adjacency block, so every cached partition demotes through hot → warm
/// → cold (Spark) or swaps its page group (Deca), and every iteration's
/// scan pays the cold-read path. Times the tiered cache's worst case.
fn pressure_params(scale: Scale, mode: ExecutionMode) -> PrParams {
    let mut p = pr_params(scale, mode);
    p.storage_fraction = 0.0001;
    p
}

/// One gate cell: `samples` timed runs of a workload, plus the metrics of
/// the final run (GC ratio, traced objects) for the committed record.
struct Cell {
    key: String,
    min_s: f64,
    median_s: f64,
    p95_s: f64,
    gc_ratio: f64,
    objects_traced: u64,
}

fn measure(key: &str, samples: usize, mut run: impl FnMut() -> AppReport) -> Cell {
    run(); // warmup, untimed — the first run of a workload pays cold caches
    let mut times = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let t = Instant::now();
        let report = run();
        times.push(t.elapsed().as_secs_f64());
        last = Some(report);
    }
    let s = summarize(times, 1);
    let last = last.expect("samples >= 1");
    println!(
        "  {key:<12} min {:>8.3}s  median {:>8.3}s  p95 {:>8.3}s  gc_ratio {:>5.1}%  traced {:>10}",
        s.min,
        s.median,
        s.p95,
        last.gc_ratio() * 100.0,
        last.objects_traced,
    );
    Cell {
        key: key.to_string(),
        min_s: s.min,
        median_s: s.median,
        p95_s: s.p95,
        gc_ratio: last.gc_ratio(),
        objects_traced: last.objects_traced,
    }
}

/// Tracing-overhead probe: best-of-N wall times for a thunk run with
/// tracing on vs off. Each timed sample is a burst of `burst`
/// back-to-back runs (lengthening the timed region past scheduler
/// granularity), the pairs interleave with alternating order (on/off,
/// off/on, …) so machine drift and ordering effects hit both sides
/// equally, a warmup pair absorbs cold caches, and the *minimum* is
/// compared — for deterministic work the min is the noise-free
/// estimate, where a median over few ~20 ms samples can swing ±20% on
/// a busy host.
fn overhead_pct(pairs: usize, burst: usize, mut run: impl FnMut(bool)) -> f64 {
    run(true);
    run(false);
    let mut time = |tracing: bool| {
        let t = Instant::now();
        for _ in 0..burst {
            run(tracing);
        }
        t.elapsed().as_secs_f64()
    };
    let (mut best_on, mut best_off) = (f64::INFINITY, f64::INFINITY);
    for i in 0..pairs {
        let order = if i % 2 == 0 { [true, false] } else { [false, true] };
        for tracing in order {
            let t = time(tracing);
            let best = if tracing { &mut best_on } else { &mut best_off };
            *best = best.min(t);
        }
    }
    (best_on / best_off.max(1e-9) - 1.0) * 100.0
}

/// Hardening for the timing-thin floor-gated cells (skew, SERVER, SPEC):
/// their margins are sleep-modelled milliseconds, so a single noisy run
/// on a loaded host can dip under the floor without any real regression.
/// On a miss the cell is re-measured once, both measurements are
/// printed, and the gate takes the better run — a genuine regression
/// fails both times; a scheduling hiccup doesn't fail the gate.
fn gate_with_retry<T>(name: &str, floor: f64, mut measure: impl FnMut() -> (T, f64)) -> (T, f64) {
    let (first, s1) = measure();
    if s1 >= floor {
        return (first, s1);
    }
    println!("  {name} cell measured {s1:.2}x, below the {floor:.2}x floor — re-measuring once");
    let (second, s2) = measure();
    println!("  {name} cell runs: {s1:.2}x then {s2:.2}x — gating on the better");
    if s2 >= s1 {
        (second, s2)
    } else {
        (first, s1)
    }
}

/// The newest prior `BENCH_*.json` in `dir` (by the numeric suffix in
/// `BENCH_PR<N>.json`, falling back to name order), excluding `out`.
fn newest_baseline(dir: &std::path::Path, out: &str) -> Option<(String, Json)> {
    let mut candidates: Vec<(i64, String)> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json") && n != out)
        .map(|n| {
            let num: i64 =
                n.trim_start_matches("BENCH_PR").trim_end_matches(".json").parse().unwrap_or(-1);
            (num, n)
        })
        .collect();
    candidates.sort();
    let (_, name) = candidates.pop()?;
    let text = std::fs::read_to_string(dir.join(&name)).ok()?;
    match Json::parse(&text) {
        Ok(doc) => Some((name, doc)),
        Err(e) => {
            eprintln!("warning: baseline {name} is not parseable ({e}); ignoring");
            None
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let samples = env_usize("DECA_GATE_SAMPLES", 5).max(1);
    let tolerance = env_f64("DECA_GATE_TOLERANCE", 1.6);
    let skew_min = env_f64("DECA_GATE_SKEW_MIN", 1.3);
    let overhead_limit = env_f64("DECA_GATE_TRACE_OVERHEAD", 5.0);
    let out = std::env::var("DECA_BENCH_OUT").unwrap_or_else(|_| OUT_DEFAULT.to_string());
    let out_path = std::path::PathBuf::from(&out);
    let dir = out_path.parent().map(|p| p.to_path_buf()).filter(|p| !p.as_os_str().is_empty());
    let dir = dir.unwrap_or_else(|| std::path::PathBuf::from("."));

    println!(
        "# perf_gate: scale {:.2}, {samples} samples/cell, tolerance {tolerance:.2}x",
        scale.factor
    );

    // The shuffle-bound cells run at their own (larger) scale so the
    // exchange volume dominates: `DECA_GATE_SCALE` defaults to 10x the
    // base workload regardless of `DECA_BENCH_SCALE`.
    let gate_scale = Scale {
        factor: env_f64("DECA_GATE_SCALE", 10.0),
        lr_iterations: scale.lr_iterations,
        graph_iterations: scale.graph_iterations,
    };

    let mut cells: Vec<Cell> = Vec::new();
    for mode in MODES {
        let wc = wc_params(scale, mode);
        cells.push(measure(&format!("WC/{}", mode.name()), samples, || {
            wordcount::run_local(&wc, 2)
        }));
        let lr = lr_params(scale, mode);
        cells.push(measure(&format!("LR/{}", mode.name()), samples, || logreg::run(&lr)));
        let pr = pr_params(scale, mode);
        cells
            .push(measure(&format!("PR/{}", mode.name()), samples, || pagerank::run_local(&pr, 2)));
        let press = pressure_params(scale, mode);
        cells.push(measure(&format!("PR-CACHE/{}", mode.name()), samples, || {
            pagerank::run_local(&press, 2)
        }));
        let shuf = wc_shuffle_params(gate_scale, mode);
        cells.push(measure(&format!("WC-SHUF/{}", mode.name()), samples, || {
            wordcount::run_local(&shuf, 2)
        }));
    }

    // --- cache-pressure validity: the cell must actually exercise all
    // three tiers, or its timing gates nothing ------------------------
    let pressure_stats: Vec<(ExecutionMode, deca_engine::CacheStats)> = MODES
        .iter()
        .map(|&mode| {
            let p = pressure_params(scale, mode);
            let mut session = ClusterSession::new(2, pagerank::pr_config(&p));
            pagerank::run_on(&p, &mut session).expect("pressure smoke run");
            session.finish_job();
            let stats = session.cluster().executors.iter().map(|e| e.cache_stats()).fold(
                deca_engine::CacheStats::default(),
                |mut acc, s| {
                    acc.evictions += s.evictions;
                    acc.demotions += s.demotions;
                    acc.spill_write_bytes += s.spill_write_bytes;
                    acc.spill_read_bytes += s.spill_read_bytes;
                    acc
                },
            );
            assert!(stats.evictions > 0, "{mode}: pressure cell never reached the cold tier");
            assert!(stats.spill_write_bytes > 0, "{mode}: pressure cell wrote no spill bytes");
            if mode != ExecutionMode::Deca {
                // Deca has no warm tier — pages are already serialized.
                assert!(stats.demotions > 0, "{mode}: pressure cell never used the warm tier");
                assert!(stats.spill_read_bytes > 0, "{mode}: pressure cell never read back");
            }
            println!(
                "  cache pressure {:<8} demotions {:>6}  evictions {:>6}  spill write {:>9}B  \
                 read {:>9}B",
                mode.name(),
                stats.demotions,
                stats.evictions,
                stats.spill_write_bytes,
                stats.spill_read_bytes,
            );
            (mode, stats)
        })
        .collect();

    // --- tracing overhead on the fig8 (WordCount) smoke cell ----------
    let overhead = {
        let p = wc_params(scale, ExecutionMode::Deca);
        let pairs = samples.max(12);
        let pct = overhead_pct(pairs, 3, |tracing| {
            let config = ExecutorConfig::new(p.mode, p.heap_bytes).tracing(tracing);
            let mut session = ClusterSession::new(2, config);
            wordcount::run_on(&p, &mut session).expect("fault-free smoke run");
            session.finish_job();
        });
        println!(
            "  tracing overhead on fig8 smoke: {pct:+.2}% (best-of-{pairs} interleaved \
             3-run bursts, limit {overhead_limit:.1}%)"
        );
        pct
    };

    // --- Chrome trace export round-trips through the in-repo parser ---
    let trace_events = {
        let p = wc_params(scale, ExecutionMode::Deca);
        let mut session = ClusterSession::new(2, ExecutorConfig::new(p.mode, p.heap_bytes));
        wordcount::run_on(&p, &mut session).expect("fault-free smoke run");
        session.finish_job();
        let trace = session.merged_trace();
        let chrome = trace.to_chrome_string();
        let n = RunTrace::validate_chrome_document(&chrome)
            .unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
        let back = RunTrace::from_chrome_string(&chrome)
            .unwrap_or_else(|e| panic!("chrome trace did not parse back: {e}"));
        assert_eq!(back, trace, "chrome trace round-trip must be lossless");
        println!("  chrome trace round-trip: {n} events, lossless");
        n
    };

    // --- skewed-stage scheduler cell: Wave vs Pull --------------------
    // One straggler task 8× the rest, more tasks than executors. Under
    // Wave the straggler's executor also runs its whole affinity queue
    // after the long task while the barrier holds everyone else idle;
    // under Pull the idle executors steal those tasks, so the stage ends
    // near max(straggler, total/executors). Task cost is modelled as
    // sleep (I/O wait), which overlaps across executor threads even on a
    // single-core host — a real-CPU straggler would serialize there and
    // measure nothing about scheduling.
    // Oversubscribed CI hosts can widen the timing headroom without
    // editing code (the scheduler-equivalence test honors the same
    // knob); the straggler stays 8× whatever the base is.
    let base_ms = env_usize("DECA_TEST_STRAGGLER_MS", 2).max(1) as u64;
    let ((skew_wave, skew_pull), skew_speedup) = {
        const EXECUTORS: usize = 4;
        const TASKS: usize = 24;
        const STRAGGLER_FACTOR: u64 = 8;
        let base = Duration::from_millis(base_ms);
        let time_sched = |sched: SchedulerMode| -> Vec<f64> {
            let mut times = Vec::with_capacity(samples);
            for i in 0..=samples {
                let config = ExecutorConfig::new(ExecutionMode::Deca, 8 << 20)
                    .tracing(false)
                    .scheduler(sched);
                let mut session = ClusterSession::new(EXECUTORS, config);
                let t = Instant::now();
                session
                    .run_stage("skew", TASKS, |ctx, _e| {
                        let d = if ctx.task == 0 { base * STRAGGLER_FACTOR as u32 } else { base };
                        std::thread::sleep(d);
                        Ok(())
                    })
                    .expect("skew stage");
                if i > 0 {
                    times.push(t.elapsed().as_secs_f64()); // sample 0 is warmup
                }
            }
            times
        };
        gate_with_retry("skew", skew_min, || {
            let wave = summarize(time_sched(SchedulerMode::Wave), 1);
            let pull = summarize(time_sched(SchedulerMode::Pull), 1);
            let speedup = wave.median / pull.median.max(1e-9);
            println!(
                "  skew cell ({EXECUTORS} executors, {TASKS} tasks, straggler \
                 {STRAGGLER_FACTOR}x over {base_ms}ms): wave median {:.1}ms, pull median \
                 {:.1}ms, speedup {speedup:.2}x (gate >= {skew_min:.2}x)",
                wave.median * 1e3,
                pull.median * 1e3,
            );
            ((wave, pull), speedup)
        })
    };

    // --- SERVER cell: multi-job throughput through DecaServer ---------
    // Eight mixed jobs — six real WC/PR jobs plus two width-1 I/O-wait
    // jobs whose tasks sleep (the same wait model as the skew cell) —
    // through one 4-executor DecaServer: once submitted all at once,
    // once one at a time on the same server. A width-1 job's sleeps
    // chain sequentially on its single home worker, so run serially the
    // whole cluster idles through each chain; submitted concurrently,
    // the server must hide the chains under the six compute jobs —
    // which works even on a single-core host, because CPU work cannot
    // overlap itself on one core but always overlaps a sleep. The gate
    // floor is `DECA_GATE_SERVER_MIN` (default 1.0: concurrent wall
    // time no worse than the serial sum; the wait-hiding puts the
    // expected value well above it). Every job pins the Wave scheduler
    // so a `DECA_SCHEDULER=pull` environment cannot let work-stealing
    // despread the sleep chain and shrink the serial baseline, and
    // every job's checksum is asserted against its standalone
    // reference, so the throughput number only counts runs that
    // produced the right answer.
    let server_min = env_f64("DECA_GATE_SERVER_MIN", 1.0);
    let ((server_serial, server_concurrent), server_speedup) = {
        const EXECUTORS: usize = 4;
        const WIDTH: usize = 4;
        const JOBS: usize = 8;
        // Many short sleeps, not a few long ones: every compute stage
        // has a task pinned to the waiters' home worker, and the sleep
        // length bounds how long that task queues behind a waiter.
        const IO_TASKS: usize = 20;
        let wc = wc_params(scale, ExecutionMode::Deca);
        let pr = pr_params(scale, ExecutionMode::Deca);
        let wc_ref = wordcount::run_local(&wc, WIDTH).checksum;
        let pr_ref = pagerank::run_local(&pr, WIDTH).checksum;
        let io_wait = std::time::Duration::from_millis(2 * base_ms);
        let io_job = move || {
            deca_engine::AppJob::new("io", move |ctx| {
                let per_task = ctx.run_stage("io-wait", IO_TASKS, move |_t, _e| {
                    std::thread::sleep(io_wait);
                    Ok(1.0)
                })?;
                Ok(per_task.iter().sum())
            })
        };
        let server = DecaServer::new(EXECUTORS, ExecutorConfig::new(ExecutionMode::Deca, 24 << 20));
        // Jobs 0 and 1 are the width-1 I/O waiters — submitted FIRST,
        // because the server runs at most `runners` (= executor count)
        // job bodies at once: waiters queued last would execute after
        // the compute jobs drained and sleep with nothing to hide
        // under. Jobs 2..8 alternate WC/PR at full width.
        let spec = |i: usize| -> JobSpec {
            let (app, width) = if i < 2 {
                (io_job(), 1)
            } else if i % 2 == 0 {
                (wordcount::job(&wc), WIDTH)
            } else {
                (pagerank::job(&pr), WIDTH)
            };
            JobSpec::new("bench").executors(width).scheduler(SchedulerMode::Wave).app(app)
        };
        let reference = |i: usize| {
            if i < 2 {
                IO_TASKS as f64
            } else if i % 2 == 0 {
                wc_ref
            } else {
                pr_ref
            }
        };
        let run_batch = |concurrent: bool| -> f64 {
            let t = Instant::now();
            if concurrent {
                let handles: Vec<_> =
                    (0..JOBS).map(|i| server.submit(spec(i)).expect("submit")).collect();
                for (i, h) in handles.iter().enumerate() {
                    let out = h.wait().expect("server job");
                    assert_eq!(out.checksum, reference(i), "job {i}: server drifted off run_local");
                }
            } else {
                for i in 0..JOBS {
                    let out = server.submit(spec(i)).expect("submit").wait().expect("server job");
                    assert_eq!(out.checksum, reference(i), "job {i}: server drifted off run_local");
                }
            }
            t.elapsed().as_secs_f64()
        };
        run_batch(false); // warmup: cold caches, thread-pool spin-up
        run_batch(true);
        gate_with_retry("server", server_min, || {
            let (mut serial, mut concurrent) = (Vec::new(), Vec::new());
            for i in 0..samples {
                // Interleave with alternating order so host drift hits both.
                let order = i % 2 == 0;
                for conc in [order, !order] {
                    let t = run_batch(conc);
                    if conc {
                        concurrent.push(t)
                    } else {
                        serial.push(t)
                    };
                }
            }
            let serial = summarize(serial, 1);
            let concurrent = summarize(concurrent, 1);
            let speedup = serial.min / concurrent.min.max(1e-9);
            println!(
                "  server cell ({JOBS} jobs: 6 WC/PR + 2 I/O-wait, width {WIDTH} on {EXECUTORS} \
                 executors): serial-sum min {:.1}ms, concurrent min {:.1}ms, throughput \
                 {speedup:.2}x (gate >= {server_min:.2}x)",
                serial.min * 1e3,
                concurrent.min * 1e3,
            );
            ((serial, concurrent), speedup)
        })
    };

    // --- SPEC cell: speculative execution vs a hung straggler ---------
    // One attempt models a hang: task 0 on its home executor sleeps ~25x
    // the base task cost in base-sized slices, cooperatively polling its
    // cancel token (the same wait model as the skew cell). With
    // speculation off the stage waits out the whole hang. With
    // speculation on, the Pull scheduler's watcher sees the attempt blow
    // past the round's 2x-median threshold once half the round has
    // completed, duplicates it on an idle executor — where the body
    // takes only the base cost — and the duplicate's win cancels the
    // hung primary, so the stage ends near the duplicate instead. Floor
    // `DECA_GATE_SPEC_MIN` (default 1.3x; the modelled gap puts the
    // expected value well above it). Like the skew cell it is recorded
    // in its own JSON section, never in the cross-PR baseline band.
    let spec_min = env_f64("DECA_GATE_SPEC_MIN", 1.3);
    let ((spec_off, spec_on), spec_speedup) = {
        const EXECUTORS: usize = 4;
        const TASKS: usize = 24;
        const HANG_FACTOR: u64 = 25;
        let base = Duration::from_millis(base_ms);
        let time_spec = |speculate: bool| -> Vec<f64> {
            let mut times = Vec::with_capacity(samples);
            for i in 0..=samples {
                let config = ExecutorConfig::new(ExecutionMode::Deca, 8 << 20)
                    .tracing(false)
                    .scheduler(SchedulerMode::Pull)
                    .retry(RetryPolicy::default().speculate(speculate));
                let mut session = ClusterSession::new(EXECUTORS, config);
                let t = Instant::now();
                session
                    .run_stage("hang", TASKS, move |ctx, _e| {
                        if ctx.task == 0 && ctx.executor == 0 {
                            for _ in 0..HANG_FACTOR {
                                if ctx.is_cancelled() {
                                    return Err(EngineError::Cancelled {
                                        reason: "duplicate won".to_string(),
                                    });
                                }
                                std::thread::sleep(base);
                            }
                        } else {
                            std::thread::sleep(base);
                        }
                        Ok(())
                    })
                    .expect("hang stage");
                if i > 0 {
                    times.push(t.elapsed().as_secs_f64()); // sample 0 is warmup
                }
            }
            times
        };
        gate_with_retry("speculation", spec_min, || {
            let off = summarize(time_spec(false), 1);
            let on = summarize(time_spec(true), 1);
            let speedup = off.median / on.median.max(1e-9);
            println!(
                "  spec cell ({EXECUTORS} executors, {TASKS} tasks, hung straggler \
                 {HANG_FACTOR}x over {base_ms}ms, pull): spec-off median {:.1}ms, spec-on \
                 median {:.1}ms, speedup {speedup:.2}x (gate >= {spec_min:.2}x)",
                off.median * 1e3,
                on.median * 1e3,
            );
            ((off, on), speedup)
        })
    };

    // --- zero-copy cell: page hand-over vs the copying baseline -------
    // A raw shuffle microbench where the exchange volume IS the work:
    // each map task writes `zc_run_bytes` of 64-byte records into a
    // page run per reducer, hands the runs over, and the reducers parse
    // every record back into a checksum. With `copying_shuffle` off the
    // hand-over transfers page ownership; with it on, every run is
    // flattened into a fresh Vec<u8> at hand-over (the pre-PR9 wire
    // format, kept as the A/B baseline) — an extra memcpy + allocation
    // of the full exchange volume, which at the gate scale is the
    // dominant cost the baseline pays and zero-copy skips. An app-level
    // shuffle-bound WordCount rides in the `WC-SHUF/*` workload cells
    // above; there the hash-combine dominates, so the wall-clock A/B is
    // gated on this cell where the margin is structural, with floor
    // `DECA_GATE_ZC_MIN` (default 1.0: zero-copy must not lose) on the
    // best-of-N, the one-retry discipline of the other floor cells, and
    // its own JSON section outside the cross-PR band. Checksums are
    // asserted equal across both modes, so the timing only counts runs
    // where the wire format change kept the answer bit-identical.
    let zc_min = env_f64("DECA_GATE_ZC_MIN", 1.0);
    const ZC_MAPS: usize = 4;
    const ZC_REDUCERS: usize = 4;
    let zc_run_bytes = gate_scale.records(102_400).max(65_536);
    let ((zc_copying, zc_zero), zc_speedup) = {
        let run_once = |copying: bool| -> (f64, f64) {
            let config = ExecutorConfig::new(ExecutionMode::Deca, 64 << 20)
                .tracing(false)
                .copying_shuffle(copying);
            let mut session = ClusterSession::new(2, config);
            let t = Instant::now();
            let partials = session
                .run_shuffle_job(
                    "zc",
                    ZC_MAPS,
                    ZC_REDUCERS,
                    move |ctx, e| {
                        let mut runs: Vec<_> = (0..ZC_REDUCERS).map(|_| e.new_run()).collect();
                        let mut rec = [0u8; 64];
                        for (r, run) in runs.iter_mut().enumerate() {
                            rec[..8].copy_from_slice(&(ctx.task as u64).to_le_bytes());
                            rec[8..16].copy_from_slice(&(r as u64).to_le_bytes());
                            let mut written = 0usize;
                            let mut i = 0u64;
                            while written < zc_run_bytes {
                                rec[16..24].copy_from_slice(&i.to_le_bytes());
                                run.push(&mut e.arena, &rec);
                                written += rec.len();
                                i += 1;
                            }
                        }
                        Ok(runs.into_iter().map(|run| e.hand_over(run)).collect())
                    },
                    |_ctx, _e, inputs| {
                        let mut sum = 0u64;
                        for payload in inputs {
                            for bytes in payload.chunks() {
                                for rec in bytes.chunks_exact(64) {
                                    let task = u64::from_le_bytes(rec[..8].try_into().unwrap());
                                    let i = u64::from_le_bytes(rec[16..24].try_into().unwrap());
                                    sum = sum.wrapping_add(task * 31 + i);
                                }
                            }
                        }
                        Ok(sum as f64)
                    },
                )
                .expect("zero-copy cell");
            (t.elapsed().as_secs_f64(), partials.iter().sum::<f64>())
        };
        let (_, reference) = run_once(false); // warmup both paths before timing
        let (_, copied_sum) = run_once(true);
        assert_eq!(copied_sum, reference, "copying baseline drifted off the zero-copy answer");
        gate_with_retry("zero-copy", zc_min, || {
            let (mut with_copy, mut zero_copy) = (Vec::new(), Vec::new());
            for i in 0..samples {
                // Interleave with alternating order so host drift hits both.
                let order = i % 2 == 0;
                for copying in [order, !order] {
                    let (t, sum) = run_once(copying);
                    assert_eq!(sum, reference, "zero-copy cell answer drifted mid-measurement");
                    if copying {
                        with_copy.push(t)
                    } else {
                        zero_copy.push(t)
                    };
                }
            }
            let with_copy = summarize(with_copy, 1);
            let zero_copy = summarize(zero_copy, 1);
            let speedup = with_copy.min / zero_copy.min.max(1e-9);
            println!(
                "  zero-copy cell ({ZC_MAPS}x{ZC_REDUCERS} shuffle, {:.1}MB exchange): \
                 copying min {:.1}ms, zero-copy min {:.1}ms, speedup {speedup:.2}x \
                 (gate >= {zc_min:.2}x)",
                (ZC_MAPS * ZC_REDUCERS * zc_run_bytes) as f64 / (1 << 20) as f64,
                with_copy.min * 1e3,
                zero_copy.min * 1e3,
            );
            ((with_copy, zero_copy), speedup)
        })
    };

    // --- GCPAR cell: parallel tracing vs a single-threaded mark -------
    // A GC-bound microbench: one rooted Object[] holding GC_NODES
    // tenured nodes, marked repeatedly via `Heap::mark_census` — the
    // mark phase in isolation, because evacuation and sweeping are
    // sequential by design and would dilute what this cell gates. The
    // census count is schedule-independent, so every thread count must
    // agree on it exactly; that structural assert runs on every host,
    // while the wall-clock floor is core-count-aware (see module docs —
    // on one CPU the workers time-slice and parity is the ceiling).
    let gcpar_min = env_f64("DECA_GATE_GCPAR_MIN", 1.3);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    const GC_NODES: usize = 120_000;
    const GC_MARKS: usize = 6;
    let gcpar_threads = cores.clamp(2, 4);
    let gcpar_floor = if cores >= 2 { gcpar_min } else { 0.7 };
    // Build a heap whose old generation holds a GC_NODES-object graph:
    // the tenured live set every mark (and the CONC-PAUSE cell's
    // collections) traces.
    let tenured_heap = |plan: GcPlanKind, concurrent: bool, threads: usize| -> Heap {
        let mut h = Heap::new(
            HeapConfig::with_total(64 << 20)
                .with_plan(plan)
                .with_concurrent(concurrent)
                .with_gc_threads(threads),
        );
        let node = h.define_class(ClassBuilder::new("Node").field("v", FieldKind::I64));
        let arr = h.define_array_class("Object[]", FieldKind::Ref);
        let holder = h.alloc_array(arr, GC_NODES).unwrap();
        let root = h.add_root(holder);
        for i in 0..GC_NODES {
            let o = h.alloc(node).unwrap();
            let holder = h.root_ref(root);
            h.array_set_ref(holder, i, o);
        }
        h.full_gc(); // tenure the graph
        h
    };
    let mark_cell = |threads: usize| -> (f64, u64) {
        let mut h = tenured_heap(GcPlanKind::GenCopy, false, threads);
        let t = Instant::now();
        let mut traced = 0u64;
        for _ in 0..GC_MARKS {
            traced += h.mark_census();
        }
        (t.elapsed().as_secs_f64(), traced)
    };
    let (_, census_single) = mark_cell(1); // warmup both sides, pin the census
    let (_, census_par) = mark_cell(gcpar_threads);
    assert_eq!(
        census_single, census_par,
        "parallel mark must trace the identical census at any thread count"
    );
    let ((gcpar_single, gcpar_par), gcpar_speedup) = {
        gate_with_retry("gc-parallel", gcpar_floor, || {
            let (mut single, mut par) = (Vec::new(), Vec::new());
            for i in 0..samples {
                // Interleave with alternating order so host drift hits both.
                let order = i % 2 == 0;
                for parallel in [order, !order] {
                    let (t, census) = mark_cell(if parallel { gcpar_threads } else { 1 });
                    assert_eq!(census, census_single, "mark census drifted mid-measurement");
                    if parallel {
                        par.push(t)
                    } else {
                        single.push(t)
                    };
                }
            }
            let single = summarize(single, 1);
            let par = summarize(par, 1);
            let speedup = single.min / par.min.max(1e-9);
            println!(
                "  gc-parallel cell ({GC_NODES} tenured nodes, {GC_MARKS} marks, \
                 {gcpar_threads} threads on {cores} core(s)): 1-thread min {:.1}ms, \
                 {gcpar_threads}-thread min {:.1}ms, speedup {speedup:.2}x (gate >= \
                 {gcpar_floor:.2}x)",
                single.min * 1e3,
                par.min * 1e3,
            );
            ((single, par), speedup)
        })
    };

    // --- CONC-PAUSE cell: concurrent cycle pauses vs the STW full GC --
    // The same tenured graph, collected two ways under the mark-sweep
    // plan: a stop-the-world full GC (one pause covering the whole
    // trace) vs a concurrent cycle racing an allocating mutator (two
    // short pauses — snapshot and remark — around the overlapped mark).
    // Gated on the worst post-tenure pause: concurrent must never be
    // worse (`DECA_GATE_CONC_MIN`, default 1.0×). The remark's traced
    // work — schedule-independent — must also be a sliver of the STW
    // census, so the timing can't pass by accident on a noisy host.
    let conc_min = env_f64("DECA_GATE_CONC_MIN", 1.0);
    let pause_cell = |concurrent: bool| -> (f64, u64) {
        let mut h = tenured_heap(GcPlanKind::MarkSweep, concurrent, 1);
        let filler = h.define_class(ClassBuilder::new("Filler").field("v", FieldKind::I64));
        let mark = h.stats().events.len();
        if concurrent {
            assert!(h.start_concurrent_cycle(), "cycle must start on an idle heap");
            let mut spins = 0u64;
            while !h.poll_gc() {
                h.alloc(filler).unwrap(); // the mutator races the marker
                std::thread::yield_now();
                spins += 1;
                assert!(spins < 200_000_000, "concurrent marker never finished");
            }
            let s = h.stats();
            assert_eq!(s.concurrent_aborts, 0, "the cycle must finish, not abort");
        } else {
            h.full_gc();
        }
        let events = h.stats().events_since(mark);
        let max_pause = events
            .iter()
            .filter(|e| e.kind != GcEventKind::Minor && e.kind.is_pause())
            .map(|e| e.duration)
            .max()
            .unwrap_or(Duration::ZERO);
        let pause_kind = if concurrent { GcEventKind::Remark } else { GcEventKind::Full };
        let traced = events.iter().filter(|e| e.kind == pause_kind).map(|e| e.objects_traced).sum();
        (max_pause.as_secs_f64(), traced)
    };
    let (_, stw_census) = pause_cell(false); // warmup, pin the traced-work sides
    let (_, remark_census) = pause_cell(true);
    assert!(
        remark_census < stw_census / 4,
        "the remark pause must trace a sliver of the whole-heap census \
         ({remark_census} vs {stw_census})"
    );
    let ((conc_stw, conc_pause), conc_ratio) = {
        gate_with_retry("conc-pause", conc_min, || {
            let (mut stw, mut conc) = (Vec::new(), Vec::new());
            for i in 0..samples {
                // Interleave with alternating order so host drift hits both.
                let order = i % 2 == 0;
                for concurrent in [order, !order] {
                    let (p, _) = pause_cell(concurrent);
                    if concurrent {
                        conc.push(p)
                    } else {
                        stw.push(p)
                    };
                }
            }
            let stw = summarize(stw, 1);
            let conc = summarize(conc, 1);
            let ratio = stw.min / conc.min.max(1e-9);
            println!(
                "  conc-pause cell ({GC_NODES} tenured nodes, mark-sweep): STW full pause min \
                 {:.2}ms, concurrent cycle max pause min {:.2}ms, ratio {ratio:.2}x (gate >= \
                 {conc_min:.2}x; remark traced {remark_census} of {stw_census})",
                stw.min * 1e3,
                conc.min * 1e3,
            );
            ((stw, conc), ratio)
        })
    };

    // --- write the BENCH record ---------------------------------------
    let doc = Json::obj(vec![
        ("schema", Json::str("deca-bench-v1")),
        ("pr", Json::str("PR10")),
        ("scale", Json::num(scale.factor)),
        ("samples", Json::int(samples as u64)),
        ("tolerance", Json::num(tolerance)),
        ("tracing_overhead_pct", Json::num(overhead)),
        ("trace_events", Json::int(trace_events as u64)),
        (
            "workloads",
            Json::obj(
                cells
                    .iter()
                    .map(|c| {
                        (
                            c.key.as_str(),
                            Json::obj(vec![
                                ("min_s", Json::num(c.min_s)),
                                ("median_s", Json::num(c.median_s)),
                                ("p95_s", Json::num(c.p95_s)),
                                ("gc_ratio", Json::num(c.gc_ratio)),
                                ("objects_traced", Json::int(c.objects_traced)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        // Out-of-band of `workloads`: scheduler A/B, gated on its own
        // speedup floor rather than the cross-PR tolerance band.
        // Cache-pressure tier traffic from the validity run, so the
        // committed record shows the cell really crossed all tiers.
        (
            "cache_pressure",
            Json::obj(
                pressure_stats
                    .iter()
                    .map(|(mode, s)| {
                        (
                            mode.name(),
                            Json::obj(vec![
                                ("demotions", Json::int(s.demotions)),
                                ("evictions", Json::int(s.evictions)),
                                ("spill_write_bytes", Json::int(s.spill_write_bytes)),
                                ("spill_read_bytes", Json::int(s.spill_read_bytes)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "skew",
            Json::obj(vec![
                ("executors", Json::int(4)),
                ("tasks", Json::int(24)),
                ("straggler_factor", Json::int(8)),
                ("base_ms", Json::int(base_ms)),
                ("wave_min_s", Json::num(skew_wave.min)),
                ("wave_median_s", Json::num(skew_wave.median)),
                ("pull_min_s", Json::num(skew_pull.min)),
                ("pull_median_s", Json::num(skew_pull.median)),
                ("speedup_median", Json::num(skew_speedup)),
                ("gate_min", Json::num(skew_min)),
            ]),
        ),
        // Multi-job service throughput, gated on its own floor like the
        // skew cell — never part of the cross-PR workload band.
        (
            "server",
            Json::obj(vec![
                ("executors", Json::int(4)),
                ("jobs", Json::int(8)),
                ("io_wait_jobs", Json::int(2)),
                ("job_width", Json::int(4)),
                ("serial_min_s", Json::num(server_serial.min)),
                ("serial_median_s", Json::num(server_serial.median)),
                ("concurrent_min_s", Json::num(server_concurrent.min)),
                ("concurrent_median_s", Json::num(server_concurrent.median)),
                ("throughput_speedup", Json::num(server_speedup)),
                ("gate_min", Json::num(server_min)),
            ]),
        ),
        // Speculative-execution A/B against a hung straggler, gated on
        // its own floor like the skew cell.
        (
            "speculation",
            Json::obj(vec![
                ("executors", Json::int(4)),
                ("tasks", Json::int(24)),
                ("hang_factor", Json::int(25)),
                ("base_ms", Json::int(base_ms)),
                ("off_min_s", Json::num(spec_off.min)),
                ("off_median_s", Json::num(spec_off.median)),
                ("on_min_s", Json::num(spec_on.min)),
                ("on_median_s", Json::num(spec_on.median)),
                ("speedup_median", Json::num(spec_speedup)),
                ("gate_min", Json::num(spec_min)),
            ]),
        ),
        // Zero-copy shuffle A/B against the copying baseline, gated on
        // its own floor like the skew cell.
        (
            "zero_copy",
            Json::obj(vec![
                ("gate_scale", Json::num(gate_scale.factor)),
                ("maps", Json::int(ZC_MAPS as u64)),
                ("reducers", Json::int(ZC_REDUCERS as u64)),
                ("run_bytes", Json::int(zc_run_bytes as u64)),
                ("copying_min_s", Json::num(zc_copying.min)),
                ("copying_median_s", Json::num(zc_copying.median)),
                ("zero_copy_min_s", Json::num(zc_zero.min)),
                ("zero_copy_median_s", Json::num(zc_zero.median)),
                ("speedup_min", Json::num(zc_speedup)),
                ("gate_min", Json::num(zc_min)),
            ]),
        ),
        // Parallel-tracing A/B on the GC-bound cell. `cores` and
        // `effective_floor` say which gate ran: the real speedup floor
        // (multi-core) or the single-core parity floor, where only the
        // census assert carries structural weight.
        (
            "gc_parallel",
            Json::obj(vec![
                ("cores", Json::int(cores as u64)),
                ("threads", Json::int(gcpar_threads as u64)),
                ("nodes", Json::int(GC_NODES as u64)),
                ("marks", Json::int(GC_MARKS as u64)),
                ("census", Json::int(census_single)),
                ("single_min_s", Json::num(gcpar_single.min)),
                ("single_median_s", Json::num(gcpar_single.median)),
                ("parallel_min_s", Json::num(gcpar_par.min)),
                ("parallel_median_s", Json::num(gcpar_par.median)),
                ("speedup_min", Json::num(gcpar_speedup)),
                ("gate_min_env", Json::num(gcpar_min)),
                ("effective_floor", Json::num(gcpar_floor)),
            ]),
        ),
        // Concurrent-marking pause A/B: worst post-tenure STW pause of
        // a full collection vs a concurrent cycle, plus the
        // schedule-independent traced-work split backing the timing.
        (
            "concurrent_pause",
            Json::obj(vec![
                ("nodes", Json::int(GC_NODES as u64)),
                ("stw_census", Json::int(stw_census)),
                ("remark_census", Json::int(remark_census)),
                ("stw_max_pause_min_s", Json::num(conc_stw.min)),
                ("stw_max_pause_median_s", Json::num(conc_stw.median)),
                ("conc_max_pause_min_s", Json::num(conc_pause.min)),
                ("conc_max_pause_median_s", Json::num(conc_pause.median)),
                ("ratio_min", Json::num(conc_ratio)),
                ("gate_min", Json::num(conc_min)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_pretty() + "\n").expect("write BENCH record");
    println!("  wrote {out}");

    // --- compare against the newest prior baseline --------------------
    let mut failed = false;
    match newest_baseline(&dir, out_path.file_name().and_then(|n| n.to_str()).unwrap_or(&out)) {
        None => println!("  no prior BENCH_*.json baseline — recording only, gate passes"),
        Some((name, base)) => {
            println!("\n  vs {name} (tolerance {tolerance:.2}x):");
            println!("  {:<12} {:>10} {:>10} {:>7}  status", "cell", "base_s", "now_s", "ratio");
            for c in &cells {
                // Compare best-of-N (min) wall times; older baselines
                // that predate `min_s` fall back to the recorded median.
                let old_cell = base.get("workloads").and_then(|w| w.get(&c.key));
                let old = old_cell
                    .and_then(|cell| cell.get("min_s"))
                    .or_else(|| old_cell.and_then(|cell| cell.get("median_s")))
                    .and_then(|m| m.as_f64());
                match old {
                    None => println!(
                        "  {:<12} {:>10} {:>10.3} {:>7}  new cell",
                        c.key, "-", c.min_s, "-"
                    ),
                    Some(old) => {
                        let ratio = c.min_s / old.max(1e-9);
                        let status = if ratio > tolerance {
                            failed = true;
                            "REGRESSED"
                        } else {
                            "ok"
                        };
                        println!(
                            "  {:<12} {old:>10.3} {:>10.3} {ratio:>6.2}x  {status}",
                            c.key, c.min_s
                        );
                    }
                }
            }
        }
    }

    if skew_speedup < skew_min {
        eprintln!(
            "perf_gate: FAIL — pull scheduler speedup {skew_speedup:.2}x on the skew cell is \
             below the {skew_min:.2}x floor"
        );
        failed = true;
    }
    if server_speedup < server_min {
        eprintln!(
            "perf_gate: FAIL — concurrent server throughput {server_speedup:.2}x vs the \
             serial-sum baseline is below the {server_min:.2}x floor"
        );
        failed = true;
    }
    if spec_speedup < spec_min {
        eprintln!(
            "perf_gate: FAIL — speculation speedup {spec_speedup:.2}x on the hung-straggler \
             cell is below the {spec_min:.2}x floor"
        );
        failed = true;
    }
    if zc_speedup < zc_min {
        eprintln!(
            "perf_gate: FAIL — zero-copy shuffle speedup {zc_speedup:.2}x vs the copying \
             baseline is below the {zc_min:.2}x floor"
        );
        failed = true;
    }
    if gcpar_speedup < gcpar_floor {
        eprintln!(
            "perf_gate: FAIL — parallel mark speedup {gcpar_speedup:.2}x on the GC-bound cell \
             is below the {gcpar_floor:.2}x floor ({cores} core(s))"
        );
        failed = true;
    }
    if conc_ratio < conc_min {
        eprintln!(
            "perf_gate: FAIL — concurrent cycle's worst pause is {conc_ratio:.2}x under the STW \
             full-GC pause, below the {conc_min:.2}x floor"
        );
        failed = true;
    }
    if overhead > overhead_limit {
        eprintln!("perf_gate: FAIL — tracing overhead {overhead:.2}% exceeds {overhead_limit:.1}%");
        failed = true;
    }
    if failed {
        eprintln!("perf_gate: FAIL (see messages above)");
        std::process::exit(1);
    }
    println!("\nperf_gate: PASS");
}
