//! Figure 9 — caching-only LR and KMeans.
//!
//! * `--lifetime` (Figure 9a): the LabeledPoint census + GC time series.
//! * `--app lr` (Figure 9b) / `--app kmeans` (Figure 9c): execution time
//!   and cached-data size across dataset sizes that cross the heap
//!   capacity, for Spark / SparkSer / Deca.
//!
//! Expected shape (paper): small datasets → moderate gains; datasets at or
//! beyond capacity → Deca 16–41x with Spark full-GC-bound and swapping;
//! Deca's cache is smaller throughout (10-dim data; Figure 2's bloat).

use deca_apps::kmeans::{self, KmParams};
use deca_apps::logreg::{self, LrParams};
use deca_apps::report::{speedup, AppReport};
use deca_bench::{mb, secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_env();
    if args.iter().any(|a| a == "--lifetime") {
        run_lifetime(&scale);
        return;
    }
    let app = args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("lr")
        .to_string();
    match app.as_str() {
        "kmeans" => run_kmeans(&scale),
        _ => run_lr(&scale),
    }
}

/// Figure 9(a): LabeledPoint lifetimes during LR.
fn run_lifetime(scale: &Scale) {
    println!("# Figure 9(a): LR cached-RDD lifetimes");
    for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
        let mut p = LrParams::small(mode);
        p.points = scale.records(60_000);
        p.iterations = scale.lr_iterations;
        p.heap_bytes = 16 << 20;
        p.sample_timeline = true;
        let r = logreg::run(&p);
        println!("\n{} (exec {}s, gc {}s):", mode.name(), secs(r.exec()), secs(r.gc()));
        println!("t_ms\tlive_labeled_points\tcum_gc_ms");
        for s in &r.timeline.samples {
            println!(
                "{:.1}\t{}\t{:.2}",
                s.at.as_secs_f64() * 1e3,
                s.live_objects,
                s.cumulative_gc.as_secs_f64() * 1e3
            );
        }
    }
}

/// The dataset sweep shared by LR and KMeans: sizes from comfortably
/// fitting to over-capacity (the paper's 40GB→200GB on 30GB heaps).
fn sweep() -> Vec<(usize, &'static str)> {
    vec![
        (30_000, "0.4x"),
        (45_000, "0.6x"),
        (60_000, "0.85x"),
        (75_000, "1.05x"),
        (110_000, "1.5x"),
    ]
}

fn print_row(label: &str, reports: &[AppReport]) {
    table_row(&[
        label.to_string(),
        secs(reports[0].exec()),
        secs(reports[1].exec()),
        secs(reports[2].exec()),
        format!("{:.1}x", speedup(&reports[0], &reports[2])),
        mb(reports[0].cache_bytes),
        mb(reports[1].cache_bytes),
        mb(reports[2].cache_bytes),
        format!("{}/{}", reports[0].minor_gcs, reports[0].full_gcs),
    ]);
}

fn run_lr(scale: &Scale) {
    println!("# Figure 9(b): LR exec time + cached data across dataset sizes");
    println!("# size label = cache bytes / old-gen capacity (Spark layout)\n");
    table_header(&[
        "size",
        "Spark_s",
        "SparkSer_s",
        "Deca_s",
        "DecaVsSpark",
        "cacheSp_MB",
        "cacheSer_MB",
        "cacheDeca_MB",
        "SparkGCs",
    ]);
    for (points, label) in sweep() {
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = LrParams::small(mode);
            p.points = scale.records(points);
            p.iterations = scale.lr_iterations;
            p.heap_bytes = 16 << 20;
            p.storage_fraction = 0.62;
            reports.push(logreg::run(&p));
        }
        assert!((reports[0].checksum - reports[2].checksum).abs() < 1e-9);
        print_row(label, &reports);
    }
}

fn run_kmeans(scale: &Scale) {
    println!("# Figure 9(c): KMeans exec time + cached data across dataset sizes\n");
    table_header(&[
        "size",
        "Spark_s",
        "SparkSer_s",
        "Deca_s",
        "DecaVsSpark",
        "cacheSp_MB",
        "cacheSer_MB",
        "cacheDeca_MB",
        "SparkGCs",
    ]);
    for (points, label) in sweep() {
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = KmParams::small(mode);
            p.points = scale.records(points);
            p.iterations = scale.lr_iterations.min(10);
            p.heap_bytes = 16 << 20;
            p.storage_fraction = 0.62;
            reports.push(kmeans::run(&p));
        }
        assert!((reports[0].checksum - reports[2].checksum).abs() < 1e-6);
        print_row(label, &reports);
    }
}
