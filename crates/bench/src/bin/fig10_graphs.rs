//! Figure 10 — PageRank (`--app pr`, default) and ConnectedComponents
//! (`--app cc`) on three power-law graphs shaped like LiveJournal /
//! webbase-2001 / HiBench.
//!
//! Expected shape (paper): Deca 1.1–6.4x — less dramatic than LR because
//! each iteration's shuffle buffers are released and collected, relieving
//! memory stress; SparkSer ≈ Spark (the deser cost offsets the GC gain).

use deca_apps::concomp::{self, CcParams};
use deca_apps::pagerank::{self, PrParams};
use deca_apps::report::{speedup, AppReport};
use deca_bench::{mb, secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

/// Scaled-down analogues of Table 2's graphs (vertices, edges, label).
fn graphs(scale: &Scale) -> Vec<(usize, usize, &'static str)> {
    vec![
        (scale.records(4_800), scale.records(68_000), "LJ-like"),
        (scale.records(24_000), scale.records(200_000), "WB-like"),
        (scale.records(60_000), scale.records(400_000), "HB-like"),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .iter()
        .position(|a| a == "--app")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("pr")
        .to_string();
    let scale = Scale::from_env();

    match app.as_str() {
        "cc" => run_cc(&scale),
        _ => run_pr(&scale),
    }
}

fn print_row(label: &str, reports: &[AppReport]) {
    table_row(&[
        label.to_string(),
        secs(reports[0].exec()),
        secs(reports[1].exec()),
        secs(reports[2].exec()),
        format!("{:.1}x", speedup(&reports[0], &reports[2])),
        mb(reports[0].cache_bytes),
        mb(reports[1].cache_bytes),
        mb(reports[2].cache_bytes),
    ]);
}

fn run_pr(scale: &Scale) {
    println!("# Figure 10(a): PageRank on three graphs\n");
    table_header(&[
        "graph",
        "Spark_s",
        "SparkSer_s",
        "Deca_s",
        "DecaVsSpark",
        "cacheSp_MB",
        "cacheSer_MB",
        "cacheDeca_MB",
    ]);
    for (vertices, edges, label) in graphs(scale) {
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = PrParams::small(mode);
            p.vertices = vertices;
            p.edges = edges;
            p.iterations = scale.graph_iterations;
            p.heap_bytes = 48 << 20;
            reports.push(pagerank::run(&p));
        }
        assert!((reports[0].checksum - reports[2].checksum).abs() < 1e-6);
        print_row(label, &reports);
    }
}

fn run_cc(scale: &Scale) {
    println!("# Figure 10(b): ConnectedComponents on three graphs\n");
    table_header(&[
        "graph",
        "Spark_s",
        "SparkSer_s",
        "Deca_s",
        "DecaVsSpark",
        "cacheSp_MB",
        "cacheSer_MB",
        "cacheDeca_MB",
    ]);
    for (vertices, edges, label) in graphs(scale) {
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = CcParams::small(mode);
            p.vertices = vertices;
            p.edges = edges;
            p.max_iterations = scale.graph_iterations * 2;
            p.heap_bytes = 48 << 20;
            reports.push(concomp::run(&p));
        }
        assert_eq!(reports[0].checksum, reports[2].checksum);
        print_row(label, &reports);
    }
}
