//! Figure 8 — shuffling-only WordCount.
//!
//! * `--lifetime` (Figure 8a): the Tuple2 census and cumulative GC time
//!   over the run, Spark vs Deca.
//! * default (Figure 8b): execution times across dataset sizes × distinct
//!   key counts; Deca should win by 10–58%+ with the gap growing in the
//!   key count.

use deca_apps::report::speedup;
use deca_apps::wordcount::{self, run, WcParams};
use deca_bench::{secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

fn main() {
    let lifetime = std::env::args().any(|a| a == "--lifetime");
    let text = std::env::args().any(|a| a == "--text");
    let scale = Scale::from_env();
    if lifetime {
        run_lifetime(&scale);
    } else if text {
        run_text_exec(&scale);
    } else {
        run_exec(&scale);
    }
}

/// Text-keyed variant (`--text`): variable-size String keys, the
/// pointer-array shuffle of §4.3.2 on the Deca side.
fn run_text_exec(scale: &Scale) {
    println!("# Figure 8(b) variant: text-keyed WC (String keys)\n");
    table_header(&["size", "keys", "Spark_s", "Deca_s", "speedup"]);
    for &(words, label) in &[(300_000usize, "S"), (600_000, "M")] {
        for &(distinct, klabel) in &[(10_000usize, "10k"), (100_000, "100k")] {
            let mut reports = Vec::new();
            for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
                let p = WcParams {
                    words: scale.records(words),
                    distinct: scale.records(distinct),
                    partitions: 4,
                    heap_bytes: 32 << 20,
                    mode,
                    seed: 42,
                    sample_every: 0,
                };
                reports.push(wordcount::run_text(&p));
            }
            assert_eq!(reports[0].checksum, reports[1].checksum);
            table_row(&[
                label.to_string(),
                klabel.to_string(),
                secs(reports[0].exec()),
                secs(reports[1].exec()),
                format!("{:.2}x", speedup(&reports[0], &reports[1])),
            ]);
        }
    }
}

/// Figure 8(a): number of live Tuple2 objects and GC time over time.
fn run_lifetime(scale: &Scale) {
    println!("# Figure 8(a): WC shuffle-buffer lifetimes (smallest dataset)");
    for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
        let p = WcParams {
            words: scale.records(400_000),
            distinct: scale.records(40_000),
            partitions: 4,
            heap_bytes: 24 << 20,
            mode,
            seed: 42,
            sample_every: 10_000,
        };
        let r = run(&p);
        println!("\n{} (exec {}s, gc {}s):", mode.name(), secs(r.exec()), secs(r.gc()));
        println!("t_ms\tlive_tuple2\tcum_gc_ms");
        for s in &r.timeline.samples {
            println!(
                "{:.1}\t{}\t{:.2}",
                s.at.as_secs_f64() * 1e3,
                s.live_objects,
                s.cumulative_gc.as_secs_f64() * 1e3
            );
        }
    }
}

/// Figure 8(b): execution time across sizes and key counts.
fn run_exec(scale: &Scale) {
    println!("# Figure 8(b): WC execution time, Spark vs Deca");
    println!("# paper: Deca reduces execution time 10-58%, more with more keys\n");
    table_header(&["size", "keys", "Spark_s", "Deca_s", "speedup"]);
    // The paper's 50/100/150GB x {10M,100M} keys, scaled down.
    for &(words, label) in &[(400_000usize, "S"), (800_000, "M"), (1_200_000, "L")] {
        for &(distinct, klabel) in &[(10_000usize, "10k"), (200_000, "200k")] {
            let mut reports = Vec::new();
            for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
                let p = WcParams {
                    words: scale.records(words),
                    distinct: scale.records(distinct),
                    partitions: 4,
                    heap_bytes: 32 << 20,
                    mode,
                    seed: 42,
                    sample_every: 0,
                };
                reports.push(run(&p));
            }
            assert_eq!(reports[0].checksum, reports[1].checksum, "modes must agree");
            table_row(&[
                label.to_string(),
                klabel.to_string(),
                secs(reports[0].exec()),
                secs(reports[1].exec()),
                format!("{:.2}x", speedup(&reports[0], &reports[1])),
            ]);
        }
    }
}
