//! Multi-executor scaling (extension): the same WordCount job through
//! [`deca_engine::ClusterSession`] on 1, 2, and 4 executors — the
//! distributed dimension of the paper's 4-worker cluster.
//!
//! What this demonstrates: the partitioned job with a real all-to-all
//! exchange is *exact* (every mode returns the same checksum at every
//! width — tasks are pinned round-robin and the exchange preserves
//! map-task order), wall time drops as executors are added (on a
//! multi-core host), and the Deca-vs-Spark ratio persists per executor —
//! the GC pathology is a per-heap phenomenon.

use std::time::{Duration, Instant};

use deca_apps::wordcount::{run_local, WcParams};
use deca_bench::{secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# Extension: multi-executor WordCount ({} host cores)\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let params = |mode| {
        let mut p = WcParams::small(mode);
        p.words = scale.records(1_200_000);
        p.distinct = scale.records(100_000);
        // More tasks than the widest cluster: each wave multiplexes
        // round-robin, as Spark runs more partitions than cores.
        p.partitions = 8;
        p.heap_bytes = 24 << 20;
        p.seed = 11;
        p
    };

    // Reference result: every mode and every width must reproduce it.
    let expected = run_local(&params(ExecutionMode::Deca), 1).checksum;

    table_header(&["executors", "Spark_s", "SparkSer_s", "Deca_s", "Spark/Deca", "scaling"]);
    let mut spark_base = Duration::ZERO;
    for executors in [1usize, 2, 4] {
        let mut times = Vec::new();
        for mode in ExecutionMode::ALL {
            let t = Instant::now();
            let report = run_local(&params(mode), executors);
            times.push(t.elapsed());
            assert_eq!(
                report.checksum, expected,
                "{mode} on {executors} executors must match the reference"
            );
        }
        let (spark, ser, deca) = (times[0], times[1], times[2]);
        if executors == 1 {
            spark_base = spark;
        }
        table_row(&[
            executors.to_string(),
            secs(spark),
            secs(ser),
            secs(deca),
            format!("{:.2}x", spark.as_secs_f64() / deca.as_secs_f64()),
            format!("{:.2}x", spark_base.as_secs_f64() / spark.as_secs_f64()),
        ]);
    }
    println!("\nall checksums equal across modes and executor counts: OK");
}
