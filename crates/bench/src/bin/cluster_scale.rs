//! Multi-executor runs (extension): the same WordCount on 1, 2, and 4
//! executors in parallel OS threads, exchanging serialized shuffle bytes —
//! the distributed dimension of the paper's 4-worker cluster.
//!
//! What this demonstrates: partitioned execution with a real exchange is
//! *exact* (the distributed result equals the sequential reference at
//! every width) and the Deca-vs-Spark ratio persists per executor — the GC
//! pathology is a per-heap phenomenon. Wall-time scaling itself depends on
//! the host's core count (a single-core host time-slices the executors).

use deca_bench::{secs, table_header, table_row, Scale};
use deca_core::DecaHashShuffle;
use deca_engine::cluster::{exchange, partition_of};
use deca_engine::record::HeapRecord;
use deca_engine::{ExecutionMode, ExecutorConfig, LocalCluster, SparkHashShuffle};

fn main() {
    let scale = Scale::from_env();
    let words: Vec<i64> =
        deca_apps::datagen::zipf_words(scale.records(1_200_000), scale.records(100_000), 11);

    println!(
        "# Extension: multi-executor WordCount ({} host cores)\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    table_header(&["executors", "Spark_s", "Deca_s", "speedup"]);
    let expected = reference_checksum(&words);
    for executors in [1usize, 2, 4] {
        let spark = run(&words, executors, ExecutionMode::Spark);
        let deca = run(&words, executors, ExecutionMode::Deca);
        assert_eq!(spark.1, expected, "Spark result");
        assert_eq!(deca.1, expected, "Deca result");
        table_row(&[
            executors.to_string(),
            secs(spark.0),
            secs(deca.0),
            format!("{:.2}x", spark.0.as_secs_f64() / deca.0.as_secs_f64()),
        ]);
    }
}

fn reference_checksum(words: &[i64]) -> i64 {
    let mut counts = std::collections::HashMap::new();
    for &w in words {
        *counts.entry(w).or_insert(0i64) += 1;
    }
    counts.iter().map(|(k, v)| (k + 1) * v).sum()
}

fn run(words: &[i64], executors: usize, mode: ExecutionMode) -> (std::time::Duration, i64) {
    let cfg = ExecutorConfig::new(mode, 24 << 20)
        .spill_dir(std::env::temp_dir().join("deca-cluster-scale"));
    let mut cluster = LocalCluster::uniform(executors, cfg);
    let parts: Vec<Vec<i64>> = {
        let mut out: Vec<Vec<i64>> = (0..executors).map(|_| Vec::new()).collect();
        for (i, &w) in words.iter().enumerate() {
            out[i % executors].push(w);
        }
        out
    };

    let t = std::time::Instant::now();
    let map_outputs: Vec<Vec<Vec<u8>>> = cluster.par_run(|i, e| {
        e.run_task(format!("map-{i}"), |e| match mode {
            ExecutionMode::Deca => {
                let mut buf = DecaHashShuffle::new(&mut e.mm, 8, 8);
                for &w in &parts[i] {
                    buf.insert(&mut e.mm, &mut e.heap, &w.to_le_bytes(), &1i64.to_le_bytes(), add)
                        .expect("combine");
                }
                let mut out: Vec<Vec<u8>> = (0..executors).map(|_| Vec::new()).collect();
                buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    let key = i64::from_le_bytes(k[..8].try_into().unwrap());
                    let r = partition_of(key as u64, executors);
                    out[r].extend_from_slice(k);
                    out[r].extend_from_slice(v);
                })
                .expect("scan");
                buf.release(&mut e.mm, &mut e.heap);
                out
            }
            _ => {
                let pair_classes = <(i64, i64) as HeapRecord>::register(&mut e.heap);
                let mut buf: SparkHashShuffle<i64, i64> =
                    SparkHashShuffle::new(&mut e.heap).expect("buffer");
                for &w in &parts[i] {
                    let tuple = (w, 1i64);
                    let tobj = tuple.store(&mut e.heap, &pair_classes).expect("temp");
                    let ts = e.heap.push_stack(tobj);
                    let (k, v) = <(i64, i64) as HeapRecord>::load(
                        &e.heap,
                        &pair_classes,
                        e.heap.stack_ref(ts),
                    );
                    e.heap.truncate_stack(ts);
                    buf.insert(&mut e.heap, k, v, |a, b| a + b).expect("combine");
                }
                let mut out: Vec<Vec<u8>> = (0..executors).map(|_| Vec::new()).collect();
                for (k, v) in buf.drain(&e.heap) {
                    let r = partition_of(k as u64, executors);
                    e.kryo.serialize(&(k, v), &mut out[r]);
                }
                buf.release(&mut e.heap);
                out
            }
        })
    });

    let inputs = exchange(map_outputs);
    let partials: Vec<i64> = cluster.par_run(|i, e| {
        e.run_task(format!("reduce-{i}"), |e| match mode {
            ExecutionMode::Deca => {
                let mut buf = DecaHashShuffle::new(&mut e.mm, 8, 8);
                for bytes in &inputs[i] {
                    for rec in bytes.chunks_exact(16) {
                        buf.insert(&mut e.mm, &mut e.heap, &rec[..8], &rec[8..], add)
                            .expect("combine");
                    }
                }
                let mut sum = 0i64;
                buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    sum += (i64::from_le_bytes(k[..8].try_into().unwrap()) + 1)
                        * i64::from_le_bytes(v[..8].try_into().unwrap());
                })
                .expect("scan");
                buf.release(&mut e.mm, &mut e.heap);
                sum
            }
            _ => {
                let mut buf: SparkHashShuffle<i64, i64> =
                    SparkHashShuffle::new(&mut e.heap).expect("buffer");
                for bytes in &inputs[i] {
                    let mut pos = 0;
                    while pos < bytes.len() {
                        let (k, v): (i64, i64) = e.kryo.deserialize(bytes, &mut pos);
                        buf.insert(&mut e.heap, k, v, |a, b| a + b).expect("combine");
                    }
                }
                let mut sum = 0i64;
                buf.for_each(&e.heap, |k, v| sum += (k + 1) * v);
                buf.release(&mut e.heap);
                sum
            }
        })
    });
    (t.elapsed(), partials.iter().sum())
}

fn add(acc: &mut [u8], addv: &[u8]) {
    let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
    let b = i64::from_le_bytes(addv[..8].try_into().unwrap());
    acc[..8].copy_from_slice(&(a + b).to_le_bytes());
}
