//! Run every experiment harness in sequence and summarise pass/fail plus
//! the key shape checks — the one-command reproduction driver.
//!
//! ```console
//! $ cargo run --release -p deca-bench --bin run_all
//! ```
//!
//! Exits non-zero if any shape check fails. `DECA_BENCH_SCALE` scales the
//! datasets as usual.

use deca_apps::logreg::{self, LrParams};
use deca_apps::report::{gc_reduction, speedup};
use deca_apps::sql::{self, SqlParams, SqlSystem};
use deca_apps::wordcount::{self, WcParams};
use deca_bench::Scale;
use deca_engine::ExecutionMode;

struct Checks {
    passed: usize,
    failed: usize,
}

impl Checks {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("PASS  {name}: {detail}");
        } else {
            self.failed += 1;
            println!("FAIL  {name}: {detail}");
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut c = Checks { passed: 0, failed: 0 };

    // ---------------------------------------------------------- WC (Fig 8)
    {
        let mk = |mode| {
            let mut p = WcParams::small(mode);
            p.words = scale.records(400_000);
            p.distinct = scale.records(50_000);
            wordcount::run(&p)
        };
        let spark = mk(ExecutionMode::Spark);
        let deca = mk(ExecutionMode::Deca);
        c.check(
            "fig8/wc-correct",
            spark.checksum == deca.checksum,
            format!("checksums {} vs {}", spark.checksum, deca.checksum),
        );
        c.check(
            "fig8/wc-deca-wins",
            deca.exec() < spark.exec(),
            format!(
                "Deca {:.3}s vs Spark {:.3}s",
                deca.exec().as_secs_f64(),
                spark.exec().as_secs_f64()
            ),
        );
    }

    // ------------------------------------------------------- LR (Fig 9b)
    {
        let mk = |mode, points| {
            let mut p = LrParams::small(mode);
            p.points = scale.records(points);
            p.iterations = scale.lr_iterations;
            p.heap_bytes = 16 << 20;
            p.storage_fraction = 0.62;
            logreg::run(&p)
        };
        // Fitting regime.
        let spark_fit = mk(ExecutionMode::Spark, 30_000);
        let ser_fit = mk(ExecutionMode::SparkSer, 30_000);
        // Saturated regime.
        let spark_sat = mk(ExecutionMode::Spark, 66_000);
        let ser_sat = mk(ExecutionMode::SparkSer, 66_000);
        let deca_sat = mk(ExecutionMode::Deca, 66_000);

        c.check(
            "fig9b/full-gcs-appear-at-saturation",
            spark_fit.full_gcs == 0 && spark_sat.full_gcs > 5,
            format!("full GCs {} -> {}", spark_fit.full_gcs, spark_sat.full_gcs),
        );
        c.check(
            "fig9b/sparkser-crossover",
            ser_fit.exec() > spark_fit.exec() && ser_sat.exec() < spark_sat.exec(),
            format!(
                "fit: Ser {:.3} vs Spark {:.3}; sat: Ser {:.3} vs Spark {:.3}",
                ser_fit.exec().as_secs_f64(),
                spark_fit.exec().as_secs_f64(),
                ser_sat.exec().as_secs_f64(),
                spark_sat.exec().as_secs_f64()
            ),
        );
        c.check(
            "fig9b/deca-speedup-saturated",
            speedup(&spark_sat, &deca_sat) > 10.0,
            format!("{:.1}x", speedup(&spark_sat, &deca_sat)),
        );
        c.check(
            "table3/gc-reduction",
            gc_reduction(&spark_sat, &deca_sat) > 0.975,
            format!("{:.2}%", gc_reduction(&spark_sat, &deca_sat) * 100.0),
        );
        c.check(
            "fig9b/cache-ordering",
            spark_sat.cache_bytes > deca_sat.cache_bytes,
            format!("Spark {} vs Deca {} bytes", spark_sat.cache_bytes, deca_sat.cache_bytes),
        );
    }

    // -------------------------------------------------------- SQL (Table 6)
    {
        let mk = |system| {
            let mut p = SqlParams::small(system);
            p.uservisits_rows = scale.records(300_000);
            p.groups = scale.records(20_000);
            sql::run_query2(&p)
        };
        let spark = mk(SqlSystem::Spark);
        let sparksql = mk(SqlSystem::SparkSql);
        let deca = mk(SqlSystem::Deca);
        c.check(
            "table6/q2-correct",
            (spark.checksum - deca.checksum).abs() < 1e-6
                && (sparksql.checksum - deca.checksum).abs() < 1e-6,
            "checksums agree".to_string(),
        );
        c.check(
            "table6/q2-deca-matches-sparksql",
            deca.exec().as_secs_f64() < 2.0 * sparksql.exec().as_secs_f64()
                && deca.exec() < spark.exec(),
            format!(
                "Spark {:.3}s, SparkSQL {:.3}s, Deca {:.3}s",
                spark.exec().as_secs_f64(),
                sparksql.exec().as_secs_f64(),
                deca.exec().as_secs_f64()
            ),
        );
        c.check(
            "table6/q2-cache-ordering",
            spark.cache_bytes > deca.cache_bytes && deca.cache_bytes > sparksql.cache_bytes,
            format!(
                "Spark {} > Deca {} > SparkSQL {}",
                spark.cache_bytes, deca.cache_bytes, sparksql.cache_bytes
            ),
        );
    }

    println!("\n{} passed, {} failed", c.passed, c.failed);
    if c.failed > 0 {
        std::process::exit(1);
    }
}
