//! Table 6 — the two exploratory SQL queries on Spark, Spark SQL
//! (columnar simulation), and Deca.
//!
//! Expected shape (paper): Query 1 (small table, simple filter) — all
//! three roughly equal, Spark's GC slightly higher but negligible.
//! Query 2 (larger table, GROUP BY aggregate) — Spark GC-bound with the
//! biggest cache; Deca ≈ Spark SQL at ~2x Spark, with about half the
//! cache.

use deca_apps::sql::{run_query1, run_query2, run_query3, SqlParams, SqlSystem};
use deca_bench::{mb, secs, table_header, table_row, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("# Table 6: exploratory SQL queries\n");
    table_header(&["query", "system", "exec_s", "gc_s", "cache_MB"]);

    let mut q1_checks = Vec::new();
    for system in SqlSystem::ALL {
        let mut p = SqlParams::small(system);
        p.rankings_rows = scale.records(200_000);
        p.uservisits_rows = scale.records(400_000);
        p.groups = scale.records(30_000);
        p.heap_bytes = 48 << 20;
        let r = run_query1(&p);
        q1_checks.push(r.checksum);
        table_row(&[
            "Q1".into(),
            system.name().into(),
            secs(r.exec()),
            secs(r.gc()),
            mb(r.cache_bytes),
        ]);
    }
    assert_eq!(q1_checks[0], q1_checks[1]);
    assert_eq!(q1_checks[1], q1_checks[2]);

    let mut q2_checks = Vec::new();
    for system in SqlSystem::ALL {
        let mut p = SqlParams::small(system);
        p.rankings_rows = scale.records(200_000);
        p.uservisits_rows = scale.records(400_000);
        p.groups = scale.records(30_000);
        p.heap_bytes = 48 << 20;
        let r = run_query2(&p);
        q2_checks.push(r.checksum);
        table_row(&[
            "Q2".into(),
            system.name().into(),
            secs(r.exec()),
            secs(r.gc()),
            mb(r.cache_bytes),
        ]);
    }
    assert!((q2_checks[0] - q2_checks[2]).abs() < 1e-6);
    assert!((q2_checks[1] - q2_checks[2]).abs() < 1e-6);

    // Extension: the suite's join query (not reported in the paper's
    // Table 6; exercises §6.5's join discussion).
    let mut q3_checks = Vec::new();
    for system in SqlSystem::ALL {
        let mut p = SqlParams::small(system);
        p.rankings_rows = scale.records(200_000);
        p.uservisits_rows = scale.records(400_000);
        p.groups = scale.records(30_000);
        p.heap_bytes = 64 << 20;
        let r = run_query3(&p);
        q3_checks.push(r.checksum);
        table_row(&[
            "Q3(ext)".into(),
            system.name().into(),
            secs(r.exec()),
            secs(r.gc()),
            mb(r.cache_bytes),
        ]);
    }
    let tol = 1e-6 * q3_checks[2].abs().max(1.0);
    assert!((q3_checks[0] - q3_checks[2]).abs() < tol);
    assert!((q3_checks[1] - q3_checks[2]).abs() < tol);
}
