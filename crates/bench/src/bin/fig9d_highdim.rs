//! Figure 9(d) — LR and KMeans on high-dimensional ("Amazon image")
//! vectors.
//!
//! With 4096-dim feature arrays, object headers are a negligible fraction
//! of each record, so Spark's and Deca's cache sizes converge and the
//! speedups shrink to the paper's 1.2–5.3x (the GC still traces one object
//! graph per point, but there are far fewer points per byte).

use deca_apps::kmeans::{self, KmParams};
use deca_apps::logreg::{self, LrParams};
use deca_apps::report::speedup;
use deca_bench::{mb, secs, table_header, table_row, Scale};
use deca_engine::ExecutionMode;

fn main() {
    let scale = Scale::from_env();
    // 4096-dim like the Amazon dataset; scale the *dimension* down only if
    // the scale factor is fractional.
    let dims = if scale.factor < 1.0 { 512 } else { 4096 };
    println!("# Figure 9(d): high-dimensional vectors ({dims} dims)\n");
    table_header(&[
        "app",
        "size",
        "Spark_s",
        "SparkSer_s",
        "Deca_s",
        "DecaVsSpark",
        "cacheSp_MB",
        "cacheDeca_MB",
    ]);

    for &(points, label) in &[(250usize, "small"), (400, "large")] {
        let points = scale.records(points).max(50);
        // ---- LR
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = LrParams::small(mode);
            p.points = points;
            p.dims = dims;
            p.iterations = 5;
            p.heap_bytes = 24 << 20;
            p.page_size = Some(256 << 10); // big records need big pages
            p.partitions = 2;
            reports.push(logreg::run(&p));
        }
        assert!((reports[0].checksum - reports[2].checksum).abs() < 1e-9);
        table_row(&[
            "LR".into(),
            label.into(),
            secs(reports[0].exec()),
            secs(reports[1].exec()),
            secs(reports[2].exec()),
            format!("{:.1}x", speedup(&reports[0], &reports[2])),
            mb(reports[0].cache_bytes),
            mb(reports[2].cache_bytes),
        ]);

        // ---- KMeans
        let mut reports = Vec::new();
        for mode in ExecutionMode::ALL {
            let mut p = KmParams::small(mode);
            p.points = points;
            p.dims = dims;
            p.clusters = 8;
            p.iterations = 4;
            p.heap_bytes = 24 << 20;
            p.page_size = Some(256 << 10);
            p.partitions = 2;
            reports.push(kmeans::run(&p));
        }
        assert!((reports[0].checksum - reports[2].checksum).abs() < 1e-6);
        table_row(&[
            "KMeans".into(),
            label.into(),
            secs(reports[0].exec()),
            secs(reports[1].exec()),
            secs(reports[2].exec()),
            format!("{:.1}x", speedup(&reports[0], &reports[2])),
            mb(reports[0].cache_bytes),
            mb(reports[2].cache_bytes),
        ]);
    }
    println!("\n# expected: cacheSp ~= cacheDeca (headers negligible at 4096 dims),");
    println!("# speedups much smaller than Figure 9(b)'s saturated cells");
}
