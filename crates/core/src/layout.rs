//! The layout compiler: flattening a UDT's static object reference graph
//! into byte offsets (Figure 2 / Appendix B).
//!
//! For a decomposed SFST, every reference and object header is discarded
//! and the primitive leaves are laid out contiguously in declaration order.
//! The paper's transformed code accesses `object start offset + relative
//! field offset`; [`Layout`] computes exactly those relative offsets from a
//! `deca-udt` type descriptor, given concrete lengths for the fixed-length
//! arrays (the runtime optimizer knows them — Appendix A's hybrid design).
//!
//! The compiled layout is used by tests and examples to demonstrate the
//! transformation, and by the generic cache path to locate fields inside
//! page segments without materialising objects.

use std::collections::HashMap;

use deca_udt::{ArrayId, PrimKind, TypeRef, TypeRegistry};

/// One primitive leaf of the flattened object graph.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldSlot {
    /// Dotted path from the root object, e.g. `features.data[3]`.
    pub path: String,
    pub kind: PrimKind,
    /// Byte offset from the start of the object's segment.
    pub offset: usize,
}

/// Errors preventing layout compilation.
#[derive(Debug, PartialEq)]
pub enum LayoutError {
    /// An array's length was not supplied (the type is not SFST here).
    UnknownArrayLength(ArrayId),
    /// The type graph is recursive.
    Recursive,
    /// A field's type-set has more than one member: the layout is not
    /// statically determined (the paper would not decompose it as SFST).
    PolymorphicField(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::UnknownArrayLength(a) => {
                write!(f, "no fixed length supplied for array type #{}", a.0)
            }
            LayoutError::Recursive => write!(f, "recursively-defined type"),
            LayoutError::PolymorphicField(p) => {
                write!(f, "field {p} has a polymorphic type-set")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A compiled SFST layout: total size plus every leaf's offset.
#[derive(Clone, Debug)]
pub struct Layout {
    pub size: usize,
    pub slots: Vec<FieldSlot>,
    by_path: HashMap<String, usize>,
}

impl Layout {
    /// Compile the layout of `t`, resolving fixed-length arrays through
    /// `array_lens`.
    pub fn compile(
        reg: &TypeRegistry,
        t: TypeRef,
        array_lens: &HashMap<ArrayId, usize>,
    ) -> Result<Layout, LayoutError> {
        Self::compile_inner(reg, t, array_lens, false)
    }

    /// Compile with Appendix B's **field reordering**: within each UDT,
    /// fields whose sizes are statically determinable (primitives and
    /// SFST sub-objects) are laid out *before* fixed-length arrays and
    /// other length-dependent fields, "so more field offset values can be
    /// determined" as compile-time constants — i.e. they do not depend on
    /// any array length resolved only at runtime.
    pub fn compile_reordered(
        reg: &TypeRegistry,
        t: TypeRef,
        array_lens: &HashMap<ArrayId, usize>,
    ) -> Result<Layout, LayoutError> {
        Self::compile_inner(reg, t, array_lens, true)
    }

    fn compile_inner(
        reg: &TypeRegistry,
        t: TypeRef,
        array_lens: &HashMap<ArrayId, usize>,
        reorder: bool,
    ) -> Result<Layout, LayoutError> {
        let mut slots = Vec::new();
        let mut visiting = Vec::new();
        let size =
            flatten(reg, t, array_lens, String::new(), 0, &mut slots, &mut visiting, reorder)?;
        let by_path = slots.iter().enumerate().map(|(i, s)| (s.path.clone(), i)).collect();
        Ok(Layout { size, slots, by_path })
    }

    /// Offset of the leaf at `path` (e.g. `"features.data[0]"`).
    pub fn offset_of(&self, path: &str) -> Option<usize> {
        self.by_path.get(path).map(|&i| self.slots[i].offset)
    }

    /// Number of leading slots whose offsets are independent of any array
    /// length (the "determinable" prefix Appendix B maximises).
    pub fn determinable_prefix(&self, reg: &TypeRegistry, t: TypeRef) -> usize {
        // A slot's offset is determinable iff no array-dependent slot
        // precedes it. Array-dependent slots have paths containing "[".
        let _ = (reg, t);
        let mut n = 0;
        for s in &self.slots {
            if s.path.contains('[') {
                break;
            }
            n += 1;
        }
        n
    }
}

#[allow(clippy::too_many_arguments)]
fn flatten(
    reg: &TypeRegistry,
    t: TypeRef,
    array_lens: &HashMap<ArrayId, usize>,
    path: String,
    base: usize,
    slots: &mut Vec<FieldSlot>,
    visiting: &mut Vec<TypeRef>,
    reorder: bool,
) -> Result<usize, LayoutError> {
    if visiting.contains(&t) {
        return Err(LayoutError::Recursive);
    }
    match t {
        TypeRef::Prim(p) => {
            slots.push(FieldSlot { path, kind: p, offset: base });
            Ok(p.byte_size())
        }
        TypeRef::Udt(u) => {
            visiting.push(t);
            let mut order: Vec<usize> = (0..reg.udt(u).fields.len()).collect();
            if reorder {
                // Appendix B: determinable-size fields first (stable sort
                // preserves declaration order within each class).
                order.sort_by_key(|&i| {
                    let f = &reg.udt(u).fields[i];
                    usize::from(f.type_set.len() != 1 || depends_on_array_len(reg, f.type_set[0]))
                });
            }
            let mut off = 0usize;
            for i in order {
                let f = &reg.udt(u).fields[i];
                if f.type_set.len() != 1 {
                    return Err(LayoutError::PolymorphicField(join_path(&path, &f.name)));
                }
                let sub = join_path(&path, &f.name);
                off += flatten(
                    reg,
                    f.type_set[0],
                    array_lens,
                    sub,
                    base + off,
                    slots,
                    visiting,
                    reorder,
                )?;
            }
            visiting.pop();
            Ok(off)
        }
        TypeRef::Array(a) => {
            let len = *array_lens.get(&a).ok_or(LayoutError::UnknownArrayLength(a))?;
            let elem = &reg.array(a).elem;
            if elem.type_set.len() != 1 {
                return Err(LayoutError::PolymorphicField(format!("{path}[]")));
            }
            visiting.push(t);
            let mut off = 0usize;
            for i in 0..len {
                let sub = format!("{path}[{i}]");
                off += flatten(
                    reg,
                    elem.type_set[0],
                    array_lens,
                    sub,
                    base + off,
                    slots,
                    visiting,
                    reorder,
                )?;
            }
            visiting.pop();
            Ok(off)
        }
    }
}

/// Whether a type's flattened size depends on an array length (making the
/// offsets of anything placed after it runtime-dependent).
fn depends_on_array_len(reg: &TypeRegistry, t: TypeRef) -> bool {
    match t {
        TypeRef::Prim(_) => false,
        TypeRef::Array(_) => true,
        TypeRef::Udt(u) => reg
            .udt(u)
            .fields
            .iter()
            .any(|f| f.type_set.len() != 1 || depends_on_array_len(reg, f.type_set[0])),
    }
}

fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_udt::fixtures;

    /// Figure 2: the LabeledPoint byte layout is
    /// `[label][data[0]]...[data[D-1]]` — references, headers, and the
    /// offset/stride/length ints of DenseVector flattened in field order.
    #[test]
    fn labeled_point_layout_matches_figure_2() {
        let f = fixtures::lr_types();
        let mut lens = HashMap::new();
        lens.insert(f.double_array, 3usize);
        let layout = Layout::compile(&f.registry, TypeRef::Udt(f.labeled_point), &lens).unwrap();
        // label(8) + data 3*8 + offset/stride/length 3*4 = 44
        assert_eq!(layout.size, 8 + 24 + 12);
        assert_eq!(layout.offset_of("label"), Some(0));
        assert_eq!(layout.offset_of("features.data[0]"), Some(8));
        assert_eq!(layout.offset_of("features.data[2]"), Some(24));
        assert_eq!(layout.offset_of("features.offset"), Some(32));
        assert_eq!(layout.offset_of("features.length"), Some(40));
        assert_eq!(layout.offset_of("nope"), None);
    }

    #[test]
    fn field_reordering_moves_determinable_fields_first() {
        use deca_udt::{FieldDecl, UdtDescriptor};
        // Mixed { arr: double[], tail_a: i64, tail_b: f64 }: declared
        // order puts the prims behind the array, so their offsets depend
        // on the runtime length. Reordered, they come first.
        let mut reg = TypeRegistry::new();
        let darr = reg.define_array("double[]", TypeRef::Prim(PrimKind::F64));
        let mixed = reg.define_udt(UdtDescriptor {
            name: "Mixed".into(),
            fields: vec![
                FieldDecl::new("arr", TypeRef::Array(darr)).final_(),
                FieldDecl::new("tail_a", TypeRef::Prim(PrimKind::I64)),
                FieldDecl::new("tail_b", TypeRef::Prim(PrimKind::F64)),
            ],
        });
        let mut lens = HashMap::new();
        lens.insert(darr, 4usize);

        let plain = Layout::compile(&reg, TypeRef::Udt(mixed), &lens).unwrap();
        assert_eq!(plain.offset_of("tail_a"), Some(32), "behind the array");
        assert_eq!(plain.determinable_prefix(&reg, TypeRef::Udt(mixed)), 0);

        let reordered = Layout::compile_reordered(&reg, TypeRef::Udt(mixed), &lens).unwrap();
        assert_eq!(reordered.offset_of("tail_a"), Some(0), "prims moved to the front");
        assert_eq!(reordered.offset_of("tail_b"), Some(8));
        assert_eq!(reordered.offset_of("arr[0]"), Some(16));
        assert_eq!(reordered.size, plain.size, "reordering never changes the size");
        assert_eq!(reordered.determinable_prefix(&reg, TypeRef::Udt(mixed)), 2);
    }

    #[test]
    fn reordering_is_stable_and_recursive() {
        use deca_udt::{FieldDecl, UdtDescriptor};
        let mut reg = TypeRegistry::new();
        let darr = reg.define_array("double[]", TypeRef::Prim(PrimKind::F64));
        let inner = reg.define_udt(UdtDescriptor {
            name: "Inner".into(),
            fields: vec![
                FieldDecl::new("data", TypeRef::Array(darr)).final_(),
                FieldDecl::new("len", TypeRef::Prim(PrimKind::I32)),
            ],
        });
        let outer = reg.define_udt(UdtDescriptor {
            name: "Outer".into(),
            fields: vec![
                FieldDecl::new("v", TypeRef::Udt(inner)),
                FieldDecl::new("a", TypeRef::Prim(PrimKind::I64)),
                FieldDecl::new("b", TypeRef::Prim(PrimKind::I64)),
            ],
        });
        let mut lens = HashMap::new();
        lens.insert(darr, 2usize);
        let r = Layout::compile_reordered(&reg, TypeRef::Udt(outer), &lens).unwrap();
        // a then b (stable), then the array-dependent subtree with its own
        // reordering (len before data).
        assert_eq!(r.offset_of("a"), Some(0));
        assert_eq!(r.offset_of("b"), Some(8));
        assert_eq!(r.offset_of("v.len"), Some(16));
        assert_eq!(r.offset_of("v.data[0]"), Some(20));
    }

    #[test]
    fn missing_array_length_is_an_error() {
        let f = fixtures::lr_types();
        let err = Layout::compile(&f.registry, TypeRef::Udt(f.labeled_point), &HashMap::new());
        assert_eq!(err.unwrap_err(), LayoutError::UnknownArrayLength(f.double_array));
    }

    #[test]
    fn recursive_type_is_an_error() {
        use deca_udt::{FieldDecl, UdtDescriptor};
        let mut reg = TypeRegistry::new();
        let node = reg.define_udt(UdtDescriptor {
            name: "Node".into(),
            fields: vec![FieldDecl::new("v", TypeRef::Prim(PrimKind::I64))],
        });
        reg.udt_mut(node).fields.push(FieldDecl::new("next", TypeRef::Udt(node)));
        let err = Layout::compile(&reg, TypeRef::Udt(node), &HashMap::new());
        assert_eq!(err.unwrap_err(), LayoutError::Recursive);
    }

    #[test]
    fn polymorphic_field_is_an_error() {
        use deca_udt::{FieldDecl, UdtDescriptor};
        let mut reg = TypeRegistry::new();
        let a = reg.define_udt(UdtDescriptor {
            name: "A".into(),
            fields: vec![FieldDecl::new("x", TypeRef::Prim(PrimKind::F64))],
        });
        let b = reg.define_udt(UdtDescriptor {
            name: "B".into(),
            fields: vec![FieldDecl::new("x", TypeRef::Prim(PrimKind::I32))],
        });
        let h = reg.define_udt(UdtDescriptor {
            name: "H".into(),
            fields: vec![FieldDecl::new("v", TypeRef::Udt(a))
                .with_type_set(vec![TypeRef::Udt(a), TypeRef::Udt(b)])],
        });
        let err = Layout::compile(&reg, TypeRef::Udt(h), &HashMap::new());
        assert_eq!(err.unwrap_err(), LayoutError::PolymorphicField("v".into()));
    }
}
