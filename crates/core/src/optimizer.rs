//! The Deca optimizer (§5, Appendix A): classification + ownership →
//! per-container decomposition decisions.
//!
//! The paper implements a *hybrid* optimizer: a static analyzer extracts
//! UDT/UDF knowledge ahead of time, and a runtime optimizer intercepts each
//! submitted job — only jobs that actually run are analysed, avoiding path
//! explosion. Our engine does the same: when a job is submitted it hands
//! this module the job's phases, containers, and sharing relationships; the
//! optimizer returns a [`DecompositionPlan`] the executors follow.
//!
//! Decision rules:
//!
//! * contents classified SFST in the container's writing phase ⇒ decompose
//!   unframed (fixed segments);
//! * RFST ⇒ decompose framed (length-prefixed segments);
//! * VST in the writing phase but decomposable in every later phase, for a
//!   long-lived cache fed by a dying shuffle buffer ⇒ *decompose on copy*
//!   (the partially-decomposable scenario of §4.3.3, Figure 7b);
//! * otherwise keep objects on the managed heap;
//! * secondary containers of fully-decomposable objects share the primary's
//!   page group (reference counting) instead of copying (§4.3.3, Figure 7a);
//! * a container whose objects were re-constructed once is never
//!   re-decomposed (thrash avoidance, §4.3.2).

use std::collections::{HashMap, HashSet};

use deca_udt::{
    analyze_container_flow, assign_ownership, classify_phased, ContainerDecl, ContainerId,
    ContainerKind, JobPhases, MethodId, Program, SizeType, TypeRef, TypeRegistry,
};

/// A container as reported by the engine at job submission.
#[derive(Clone, Debug)]
pub struct ContainerInfo {
    pub id: ContainerId,
    pub kind: ContainerKind,
    /// Creation order within the stage (ownership rule 2).
    pub created_seq: u32,
    /// The runtime type of the records it holds.
    pub content: TypeRef,
    /// Index (into the job's phases) of the phase that writes it.
    pub write_phase: usize,
}

/// What the executors should do with one container's records.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContainerDecision {
    /// Decompose into fixed-size unframed segments (SFST).
    DecomposeSfst,
    /// Decompose into length-prefixed segments (RFST).
    DecomposeRfst,
    /// Keep objects on the heap while this container is being written, and
    /// decompose when they are copied into the downstream cache
    /// (§4.3.3's partially-decomposable case).
    DecomposeOnCopy,
    /// Reference the primary container's page group instead of storing
    /// anything (fully-decomposable secondary, §4.3.3).
    SharePrimary(ContainerId),
    /// Leave the objects on the managed heap.
    Keep(KeepReason),
}

/// Why a container was not decomposed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum KeepReason {
    /// The content type is a VST in every relevant phase.
    Variable,
    /// The content type is recursively defined.
    RecursivelyDefined,
    /// UDF variables are never decomposed (§4.3.2: short-living, cheap
    /// minor collections handle them).
    UdfVariables,
    /// The container was re-constructed once already (thrash avoidance).
    Reconstructed,
}

/// The optimizer's output: one decision per container.
#[derive(Debug, Default)]
pub struct DecompositionPlan {
    decisions: HashMap<ContainerId, ContainerDecision>,
}

impl DecompositionPlan {
    pub fn decision(&self, c: ContainerId) -> &ContainerDecision {
        &self.decisions[&c]
    }

    pub fn get(&self, c: ContainerId) -> Option<&ContainerDecision> {
        self.decisions.get(&c)
    }

    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

/// The runtime optimizer. Holds the static knowledge (type registry and
/// method IR) plus runtime thrash-avoidance state.
pub struct Optimizer<'a> {
    reg: &'a TypeRegistry,
    program: &'a Program,
    /// Containers whose records were re-constructed once: never decompose
    /// again (§4.3.2).
    reconstructed: HashSet<ContainerId>,
}

impl<'a> Optimizer<'a> {
    pub fn new(reg: &'a TypeRegistry, program: &'a Program) -> Optimizer<'a> {
        Optimizer { reg, program, reconstructed: HashSet::new() }
    }

    /// Record that a container's decomposed records had to be
    /// re-constructed (a later phase changed their data-sizes).
    pub fn note_reconstructed(&mut self, c: ContainerId) {
        self.reconstructed.insert(c);
    }

    /// Plan one job, deriving the object-population sharing from the IR's
    /// container writes (§4.3's points-to-based data-dependence graph)
    /// instead of requiring the engine to declare it.
    pub fn plan_with_flow(
        &self,
        phases: &JobPhases,
        containers: &[ContainerInfo],
        flow_entry: MethodId,
    ) -> DecompositionPlan {
        let flow = analyze_container_flow(self.program, flow_entry);
        let shared: Vec<Vec<ContainerId>> = flow
            .holders
            .values()
            .filter(|hs| hs.len() > 1)
            .map(|hs| hs.iter().copied().collect())
            .collect();
        self.plan(phases, containers, &shared)
    }

    /// Plan one job. `shared_groups` lists groups of object populations
    /// held by several containers (for primary/secondary resolution).
    pub fn plan(
        &self,
        phases: &JobPhases,
        containers: &[ContainerInfo],
        shared_groups: &[Vec<ContainerId>],
    ) -> DecompositionPlan {
        let targets: Vec<TypeRef> = containers.iter().map(|c| c.content).collect();
        let per_phase = classify_phased(self.reg, self.program, phases, &targets);

        // Ownership resolution for shared populations.
        let decls: Vec<ContainerDecl> = containers
            .iter()
            .map(|c| ContainerDecl { id: c.id, kind: c.kind, created_seq: c.created_seq })
            .collect();
        let mut secondary_of: HashMap<ContainerId, ContainerId> = HashMap::new();
        for holders in shared_groups {
            let o = assign_ownership(&decls, holders);
            for s in o.secondaries {
                secondary_of.insert(s, o.primary);
            }
        }

        let mut plan = DecompositionPlan::default();
        for c in containers {
            let decision = self.decide(c, &per_phase, &secondary_of, containers);
            plan.decisions.insert(c.id, decision);
        }
        plan
    }

    fn decide(
        &self,
        c: &ContainerInfo,
        per_phase: &[deca_udt::PhaseResult],
        secondary_of: &HashMap<ContainerId, ContainerId>,
        all: &[ContainerInfo],
    ) -> ContainerDecision {
        if c.kind == ContainerKind::UdfVariables {
            return ContainerDecision::Keep(KeepReason::UdfVariables);
        }
        if self.reconstructed.contains(&c.id) {
            return ContainerDecision::Keep(KeepReason::Reconstructed);
        }

        let write_class = per_phase
            .get(c.write_phase)
            .and_then(|p| p.of(c.content))
            .expect("container write phase classified");

        use deca_udt::Classification::*;
        let own = match write_class {
            RecurDef => return ContainerDecision::Keep(KeepReason::RecursivelyDefined),
            Sized(SizeType::StaticFixed) => ContainerDecision::DecomposeSfst,
            Sized(SizeType::RuntimeFixed) => ContainerDecision::DecomposeRfst,
            Sized(SizeType::Variable) => {
                // §4.3.3: a cache written by a dying short-lived container
                // can still be decomposed if later phases are fixed-size.
                let later_ok = c.kind == ContainerKind::CachedRdd
                    && per_phase.len() > c.write_phase + 1
                    && per_phase[c.write_phase + 1..]
                        .iter()
                        .all(|p| p.of(c.content).is_some_and(|cl| cl.is_decomposable()));
                if later_ok {
                    ContainerDecision::DecomposeOnCopy
                } else {
                    return ContainerDecision::Keep(KeepReason::Variable);
                }
            }
        };

        // Secondary of a fully-decomposable primary: share the page group.
        if let Some(&primary) = secondary_of.get(&c.id) {
            let primary_decomposable = all
                .iter()
                .find(|o| o.id == primary)
                .map(|o| {
                    per_phase
                        .get(o.write_phase)
                        .and_then(|p| p.of(o.content))
                        .is_some_and(|cl| cl.is_decomposable())
                })
                .unwrap_or(false);
            if primary_decomposable && own != ContainerDecision::DecomposeOnCopy {
                return ContainerDecision::SharePrimary(primary);
            }
        }
        own
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_udt::fixtures;

    #[test]
    fn lr_cache_is_decomposed_sfst() {
        let f = fixtures::lr_program();
        let opt = Optimizer::new(&f.types.registry, &f.program);
        let phases = JobPhases::new().phase("map", f.stage_entry);
        let cache = ContainerInfo {
            id: ContainerId(0),
            kind: ContainerKind::CachedRdd,
            created_seq: 0,
            content: TypeRef::Udt(f.types.labeled_point),
            write_phase: 0,
        };
        let plan = opt.plan(&phases, &[cache], &[]);
        assert_eq!(plan.decision(ContainerId(0)), &ContainerDecision::DecomposeSfst);
    }

    #[test]
    fn udf_variables_are_never_decomposed() {
        let f = fixtures::lr_program();
        let opt = Optimizer::new(&f.types.registry, &f.program);
        let phases = JobPhases::new().phase("map", f.stage_entry);
        let udf = ContainerInfo {
            id: ContainerId(1),
            kind: ContainerKind::UdfVariables,
            created_seq: 0,
            content: TypeRef::Udt(f.types.labeled_point),
            write_phase: 0,
        };
        let plan = opt.plan(&phases, &[udf], &[]);
        assert_eq!(
            plan.decision(ContainerId(1)),
            &ContainerDecision::Keep(KeepReason::UdfVariables)
        );
    }

    #[test]
    fn group_by_cache_decomposes_on_copy() {
        // §4.3.3 / Figure 7b: the shuffle buffer's content is VST while
        // combining; the downstream cache decomposes on copy.
        let f = fixtures::group_by_program();
        let opt = Optimizer::new(&f.registry, &f.program);
        let phases =
            JobPhases::new().phase("combine", f.build_entry).phase("iterate", f.read_entry);
        let shuffle = ContainerInfo {
            id: ContainerId(0),
            kind: ContainerKind::ShuffleBuffer,
            created_seq: 0,
            content: TypeRef::Udt(f.group),
            write_phase: 0,
        };
        let cache = ContainerInfo {
            id: ContainerId(1),
            kind: ContainerKind::CachedRdd,
            created_seq: 1,
            content: TypeRef::Udt(f.group),
            write_phase: 0,
        };
        let plan = opt.plan(&phases, &[shuffle, cache], &[]);
        assert_eq!(
            plan.decision(ContainerId(0)),
            &ContainerDecision::Keep(KeepReason::Variable),
            "shuffle buffer content is VST while combining"
        );
        assert_eq!(
            plan.decision(ContainerId(1)),
            &ContainerDecision::DecomposeOnCopy,
            "cache decomposes when the dying shuffle's output is copied in"
        );
    }

    #[test]
    fn secondary_cache_shares_primary_group() {
        // Two cached RDDs holding the same SFST objects: the later one
        // becomes a secondary sharing the primary's pages.
        let f = fixtures::lr_program();
        let opt = Optimizer::new(&f.types.registry, &f.program);
        let phases = JobPhases::new().phase("map", f.stage_entry);
        let a = ContainerInfo {
            id: ContainerId(0),
            kind: ContainerKind::CachedRdd,
            created_seq: 0,
            content: TypeRef::Udt(f.types.labeled_point),
            write_phase: 0,
        };
        let b = ContainerInfo { id: ContainerId(1), created_seq: 1, ..a.clone() };
        let plan = opt.plan(&phases, &[a, b], &[vec![ContainerId(0), ContainerId(1)]]);
        assert_eq!(plan.decision(ContainerId(0)), &ContainerDecision::DecomposeSfst);
        assert_eq!(plan.decision(ContainerId(1)), &ContainerDecision::SharePrimary(ContainerId(0)));
    }

    /// End-to-end with the derived flow: a stage whose IR emits the same
    /// LabeledPoint population to a shuffle buffer and a cache; the plan
    /// must make the cache a secondary of the shuffle buffer without any
    /// manually-declared sharing.
    #[test]
    fn plan_with_flow_derives_sharing_from_ir() {
        use deca_udt::{Expr, Method, Program, Stmt, VarId};
        let base = fixtures::lr_program();
        // Extend the LR program with an explicit container-flow stage.
        let mut program = Program::new();
        for i in 0..base.program.len() {
            program.add(base.program.method(deca_udt::MethodId(i as u32)).clone());
        }
        let shuffle_id = ContainerId(0);
        let cache_id = ContainerId(1);
        let flow_entry = program.add(
            Method::new("stage-with-containers")
                .stmt(Stmt::NewObject { dst: VarId(0), ty: base.types.labeled_point })
                .stmt(Stmt::WriteContainer { container: shuffle_id, value: VarId(0) })
                .stmt(Stmt::Assign(VarId(1), Expr::var(0)))
                .stmt(Stmt::WriteContainer { container: cache_id, value: VarId(1) }),
        );

        let opt = Optimizer::new(&base.types.registry, &program);
        let phases = JobPhases::new().phase("map", base.stage_entry);
        let shuffle = ContainerInfo {
            id: shuffle_id,
            kind: ContainerKind::ShuffleBuffer,
            created_seq: 0,
            content: TypeRef::Udt(base.types.labeled_point),
            write_phase: 0,
        };
        let cache = ContainerInfo {
            id: cache_id,
            kind: ContainerKind::CachedRdd,
            created_seq: 1,
            content: TypeRef::Udt(base.types.labeled_point),
            write_phase: 0,
        };
        let plan = opt.plan_with_flow(&phases, &[shuffle, cache], flow_entry);
        assert_eq!(plan.decision(shuffle_id), &ContainerDecision::DecomposeSfst);
        assert_eq!(
            plan.decision(cache_id),
            &ContainerDecision::SharePrimary(shuffle_id),
            "sharing derived from the IR, not declared"
        );
    }

    #[test]
    fn reconstruction_disables_future_decomposition() {
        let f = fixtures::lr_program();
        let mut opt = Optimizer::new(&f.types.registry, &f.program);
        opt.note_reconstructed(ContainerId(0));
        let phases = JobPhases::new().phase("map", f.stage_entry);
        let cache = ContainerInfo {
            id: ContainerId(0),
            kind: ContainerKind::CachedRdd,
            created_seq: 0,
            content: TypeRef::Udt(f.types.labeled_point),
            write_phase: 0,
        };
        let plan = opt.plan(&phases, &[cache], &[]);
        assert_eq!(
            plan.decision(ContainerId(0)),
            &ContainerDecision::Keep(KeepReason::Reconstructed)
        );
    }
}
