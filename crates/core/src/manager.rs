//! The Deca memory manager: page-group allocation, reference counting, and
//! LRU swapping of page groups (§5, Appendix C).
//!
//! Containers do not own `PageGroup`s directly; they hold [`GroupId`]s.
//! Sharing a group between a primary and a secondary container is a
//! [`MemoryManager::retain`] (the paper's "generates a copy of the
//! page-info ... reference-counting method", §4.3.3); destroying a
//! container releases its reference, and the group's space returns to the
//! heap budget the moment the count reaches zero — no tracing involved.

use std::path::PathBuf;

use deca_heap::{Heap, OomError};

use crate::group::{PageGroup, SegPtr};
use crate::swap::SpillStore;

/// Handle to a page group managed by a [`MemoryManager`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// The raw slot index (stable while the group lives; used in spill
    /// file names and diagnostics).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Errors from page-group operations.
#[derive(Debug)]
pub enum MemError {
    /// The heap cannot budget the pages even after eviction.
    Oom(OomError),
    /// Spill I/O failed.
    Io(std::io::Error),
}

impl From<OomError> for MemError {
    fn from(e: OomError) -> Self {
        MemError::Oom(e)
    }
}

impl From<std::io::Error> for MemError {
    fn from(e: std::io::Error) -> Self {
        MemError::Io(e)
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Oom(e) => write!(f, "memory manager: {e}"),
            MemError::Io(e) => write!(f, "memory manager spill I/O: {e}"),
        }
    }
}

impl std::error::Error for MemError {}

struct Entry {
    group: PageGroup,
    refcount: u32,
    /// LRU clock stamp (bumped on access).
    last_used: u64,
    /// Whether the group's pages are currently on disk.
    swapped: bool,
    /// May this group be swapped out? (Shuffle buffers pin their groups;
    /// Appendix C: "it pauses the shuffling and triggers cache block
    /// eviction" instead.)
    swappable: bool,
}

/// One page group reclaimed at refcount zero — the observable record of a
/// lifetime-based release (no tracing involved), drained by the engine's
/// run trace via [`MemoryManager::take_release_events`].
#[derive(Copy, Clone, Debug)]
pub struct ReleaseEvent {
    /// Raw slot index of the released group.
    pub group: u32,
    /// Pages the group held when released.
    pub pages: usize,
    /// Footprint bytes returned to the heap budget.
    pub bytes: usize,
}

/// One shuffle run whose page ownership moved to a reducer — the
/// zero-copy sibling of [`ReleaseEvent`]: the pages left this executor's
/// custody without a byte copy (and without a release; the *consumer*
/// recycles them). Drained by the engine's run trace via
/// [`MemoryManager::take_handover_events`].
#[derive(Copy, Clone, Debug)]
pub struct HandoverEvent {
    /// Pages whose ownership moved.
    pub pages: usize,
    /// Payload bytes carried by those pages.
    pub bytes: usize,
}

/// The per-executor memory manager.
pub struct MemoryManager {
    entries: Vec<Option<Entry>>,
    free: Vec<usize>,
    clock: u64,
    page_size: usize,
    spill_dir: PathBuf,
    spill: SpillStore,
    /// Cumulative bytes written to / read from spill files.
    pub spill_write_bytes: u64,
    pub spill_read_bytes: u64,
    /// Number of swap-out / swap-in events.
    pub swap_outs: u64,
    pub swap_ins: u64,
    /// Record a [`ReleaseEvent`] per zero-refcount reclamation. Off by
    /// default so standalone managers never grow an unread log; the engine
    /// turns it on when executor tracing is enabled and drains it per task.
    pub log_releases: bool,
    release_events: Vec<ReleaseEvent>,
    handover_events: Vec<HandoverEvent>,
}

impl MemoryManager {
    /// Create a manager with the given page size; spill files go under
    /// `spill_dir` (a per-executor temp directory).
    pub fn new(page_size: usize, spill_dir: PathBuf) -> MemoryManager {
        MemoryManager {
            entries: Vec::new(),
            free: Vec::new(),
            clock: 0,
            page_size,
            spill_dir: spill_dir.clone(),
            spill: SpillStore::new(spill_dir),
            spill_write_bytes: 0,
            spill_read_bytes: 0,
            swap_outs: 0,
            swap_ins: 0,
            log_releases: false,
            release_events: Vec::new(),
            handover_events: Vec::new(),
        }
    }

    /// Drain the release log recorded since the last call (empty unless
    /// [`MemoryManager::log_releases`] is set).
    pub fn take_release_events(&mut self) -> Vec<ReleaseEvent> {
        std::mem::take(&mut self.release_events)
    }

    /// Record one zero-copy page hand-over (gated on the same
    /// [`MemoryManager::log_releases`] flag the release log uses — both
    /// are memory-lifecycle observability, on only under tracing).
    pub fn note_handover(&mut self, pages: usize, bytes: usize) {
        if self.log_releases {
            self.handover_events.push(HandoverEvent { pages, bytes });
        }
    }

    /// Drain the hand-over log recorded since the last call.
    pub fn take_handover_events(&mut self) -> Vec<HandoverEvent> {
        std::mem::take(&mut self.handover_events)
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The spill directory (shuffle run files live beside swap files).
    pub fn spill_dir(&self) -> &std::path::Path {
        &self.spill_dir
    }

    /// Create a fresh page group with reference count 1.
    pub fn create_group(&mut self) -> GroupId {
        self.create_group_with_page_size(self.page_size)
    }

    /// Create a group with a non-default page size (ablation support).
    pub fn create_group_with_page_size(&mut self, page_size: usize) -> GroupId {
        let entry = Entry {
            group: PageGroup::new(page_size),
            refcount: 1,
            last_used: self.tick(),
            swapped: false,
            swappable: true,
        };
        match self.free.pop() {
            Some(i) => {
                self.entries[i] = Some(entry);
                GroupId(i as u32)
            }
            None => {
                self.entries.push(Some(entry));
                GroupId((self.entries.len() - 1) as u32)
            }
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn entry(&self, id: GroupId) -> &Entry {
        self.entries[id.0 as usize].as_ref().expect("group released")
    }

    fn entry_mut(&mut self, id: GroupId) -> &mut Entry {
        self.entries[id.0 as usize].as_mut().expect("group released")
    }

    /// Share the group with another container (increment the refcount —
    /// the §4.3.3 shared page-info optimisation).
    pub fn retain(&mut self, id: GroupId) {
        self.entry_mut(id).refcount += 1;
    }

    /// Release one reference. At zero the group's pages are unregistered
    /// from the heap immediately — the lifetime-based reclamation.
    pub fn release(&mut self, id: GroupId, heap: &mut Heap) {
        // Page releases change old-generation occupancy, so they are a
        // natural point to retire a finished concurrent marking cycle.
        heap.poll_gc();
        let e = self.entry_mut(id);
        assert!(e.refcount > 0);
        e.refcount -= 1;
        if e.refcount == 0 {
            let mut e = self.entries[id.0 as usize].take().expect("group exists");
            if self.log_releases {
                self.release_events.push(ReleaseEvent {
                    group: id.0,
                    pages: e.group.page_count(),
                    bytes: e.group.footprint_bytes(),
                });
            }
            e.group.unregister_all(heap);
            if e.swapped {
                self.spill.remove(id.0);
            }
            self.free.push(id.0 as usize);
        }
    }

    pub fn refcount(&self, id: GroupId) -> u32 {
        self.entry(id).refcount
    }

    /// Pin (or unpin) a group against swapping.
    pub fn set_swappable(&mut self, id: GroupId, swappable: bool) {
        self.entry_mut(id).swappable = swappable;
    }

    pub fn is_swapped(&self, id: GroupId) -> bool {
        self.entry(id).swapped
    }

    pub fn is_swappable(&self, id: GroupId) -> bool {
        self.entry(id).swappable
    }

    /// An expected-lifetime weight for a group, in the spirit of ROLP's
    /// observed-lifetime profiling: groups shared by more consumers
    /// (higher refcount) live longer and deserve a warmer cache tier.
    /// Monotone in the refcount; zero only for dead slots.
    pub fn lifetime_hint(&self, id: GroupId) -> u32 {
        match self.entries.get(id.0 as usize).and_then(|e| e.as_ref()) {
            Some(e) => e.refcount,
            None => 0,
        }
    }

    /// The in-memory spill record (per-page byte sizes) of a swapped
    /// group, if it has one — what the engine's crash-consistent manifest
    /// must persist, since this record dies with the process.
    pub fn spill_page_sizes(&self, id: GroupId) -> Option<Vec<usize>> {
        self.spill.page_sizes(id.raw()).map(|s| s.to_vec())
    }

    /// The path of a group's spill file (see [`SpillStore::file_path`]).
    pub fn spill_file(&self, id: GroupId) -> std::path::PathBuf {
        self.spill.file_path(id.raw())
    }

    /// Total resident footprint of all managed groups.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| !e.swapped)
            .map(|e| e.group.footprint_bytes())
            .sum()
    }

    pub fn live_groups(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    // ------------------------------------------------------------------
    // group access (with swap-in / eviction)
    // ------------------------------------------------------------------

    /// Access a group for reading/scanning; swaps it in if needed. Bumps
    /// the LRU stamp.
    pub fn with_group<R>(
        &mut self,
        id: GroupId,
        heap: &mut Heap,
        f: impl FnOnce(&PageGroup) -> R,
    ) -> Result<R, MemError> {
        self.ensure_resident(id, heap)?;
        let t = self.tick();
        let e = self.entry_mut(id);
        e.last_used = t;
        Ok(f(&e.group))
    }

    /// Access a group mutably (appends, in-place combines); swaps it in if
    /// needed. Appends that need new pages may trigger eviction of other
    /// groups when the heap is out of budget.
    pub fn with_group_mut<R>(
        &mut self,
        id: GroupId,
        heap: &mut Heap,
        mut f: impl FnMut(&mut PageGroup, &mut Heap) -> Result<R, OomError>,
    ) -> Result<R, MemError> {
        self.ensure_resident(id, heap)?;
        let t = self.tick();
        {
            let e = self.entry_mut(id);
            e.last_used = t;
        }
        // Split borrow: temporarily take the entry out.
        let mut e = self.entries[id.0 as usize].take().expect("group exists");
        let mut result = f(&mut e.group, heap);
        if result.is_err() {
            // Out of budget: evict LRU swappable groups and retry once.
            let needed = e.group.page_size();
            if self.evict_until(heap, needed, Some(id)).is_ok() {
                result = f(&mut e.group, heap);
            }
        }
        self.entries[id.0 as usize] = Some(e);
        result.map_err(MemError::Oom)
    }

    /// Direct read of a segment (convenience over `with_group`).
    pub fn read_segment(
        &mut self,
        id: GroupId,
        heap: &mut Heap,
        ptr: SegPtr,
        out: &mut [u8],
    ) -> Result<(), MemError> {
        let len = out.len();
        self.with_group(id, heap, |g| out.copy_from_slice(g.slice(ptr, len)))
    }

    fn ensure_resident(&mut self, id: GroupId, heap: &mut Heap) -> Result<(), MemError> {
        if !self.entry(id).swapped {
            return Ok(());
        }
        // Make room first if the heap cannot hold the group.
        let bytes = self.spill.group_bytes(id.0);
        let _ = self.try_reserve(heap, bytes, Some(id));
        let mut e = self.entries[id.0 as usize].take().expect("group exists");
        let pages = self.spill.read(id.0)?;
        self.spill_read_bytes += bytes as u64;
        e.group.restore_pages(pages);
        let mut registered = e.group.register_all(heap);
        if registered.is_err() {
            // Evict others and retry once before giving up.
            self.entries[id.0 as usize] = Some(e);
            let _ = self.evict_until(heap, bytes, Some(id));
            e = self.entries[id.0 as usize].take().expect("group exists");
            registered = e.group.register_all(heap);
        }
        match registered {
            Ok(()) => {
                self.spill.remove(id.0);
                e.swapped = false;
                self.swap_ins += 1;
                self.entries[id.0 as usize] = Some(e);
                Ok(())
            }
            Err(oom) => {
                // Could not fit: drop the pages again and report.
                let _ = e.group.take_pages();
                self.entries[id.0 as usize] = Some(e);
                Err(MemError::Oom(oom))
            }
        }
    }

    fn try_reserve(
        &mut self,
        heap: &mut Heap,
        bytes: usize,
        protect: Option<GroupId>,
    ) -> Result<(), MemError> {
        if heap.old_occupancy() < 1.0 {
            return Ok(());
        }
        self.evict_until(heap, bytes, protect)
    }

    /// Evict least-recently-used swappable groups until roughly `bytes` of
    /// budget have been freed (or no candidates remain).
    fn evict_until(
        &mut self,
        heap: &mut Heap,
        bytes: usize,
        protect: Option<GroupId>,
    ) -> Result<(), MemError> {
        let mut freed = 0usize;
        while freed < bytes {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
                .filter(|(i, e)| {
                    !e.swapped
                        && e.swappable
                        && Some(GroupId(*i as u32)) != protect
                        && e.group.page_count() > 0
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            let Some(i) = victim else {
                return Err(MemError::Oom(OomError { requested: bytes - freed }));
            };
            freed += self.swap_out(GroupId(i as u32), heap)?;
        }
        Ok(())
    }

    /// Swap one group's pages to disk, releasing their heap budget.
    pub fn swap_out(&mut self, id: GroupId, heap: &mut Heap) -> Result<usize, MemError> {
        let e = self.entries[id.0 as usize].as_mut().expect("group exists");
        debug_assert!(!e.swapped && e.swappable);
        let pages = e.group.take_pages();
        let bytes: usize = pages.iter().map(|p| p.len()).sum();
        self.spill.write(id.0, &pages)?;
        self.spill_write_bytes += bytes as u64;
        e.group.unregister_all(heap);
        e.swapped = true;
        self.swap_outs += 1;
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;

    fn setup() -> (Heap, MemoryManager, tempdir::TempDir) {
        let dir = tempdir::TempDir::new();
        let mm = MemoryManager::new(4096, dir.path.clone());
        (Heap::new(HeapConfig::small()), mm, dir)
    }

    /// Minimal tempdir helper (no external crate).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static N: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir {
            pub path: PathBuf,
        }

        impl TempDir {
            pub fn new() -> TempDir {
                let path = std::env::temp_dir().join(format!(
                    "deca-mm-test-{}-{}",
                    std::process::id(),
                    N.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&path).expect("mkdir");
                TempDir { path }
            }
        }

        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.path);
            }
        }
    }

    #[test]
    fn refcount_lifecycle() {
        let (mut heap, mut mm, _dir) = setup();
        let g = mm.create_group();
        mm.with_group_mut(g, &mut heap, |pg, h| pg.append(h, &[1u8; 100]).map(|_| ())).unwrap();
        assert!(heap.external_bytes() > 0);
        mm.retain(g);
        assert_eq!(mm.refcount(g), 2);
        mm.release(g, &mut heap);
        assert!(heap.external_bytes() > 0, "still referenced");
        mm.release(g, &mut heap);
        assert_eq!(heap.external_bytes(), 0, "released wholesale");
        assert_eq!(mm.live_groups(), 0);
    }

    #[test]
    fn group_slot_reuse() {
        let (mut heap, mut mm, _dir) = setup();
        let a = mm.create_group();
        mm.release(a, &mut heap);
        let b = mm.create_group();
        assert_eq!(a.0, b.0, "slot reused");
        assert_eq!(mm.refcount(b), 1);
    }

    #[test]
    fn swap_out_and_back() {
        let (mut heap, mut mm, _dir) = setup();
        let g = mm.create_group();
        let data: Vec<u8> = (0..200u8).collect();
        let ptr = mm.with_group_mut(g, &mut heap, |pg, h| pg.append(h, &data)).unwrap();
        let resident = heap.external_bytes();
        mm.swap_out(g, &mut heap).unwrap();
        assert_eq!(heap.external_bytes(), 0);
        assert!(mm.is_swapped(g));
        // Reading swaps back in transparently.
        let mut out = vec![0u8; 200];
        mm.read_segment(g, &mut heap, ptr, &mut out).unwrap();
        assert_eq!(out, data);
        assert!(!mm.is_swapped(g));
        assert_eq!(heap.external_bytes(), resident);
        assert_eq!(mm.swap_outs, 1);
        assert_eq!(mm.swap_ins, 1);
    }

    #[test]
    fn eviction_under_pressure() {
        // Heap old gen ~2MB; create groups totalling more than that and
        // watch LRU eviction keep appends succeeding.
        let mut heap = Heap::new(HeapConfig::with_total(3 << 20));
        let dir = tempdir::TempDir::new();
        let mut mm = MemoryManager::new(256 << 10, dir.path.clone());
        let mut groups = Vec::new();
        for _ in 0..12 {
            let g = mm.create_group();
            mm.with_group_mut(g, &mut heap, |pg, h| pg.append(h, &[7u8; 1000]).map(|_| ()))
                .unwrap();
            groups.push(g);
        }
        assert!(mm.swap_outs > 0, "pressure must trigger eviction");
        // All data still readable.
        for g in &groups {
            let ok = mm
                .with_group(*g, &mut heap, |pg| {
                    let mut r = pg.reader();
                    let ptr = r.next_fixed(1000).expect("segment");
                    pg.slice(ptr, 1000)[0] == 7
                })
                .unwrap();
            assert!(ok);
        }
        for g in groups {
            mm.release(g, &mut heap);
        }
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn pinned_groups_are_not_evicted() {
        let mut heap = Heap::new(HeapConfig::with_total(3 << 20));
        let dir = tempdir::TempDir::new();
        let mut mm = MemoryManager::new(256 << 10, dir.path.clone());
        let pinned = mm.create_group();
        mm.set_swappable(pinned, false);
        mm.with_group_mut(pinned, &mut heap, |pg, h| pg.append(h, &[1u8; 8]).map(|_| ())).unwrap();
        // Fill the rest of the budget with swappable groups.
        for _ in 0..12 {
            let g = mm.create_group();
            let _ = mm.with_group_mut(g, &mut heap, |pg, h| pg.append(h, &[2u8; 8]).map(|_| ()));
        }
        assert!(!mm.is_swapped(pinned));
    }
}
