//! Decomposed shuffle buffers (§4.2–§4.3, Figure 6b).
//!
//! Two buffer shapes, matching Spark's shuffle implementations:
//!
//! * [`DecaHashShuffle`] — hash-based with **eager combining**
//!   (`reduceByKey`): Key/Value pairs live in pages; an open-addressing
//!   table of [`SegPtr`]s locates them. When both K and V are SFSTs the
//!   combine **reuses the old value's page segment in place** — the paper's
//!   fix for the "Value object dies on every aggregate" churn that saturates
//!   the GC in WordCount (§4.3.2, Figure 8a).
//! * [`DecaSortShuffle`] — sort-based: framed entries appended to pages, a
//!   pointer array sorted by key at the end (pointers are sorted, bytes
//!   never move).
//!
//! Shuffle buffers pin their page groups (Appendix C: Deca evicts cache
//! blocks rather than spilling pointer-only shuffle state).

use std::borrow::Cow;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use deca_heap::Heap;

use crate::group::SegPtr;
use crate::manager::{GroupId, MemError, MemoryManager};
use crate::page::Page;

/// FNV-1a over key bytes — cheap and deterministic.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hash-based shuffle buffer with eager combining over decomposed
/// fixed-size keys and values.
#[derive(Debug)]
pub struct DecaHashShuffle {
    group: GroupId,
    key_size: usize,
    val_size: usize,
    /// Open-addressing table of pointers to key segments (the value
    /// follows the key within the same segment).
    table: Vec<Option<SegPtr>>,
    len: usize,
    /// In-place combines performed (each one is a GC'd temporary avoided).
    pub combines: u64,
    released: bool,
}

impl DecaHashShuffle {
    /// Create a buffer for SFST keys of `key_size` bytes and SFST values of
    /// `val_size` bytes.
    pub fn new(mm: &mut MemoryManager, key_size: usize, val_size: usize) -> DecaHashShuffle {
        let group = mm.create_group();
        mm.set_swappable(group, false);
        DecaHashShuffle {
            group,
            key_size,
            val_size,
            table: vec![None; 1024],
            len: 0,
            combines: 0,
            released: false,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Insert a pair, eagerly combining when the key exists:
    /// `combine(existing_value, new_value)` mutates the existing value's
    /// bytes in place (§4.3.2 segment reuse — no allocation, no GC work).
    pub fn insert(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key: &[u8],
        val: &[u8],
        mut combine: impl FnMut(&mut [u8], &[u8]),
    ) -> Result<(), MemError> {
        assert_eq!(key.len(), self.key_size);
        assert_eq!(val.len(), self.val_size);
        if (self.len + 1) * 10 > self.table.len() * 7 {
            self.grow(mm, heap)?;
        }
        let mask = self.table.len() - 1;
        let mut idx = (hash_bytes(key) as usize) & mask;
        let (key_size, val_size) = (self.key_size, self.val_size);
        let table = &mut self.table;
        let len = &mut self.len;
        let combines = &mut self.combines;
        mm.with_group_mut(self.group, heap, |g, h| loop {
            match table[idx] {
                Some(ptr) if g.slice(ptr, key_size) == key => {
                    let vptr = SegPtr { page: ptr.page, off: ptr.off + key_size as u32 };
                    combine(g.slice_mut(vptr, val_size), val);
                    *combines += 1;
                    return Ok(());
                }
                Some(_) => idx = (idx + 1) & mask,
                None => {
                    let ptr = g.reserve(h, key_size + val_size)?;
                    g.slice_mut(ptr, key_size).copy_from_slice(key);
                    let vptr = SegPtr { page: ptr.page, off: ptr.off + key_size as u32 };
                    g.slice_mut(vptr, val_size).copy_from_slice(val);
                    table[idx] = Some(ptr);
                    *len += 1;
                    return Ok(());
                }
            }
        })
    }

    fn grow(&mut self, mm: &mut MemoryManager, heap: &mut Heap) -> Result<(), MemError> {
        let new_cap = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![None; new_cap]);
        let mask = new_cap - 1;
        let key_size = self.key_size;
        let table = &mut self.table;
        mm.with_group(self.group, heap, |g| {
            for ptr in old.into_iter().flatten() {
                let mut idx = (hash_bytes(g.slice(ptr, key_size)) as usize) & mask;
                while table[idx].is_some() {
                    idx = (idx + 1) & mask;
                }
                table[idx] = Some(ptr);
            }
        })
    }

    /// Visit every (key, value) byte pair.
    pub fn for_each(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> Result<(), MemError> {
        let (key_size, val_size) = (self.key_size, self.val_size);
        let table = &self.table;
        mm.with_group(self.group, heap, |g| {
            for ptr in table.iter().flatten() {
                let kv = g.slice(*ptr, key_size + val_size);
                f(&kv[..key_size], &kv[key_size..]);
            }
        })
    }

    /// Release the buffer's page group (end of the reading phase).
    pub fn release(&mut self, mm: &mut MemoryManager, heap: &mut Heap) {
        if !self.released {
            mm.release(self.group, heap);
            self.released = true;
        }
    }
}

/// Sort-based shuffle buffer: framed entries plus a pointer array sorted at
/// close. Bytes never move — only pointers are sorted (Figure 6b).
///
/// Under memory pressure the buffer spills **sorted runs** to disk
/// (Appendix C: "Deca sorts the pointers before spilling, and writes the
/// spilled data into files according to the order of the pointers"), and
/// [`DecaSortShuffle::merge_sorted`] streams a k-way merge of the runs
/// plus the in-memory remainder.
#[derive(Debug)]
pub struct DecaSortShuffle {
    group: GroupId,
    /// (entry pointer, entry length) — the pointer array.
    ptrs: Vec<(SegPtr, u32)>,
    /// Sorted spilled run files.
    runs: Vec<std::path::PathBuf>,
    /// Bytes written to run files.
    pub spilled_bytes: u64,
    /// Process-unique id for run file names (group ids are reused slots,
    /// so they alone could collide across shuffle instances).
    nonce: u64,
    released: bool,
}

static SORT_SHUFFLE_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DecaSortShuffle {
    pub fn new(mm: &mut MemoryManager) -> DecaSortShuffle {
        let group = mm.create_group();
        mm.set_swappable(group, false);
        DecaSortShuffle {
            group,
            ptrs: Vec::new(),
            runs: Vec::new(),
            spilled_bytes: 0,
            nonce: SORT_SHUFFLE_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            released: false,
        }
    }

    /// In-memory entry count (spilled runs excluded).
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty() && self.runs.is_empty()
    }

    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Append one encoded entry (key and value concatenated; the caller's
    /// comparator knows the key prefix).
    pub fn append(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        entry: &[u8],
    ) -> Result<(), MemError> {
        let ptr = mm.with_group_mut(self.group, heap, |g, h| g.append_framed(h, entry))?;
        self.ptrs.push((ptr, entry.len() as u32));
        Ok(())
    }

    /// Sort the pointer array by a key extracted from each entry's bytes,
    /// then visit entries in order.
    pub fn sorted_for_each<K: Ord>(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key_of: impl Fn(&[u8]) -> K,
        mut f: impl FnMut(&[u8]),
    ) -> Result<(), MemError> {
        let ptrs = &mut self.ptrs;
        mm.with_group(self.group, heap, |g| {
            ptrs.sort_by_key(|(ptr, len)| key_of(g.slice(*ptr, *len as usize)));
            for (ptr, len) in ptrs.iter() {
                f(g.slice(*ptr, *len as usize));
            }
        })
    }

    /// Spill the in-memory entries as one sorted run file, releasing the
    /// pages (Appendix C). Returns the bytes written.
    pub fn spill_run<K: Ord>(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key_of: impl Fn(&[u8]) -> K,
    ) -> Result<u64, MemError> {
        use std::io::Write;
        if self.ptrs.is_empty() {
            return Ok(0);
        }
        let dir = mm.spill_dir().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(MemError::Io)?;
        let path = dir.join(format!("sort-run-{}-{}.spill", self.nonce, self.runs.len()));
        let ptrs = &mut self.ptrs;
        let mut written = 0u64;
        mm.with_group(self.group, heap, |g| -> std::io::Result<()> {
            ptrs.sort_by_key(|(ptr, len)| key_of(g.slice(*ptr, *len as usize)));
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
            for (ptr, len) in ptrs.iter() {
                f.write_all(&len.to_le_bytes())?;
                f.write_all(g.slice(*ptr, *len as usize))?;
                written += 4 + *len as u64;
            }
            f.flush()
        })?
        .map_err(MemError::Io)?;
        self.ptrs.clear();
        self.spilled_bytes += written;
        // Release the drained pages and start a fresh group.
        mm.release(self.group, heap);
        self.group = mm.create_group();
        mm.set_swappable(self.group, false);
        self.runs.push(path);
        Ok(written)
    }

    /// Stream all entries in key order, k-way merging the spilled runs
    /// with the (sorted) in-memory remainder. The merge holds one record
    /// per source — the paper's "small memory space (normally only one
    /// page)".
    pub fn merge_sorted<K: Ord>(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key_of: impl Fn(&[u8]) -> K,
        mut f: impl FnMut(&[u8]),
    ) -> Result<(), MemError> {
        use std::io::Read;

        /// One framed-record reader over a run file.
        struct RunSource {
            reader: std::io::BufReader<std::fs::File>,
            current: Option<Vec<u8>>,
        }
        impl RunSource {
            fn advance(&mut self) -> std::io::Result<()> {
                let mut lenb = [0u8; 4];
                match self.reader.read_exact(&mut lenb) {
                    Ok(()) => {
                        let len = u32::from_le_bytes(lenb) as usize;
                        let mut buf = vec![0u8; len];
                        self.reader.read_exact(&mut buf)?;
                        self.current = Some(buf);
                        Ok(())
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        self.current = None;
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
        }

        let mut sources: Vec<RunSource> = Vec::new();
        for path in &self.runs {
            let mut src = RunSource {
                reader: std::io::BufReader::new(std::fs::File::open(path).map_err(MemError::Io)?),
                current: None,
            };
            src.advance().map_err(MemError::Io)?;
            sources.push(src);
        }

        // Sort the in-memory remainder and merge inside the group borrow.
        let ptrs = &mut self.ptrs;
        mm.with_group(self.group, heap, |g| -> std::io::Result<()> {
            ptrs.sort_by_key(|(ptr, len)| key_of(g.slice(*ptr, *len as usize)));
            let mut mem_idx = 0usize;
            loop {
                // Pick the minimum-key source among runs and memory.
                let mem_key =
                    ptrs.get(mem_idx).map(|(ptr, len)| key_of(g.slice(*ptr, *len as usize)));
                let mut best_run: Option<(usize, K)> = None;
                for (i, s) in sources.iter().enumerate() {
                    if let Some(cur) = &s.current {
                        let k = key_of(cur);
                        if best_run.as_ref().is_none_or(|(_, bk)| k < *bk) {
                            best_run = Some((i, k));
                        }
                    }
                }
                match (mem_key, best_run) {
                    (None, None) => return Ok(()),
                    (Some(_), None) => {
                        let (ptr, len) = ptrs[mem_idx];
                        f(g.slice(ptr, len as usize));
                        mem_idx += 1;
                    }
                    (None, Some((i, _))) => {
                        let rec = sources[i].current.take().expect("current");
                        f(&rec);
                        sources[i].advance()?;
                    }
                    (Some(mk), Some((i, rk))) => {
                        if mk <= rk {
                            let (ptr, len) = ptrs[mem_idx];
                            f(g.slice(ptr, len as usize));
                            mem_idx += 1;
                        } else {
                            let rec = sources[i].current.take().expect("current");
                            f(&rec);
                            sources[i].advance()?;
                        }
                    }
                }
            }
        })?
        .map_err(MemError::Io)?;
        Ok(())
    }

    pub fn release(&mut self, mm: &mut MemoryManager, heap: &mut Heap) {
        if !self.released {
            mm.release(self.group, heap);
            for path in self.runs.drain(..) {
                let _ = std::fs::remove_file(path);
            }
            self.released = true;
        }
    }
}

// ---------------------------------------------------------------------
// Zero-copy shuffle output: page runs, the per-executor arena, and the
// exchanged payload. A map task appends whole records into page-aligned
// runs; the exchange then moves the *pages* to the reducer — ownership
// transfer, no byte copy (the §4.2 "directly outputting the raw bytes"
// story taken to its conclusion).
// ---------------------------------------------------------------------

/// Shared accounting between a [`ShuffleArena`] and every [`PageRun`] it
/// issued. Counters are per-arena (not process-global) so concurrent
/// sessions — and concurrent tests — never observe each other.
#[derive(Debug, Default)]
pub struct ArenaStats {
    /// Pages currently attached to live runs issued by this arena. A run
    /// decrements on drop or recycle, so after a job has recycled (or
    /// dropped) every payload this must be exactly 0: >0 is a leak, <0 a
    /// double free.
    live_pages: AtomicI64,
    /// Bytes copied on the hand-over path (flattening a multi-page run,
    /// or the copying-baseline A/B mode). The zero-copy invariant test
    /// asserts this stays 0 for a Deca run.
    copied_bytes: AtomicU64,
    /// Runs / pages / payload bytes handed over to the exchange.
    handed_runs: AtomicU64,
    handed_pages: AtomicU64,
    handed_bytes: AtomicU64,
    /// Pool hits: pages / byte buffers reused instead of freshly allocated.
    pages_reused: AtomicU64,
    bufs_reused: AtomicU64,
}

impl ArenaStats {
    pub fn live_pages(&self) -> i64 {
        self.live_pages.load(Ordering::SeqCst)
    }

    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::SeqCst)
    }

    pub fn handed_runs(&self) -> u64 {
        self.handed_runs.load(Ordering::SeqCst)
    }

    pub fn handed_pages(&self) -> u64 {
        self.handed_pages.load(Ordering::SeqCst)
    }

    pub fn handed_bytes(&self) -> u64 {
        self.handed_bytes.load(Ordering::SeqCst)
    }

    pub fn pages_reused(&self) -> u64 {
        self.pages_reused.load(Ordering::SeqCst)
    }

    pub fn bufs_reused(&self) -> u64 {
        self.bufs_reused.load(Ordering::SeqCst)
    }

    /// Record a copy performed on the hand-over path.
    pub fn count_copy(&self, bytes: u64) {
        self.copied_bytes.fetch_add(bytes, Ordering::SeqCst);
    }

    /// Record one run handed over to the exchange.
    pub fn count_handover(&self, pages: u64, bytes: u64) {
        self.handed_runs.fetch_add(1, Ordering::SeqCst);
        self.handed_pages.fetch_add(pages, Ordering::SeqCst);
        self.handed_bytes.fetch_add(bytes, Ordering::SeqCst);
    }
}

/// A run of pages holding one map task's output for one reducer, in
/// append order. Records never span pages (mirroring [`PageGroup`]'s
/// no-span invariant), so iterating [`PageRun::chunks`] record-by-record
/// yields exactly the byte sequence a contiguous buffer would — which is
/// what keeps results bit-identical to the copying exchange.
///
/// Dropping a run returns its pages to the allocator and decrements the
/// issuing arena's live-page count — a failed or speculative-loser map
/// attempt cleans up structurally, it cannot leak pages.
pub struct PageRun {
    /// `(page, used bytes)` — only the used prefix is payload.
    pages: Vec<(Page, usize)>,
    len: usize,
    stats: Arc<ArenaStats>,
}

impl std::fmt::Debug for PageRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageRun").field("pages", &self.pages.len()).field("len", &self.len).finish()
    }
}

impl PageRun {
    /// Payload bytes appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Append one record, given as concatenated parts (so callers can
    /// write `key ++ value` without building a temporary). The record is
    /// kept whole within one page; oversized records get a dedicated
    /// page of exactly their size, as [`PageGroup::reserve`] does.
    pub fn push_parts(&mut self, arena: &mut ShuffleArena, parts: &[&[u8]]) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let fits = match self.pages.last() {
            Some((page, used)) => page.len() - used >= total,
            None => false,
        };
        if !fits {
            self.pages.push((arena.take_page(total), 0));
        }
        let (page, used) = self.pages.last_mut().expect("page just ensured");
        for part in parts {
            page.write_bytes(*used, part);
            *used += part.len();
        }
        self.len += total;
    }

    /// Append one whole record.
    pub fn push(&mut self, arena: &mut ShuffleArena, record: &[u8]) {
        self.push_parts(arena, &[record]);
    }

    /// The used prefix of each page, in append order. Concatenated, the
    /// chunks are the run's exact payload byte sequence.
    pub fn chunks(&self) -> impl Iterator<Item = &[u8]> {
        self.pages.iter().map(|(p, used)| &p.bytes()[..*used])
    }

    /// Flatten into one owned buffer, **counting every byte as a
    /// hand-over copy** — this is the copying-baseline path the zero-copy
    /// exchange is gated against.
    pub fn to_vec_counted(&self) -> Vec<u8> {
        self.stats.count_copy(self.len as u64);
        let mut out = Vec::with_capacity(self.len);
        for chunk in self.chunks() {
            out.extend_from_slice(chunk);
        }
        out
    }
}

impl Drop for PageRun {
    fn drop(&mut self) {
        if !self.pages.is_empty() {
            self.stats.live_pages.fetch_sub(self.pages.len() as i64, Ordering::SeqCst);
        }
    }
}

/// Per-executor pool of shuffle pages and byte buffers, reused across
/// shuffle rounds (pagerank-style iterative jobs allocate their steady
/// state once instead of once per iteration).
///
/// The arena's pages live *outside* the GC'd heap budget on purpose:
/// shuffle output is in flight to another executor, and charging it to
/// the producer's old generation would perturb the delicate OOM/eviction
/// behaviour the fault matrix pins down.
#[derive(Debug)]
pub struct ShuffleArena {
    page_size: usize,
    free_pages: Vec<Page>,
    free_bufs: Vec<Vec<u8>>,
    stats: Arc<ArenaStats>,
}

impl ShuffleArena {
    pub fn new(page_size: usize) -> ShuffleArena {
        assert!(page_size > 0, "shuffle arena needs a non-zero page size");
        ShuffleArena {
            page_size,
            free_pages: Vec::new(),
            free_bufs: Vec::new(),
            stats: Arc::new(ArenaStats::default()),
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The shared counters (live pages, hand-over copies, pool hits).
    pub fn stats(&self) -> &Arc<ArenaStats> {
        &self.stats
    }

    /// Start an empty run. Pages are attached lazily on first push.
    pub fn new_run(&self) -> PageRun {
        PageRun { pages: Vec::new(), len: 0, stats: Arc::clone(&self.stats) }
    }

    /// Take a page able to hold `min` bytes: a pooled standard page when
    /// it fits, a fresh standard page otherwise, or a dedicated page of
    /// exactly `min` bytes for oversized records.
    fn take_page(&mut self, min: usize) -> Page {
        self.stats.live_pages.fetch_add(1, Ordering::SeqCst);
        if min <= self.page_size {
            match self.free_pages.pop() {
                Some(p) => {
                    self.stats.pages_reused.fetch_add(1, Ordering::SeqCst);
                    p
                }
                None => Page::new(self.page_size),
            }
        } else {
            Page::new(min)
        }
    }

    /// Take a cleared byte buffer with at least `cap` capacity (the
    /// Spark/SparkSer serialization target, pooled across rounds).
    pub fn take_buf(&mut self, cap: usize) -> Vec<u8> {
        match self.free_bufs.pop() {
            Some(mut v) => {
                self.stats.bufs_reused.fetch_add(1, Ordering::SeqCst);
                v.clear();
                if v.capacity() < cap {
                    v.reserve(cap - v.capacity());
                }
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a consumed byte buffer to the pool.
    pub fn recycle_buf(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() > 0 {
            self.free_bufs.push(buf);
        }
    }

    /// Return a consumed run's pages to this pool. The run's live-page
    /// count is settled against its *issuing* arena, so cross-executor
    /// recycling (reducer-side pages pooling where they were consumed)
    /// keeps every arena's ledger exact.
    pub fn recycle_run(&mut self, mut run: PageRun) {
        if !run.pages.is_empty() {
            run.stats.live_pages.fetch_sub(run.pages.len() as i64, Ordering::SeqCst);
        }
        for (page, _) in run.pages.drain(..) {
            // Only standard-size pages pool; oversized dedicated pages drop.
            if page.len() == self.page_size {
                self.free_pages.push(page);
            }
        }
        // `pages` is empty now, so the run's Drop decrements nothing more.
    }

    /// Return a consumed payload (either variant) to this pool.
    pub fn recycle(&mut self, payload: ShufflePayload) {
        match payload {
            ShufflePayload::Bytes(b) => self.recycle_buf(b),
            ShufflePayload::Pages(r) => self.recycle_run(r),
        }
    }

    /// Pages currently sitting in the pool (observability / tests).
    pub fn pooled_pages(&self) -> usize {
        self.free_pages.len()
    }

    pub fn pooled_bufs(&self) -> usize {
        self.free_bufs.len()
    }
}

/// One map task's output for one reducer, as it crosses the exchange.
///
/// `Pages` moves page ownership (Deca's zero-copy hand-over); `Bytes` is
/// the serialized-buffer format Spark/SparkSer keep (drawn from the
/// arena's buffer pool). Both expose the same chunked byte view, and
/// records never span chunks, so consumers parse identically either way.
#[derive(Debug)]
pub enum ShufflePayload {
    Bytes(Vec<u8>),
    Pages(PageRun),
}

impl From<Vec<u8>> for ShufflePayload {
    fn from(b: Vec<u8>) -> ShufflePayload {
        ShufflePayload::Bytes(b)
    }
}

impl ShufflePayload {
    /// Payload bytes.
    pub fn len(&self) -> usize {
        match self {
            ShufflePayload::Bytes(b) => b.len(),
            ShufflePayload::Pages(r) => r.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pages moved by this payload (0 for the byte format).
    pub fn page_count(&self) -> usize {
        match self {
            ShufflePayload::Bytes(_) => 0,
            ShufflePayload::Pages(r) => r.page_count(),
        }
    }

    /// The payload as contiguous byte chunks, in order. Records never
    /// span chunks.
    pub fn chunks(&self) -> PayloadChunks<'_> {
        match self {
            ShufflePayload::Bytes(b) => PayloadChunks::Bytes(Some(b.as_slice()).into_iter()),
            ShufflePayload::Pages(r) => PayloadChunks::Pages(r.pages.iter()),
        }
    }

    /// A contiguous view. Borrows for the byte format and single-page
    /// runs; a multi-page run must flatten, and that copy is counted
    /// against the arena (the zero-copy test would catch a consumer
    /// using this on the Deca hand-over path).
    pub fn contiguous(&self) -> Cow<'_, [u8]> {
        match self {
            ShufflePayload::Bytes(b) => Cow::Borrowed(b.as_slice()),
            ShufflePayload::Pages(r) => match r.pages.len() {
                0 => Cow::Borrowed(&[][..]),
                1 => {
                    let (p, used) = &r.pages[0];
                    Cow::Borrowed(&p.bytes()[..*used])
                }
                _ => Cow::Owned(r.to_vec_counted()),
            },
        }
    }
}

/// Iterator over a payload's byte chunks (see [`ShufflePayload::chunks`]).
pub enum PayloadChunks<'a> {
    Bytes(std::option::IntoIter<&'a [u8]>),
    Pages(std::slice::Iter<'a, (Page, usize)>),
}

impl<'a> Iterator for PayloadChunks<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        match self {
            PayloadChunks::Bytes(it) => it.next(),
            PayloadChunks::Pages(it) => it.next().map(|(p, used)| &p.bytes()[..*used]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DecaRecord;
    use deca_heap::HeapConfig;
    use std::collections::HashMap;
    use std::path::PathBuf;

    fn setup() -> (Heap, MemoryManager) {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "deca-shuffle-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        (Heap::new(HeapConfig::small()), MemoryManager::new(8192, dir))
    }

    fn add_i64(existing: &mut [u8], new: &[u8]) {
        let a = i64::from_le_bytes(existing[..8].try_into().unwrap());
        let b = i64::from_le_bytes(new[..8].try_into().unwrap());
        existing[..8].copy_from_slice(&(a + b).to_le_bytes());
    }

    #[test]
    fn eager_aggregation_matches_sequential_fold() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        let mut expected: HashMap<i64, i64> = HashMap::new();
        // Zipf-ish key stream with many repeats.
        for i in 0..50_000i64 {
            let key = (i * i) % 997;
            *expected.entry(key).or_insert(0) += 1;
            let mut kb = [0u8; 8];
            let mut vb = [0u8; 8];
            key.encode(&mut kb);
            1i64.encode(&mut vb);
            buf.insert(&mut mm, &mut heap, &kb, &vb, add_i64).unwrap();
        }
        assert_eq!(buf.len(), expected.len());
        assert_eq!(buf.combines, 50_000 - expected.len() as u64);
        let mut got: HashMap<i64, i64> = HashMap::new();
        buf.for_each(&mut mm, &mut heap, |k, v| {
            got.insert(i64::decode(k), i64::decode(v));
        })
        .unwrap();
        assert_eq!(got, expected);
        // Hundreds of distinct keys occupy only a handful of pages.
        assert!(heap.external_count() < 10);
        buf.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn table_growth_preserves_entries() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        for key in 0..5_000i64 {
            let mut kb = [0u8; 8];
            let mut vb = [0u8; 8];
            key.encode(&mut kb);
            (key * 2).encode(&mut vb);
            buf.insert(&mut mm, &mut heap, &kb, &vb, add_i64).unwrap();
        }
        assert_eq!(buf.len(), 5_000);
        let mut seen = 0usize;
        buf.for_each(&mut mm, &mut heap, |k, v| {
            assert_eq!(i64::decode(v), i64::decode(k) * 2);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 5_000);
        buf.release(&mut mm, &mut heap);
    }

    #[test]
    fn sort_shuffle_orders_by_key() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaSortShuffle::new(&mut mm);
        let keys = [5i64, 1, 9, 3, 7, 2, 8, 0, 6, 4];
        for &k in &keys {
            let entry = (k, k as f64 * 1.5);
            let mut bytes = vec![0u8; entry.data_size()];
            entry.encode(&mut bytes);
            buf.append(&mut mm, &mut heap, &bytes).unwrap();
        }
        let mut order = Vec::new();
        buf.sorted_for_each(&mut mm, &mut heap, i64::decode, |bytes| {
            let (k, v) = <(i64, f64)>::decode(bytes);
            assert_eq!(v, k as f64 * 1.5);
            order.push(k);
        })
        .unwrap();
        assert_eq!(order, (0..10).collect::<Vec<i64>>());
        buf.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn spill_and_merge_produce_global_order() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaSortShuffle::new(&mut mm);
        // Three batches, spilling after each of the first two.
        let batches: [&[i64]; 3] = [&[50, 10, 90, 30], &[20, 80, 40], &[60, 0, 70, 100]];
        for (bi, batch) in batches.iter().enumerate() {
            for &k in batch.iter() {
                let entry = (k, k as f64);
                let mut bytes = vec![0u8; entry.data_size()];
                entry.encode(&mut bytes);
                buf.append(&mut mm, &mut heap, &bytes).unwrap();
            }
            if bi < 2 {
                let written = buf.spill_run(&mut mm, &mut heap, i64::decode).unwrap();
                assert!(written > 0);
                assert_eq!(buf.len(), 0, "pages drained after spill");
            }
        }
        assert_eq!(buf.run_count(), 2);
        let mut order = Vec::new();
        buf.merge_sorted(&mut mm, &mut heap, i64::decode, |bytes| {
            let (k, v) = <(i64, f64)>::decode(bytes);
            assert_eq!(v, k as f64);
            order.push(k);
        })
        .unwrap();
        assert_eq!(order, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        buf.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn interleaved_sort_shuffles_do_not_clobber_each_others_runs() {
        let (mut heap, mut mm) = setup();
        let mut a = DecaSortShuffle::new(&mut mm);
        let mut b = DecaSortShuffle::new(&mut mm);
        let enc = |k: i64| {
            let e = (k, k as f64);
            let mut bytes = vec![0u8; e.data_size()];
            e.encode(&mut bytes);
            bytes
        };
        for k in [5i64, 1, 3] {
            a.append(&mut mm, &mut heap, &enc(k)).unwrap();
            b.append(&mut mm, &mut heap, &enc(k + 100)).unwrap();
        }
        a.spill_run(&mut mm, &mut heap, |x| i64::decode(x)).unwrap();
        b.spill_run(&mut mm, &mut heap, |x| i64::decode(x)).unwrap();
        for k in [4i64, 2] {
            a.append(&mut mm, &mut heap, &enc(k)).unwrap();
            b.append(&mut mm, &mut heap, &enc(k + 100)).unwrap();
        }
        let mut got_a = Vec::new();
        a.merge_sorted(
            &mut mm,
            &mut heap,
            |x| i64::decode(x),
            |x| got_a.push(<(i64, f64)>::decode(x).0),
        )
        .unwrap();
        let mut got_b = Vec::new();
        b.merge_sorted(
            &mut mm,
            &mut heap,
            |x| i64::decode(x),
            |x| got_b.push(<(i64, f64)>::decode(x).0),
        )
        .unwrap();
        assert_eq!(got_a, vec![1, 2, 3, 4, 5]);
        assert_eq!(got_b, vec![101, 102, 103, 104, 105]);
        a.release(&mut mm, &mut heap);
        b.release(&mut mm, &mut heap);
    }

    #[test]
    fn merge_with_duplicate_keys_is_stable_enough() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaSortShuffle::new(&mut mm);
        for k in [3i64, 1, 3, 2, 1] {
            let entry = (k, 0f64);
            let mut bytes = vec![0u8; entry.data_size()];
            entry.encode(&mut bytes);
            buf.append(&mut mm, &mut heap, &bytes).unwrap();
        }
        buf.spill_run(&mut mm, &mut heap, i64::decode).unwrap();
        for k in [2i64, 1, 3] {
            let entry = (k, 1f64);
            let mut bytes = vec![0u8; entry.data_size()];
            entry.encode(&mut bytes);
            buf.append(&mut mm, &mut heap, &bytes).unwrap();
        }
        let mut keys = Vec::new();
        buf.merge_sorted(&mut mm, &mut heap, i64::decode, |b| {
            keys.push(<(i64, f64)>::decode(b).0);
        })
        .unwrap();
        assert_eq!(keys, vec![1, 1, 1, 2, 2, 3, 3, 3]);
        buf.release(&mut mm, &mut heap);
    }

    #[test]
    fn page_run_keeps_records_whole_and_bytes_exact() {
        let mut arena = ShuffleArena::new(32);
        let mut run = arena.new_run();
        let mut expected = Vec::new();
        for i in 0..20u8 {
            let rec = [i; 10];
            run.push_parts(&mut arena, &[&rec[..4], &rec[4..]]);
            expected.extend_from_slice(&rec);
        }
        assert_eq!(run.len(), 200);
        // 32-byte pages hold 3 ten-byte records: records never span pages.
        let flat: Vec<u8> = run.chunks().flat_map(|c| c.to_vec()).collect();
        assert_eq!(flat, expected);
        for chunk in run.chunks() {
            assert_eq!(chunk.len() % 10, 0, "no record spans a page boundary");
        }
        assert_eq!(arena.stats().live_pages(), run.page_count() as i64);
        drop(run);
        assert_eq!(arena.stats().live_pages(), 0, "drop settles the ledger");
    }

    #[test]
    fn arena_recycles_pages_and_reuses_them() {
        let mut arena = ShuffleArena::new(64);
        let mut run = arena.new_run();
        run.push(&mut arena, &[1u8; 40]);
        run.push(&mut arena, &[2u8; 40]);
        assert_eq!(run.page_count(), 2);
        arena.recycle_run(run);
        assert_eq!(arena.stats().live_pages(), 0);
        assert_eq!(arena.pooled_pages(), 2);
        let mut again = arena.new_run();
        again.push(&mut arena, &[3u8; 10]);
        assert_eq!(arena.stats().pages_reused(), 1, "pool hit on the next round");
        arena.recycle(ShufflePayload::Pages(again));
        assert_eq!(arena.stats().live_pages(), 0);
    }

    #[test]
    fn oversized_records_get_dedicated_unpooled_pages() {
        let mut arena = ShuffleArena::new(16);
        let mut run = arena.new_run();
        run.push(&mut arena, &[9u8; 100]);
        run.push(&mut arena, &[1u8; 8]);
        assert_eq!(run.page_count(), 2);
        let chunks: Vec<&[u8]> = run.chunks().collect();
        assert_eq!(chunks[0], &[9u8; 100][..]);
        assert_eq!(chunks[1], &[1u8; 8][..]);
        arena.recycle_run(run);
        assert_eq!(arena.pooled_pages(), 1, "the dedicated page does not pool");
        assert_eq!(arena.stats().live_pages(), 0);
    }

    #[test]
    fn payload_contiguous_borrows_until_it_must_copy() {
        let mut arena = ShuffleArena::new(64);
        // Byte format: always borrowed.
        let bytes = ShufflePayload::from(vec![1u8, 2, 3]);
        assert!(matches!(bytes.contiguous(), Cow::Borrowed(b) if b == [1, 2, 3]));
        // Single-page run: borrowed, zero copies.
        let mut one = arena.new_run();
        one.push(&mut arena, &[7u8; 10]);
        let p1 = ShufflePayload::Pages(one);
        assert!(matches!(p1.contiguous(), Cow::Borrowed(_)));
        assert_eq!(arena.stats().copied_bytes(), 0);
        // Multi-page run: owned, and the copy is counted.
        let mut two = arena.new_run();
        two.push(&mut arena, &[1u8; 40]);
        two.push(&mut arena, &[2u8; 40]);
        let p2 = ShufflePayload::Pages(two);
        assert_eq!(p2.contiguous().len(), 80);
        assert_eq!(arena.stats().copied_bytes(), 80);
        arena.recycle(p1);
        arena.recycle(p2);
        assert_eq!(arena.stats().live_pages(), 0);
    }

    #[test]
    fn buf_pool_reuses_capacity_across_rounds() {
        let mut arena = ShuffleArena::new(64);
        let mut buf = arena.take_buf(128);
        assert_eq!(arena.stats().bufs_reused(), 0);
        buf.extend_from_slice(&[5u8; 100]);
        let cap = buf.capacity();
        arena.recycle_buf(buf);
        let again = arena.take_buf(16);
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert!(again.capacity() >= cap.min(128));
        assert_eq!(arena.stats().bufs_reused(), 1);
    }

    #[test]
    fn segment_reuse_keeps_footprint_flat() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaHashShuffle::new(&mut mm, 8, 8);
        let mut kb = [0u8; 8];
        let mut vb = [0u8; 8];
        7i64.encode(&mut kb);
        1i64.encode(&mut vb);
        for _ in 0..100_000 {
            buf.insert(&mut mm, &mut heap, &kb, &vb, add_i64).unwrap();
        }
        // One key: one 16-byte segment, one page — regardless of 100k combines.
        assert_eq!(buf.len(), 1);
        assert_eq!(heap.external_count(), 1);
        let mut total = 0i64;
        buf.for_each(&mut mm, &mut heap, |_, v| total = i64::decode(v)).unwrap();
        assert_eq!(total, 100_000);
        buf.release(&mut mm, &mut heap);
    }
}
