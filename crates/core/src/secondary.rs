//! Secondary containers over a primary's page group (§4.3.3, Figure 7a).
//!
//! When objects are fully decomposable and shared by several containers,
//! the primary container owns the page group and each secondary stores
//! only *pointers* into it, plus a `depPages` reference that keeps the
//! group alive (reference counting). Two cases:
//!
//! * same objects, no specific order ⇒ share the page-info outright
//!   ([`crate::MemoryManager::retain`] — no per-object state at all);
//! * a *different ordering or subset* ⇒ a [`SecondaryView`]: an ordered
//!   pointer array into the primary's pages, with its own lifetime.
//!
//! Releasing the secondary drops its pointer array and its `depPages`
//! reference; the primary's bytes live on until every holder is gone.

use deca_heap::Heap;

use crate::group::SegPtr;
use crate::manager::{GroupId, MemError, MemoryManager};

/// An ordered pointer view over another container's page group.
#[derive(Debug)]
pub struct SecondaryView {
    /// The primary's page group (`depPages`): retained on creation.
    dep: GroupId,
    /// `(segment, len)` pointers, in this container's own order.
    ptrs: Vec<(SegPtr, u32)>,
    released: bool,
}

impl SecondaryView {
    /// Create a view over `primary`'s group, incrementing its reference
    /// count so the bytes outlive the primary's release if needed.
    pub fn new(mm: &mut MemoryManager, primary_group: GroupId) -> SecondaryView {
        mm.retain(primary_group);
        SecondaryView { dep: primary_group, ptrs: Vec::new(), released: false }
    }

    pub fn dep_group(&self) -> GroupId {
        self.dep
    }

    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }

    /// Reference a segment of the primary (no bytes are copied).
    pub fn push(&mut self, ptr: SegPtr, len: usize) {
        self.ptrs.push((ptr, len as u32));
    }

    /// Re-order the view by a key extracted from each segment's bytes —
    /// the case that makes a pointer view necessary at all (a plain
    /// page-info copy shares the primary's order).
    pub fn sort_by_key<K: Ord>(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key_of: impl Fn(&[u8]) -> K,
    ) -> Result<(), MemError> {
        let ptrs = &mut self.ptrs;
        mm.with_group(self.dep, heap, |g| {
            ptrs.sort_by_key(|(ptr, len)| key_of(g.slice(*ptr, *len as usize)));
        })
    }

    /// Visit segments in the view's order.
    pub fn for_each(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        mut f: impl FnMut(&[u8]),
    ) -> Result<(), MemError> {
        let ptrs = &self.ptrs;
        mm.with_group(self.dep, heap, |g| {
            for (ptr, len) in ptrs {
                f(g.slice(*ptr, *len as usize));
            }
        })
    }

    /// Drop the pointer array and the `depPages` reference.
    pub fn release(&mut self, mm: &mut MemoryManager, heap: &mut Heap) {
        if !self.released {
            mm.release(self.dep, heap);
            self.ptrs = Vec::new();
            self.released = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DecaCacheBlock;
    use crate::record::DecaRecord;
    use deca_heap::HeapConfig;
    use std::path::PathBuf;

    fn setup() -> (Heap, MemoryManager) {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "deca-secondary-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        (Heap::new(HeapConfig::small()), MemoryManager::new(4096, dir))
    }

    /// Build a primary cache block and a differently-ordered secondary
    /// view over the same bytes (Figure 7a).
    #[test]
    fn reordered_view_shares_bytes() {
        let (mut heap, mut mm) = setup();
        let mut primary = DecaCacheBlock::new::<(i64, f64)>(&mut mm);
        let recs: Vec<(i64, f64)> = [5i64, 2, 9, 1, 7].iter().map(|&k| (k, k as f64)).collect();
        for r in &recs {
            primary.append(&mut mm, &mut heap, r).unwrap();
        }
        let footprint_before = heap.external_bytes();

        // Collect pointers by scanning the primary's group.
        let mut view = SecondaryView::new(&mut mm, primary.group());
        let size = <(i64, f64)>::FIXED_SIZE.unwrap();
        mm.with_group(primary.group(), &mut heap, |g| {
            let mut r = g.reader();
            let mut ptrs = Vec::new();
            while let Some(ptr) = r.next_fixed(size) {
                ptrs.push(ptr);
            }
            ptrs
        })
        .unwrap()
        .into_iter()
        .for_each(|p| view.push(p, size));

        // No extra pages were allocated for the secondary.
        assert_eq!(heap.external_bytes(), footprint_before);

        // The secondary imposes its own (sorted) order.
        view.sort_by_key(&mut mm, &mut heap, i64::decode).unwrap();
        let mut order = Vec::new();
        view.for_each(&mut mm, &mut heap, |bytes| {
            order.push(<(i64, f64)>::decode(bytes).0);
        })
        .unwrap();
        assert_eq!(order, vec![1, 2, 5, 7, 9]);

        // Releasing the *primary* keeps the bytes alive through depPages.
        primary.release(&mut mm, &mut heap);
        assert!(heap.external_bytes() > 0, "secondary still references the group");
        let mut still = 0;
        view.for_each(&mut mm, &mut heap, |_| still += 1).unwrap();
        assert_eq!(still, 5);

        // Releasing the secondary frees everything.
        view.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn release_is_idempotent() {
        let (mut heap, mut mm) = setup();
        let mut primary = DecaCacheBlock::new::<f64>(&mut mm);
        primary.append(&mut mm, &mut heap, &1.0).unwrap();
        let mut view = SecondaryView::new(&mut mm, primary.group());
        view.release(&mut mm, &mut heap);
        view.release(&mut mm, &mut heap);
        primary.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }
}
