//! Page groups and the `page-info` structure (§4.3.1).
//!
//! A page group is the unit of lifetime-based reclamation: "when a
//! container's lifetime comes to an end, we simply release all the
//! references of the byte arrays in the container" (§2.3). Each group keeps
//! the paper's page-info bookkeeping: the page array, `endOffset` (start of
//! the unused part of the last page), and `curPage`/`curOffset` scan
//! cursors.
//!
//! Byte segments never span pages; an appender that does not fit in the
//! current page moves to a fresh one, leaving a wasted tail that the
//! page-size ablation measures. A segment *larger* than the standard page
//! size gets a dedicated page of exactly its size (the analogue of the
//! JVM's humongous allocations); subsequent appends open a fresh standard
//! page. Segments are addressed by [`SegPtr`] — the "pointers" stored in
//! shuffle pointer arrays and secondary containers (Figure 6/7).

use deca_heap::{Heap, OomError};

use crate::page::Page;

/// A pointer to a byte segment within a page group: `(page index, offset)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SegPtr {
    pub page: u32,
    pub off: u32,
}

/// Framing sentinel: a zero length-prefix marks "rest of page unused".
const END_OF_PAGE: u32 = 0;

/// A group of fixed-size pages owned by one data container (or shared by
/// several through the manager's reference counting).
#[derive(Debug)]
pub struct PageGroup {
    pages: Vec<Page>,
    /// Heap external-allocation ids, parallel to `pages`; empty while the
    /// group is swapped out.
    external_ids: Vec<usize>,
    page_size: usize,
    /// Start offset of the unused part of the last page (`endOffset`).
    end_offset: usize,
    /// Bytes lost to page tails that could not fit the next segment.
    wasted_bytes: usize,
}

impl PageGroup {
    pub fn new(page_size: usize) -> PageGroup {
        assert!(page_size >= 16, "page size too small to be useful");
        PageGroup {
            pages: Vec::new(),
            external_ids: Vec::new(),
            page_size,
            end_offset: 0,
            wasted_bytes: 0,
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes of payload appended (excludes wasted tails).
    pub fn used_bytes(&self) -> usize {
        if self.pages.is_empty() {
            0
        } else {
            self.footprint_bytes()
                - (self.pages.last().expect("pages").len() - self.end_offset)
                - self.wasted_bytes
        }
    }

    /// Total bytes reserved from the heap budget.
    pub fn footprint_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.len()).sum()
    }

    pub fn wasted_bytes(&self) -> usize {
        self.wasted_bytes
    }

    /// Reserve a segment of `len` bytes, adding a page if needed (each new
    /// page is registered with the heap as an external allocation, which
    /// may fail with `OomError` — the caller evicts or spills then).
    pub fn reserve(&mut self, heap: &mut Heap, len: usize) -> Result<SegPtr, OomError> {
        let fits = !self.pages.is_empty()
            && self.end_offset + len <= self.pages.last().expect("pages").len();
        if !fits {
            if let Some(last) = self.pages.last() {
                self.wasted_bytes += last.len() - self.end_offset;
            }
            // Oversized segments get a dedicated page of exactly their
            // size (rare: hub adjacency lists, huge RFST records).
            let page_bytes = len.max(self.page_size);
            let id = heap.register_external(page_bytes)?;
            self.pages.push(Page::new(page_bytes));
            self.external_ids.push(id);
            self.end_offset = 0;
        }
        let ptr = SegPtr { page: (self.pages.len() - 1) as u32, off: self.end_offset as u32 };
        self.end_offset += len;
        Ok(ptr)
    }

    /// Append raw bytes as one segment.
    pub fn append(&mut self, heap: &mut Heap, bytes: &[u8]) -> Result<SegPtr, OomError> {
        let ptr = self.reserve(heap, bytes.len())?;
        self.pages[ptr.page as usize].write_bytes(ptr.off as usize, bytes);
        Ok(ptr)
    }

    /// Append a length-prefixed (framed) segment, for variable-size (RFST)
    /// records. The prefix stores `len + 1`; a zero prefix is the
    /// end-of-page sentinel the reader uses to advance.
    pub fn append_framed(&mut self, heap: &mut Heap, bytes: &[u8]) -> Result<SegPtr, OomError> {
        let total = bytes.len() + 4;
        let ptr = self.reserve(heap, total)?;
        let page = &mut self.pages[ptr.page as usize];
        page.write_i32(ptr.off as usize, (bytes.len() as u32 + 1) as i32);
        page.write_bytes(ptr.off as usize + 4, bytes);
        // Return a pointer to the payload, not the prefix.
        Ok(SegPtr { page: ptr.page, off: ptr.off + 4 })
    }

    /// Immutable view of a segment.
    pub fn slice(&self, ptr: SegPtr, len: usize) -> &[u8] {
        self.pages[ptr.page as usize].slice(ptr.off as usize, len)
    }

    /// Mutable view of a segment (in-place aggregate reuse, §4.3.2).
    pub fn slice_mut(&mut self, ptr: SegPtr, len: usize) -> &mut [u8] {
        self.pages[ptr.page as usize].slice_mut(ptr.off as usize, len)
    }

    pub fn page(&self, i: usize) -> &Page {
        &self.pages[i]
    }

    pub fn page_mut(&mut self, i: usize) -> &mut Page {
        &mut self.pages[i]
    }

    /// A sequential reader positioned at the first segment.
    pub fn reader(&self) -> GroupReader<'_> {
        GroupReader { group: self, cur_page: 0, cur_off: 0 }
    }

    /// Release every page's heap registration. Called by the manager when
    /// the group's reference count reaches zero or the group is swapped
    /// out: the whole space returns in O(#pages), no tracing.
    pub(crate) fn unregister_all(&mut self, heap: &mut Heap) {
        for id in self.external_ids.drain(..) {
            heap.unregister_external(id);
        }
    }

    /// Re-register all pages after a swap-in.
    pub(crate) fn register_all(&mut self, heap: &mut Heap) -> Result<(), OomError> {
        debug_assert!(self.external_ids.is_empty());
        let sizes: Vec<usize> = self.pages.iter().map(|p| p.len()).collect();
        for &bytes in &sizes {
            match heap.register_external(bytes) {
                Ok(id) => self.external_ids.push(id),
                Err(e) => {
                    // Roll back partial registration.
                    for id in self.external_ids.drain(..) {
                        heap.unregister_external(id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Drop the in-memory pages (after they have been spilled), keeping the
    /// group's metadata. Returns the dropped pages.
    pub(crate) fn take_pages(&mut self) -> Vec<Page> {
        std::mem::take(&mut self.pages)
    }

    pub(crate) fn restore_pages(&mut self, pages: Vec<Page>) {
        debug_assert!(self.pages.is_empty());
        self.pages = pages;
    }
}

/// Sequential scan over a group's segments (the `curPage`/`curOffset`
/// cursor of the page-info).
#[derive(Clone)]
pub struct GroupReader<'a> {
    group: &'a PageGroup,
    cur_page: usize,
    cur_off: usize,
}

impl<'a> GroupReader<'a> {
    /// Next fixed-size segment, or `None` at the end of the group.
    pub fn next_fixed(&mut self, len: usize) -> Option<SegPtr> {
        loop {
            if self.cur_page >= self.group.pages.len() {
                return None;
            }
            let in_last = self.cur_page + 1 == self.group.pages.len();
            let limit =
                if in_last { self.group.end_offset } else { self.group.pages[self.cur_page].len() };
            if self.cur_off + len <= limit {
                let ptr = SegPtr { page: self.cur_page as u32, off: self.cur_off as u32 };
                self.cur_off += len;
                return Some(ptr);
            }
            if in_last {
                return None;
            }
            self.cur_page += 1;
            self.cur_off = 0;
        }
    }

    /// Next framed (length-prefixed) segment: `(payload pointer, len)`.
    pub fn next_framed(&mut self) -> Option<(SegPtr, usize)> {
        loop {
            if self.cur_page >= self.group.pages.len() {
                return None;
            }
            let in_last = self.cur_page + 1 == self.group.pages.len();
            let limit =
                if in_last { self.group.end_offset } else { self.group.pages[self.cur_page].len() };
            if self.cur_off + 4 <= limit {
                let prefix = self.group.pages[self.cur_page].read_i32(self.cur_off) as u32;
                if prefix != END_OF_PAGE {
                    let len = (prefix - 1) as usize;
                    let ptr = SegPtr { page: self.cur_page as u32, off: (self.cur_off + 4) as u32 };
                    self.cur_off += 4 + len;
                    return Some((ptr, len));
                }
            }
            if in_last {
                return None;
            }
            self.cur_page += 1;
            self.cur_off = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;

    fn heap() -> Heap {
        Heap::new(HeapConfig::small())
    }

    #[test]
    fn append_and_scan_fixed() {
        let mut h = heap();
        let mut g = PageGroup::new(64);
        let mut ptrs = Vec::new();
        for i in 0..20u8 {
            // 24-byte records: 2 per 64-byte page (wastes 16-byte tails).
            let rec = [i; 24];
            ptrs.push(g.append(&mut h, &rec).unwrap());
        }
        assert_eq!(g.page_count(), 10);
        assert_eq!(g.used_bytes(), 20 * 24);
        assert_eq!(g.wasted_bytes(), 9 * 16);
        assert_eq!(h.external_count(), 10);

        let mut r = g.reader();
        for i in 0..20u8 {
            let ptr = r.next_fixed(24).expect("segment");
            assert_eq!(g.slice(ptr, 24), &[i; 24]);
        }
        assert!(r.next_fixed(24).is_none());
        let _ = ptrs;
    }

    #[test]
    fn framed_variable_records() {
        let mut h = heap();
        let mut g = PageGroup::new(64);
        let recs: Vec<Vec<u8>> = (1..12).map(|i| vec![i as u8; i]).collect();
        for rec in &recs {
            g.append_framed(&mut h, rec).unwrap();
        }
        let mut r = g.reader();
        for rec in &recs {
            let (ptr, len) = r.next_framed().expect("segment");
            assert_eq!(len, rec.len());
            assert_eq!(g.slice(ptr, len), rec.as_slice());
        }
        assert!(r.next_framed().is_none());
    }

    #[test]
    fn empty_payload_frames_roundtrip() {
        let mut h = heap();
        let mut g = PageGroup::new(64);
        g.append_framed(&mut h, &[]).unwrap();
        g.append_framed(&mut h, &[7]).unwrap();
        let mut r = g.reader();
        assert_eq!(r.next_framed().unwrap().1, 0);
        let (p, l) = r.next_framed().unwrap();
        assert_eq!(l, 1);
        assert_eq!(g.slice(p, 1), &[7]);
        assert!(r.next_framed().is_none());
    }

    #[test]
    fn in_place_mutation() {
        let mut h = heap();
        let mut g = PageGroup::new(128);
        let ptr = g.append(&mut h, &[0u8; 8]).unwrap();
        g.slice_mut(ptr, 8).copy_from_slice(&42f64.to_le_bytes());
        let mut buf = [0u8; 8];
        buf.copy_from_slice(g.slice(ptr, 8));
        assert_eq!(f64::from_le_bytes(buf), 42.0);
    }

    #[test]
    fn release_returns_heap_budget() {
        let mut h = heap();
        let before = h.external_bytes();
        let mut g = PageGroup::new(1024);
        for _ in 0..10 {
            g.append(&mut h, &[1u8; 512]).unwrap();
        }
        assert!(h.external_bytes() > before);
        g.unregister_all(&mut h);
        assert_eq!(h.external_bytes(), before);
    }

    #[test]
    fn oversized_segments_get_dedicated_pages() {
        let mut h = heap();
        let mut g = PageGroup::new(64);
        g.append(&mut h, &[1u8; 10]).unwrap();
        let big = vec![7u8; 300]; // > page size: dedicated page
        let ptr = g.append(&mut h, &big).unwrap();
        assert_eq!(g.slice(ptr, 300), big.as_slice());
        g.append(&mut h, &[2u8; 10]).unwrap();
        assert_eq!(g.page_count(), 3);
        assert_eq!(g.footprint_bytes(), 64 + 300 + 64);
        // Sequential scan still works across heterogeneous pages.
        let mut r = g.reader();
        assert_eq!(g.slice(r.next_fixed(10).unwrap(), 10), &[1u8; 10]);
        assert_eq!(g.slice(r.next_fixed(300).unwrap(), 300), big.as_slice());
        assert_eq!(g.slice(r.next_fixed(10).unwrap(), 10), &[2u8; 10]);
        assert!(r.next_fixed(10).is_none());
    }
}
