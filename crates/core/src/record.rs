//! The `DecaRecord` trait — the runtime face of Deca's code transformation.
//!
//! The paper's optimizer rewrites UDT bytecode into "SUDT" accessors that
//! read and write raw bytes at computed offsets (Appendix B, Figure 12). In
//! Rust, that rewritten code is expressed as an implementation of
//! [`DecaRecord`]: `encode` writes the object's primitive leaves in field
//! order (references and headers discarded — Figure 2), `decode` reads them
//! back, and `data_size` reports the byte length (constant for SFSTs,
//! per-instance for RFSTs).
//!
//! Unlike a general serializer, there are no per-field tags, no varints and
//! no class descriptors — the layout is compiled from the type, which is
//! why Deca's "serialization" costs as little as Kryo's while *reading*
//! costs nothing at all (§6.5, Table 5: fields are accessed directly in the
//! page bytes, no deserialization step materialises objects).

/// A type that can be decomposed into a raw byte segment.
pub trait DecaRecord: Sized {
    /// Data-size of this instance in bytes. For an SFST this must be a
    /// constant (`FIXED_SIZE`); for an RFST it may vary per instance but
    /// must never change after construction.
    fn data_size(&self) -> usize;

    /// The SFST constant size, if this type is statically fixed.
    const FIXED_SIZE: Option<usize>;

    /// Write exactly `data_size()` bytes into `out`.
    fn encode(&self, out: &mut [u8]);

    /// Read an instance back from bytes produced by `encode`.
    fn decode(buf: &[u8]) -> Self;
}

impl DecaRecord for f64 {
    const FIXED_SIZE: Option<usize> = Some(8);

    fn data_size(&self) -> usize {
        8
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl DecaRecord for i64 {
    const FIXED_SIZE: Option<usize> = Some(8);

    fn data_size(&self) -> usize {
        8
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        i64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl DecaRecord for i32 {
    const FIXED_SIZE: Option<usize> = Some(4);

    fn data_size(&self) -> usize {
        4
    }

    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        i32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))
    }
}

impl DecaRecord for u32 {
    const FIXED_SIZE: Option<usize> = Some(4);

    fn data_size(&self) -> usize {
        4
    }

    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))
    }
}

/// Pairs concatenate their parts; the pair is SFST iff both parts are.
impl<A: DecaRecord, B: DecaRecord> DecaRecord for (A, B) {
    const FIXED_SIZE: Option<usize> = match (A::FIXED_SIZE, B::FIXED_SIZE) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    };

    fn data_size(&self) -> usize {
        self.0.data_size() + self.1.data_size()
    }

    fn encode(&self, out: &mut [u8]) {
        let split = self.0.data_size();
        self.0.encode(&mut out[..split]);
        self.1.encode(&mut out[split..]);
    }

    fn decode(buf: &[u8]) -> Self {
        let a = A::decode(buf);
        let split = a.data_size();
        let b = B::decode(&buf[split..]);
        (a, b)
    }
}

/// An RFST: a variable-length vector of doubles with a `u32` length prefix
/// in its encoding (the per-instance size is fixed after construction).
impl DecaRecord for Vec<f64> {
    const FIXED_SIZE: Option<usize> = None;

    fn data_size(&self) -> usize {
        4 + self.len() * 8
    }

    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&(self.len() as u32).to_le_bytes());
        for (i, v) in self.iter().enumerate() {
            out[4 + i * 8..12 + i * 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let n = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        (0..n)
            .map(|i| f64::from_le_bytes(buf[4 + i * 8..12 + i * 8].try_into().expect("8 bytes")))
            .collect()
    }
}

/// An RFST: a variable-length vector of u32 (used for adjacency lists).
impl DecaRecord for Vec<u32> {
    const FIXED_SIZE: Option<usize> = None;

    fn data_size(&self) -> usize {
        4 + self.len() * 4
    }

    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&(self.len() as u32).to_le_bytes());
        for (i, v) in self.iter().enumerate() {
            out[4 + i * 4..8 + i * 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let n = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        (0..n)
            .map(|i| u32::from_le_bytes(buf[4 + i * 4..8 + i * 4].try_into().expect("4 bytes")))
            .collect()
    }
}

/// An RFST: UTF-8 string bytes (length carried by the frame).
impl DecaRecord for String {
    const FIXED_SIZE: Option<usize> = None;

    fn data_size(&self) -> usize {
        self.len()
    }

    fn encode(&self, out: &mut [u8]) {
        out[..self.len()].copy_from_slice(self.as_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        String::from_utf8(buf.to_vec()).expect("valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: DecaRecord + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; v.data_size()];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(1.5f64);
        roundtrip(-9i64);
        roundtrip(i32::MIN);
        roundtrip(u32::MAX);
    }

    #[test]
    fn pair_roundtrip_and_fixed_size() {
        roundtrip((3.25f64, 7i64));
        assert_eq!(<(f64, i64)>::FIXED_SIZE, Some(16));
        assert_eq!(<(f64, Vec<f64>)>::FIXED_SIZE, None);
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(vec![1.0f64, -2.0, 3.5]);
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![1u32, 2, 3, 4, 5]);
        let v = vec![0.5f64; 100];
        assert_eq!(v.data_size(), 4 + 800);
        roundtrip(v);
    }

    #[test]
    fn string_roundtrip() {
        roundtrip(String::from("hello, deca"));
        roundtrip(String::new());
        roundtrip(String::from("日本語テキスト"));
    }

    #[test]
    fn nested_pair_with_vec() {
        let rec = (42i64, vec![1.0f64, 2.0]);
        assert_eq!(rec.data_size(), 8 + 4 + 16);
        roundtrip(rec);
    }
}
