//! # deca-core — lifetime-based memory management
//!
//! The paper's primary contribution (§4): instead of letting a tracing GC
//! repeatedly walk millions of long-living data objects, Deca
//!
//! 1. groups objects with the same lifetime into **data containers** (cache
//!    blocks, shuffle buffers, UDF variables),
//! 2. **decomposes** objects whose size-type permits it (SFST/RFST, per the
//!    analyses in `deca-udt`) into raw byte segments inside a small number
//!    of fixed-size byte-array **pages**, and
//! 3. releases each container's **page group** wholesale when the
//!    container's lifetime ends — `cache()`/`unpersist()` for cached RDDs,
//!    end of the reading phase for shuffle buffers.
//!
//! Pages are registered with the simulated heap of `deca-heap` as *external
//! allocations*: they consume old-generation budget but cost the collector
//! one trace step each instead of one per object.
//!
//! Modules:
//!
//! * [`page`] / [`group`] — fixed-size pages and the `page-info` structure
//!   of §4.3.1 (pages, endOffset, curPage/curOffset cursors);
//! * [`manager`] — page-group allocation, reference counting (the shared
//!   page-group optimisation of §4.3.3), LRU swapping (Appendix C);
//! * [`record`] — the `DecaRecord` trait: the runtime equivalent of the
//!   synthesized SUDT accessors produced by Deca's code transformation
//!   (Appendix B);
//! * [`layout`] — the layout compiler: flattens a UDT's static object
//!   reference graph into field offsets (Figure 2);
//! * [`cache`] — decomposed cache blocks;
//! * [`shuffle`] — decomposed shuffle buffers with pointer arrays and the
//!   in-place aggregate-value reuse of §4.3.2 (Figure 6b);
//! * [`optimizer`] — the Deca optimizer (§5, Appendix A): classification →
//!   ownership → per-container decomposition decisions;
//! * [`swap`] — page-group spill files.
//!
//! ```
//! use deca_core::{DecaCacheBlock, MemoryManager};
//! use deca_heap::{Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::small());
//! let mut mm = MemoryManager::new(64 << 10, std::env::temp_dir().join("deca-doc"));
//!
//! // Decompose records into page segments...
//! let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
//! for i in 0..10_000i64 {
//!     block.append(&mut mm, &mut heap, &(i as f64, i)).unwrap();
//! }
//! // ...iterate them without materialising objects...
//! let sum = block
//!     .fold_bytes(&mut mm, &mut heap, 0.0, |acc, bytes| {
//!         acc + f64::from_le_bytes(bytes[..8].try_into().unwrap())
//!     })
//!     .unwrap();
//! assert_eq!(sum, (0..10_000).map(|i| i as f64).sum());
//! // ...and reclaim the whole container's space in O(#pages).
//! block.release(&mut mm, &mut heap);
//! assert_eq!(heap.external_bytes(), 0);
//! ```

pub mod cache;
pub mod group;
pub mod layout;
pub mod manager;
pub mod optimizer;
pub mod page;
pub mod record;
pub mod secondary;
pub mod shuffle;
pub mod swap;
pub mod var_shuffle;

pub use cache::DecaCacheBlock;
pub use group::{GroupReader, PageGroup, SegPtr};
pub use layout::{FieldSlot, Layout, LayoutError};
pub use manager::{GroupId, HandoverEvent, MemError, MemoryManager, ReleaseEvent};
pub use optimizer::{ContainerDecision, ContainerInfo, DecompositionPlan, Optimizer};
pub use page::Page;
pub use record::DecaRecord;
pub use secondary::SecondaryView;
pub use shuffle::{
    ArenaStats, DecaHashShuffle, DecaSortShuffle, PageRun, PayloadChunks, ShuffleArena,
    ShufflePayload,
};
pub use swap::SpillStore;
pub use var_shuffle::DecaVarHashShuffle;
