//! Decomposed cache blocks (§4.3.2, Figure 6a).
//!
//! A cache block owns (or shares) a page group holding its records' raw
//! bytes. SFST records are stored back-to-back with no framing — their
//! offsets are statically computable, matching the paper's observation that
//! sequential access needs no pointer array. RFST records are framed with a
//! length prefix. The block's lifetime is the cached RDD's: `unpersist()`
//! releases the group reference, and the whole space returns at once.

use deca_heap::Heap;

use crate::manager::{GroupId, MemError, MemoryManager};
use crate::record::DecaRecord;

/// A cache block of decomposed records of type `T`.
#[derive(Debug)]
pub struct DecaCacheBlock {
    group: GroupId,
    len: usize,
    /// `Some(size)` for SFST records (unframed), `None` for RFST (framed).
    fixed_size: Option<usize>,
    released: bool,
}

impl DecaCacheBlock {
    /// Create an empty block backed by a fresh page group.
    pub fn new<T: DecaRecord>(mm: &mut MemoryManager) -> DecaCacheBlock {
        DecaCacheBlock {
            group: mm.create_group(),
            len: 0,
            fixed_size: T::FIXED_SIZE,
            released: false,
        }
    }

    /// Create a block whose records all have the *runtime-resolved*
    /// constant size `size` — an SFST whose size the static analysis
    /// proved constant but whose value (e.g. the LR dimension `D`) is a
    /// config constant only the runtime optimizer knows (Appendix A).
    /// Records are stored unframed.
    pub fn new_sfst(mm: &mut MemoryManager, size: usize) -> DecaCacheBlock {
        DecaCacheBlock { group: mm.create_group(), len: 0, fixed_size: Some(size), released: false }
    }

    /// Append one record (encodes straight into the pages).
    pub fn append<T: DecaRecord>(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        rec: &T,
    ) -> Result<(), MemError> {
        let size = rec.data_size();
        let fixed = self.fixed_size;
        mm.with_group_mut(self.group, heap, |g, h| {
            let ptr = match fixed {
                Some(s) => {
                    assert_eq!(s, size, "record size must match the block's SFST size");
                    g.reserve(h, s)?
                }
                None => g.append_framed(h, &vec![0u8; size])?,
            };
            rec.encode(g.slice_mut(ptr, size));
            Ok(())
        })?;
        self.len += 1;
        Ok(())
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing page group (for sharing with a secondary container).
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Visit every record's bytes sequentially without materialising
    /// objects — the Deca iteration fast path (Figure 12's transformed
    /// loop reads fields at offsets within these slices).
    pub fn scan_bytes<R>(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        mut f: impl FnMut(&[u8]) -> R,
        mut sink: impl FnMut(R),
    ) -> Result<(), MemError> {
        let fixed = self.fixed_size;
        mm.with_group(self.group, heap, |g| {
            let mut r = g.reader();
            match fixed {
                Some(s) => {
                    while let Some(ptr) = r.next_fixed(s) {
                        sink(f(g.slice(ptr, s)));
                    }
                }
                None => {
                    while let Some((ptr, len)) = r.next_framed() {
                        sink(f(g.slice(ptr, len)));
                    }
                }
            }
        })
    }

    /// Decode every record (used when a downstream phase genuinely needs
    /// materialised values, e.g. re-construction after a data-size change —
    /// §4.3.2's thrashing-avoidance path).
    pub fn decode_all<T: DecaRecord>(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
    ) -> Result<Vec<T>, MemError> {
        let mut out = Vec::with_capacity(self.len);
        self.scan_bytes(mm, heap, |bytes| T::decode(bytes), |v| out.push(v))?;
        Ok(out)
    }

    /// Fold over records' bytes (aggregations without materialisation).
    pub fn fold_bytes<A>(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        init: A,
        mut f: impl FnMut(A, &[u8]) -> A,
    ) -> Result<A, MemError> {
        let mut acc = Some(init);
        self.scan_bytes(
            mm,
            heap,
            |bytes| {
                let a = acc.take().expect("acc");
                acc = Some(f(a, bytes));
            },
            |_| {},
        )?;
        Ok(acc.expect("acc"))
    }

    /// Release the block's reference on its page group (`unpersist()`).
    pub fn release(&mut self, mm: &mut MemoryManager, heap: &mut Heap) {
        if !self.released {
            mm.release(self.group, heap);
            self.released = true;
        }
    }

    pub fn is_released(&self) -> bool {
        self.released
    }

    /// Resident footprint in bytes.
    pub fn footprint(&self, mm: &mut MemoryManager, heap: &mut Heap) -> Result<usize, MemError> {
        mm.with_group(self.group, heap, |g| g.footprint_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;
    use std::path::PathBuf;

    fn setup() -> (Heap, MemoryManager) {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "deca-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        (Heap::new(HeapConfig::small()), MemoryManager::new(4096, dir))
    }

    #[test]
    fn sfst_block_roundtrip() {
        let (mut heap, mut mm) = setup();
        let mut block = DecaCacheBlock::new::<(f64, i64)>(&mut mm);
        for i in 0..1000i64 {
            block.append(&mut mm, &mut heap, &(i as f64 * 0.5, i)).unwrap();
        }
        assert_eq!(block.len(), 1000);
        let back: Vec<(f64, i64)> = block.decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(back.len(), 1000);
        assert_eq!(back[17], (8.5, 17));
        // ~1000 records * 16B in 4KB pages => only a handful of pages
        // (few traced objects), the point of decomposition.
        assert!(heap.external_count() <= 8);
        block.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn rfst_block_roundtrip() {
        let (mut heap, mut mm) = setup();
        let mut block = DecaCacheBlock::new::<(i64, Vec<f64>)>(&mut mm);
        let recs: Vec<(i64, Vec<f64>)> =
            (0..100).map(|i| (i, vec![i as f64; (i % 7) as usize])).collect();
        for r in &recs {
            block.append(&mut mm, &mut heap, r).unwrap();
        }
        let back: Vec<(i64, Vec<f64>)> = block.decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn fold_without_materialisation() {
        let (mut heap, mut mm) = setup();
        let mut block = DecaCacheBlock::new::<f64>(&mut mm);
        for i in 1..=100 {
            block.append(&mut mm, &mut heap, &(i as f64)).unwrap();
        }
        // Sum by reading bytes directly (the "transformed code" path).
        let sum = block
            .fold_bytes(&mut mm, &mut heap, 0.0f64, |acc, bytes| {
                acc + f64::from_le_bytes(bytes[..8].try_into().unwrap())
            })
            .unwrap();
        assert_eq!(sum, 5050.0);
    }

    #[test]
    fn release_is_idempotent() {
        let (mut heap, mut mm) = setup();
        let mut block = DecaCacheBlock::new::<f64>(&mut mm);
        block.append(&mut mm, &mut heap, &1.0).unwrap();
        block.release(&mut mm, &mut heap);
        block.release(&mut mm, &mut heap);
        assert!(block.is_released());
        assert_eq!(heap.external_bytes(), 0);
    }
}
