//! Page-group spill files (Appendix C).
//!
//! Decomposed bytes are written to disk *verbatim* — the paper's point that
//! Deca needs no serialization step before swapping or network transfer,
//! unlike Spark, which must serialize cache blocks on eviction. One file
//! per spilled group, named by group id.

use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use crate::page::Page;

/// Disk storage for swapped-out page groups.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    /// Per-page byte sizes of each spilled group (pages may be
    /// heterogeneous: oversized segments get dedicated pages).
    sizes: std::collections::HashMap<u32, Vec<usize>>,
}

impl SpillStore {
    pub fn new(dir: PathBuf) -> SpillStore {
        SpillStore { dir, sizes: std::collections::HashMap::new() }
    }

    fn path(&self, id: u32) -> PathBuf {
        self.dir.join(format!("group-{id}.spill"))
    }

    /// Write a group's pages to its spill file (raw page bytes
    /// back-to-back; sizes kept in memory).
    pub fn write(&mut self, id: u32, pages: &[Page]) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut f = std::io::BufWriter::new(fs::File::create(self.path(id))?);
        for p in pages {
            f.write_all(p.bytes())?;
        }
        f.flush()?;
        self.sizes.insert(id, pages.iter().map(|p| p.len()).collect());
        Ok(())
    }

    /// Read a group's pages back (sizes restored from the spill record).
    pub fn read(&self, id: u32) -> std::io::Result<Vec<Page>> {
        let sizes = self.sizes.get(&id).cloned().unwrap_or_default();
        let mut f = std::io::BufReader::new(fs::File::open(self.path(id))?);
        let mut pages = Vec::with_capacity(sizes.len());
        for size in sizes {
            let mut p = Page::new(size);
            f.read_exact(p.bytes_mut())?;
            pages.push(p);
        }
        Ok(pages)
    }

    pub fn page_count(&self, id: u32) -> usize {
        self.sizes.get(&id).map(|s| s.len()).unwrap_or(0)
    }

    /// The per-page byte sizes of a spilled group — the part of the spill
    /// record that lives only in memory and would be lost in a crash,
    /// which is why the engine's spill manifest persists a copy.
    pub fn page_sizes(&self, id: u32) -> Option<&[usize]> {
        self.sizes.get(&id).map(|s| s.as_slice())
    }

    /// Where a group's spill file lives (whether or not it exists), so
    /// callers can checksum the payload without going through `read`.
    pub fn file_path(&self, id: u32) -> PathBuf {
        self.path(id)
    }

    /// Total spilled bytes of one group.
    pub fn group_bytes(&self, id: u32) -> usize {
        self.sizes.get(&id).map(|s| s.iter().sum()).unwrap_or(0)
    }

    /// Delete a group's spill file (after swap-in or group release).
    pub fn remove(&mut self, id: u32) {
        if self.sizes.remove(&id).is_some() {
            let _ = fs::remove_file(self.path(id));
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        for (&id, _) in std::mem::take(&mut self.sizes).iter() {
            let _ = fs::remove_file(self.path(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "deca-spill-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn roundtrip() {
        let dir = tmp();
        let mut store = SpillStore::new(dir.clone());
        let mut pages = vec![Page::new(64), Page::new(64)];
        pages[0].write_i64(0, 123);
        pages[1].write_f64(8, 4.5);
        store.write(7, &pages).unwrap();
        assert_eq!(store.page_count(7), 2);
        assert_eq!(store.group_bytes(7), 128);
        let back = store.read(7).unwrap();
        assert_eq!(back[0].read_i64(0), 123);
        assert_eq!(back[1].read_f64(8), 4.5);
        store.remove(7);
        assert_eq!(store.page_count(7), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_cleans_up() {
        let dir = tmp();
        {
            let mut store = SpillStore::new(dir.clone());
            store.write(1, &[Page::new(16)]).unwrap();
            assert!(dir.join("group-1.spill").exists());
        }
        assert!(!dir.join("group-1.spill").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
