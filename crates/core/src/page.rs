//! A memory page: a fixed-size byte array with little-endian primitive
//! accessors.
//!
//! Pages are "unified byte arrays with a common fixed size" (§4.3.1). The
//! page size trade-off the paper describes — too small ⇒ many pages ⇒ GC
//! trace overhead; too large ⇒ unused tail space — is exercised by the
//! page-size ablation bench.

/// One fixed-size byte page.
#[derive(Clone, Debug)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    pub fn new(size: usize) -> Page {
        Page { data: vec![0u8; size].into_boxed_slice() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    pub fn slice_mut(&mut self, off: usize, len: usize) -> &mut [u8] {
        &mut self.data[off..off + len]
    }

    pub fn write_bytes(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    pub fn read_f64(&self, off: usize) -> f64 {
        f64::from_le_bytes(self.data[off..off + 8].try_into().expect("8 bytes"))
    }

    pub fn write_f64(&mut self, off: usize, v: f64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn read_i64(&self, off: usize) -> i64 {
        i64::from_le_bytes(self.data[off..off + 8].try_into().expect("8 bytes"))
    }

    pub fn write_i64(&mut self, off: usize, v: i64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn read_i32(&self, off: usize) -> i32 {
        i32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"))
    }

    pub fn write_i32(&mut self, off: usize, v: i32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn read_u8(&self, off: usize) -> u8 {
        self.data[off]
    }

    pub fn write_u8(&mut self, off: usize, v: u8) {
        self.data[off] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut p = Page::new(64);
        p.write_f64(0, -3.5);
        p.write_i64(8, i64::MIN);
        p.write_i32(16, 42);
        p.write_u8(20, 0xAB);
        assert_eq!(p.read_f64(0), -3.5);
        assert_eq!(p.read_i64(8), i64::MIN);
        assert_eq!(p.read_i32(16), 42);
        assert_eq!(p.read_u8(20), 0xAB);
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn bulk_bytes() {
        let mut p = Page::new(32);
        p.write_bytes(4, &[1, 2, 3, 4, 5]);
        assert_eq!(p.slice(4, 5), &[1, 2, 3, 4, 5]);
        p.slice_mut(4, 2).copy_from_slice(&[9, 8]);
        assert_eq!(p.slice(4, 5), &[9, 8, 3, 4, 5]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let p = Page::new(8);
        p.read_f64(4);
    }
}
