//! Hash-based shuffle buffer for **variable-size** keys/values — the case
//! where Figure 6(b)'s pointer array is mandatory.
//!
//! §4.3.2: "we use an array to store the pointers to the keys and values
//! within a page. The hashing and sorting operations are performed on the
//! pointer arrays. However, the pointer array can be avoided for a
//! hash-based shuffle buffer with both the Key and the Value being of
//! primitive types or SFSTs." [`crate::DecaHashShuffle`] is that elided
//! fast path; this buffer is the general one: framed key segments, a
//! pointer table carrying `(key ptr, key len, value ptr)`, and in-place
//! value combining when the value is an SFST.
//!
//! Used by string-keyed aggregations (the paper's WordCount has text
//! keys) and by any UDT key the classifier marks RFST.

use deca_heap::Heap;

use crate::group::SegPtr;
use crate::manager::{GroupId, MemError, MemoryManager};

fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One pointer-array entry: where the key and value bytes live.
#[derive(Copy, Clone, Debug)]
struct Slot {
    key: SegPtr,
    key_len: u32,
    val: SegPtr,
}

/// Hash shuffle with variable-size (framed) keys and fixed-size (SFST)
/// values combined in place.
#[derive(Debug)]
pub struct DecaVarHashShuffle {
    group: GroupId,
    val_size: usize,
    /// Open addressing over pointer-array entries (Figure 6b's left side).
    table: Vec<Option<Slot>>,
    len: usize,
    pub combines: u64,
    released: bool,
}

impl DecaVarHashShuffle {
    pub fn new(mm: &mut MemoryManager, val_size: usize) -> DecaVarHashShuffle {
        let group = mm.create_group();
        mm.set_swappable(group, false);
        DecaVarHashShuffle {
            group,
            val_size,
            table: vec![None; 1024],
            len: 0,
            combines: 0,
            released: false,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Insert a pair; on a key hit, combine into the value's segment in
    /// place. Key bytes are stored once (framed), values unframed.
    pub fn insert(
        &mut self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        key: &[u8],
        val: &[u8],
        mut combine: impl FnMut(&mut [u8], &[u8]),
    ) -> Result<(), MemError> {
        assert_eq!(val.len(), self.val_size);
        if (self.len + 1) * 10 > self.table.len() * 7 {
            self.grow(mm, heap)?;
        }
        let mask = self.table.len() - 1;
        let mut idx = (hash_bytes(key) as usize) & mask;
        let val_size = self.val_size;
        let table = &mut self.table;
        let len = &mut self.len;
        let combines = &mut self.combines;
        mm.with_group_mut(self.group, heap, |g, h| {
            loop {
                match table[idx] {
                    Some(slot) if g.slice(slot.key, slot.key_len as usize) == key => {
                        combine(g.slice_mut(slot.val, val_size), val);
                        *combines += 1;
                        return Ok(());
                    }
                    Some(_) => idx = (idx + 1) & mask,
                    None => {
                        // Key framed (so scans can recover its length),
                        // value unframed right behind it.
                        let kptr = g.append_framed(h, key)?;
                        let vptr = g.reserve(h, val_size)?;
                        g.slice_mut(vptr, val_size).copy_from_slice(val);
                        table[idx] = Some(Slot { key: kptr, key_len: key.len() as u32, val: vptr });
                        *len += 1;
                        return Ok(());
                    }
                }
            }
        })
    }

    fn grow(&mut self, mm: &mut MemoryManager, heap: &mut Heap) -> Result<(), MemError> {
        let new_cap = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![None; new_cap]);
        let mask = new_cap - 1;
        let table = &mut self.table;
        mm.with_group(self.group, heap, |g| {
            for slot in old.into_iter().flatten() {
                let mut idx =
                    (hash_bytes(g.slice(slot.key, slot.key_len as usize)) as usize) & mask;
                while table[idx].is_some() {
                    idx = (idx + 1) & mask;
                }
                table[idx] = Some(slot);
            }
        })
    }

    /// Visit every `(key bytes, value bytes)` pair.
    pub fn for_each(
        &self,
        mm: &mut MemoryManager,
        heap: &mut Heap,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> Result<(), MemError> {
        let val_size = self.val_size;
        let table = &self.table;
        mm.with_group(self.group, heap, |g| {
            for slot in table.iter().flatten() {
                f(g.slice(slot.key, slot.key_len as usize), g.slice(slot.val, val_size));
            }
        })
    }

    pub fn release(&mut self, mm: &mut MemoryManager, heap: &mut Heap) {
        if !self.released {
            mm.release(self.group, heap);
            self.released = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;
    use std::collections::HashMap;
    use std::path::PathBuf;

    fn setup() -> (Heap, MemoryManager) {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "deca-varshuffle-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        (Heap::new(HeapConfig::small()), MemoryManager::new(8192, dir))
    }

    fn add_i64(existing: &mut [u8], new: &[u8]) {
        let a = i64::from_le_bytes(existing[..8].try_into().unwrap());
        let b = i64::from_le_bytes(new[..8].try_into().unwrap());
        existing[..8].copy_from_slice(&(a + b).to_le_bytes());
    }

    #[test]
    fn string_keyed_wordcount() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaVarHashShuffle::new(&mut mm, 8);
        let words = ["the", "quick", "fox", "the", "fox", "the", "a-much-longer-word"];
        let mut expected: HashMap<&str, i64> = HashMap::new();
        for w in words {
            *expected.entry(w).or_insert(0) += 1;
            buf.insert(&mut mm, &mut heap, w.as_bytes(), &1i64.to_le_bytes(), add_i64).unwrap();
        }
        assert_eq!(buf.len(), expected.len());
        assert_eq!(buf.combines, words.len() as u64 - expected.len() as u64);
        let mut got: HashMap<String, i64> = HashMap::new();
        buf.for_each(&mut mm, &mut heap, |k, v| {
            got.insert(
                String::from_utf8(k.to_vec()).unwrap(),
                i64::from_le_bytes(v[..8].try_into().unwrap()),
            );
        })
        .unwrap();
        for (k, v) in expected {
            assert_eq!(got[k], v);
        }
        buf.release(&mut mm, &mut heap);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn many_distinct_variable_keys_grow_table() {
        let (mut heap, mut mm) = setup();
        let mut buf = DecaVarHashShuffle::new(&mut mm, 8);
        for i in 0..5_000u32 {
            let key = format!("key-{i:05}-{}", "x".repeat((i % 17) as usize));
            buf.insert(&mut mm, &mut heap, key.as_bytes(), &(i as i64).to_le_bytes(), add_i64)
                .unwrap();
        }
        assert_eq!(buf.len(), 5_000);
        let mut n = 0usize;
        let mut sum = 0i64;
        buf.for_each(&mut mm, &mut heap, |k, v| {
            assert!(k.starts_with(b"key-"));
            n += 1;
            sum += i64::from_le_bytes(v[..8].try_into().unwrap());
        })
        .unwrap();
        assert_eq!(n, 5_000);
        assert_eq!(sum, (0..5_000i64).sum::<i64>());
        buf.release(&mut mm, &mut heap);
    }

    #[test]
    fn prefix_keys_do_not_collide() {
        // "ab" and "abc" share a byte prefix; framing must distinguish.
        let (mut heap, mut mm) = setup();
        let mut buf = DecaVarHashShuffle::new(&mut mm, 8);
        for (k, v) in [("ab", 1i64), ("abc", 10), ("ab", 2), ("abc", 20), ("a", 100)] {
            buf.insert(&mut mm, &mut heap, k.as_bytes(), &v.to_le_bytes(), add_i64).unwrap();
        }
        let mut got: HashMap<String, i64> = HashMap::new();
        buf.for_each(&mut mm, &mut heap, |k, v| {
            got.insert(
                String::from_utf8(k.to_vec()).unwrap(),
                i64::from_le_bytes(v[..8].try_into().unwrap()),
            );
        })
        .unwrap();
        assert_eq!(got["ab"], 3);
        assert_eq!(got["abc"], 30);
        assert_eq!(got["a"], 100);
        buf.release(&mut mm, &mut heap);
    }
}
