//! Property tests for page/group reclamation (§4.2–§4.3), on the
//! deca-check harness: shared groups live exactly as long as their last
//! container reference, releasing never needs a collection, and arbitrary
//! interleavings of append/release leak nothing.

use std::path::PathBuf;

use deca_check::property::{check, gens, Config};
use deca_check::{prop_assert, prop_assert_eq};
use deca_core::{DecaCacheBlock, MemoryManager};
use deca_heap::{Heap, HeapConfig};

fn cfg() -> Config {
    Config::with_cases(64)
}

/// Unique per process + thread, like the workspace tests' TestDir (this
/// crate-level test can't see that workspace-root helper module).
fn spill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "deca-core-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn mm(tag: &str) -> MemoryManager {
    MemoryManager::new(16 << 10, spill_dir(tag))
}

#[test]
fn shared_groups_survive_until_the_last_reference_dies() {
    // N extra container references to one cached group: the pages (and the
    // data behind them) must outlive every release but the last.
    let gen = gens::pair(gens::usize_in(1..6), gens::vec_of(gens::any_i64(), 1..200));
    check(cfg(), gen, |(extra_refs, values)| {
        let mut heap = Heap::new(HeapConfig::small());
        let mut mm = mm("shared");
        let mut block = DecaCacheBlock::new::<i64>(&mut mm);
        for v in values {
            block.append(&mut mm, &mut heap, v).map_err(|e| format!("append: {e:?}"))?;
        }
        let group = block.group();
        for _ in 0..*extra_refs {
            mm.retain(group);
        }
        prop_assert_eq!(mm.refcount(group), *extra_refs as u32 + 1);

        block.release(&mut mm, &mut heap);
        for remaining in (1..=*extra_refs).rev() {
            prop_assert!(
                heap.external_bytes() > 0,
                "pages gone with {remaining} references still live"
            );
            // Data stays readable through every surviving reference.
            let decoded: Vec<i64> = mm
                .with_group(group, &mut heap, |g| {
                    let mut out = Vec::new();
                    let mut r = g.reader();
                    while let Some(ptr) = r.next_fixed(8) {
                        out.push(i64::from_le_bytes(g.slice(ptr, 8).try_into().unwrap()));
                    }
                    out
                })
                .map_err(|e| format!("group vanished while referenced: {e:?}"))?;
            prop_assert_eq!(&decoded, values);
            mm.release(group, &mut heap);
        }
        prop_assert_eq!(heap.external_bytes(), 0, "last release returns every page");
        prop_assert_eq!(mm.live_groups(), 0);
        Ok(())
    });
}

#[test]
fn release_never_requires_a_collection() {
    // The paper's central claim at micro scale: reclaiming a lifetime-bound
    // container is a refcount decrement plus free-list pushes — the
    // tracing collector must not run.
    let gen = gens::vec_of(gens::any_i64(), 0..400);
    check(cfg(), gen, |values| {
        let mut heap = Heap::new(HeapConfig::small());
        let mut mm = mm("nocollect");
        let mut block = DecaCacheBlock::new::<i64>(&mut mm);
        for v in values {
            block.append(&mut mm, &mut heap, v).map_err(|e| format!("append: {e:?}"))?;
        }
        let gcs_before = heap.stats().total_collections();
        block.release(&mut mm, &mut heap);
        prop_assert_eq!(heap.stats().total_collections(), gcs_before);
        prop_assert_eq!(heap.external_bytes(), 0);
        Ok(())
    });
}

#[test]
fn interleaved_append_and_release_never_leaks_pages() {
    // A random schedule over a small pool of cache blocks: each op either
    // appends a record to block (op % pool) or releases that block. After
    // draining everything, no page and no group may remain.
    let gen = gens::vec_of(gens::pair(gens::usize_in(0..4), gens::bools()), 0..300);
    check(cfg(), gen, |ops| {
        let mut heap = Heap::new(HeapConfig::small());
        let mut mm = mm("interleave");
        let mut blocks: Vec<Option<DecaCacheBlock>> = (0..4).map(|_| None).collect();
        let mut next = 0i64;
        for (slot, is_release) in ops {
            if *is_release {
                if let Some(mut block) = blocks[*slot].take() {
                    block.release(&mut mm, &mut heap);
                }
            } else {
                let block =
                    blocks[*slot].get_or_insert_with(|| DecaCacheBlock::new::<i64>(&mut mm));
                block.append(&mut mm, &mut heap, &next).map_err(|e| format!("append: {e:?}"))?;
                next += 1;
            }
        }
        // Any block still open holds pages; drain them.
        for mut block in blocks.iter_mut().filter_map(Option::take) {
            block.release(&mut mm, &mut heap);
        }
        prop_assert_eq!(heap.external_bytes(), 0, "all pages returned");
        prop_assert_eq!(heap.external_count(), 0);
        prop_assert_eq!(mm.live_groups(), 0, "no group outlives its container");
        Ok(())
    });
}
