//! Spark-mode shuffle buffers: heap-object hash tables with eager
//! combining (§4.1–§4.2).
//!
//! * [`SparkHashShuffle`] models `reduceByKey`: Key objects stay intact in
//!   the buffer while **every combine allocates a new Value object**,
//!   killing the old one — the churn behind WordCount's GC saturation
//!   (Figure 8a).
//! * [`SparkGroupShuffle`] models `groupByKey`: per-key value lists grow
//!   like `ArrayBuffer`s, re-allocating doubled backing arrays whose old
//!   versions become garbage.
//!
//! Both keep all key/value object references reachable from a rooted heap
//! `Object[]`, so the collector must trace the whole buffer on every full
//! collection — exactly Spark's behaviour. The Deca counterparts live in
//! `deca_core::shuffle` and store raw bytes with in-place combining.

use std::collections::HashMap;
use std::hash::Hash;

use deca_heap::{Heap, OomError, RootId};

use crate::cache::object_array_class;
use crate::record::Record;

/// Heap-object hash shuffle with eager aggregation (`reduceByKey`).
pub struct SparkHashShuffle<K: Record, V: Record> {
    classes_k: <K as crate::record::HeapRecord>::Classes,
    classes_v: V::Classes,
    /// Rooted `Object[]` holding interleaved `[key, value]` references.
    array: RootId,
    capacity: usize,
    len: usize,
    /// Rust-side index for lookup (the JVM hash table's bucket array).
    index: HashMap<K, usize>,
    released: bool,
}

impl<K, V> SparkHashShuffle<K, V>
where
    K: Record + Eq + Hash + Clone,
    V: Record,
{
    pub fn new(heap: &mut Heap) -> Result<Self, OomError> {
        let classes_k = <K as crate::record::HeapRecord>::register(heap);
        let classes_v = <V as crate::record::HeapRecord>::register(heap);
        let cls = object_array_class(heap);
        let capacity = 1024;
        let arr = heap.alloc_array(cls, capacity * 2)?;
        let array = heap.add_root(arr);
        Ok(SparkHashShuffle {
            classes_k,
            classes_v,
            array,
            capacity,
            len: 0,
            index: HashMap::new(),
            released: false,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert with eager combining. On a hit, the old Value object is
    /// loaded, combined, and a **new** Value object is allocated (the old
    /// becomes garbage — Spark's aggregate churn, §4.2 case 2).
    pub fn insert(
        &mut self,
        heap: &mut Heap,
        key: K,
        value: V,
        combine: impl FnOnce(V, V) -> V,
    ) -> Result<(), OomError> {
        if let Some(&slot) = self.index.get(&key) {
            let arr = heap.root_ref(self.array);
            let old_obj = heap.array_get_ref(arr, slot * 2 + 1);
            let old = V::load(heap, &self.classes_v, old_obj);
            let combined = combine(old, value);
            let new_obj = combined.store(heap, &self.classes_v)?;
            let arr = heap.root_ref(self.array);
            heap.array_set_ref(arr, slot * 2 + 1, new_obj);
            return Ok(());
        }
        if self.len == self.capacity {
            self.grow(heap)?;
        }
        let slot = self.len;
        let kobj = key.store(heap, &self.classes_k)?;
        let ks = heap.push_stack(kobj);
        let vobj = value.store(heap, &self.classes_v)?;
        let arr = heap.root_ref(self.array);
        heap.array_set_ref(arr, slot * 2, heap.stack_ref(ks));
        heap.array_set_ref(arr, slot * 2 + 1, vobj);
        heap.truncate_stack(ks);
        self.index.insert(key, slot);
        self.len += 1;
        Ok(())
    }

    fn grow(&mut self, heap: &mut Heap) -> Result<(), OomError> {
        let cls = object_array_class(heap);
        let new_cap = self.capacity * 2;
        let new_arr = heap.alloc_array(cls, new_cap * 2)?;
        let old_arr = heap.root_ref(self.array);
        for i in 0..self.len * 2 {
            let v = heap.array_get_ref(old_arr, i);
            heap.array_set_ref(new_arr, i, v);
        }
        heap.set_root(self.array, new_arr); // old array becomes garbage
        self.capacity = new_cap;
        Ok(())
    }

    /// Read out all pairs (loading each from its heap objects).
    pub fn drain(&self, heap: &Heap) -> Vec<(K, V)> {
        let arr = heap.root_ref(self.array);
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let kobj = heap.array_get_ref(arr, i * 2);
            let vobj = heap.array_get_ref(arr, i * 2 + 1);
            out.push((K::load(heap, &self.classes_k, kobj), V::load(heap, &self.classes_v, vobj)));
        }
        out
    }

    /// Visit each pair without collecting.
    pub fn for_each(&self, heap: &Heap, mut f: impl FnMut(K, V)) {
        let arr = heap.root_ref(self.array);
        for i in 0..self.len {
            let kobj = heap.array_get_ref(arr, i * 2);
            let vobj = heap.array_get_ref(arr, i * 2 + 1);
            f(K::load(heap, &self.classes_k, kobj), V::load(heap, &self.classes_v, vobj));
        }
    }

    /// Release the buffer: the root dies; space is reclaimed only by the
    /// next collection (Spark semantics — not lifetime-based).
    pub fn release(&mut self, heap: &mut Heap) {
        if !self.released {
            heap.remove_root(self.array);
            self.released = true;
        }
    }
}

/// Heap-object grouping shuffle (`groupByKey`): value lists as doubling
/// heap `Object[]`s.
pub struct SparkGroupShuffle<K, V: Record> {
    classes_v: V::Classes,
    /// slot -> rooted value-list array (list object refs) + length.
    lists: Vec<(RootId, usize, usize)>, // (root, len, cap)
    index: HashMap<K, usize>,
    released: bool,
}

impl<K, V> SparkGroupShuffle<K, V>
where
    K: Eq + Hash + Clone,
    V: Record,
{
    pub fn new(heap: &mut Heap) -> Self {
        let classes_v = <V as crate::record::HeapRecord>::register(heap);
        SparkGroupShuffle { classes_v, lists: Vec::new(), index: HashMap::new(), released: false }
    }

    pub fn group_count(&self) -> usize {
        self.lists.len()
    }

    /// Append a value to its key's list (doubling growth; old arrays die).
    pub fn append(&mut self, heap: &mut Heap, key: K, value: V) -> Result<(), OomError> {
        let vobj = value.store(heap, &self.classes_v)?;
        let vs = heap.push_stack(vobj);
        let slot = match self.index.get(&key) {
            Some(&s) => s,
            None => {
                let cls = object_array_class(heap);
                let arr = heap.alloc_array(cls, 4)?;
                let root = heap.add_root(arr);
                self.lists.push((root, 0, 4));
                self.index.insert(key, self.lists.len() - 1);
                self.lists.len() - 1
            }
        };
        let (root, len, cap) = self.lists[slot];
        if len == cap {
            let cls = object_array_class(heap);
            let bigger = heap.alloc_array(cls, cap * 2)?;
            let old = heap.root_ref(root);
            for i in 0..len {
                let v = heap.array_get_ref(old, i);
                heap.array_set_ref(bigger, i, v);
            }
            heap.set_root(root, bigger); // old list array becomes garbage
            self.lists[slot].2 = cap * 2;
        }
        let arr = heap.root_ref(root);
        heap.array_set_ref(arr, len, heap.stack_ref(vs));
        heap.truncate_stack(vs);
        self.lists[slot].1 = len + 1;
        Ok(())
    }

    /// Visit each group as `(key, values)`.
    pub fn for_each_group(&self, heap: &Heap, mut f: impl FnMut(&K, Vec<V>)) {
        for (key, &slot) in &self.index {
            let (root, len, _) = self.lists[slot];
            let arr = heap.root_ref(root);
            let mut vals = Vec::with_capacity(len);
            for i in 0..len {
                let vobj = heap.array_get_ref(arr, i);
                vals.push(V::load(heap, &self.classes_v, vobj));
            }
            f(key, vals);
        }
    }

    pub fn release(&mut self, heap: &mut Heap) {
        if !self.released {
            for (root, _, _) in &self.lists {
                heap.remove_root(*root);
            }
            self.released = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;

    #[test]
    fn eager_aggregation_matches_fold() {
        let mut heap = Heap::new(HeapConfig::with_total(16 << 20));
        let mut buf: SparkHashShuffle<(i64, i64), (i64, i64)> = {
            // keys and values both (i64,i64) pairs for simplicity of the
            // Record impl; key identity is the first element.
            SparkHashShuffle::new(&mut heap).unwrap()
        };
        let mut expected: HashMap<i64, i64> = HashMap::new();
        for i in 0..20_000i64 {
            let k = i % 313;
            *expected.entry(k).or_insert(0) += i;
            buf.insert(&mut heap, (k, 0), (i, 0), |a, b| (a.0 + b.0, 0)).unwrap();
        }
        assert_eq!(buf.len(), 313);
        for (k, v) in buf.drain(&heap) {
            assert_eq!(v.0, expected[&k.0], "aggregate for key {}", k.0);
        }
        // Combines churned garbage: allocations far exceed live objects.
        assert!(heap.stats().objects_allocated > 20_000);
        buf.release(&mut heap);
        heap.full_gc();
        assert_eq!(heap.object_count(), 0, "released buffer is garbage");
    }

    #[test]
    fn grouping_collects_all_values() {
        let mut heap = Heap::new(HeapConfig::with_total(16 << 20));
        let mut buf: SparkGroupShuffle<i64, (i64, i64)> = SparkGroupShuffle::new(&mut heap);
        for i in 0..1000i64 {
            buf.append(&mut heap, i % 10, (i, i * 2)).unwrap();
        }
        assert_eq!(buf.group_count(), 10);
        let mut seen = 0;
        buf.for_each_group(&heap, |k, vals| {
            assert_eq!(vals.len(), 100);
            for v in vals {
                assert_eq!(v.0 % 10, *k);
                assert_eq!(v.1, v.0 * 2);
                seen += 1;
            }
        });
        assert_eq!(seen, 1000);
        buf.release(&mut heap);
    }

    #[test]
    fn growth_preserves_buffer_contents() {
        let mut heap = Heap::new(HeapConfig::with_total(32 << 20));
        let mut buf: SparkHashShuffle<(i64, i64), (i64, i64)> =
            SparkHashShuffle::new(&mut heap).unwrap();
        // More distinct keys than the initial capacity (1024).
        for k in 0..5000i64 {
            buf.insert(&mut heap, (k, 0), (k * 7, 0), |a, _| a).unwrap();
        }
        assert_eq!(buf.len(), 5000);
        let mut count = 0;
        buf.for_each(&heap, |k, v| {
            assert_eq!(v.0, k.0 * 7);
            count += 1;
        });
        assert_eq!(count, 5000);
    }
}
