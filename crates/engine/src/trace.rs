//! The structured run trace: typed events recorded per executor, merged
//! deterministically, exported as Chrome trace-event JSON and a flat run
//! manifest.
//!
//! The paper's evidence is observability artifacts — the lifetime
//! timelines of Figures 8(a)/9(a), the GC-ratio rows of Table 3, the
//! per-task bars of Figure 11. This module turns a run into the same kind
//! of artifact: every stage, task attempt, collection pause, spill,
//! retry, quarantine, restart, OOM recovery, and lifetime-based page-group
//! release becomes a [`TraceEvent`] with both **wall** and **simulated**
//! timestamps.
//!
//! ## Clocks
//!
//! Every event carries two timelines:
//!
//! * `wall_ns`/`dur_ns` — measured monotonic time. Task attempts and
//!   driver events are relative to their recorder's epoch; GC pauses use
//!   the heap's own epoch (the clock [`crate::Timeline`] samples against),
//!   so the trace aligns with the lifetime figures.
//! * `sim_ns`/`sim_dur_ns` — the simulated job clock: attributed task
//!   time (the sum of the [`crate::TaskMetrics`] buckets, which includes
//!   modelled spill I/O and backoff that is accounted, never slept).
//!
//! Wall values vary run to run; the *event structure* — which events, in
//! which logical order — is deterministic for a deterministic job, which
//! is why [`RunTrace::merge`] orders by logical position (stage, task,
//! attempt, kind, executor, sequence), not by timestamp.
//!
//! ## Exporters
//!
//! [`RunTrace::to_chrome_string`] emits the Chrome trace-event format
//! (`{"traceEvents": [...]}` with `ph: "X"` complete events), loadable in
//! `chrome://tracing` or Perfetto: one row per executor plus a driver
//! row. Exact nanosecond fields ride in each event's `args`, so
//! [`RunTrace::from_chrome_string`] round-trips losslessly even though
//! the `ts`/`dur` fields are microseconds. [`RunTrace::to_manifest_string`]
//! emits a flat run-manifest JSON with per-stage roll-ups — the diffable
//! record the perf-regression gate and CI read.

use std::time::{Duration, Instant};

use deca_check::json::Json;

/// The typed event vocabulary of a run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TraceEventKind {
    /// A stage began (driver event; `count` = task count).
    StageStart,
    /// A stage finished or failed (driver event; `count` = attempts).
    StageEnd,
    /// One physical task run (including OOM in-place re-runs).
    TaskAttempt,
    /// The pull scheduler let an executor claim a task outside its
    /// `t % E` affinity set (`count` = the task's home executor; the
    /// event's `executor` is the thief). Wave scheduling never emits
    /// this.
    TaskSteal,
    /// One stop-the-world collection pause attributed to the enclosing
    /// attempt (`count` = objects traced, `bytes` = live bytes after).
    GcPause,
    /// Spill/swap I/O performed by the enclosing attempt (`bytes` moved;
    /// `dur` is the modelled disk time).
    SpillIo,
    /// The driver rescheduled a failed attempt onto another executor
    /// (`executor` = where it failed, `count` = destination executor).
    Retry,
    /// An executor was quarantined (blacklisted).
    Quarantine,
    /// The last healthy executor was restarted in place.
    Restart,
    /// A cold cache block survived restart-in-place: verified against the
    /// spill manifest and kept, instead of being recomputed from lineage
    /// (`bytes` = on-disk payload size, `count` = cached records).
    CacheRehydrate,
    /// An OOM-classified failure absorbed by spill-and-re-run.
    OomRecovery,
    /// A page group reclaimed at refcount zero — lifetime-based release
    /// (`count` = pages, `bytes` = footprint returned).
    PageGroupRelease,
    /// A shuffle run's page ownership moved to a reducer without a byte
    /// copy — the zero-copy exchange hand-over (`count` = pages moved,
    /// `bytes` = payload carried).
    PageHandover,
    /// The watchdog launched a speculative duplicate of a slow attempt
    /// (`executor` = where the duplicate runs, `count` = the primary
    /// copy's home executor). Only the pull scheduler emits this.
    TaskSpeculative,
    /// The watchdog failed an attempt that exceeded its `task_deadline`
    /// budget (`sim_dur_ns` = the charged deadline budget).
    TaskTimeout,
    /// A job was cancelled — `JobHandle::cancel()` or its `JobSpec`
    /// deadline expiring (driver event; the label carries the reason).
    JobCancelled,
}

impl TraceEventKind {
    /// Stable kebab-case name (the Chrome `cat` field and manifest key).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::StageStart => "stage-start",
            TraceEventKind::StageEnd => "stage-end",
            TraceEventKind::TaskAttempt => "task-attempt",
            TraceEventKind::TaskSteal => "task-steal",
            TraceEventKind::GcPause => "gc-pause",
            TraceEventKind::SpillIo => "spill-io",
            TraceEventKind::Retry => "retry",
            TraceEventKind::Quarantine => "quarantine",
            TraceEventKind::Restart => "restart",
            TraceEventKind::CacheRehydrate => "cache-rehydrate",
            TraceEventKind::OomRecovery => "oom-recovery",
            TraceEventKind::PageGroupRelease => "page-group-release",
            TraceEventKind::PageHandover => "page-handover",
            TraceEventKind::TaskSpeculative => "task-speculative",
            TraceEventKind::TaskTimeout => "task-timeout",
            TraceEventKind::JobCancelled => "job-cancelled",
        }
    }

    /// Parse the stable name back (exporter round-trip).
    pub fn from_name(name: &str) -> Option<TraceEventKind> {
        TraceEventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    pub const ALL: [TraceEventKind; 16] = [
        TraceEventKind::StageStart,
        TraceEventKind::StageEnd,
        TraceEventKind::TaskAttempt,
        TraceEventKind::TaskSteal,
        TraceEventKind::GcPause,
        TraceEventKind::SpillIo,
        TraceEventKind::Retry,
        TraceEventKind::Quarantine,
        TraceEventKind::Restart,
        TraceEventKind::CacheRehydrate,
        TraceEventKind::OomRecovery,
        TraceEventKind::PageGroupRelease,
        TraceEventKind::PageHandover,
        TraceEventKind::TaskSpeculative,
        TraceEventKind::TaskTimeout,
        TraceEventKind::JobCancelled,
    ];

    /// Merge-order rank *within* one (stage, task, attempt) cell: the
    /// claim decision, the attempt itself, then what happened inside it,
    /// then the driver's reaction to it.
    fn rank(self) -> u8 {
        match self {
            TraceEventKind::StageStart => 0,
            TraceEventKind::TaskSteal => 1,
            // A speculative launch is a claim decision like a steal: it
            // sorts before the attempt bodies of its (task, attempt) cell.
            TraceEventKind::TaskSpeculative => 2,
            TraceEventKind::TaskAttempt => 3,
            TraceEventKind::GcPause => 4,
            TraceEventKind::SpillIo => 5,
            TraceEventKind::PageGroupRelease => 6,
            // The hand-over happens at the end of the map attempt, after
            // any releases the attempt performed.
            TraceEventKind::PageHandover => 7,
            TraceEventKind::OomRecovery => 8,
            // The watchdog's verdict on the attempt precedes the driver's
            // retry reaction to it.
            TraceEventKind::TaskTimeout => 9,
            TraceEventKind::Retry => 10,
            TraceEventKind::Quarantine => 11,
            TraceEventKind::Restart => 12,
            // Rehydration is part of the restart, so it sorts right after
            // the Restart marker it belongs to.
            TraceEventKind::CacheRehydrate => 13,
            TraceEventKind::JobCancelled => 14,
            TraceEventKind::StageEnd => 15,
        }
    }
}

impl std::fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded event. `bytes`/`count` are kind-specific payloads (see
/// [`TraceEventKind`]); unused fields are zero.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub kind: TraceEventKind,
    /// The job this event belongs to. Single-job drivers leave it 0; the
    /// multi-job server stamps every event with its job id so merged
    /// traces stay separable per job.
    pub job: u64,
    /// The stage this event belongs to (driver-lifecycle events use the
    /// stage they wrap).
    pub stage: String,
    /// Task index within the stage; `None` for stage- or executor-scoped
    /// events (StageStart/End, Quarantine, Restart).
    pub task: Option<usize>,
    /// Scheduling attempt the event belongs to (0 on the first run).
    pub attempt: u32,
    /// The executor involved; `None` for driver-scoped events.
    pub executor: Option<usize>,
    /// Display label (the Chrome `name` field), e.g. `"wc-map-3"`.
    pub label: String,
    /// Wall-clock start, ns since the recorder's epoch (heap epoch for
    /// GC pauses; see the module docs).
    pub wall_ns: u64,
    /// Wall-clock duration, ns (0 for instantaneous events).
    pub dur_ns: u64,
    /// Simulated-clock start, ns.
    pub sim_ns: u64,
    /// Simulated duration, ns.
    pub sim_dur_ns: u64,
    /// Kind-specific byte payload.
    pub bytes: u64,
    /// Kind-specific count payload.
    pub count: u64,
    /// Per-recorder sequence number (the final deterministic tiebreak).
    pub seq: u64,
}

impl TraceEvent {
    /// The deterministic merge key: logical position in the job, never a
    /// wall timestamp. `stage_rank` is the stage's first-execution index,
    /// supplied by the merger. Within a stage, the start marker sorts
    /// first and the end marker last; everything else groups by task.
    fn sort_key(&self, stage_rank: usize) -> (usize, u8, usize, u32, u8, usize, u64) {
        let phase = match self.kind {
            TraceEventKind::StageStart => 0,
            TraceEventKind::StageEnd => 2,
            _ => 1,
        };
        (
            stage_rank,
            phase,
            self.task.unwrap_or(usize::MAX),
            self.attempt,
            self.kind.rank(),
            self.executor.map_or(usize::MAX, |x| x),
            self.seq,
        )
    }
}

/// Per-recorder event sink. One lives in each executor (its thread is the
/// only writer) and one in the driver; [`RunTrace::merge`] combines them.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: bool,
    epoch: Instant,
    events: Vec<TraceEvent>,
    seq: u64,
    /// Job id stamped on every recorded event (0 for single-job drivers;
    /// the server sets it per attempt).
    job: u64,
    /// Context the enclosing scheduled attempt sets so nested events
    /// (GC pauses, spills, releases) inherit their (stage, task, attempt).
    ctx: Option<(String, usize, u32)>,
}

impl TraceRecorder {
    pub fn new(enabled: bool) -> TraceRecorder {
        TraceRecorder {
            enabled,
            epoch: Instant::now(),
            events: Vec::new(),
            seq: 0,
            job: 0,
            ctx: None,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Set the job id stamped on events recorded from here on.
    pub fn set_job(&mut self, job: u64) {
        self.job = job;
    }

    pub fn job(&self) -> u64 {
        self.job
    }

    /// Nanoseconds since this recorder's epoch (saturating at u64::MAX,
    /// i.e. after ~584 years).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Set the attempt context nested events record under.
    pub fn set_context(&mut self, stage: &str, task: usize, attempt: u32) {
        self.ctx = Some((stage.to_string(), task, attempt));
    }

    pub fn clear_context(&mut self) {
        self.ctx = None;
    }

    /// Record one event; `stage`/`task`/`attempt` default from the
    /// current context when `None`. `executor` is for driver-side
    /// recorders attributing an event to a specific executor — executor
    /// recorders pass `None` and the merge fills their index in. A
    /// disabled recorder drops everything.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: TraceEventKind,
        stage: Option<&str>,
        task: Option<usize>,
        attempt: Option<u32>,
        executor: Option<usize>,
        label: impl Into<String>,
        wall_ns: u64,
        dur_ns: u64,
        sim_ns: u64,
        sim_dur_ns: u64,
        bytes: u64,
        count: u64,
    ) {
        if !self.enabled {
            return;
        }
        let (ctx_stage, ctx_task, ctx_attempt) = match &self.ctx {
            Some((s, t, a)) => (Some(s.as_str()), Some(*t), Some(*a)),
            None => (None, None, None),
        };
        let seq = self.seq;
        self.seq += 1;
        self.events.push(TraceEvent {
            kind,
            job: self.job,
            stage: stage.or(ctx_stage).unwrap_or("").to_string(),
            task: task.or(ctx_task),
            attempt: attempt.or(ctx_attempt).unwrap_or(0),
            executor,
            label: label.into(),
            wall_ns,
            dur_ns,
            sim_ns,
            sim_dur_ns,
            bytes,
            count,
            seq,
        });
    }

    /// Events recorded so far (merge input; also handy in tests).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Split off every event from index `mark` onwards (the server drains
    /// the delta an attempt recorded and routes it to that attempt's job).
    pub fn drain_from(&mut self, mark: usize) -> Vec<TraceEvent> {
        if mark >= self.events.len() {
            Vec::new()
        } else {
            self.events.split_off(mark)
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The merged, deterministically ordered trace of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTrace {
    pub events: Vec<TraceEvent>,
}

impl RunTrace {
    /// Merge the driver's events with each executor's. Executor `i`'s
    /// events get `executor = Some(i)` unless already attributed. Order
    /// is logical — (stage first-run rank, task, attempt, kind, executor,
    /// seq) — so two runs of the same deterministic job merge to the same
    /// event sequence even though wall timestamps differ.
    pub fn merge(driver: &TraceRecorder, executors: &[&TraceRecorder]) -> RunTrace {
        let mut events: Vec<TraceEvent> = driver.events().to_vec();
        for (i, rec) in executors.iter().enumerate() {
            for ev in rec.events() {
                let mut ev = ev.clone();
                ev.executor = ev.executor.or(Some(i));
                events.push(ev);
            }
        }
        RunTrace::from_events(events)
    }

    /// Merge pre-collected, already executor-attributed events (the
    /// server's per-job path). Stage rank is encounter order in `events`,
    /// so callers push driver events first — exactly as [`RunTrace::merge`]
    /// does.
    pub fn from_events(mut events: Vec<TraceEvent>) -> RunTrace {
        // Stage rank = order of first StageStart (driver events come
        // first above, so ranks are driver-defined); stages only ever
        // seen from executor events rank after, in encounter order.
        let mut order: Vec<String> = Vec::new();
        for ev in &events {
            if !order.iter().any(|s| s == &ev.stage) {
                order.push(ev.stage.clone());
            }
        }
        let rank = |stage: &str| order.iter().position(|s| s == stage).unwrap_or(usize::MAX);
        events.sort_by(|a, b| a.sort_key(rank(&a.stage)).cmp(&b.sort_key(rank(&b.stage))));
        RunTrace { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind, in merged order.
    pub fn of_kind(&self, kind: TraceEventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events of one job, in merged order (the server's merged trace
    /// interleaves jobs; per-job views must not bleed into each other).
    pub fn of_job(&self, job: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.job == job)
    }

    /// Distinct job ids present, ascending.
    pub fn jobs(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.job).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    // ------------------------------------------------------------------
    // Chrome trace-event export
    // ------------------------------------------------------------------

    /// The trace as a Chrome trace-event JSON document: `ph: "X"`
    /// complete events on one row (`tid`) per executor, with the driver
    /// on `tid` 0 and executor `i` on `tid` `i + 1`. `ts`/`dur` are
    /// microseconds (the format's unit); the exact nanosecond fields ride
    /// in `args` so parsing back is lossless.
    pub fn to_chrome_json(&self) -> Json {
        let trace_events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                let mut args = vec![
                    ("kind".to_string(), Json::str(e.kind.name())),
                    ("job".to_string(), Json::int(e.job)),
                    ("stage".to_string(), Json::str(&e.stage)),
                ];
                if let Some(t) = e.task {
                    args.push(("task".to_string(), Json::int(t as u64)));
                }
                args.push(("attempt".to_string(), Json::int(e.attempt as u64)));
                for (k, v) in [
                    ("wall_ns", e.wall_ns),
                    ("dur_ns", e.dur_ns),
                    ("sim_ns", e.sim_ns),
                    ("sim_dur_ns", e.sim_dur_ns),
                    ("bytes", e.bytes),
                    ("count", e.count),
                    ("seq", e.seq),
                ] {
                    args.push((k.to_string(), Json::int(v)));
                }
                Json::obj(vec![
                    ("name", Json::str(&e.label)),
                    ("cat", Json::str(e.kind.name())),
                    ("ph", Json::str("X")),
                    ("ts", Json::Num(e.wall_ns as f64 / 1_000.0)),
                    ("dur", Json::Num(e.dur_ns as f64 / 1_000.0)),
                    ("pid", Json::int(1)),
                    ("tid", Json::int(e.executor.map_or(0, |x| x as u64 + 1))),
                    ("args", Json::Obj(args)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("traceEvents", Json::Arr(trace_events)),
            ("displayTimeUnit", Json::str("ms")),
            ("otherData", Json::obj(vec![("schema", Json::str("deca-run-trace-v1"))])),
        ])
    }

    pub fn to_chrome_string(&self) -> String {
        self.to_chrome_json().to_pretty()
    }

    /// Parse a Chrome trace-event document emitted by
    /// [`RunTrace::to_chrome_json`] back into a trace. Rebuilds every
    /// field from `args` (lossless); fails on documents this exporter did
    /// not produce.
    pub fn from_chrome_string(text: &str) -> Result<RunTrace, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let list =
            doc.get("traceEvents").and_then(|v| v.as_array()).ok_or("missing traceEvents array")?;
        let mut events = Vec::with_capacity(list.len());
        for (i, ev) in list.iter().enumerate() {
            let args = ev.get("args").ok_or_else(|| format!("event {i}: missing args"))?;
            let field = |k: &str| {
                args.get(k)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("event {i}: missing integer arg {k:?}"))
            };
            let kind = args
                .get("kind")
                .and_then(|v| v.as_str())
                .and_then(TraceEventKind::from_name)
                .ok_or_else(|| format!("event {i}: unknown kind"))?;
            let tid =
                ev.get("tid").and_then(|v| v.as_u64()).ok_or_else(|| format!("event {i}: tid"))?;
            events.push(TraceEvent {
                kind,
                // Traces predating the job field parse with job 0.
                job: args.get("job").and_then(|v| v.as_u64()).unwrap_or(0),
                stage: args
                    .get("stage")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event {i}: stage"))?
                    .to_string(),
                task: args.get("task").and_then(|v| v.as_u64()).map(|t| t as usize),
                attempt: field("attempt")? as u32,
                executor: if tid == 0 { None } else { Some(tid as usize - 1) },
                label: ev
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event {i}: name"))?
                    .to_string(),
                wall_ns: field("wall_ns")?,
                dur_ns: field("dur_ns")?,
                sim_ns: field("sim_ns")?,
                sim_dur_ns: field("sim_dur_ns")?,
                bytes: field("bytes")?,
                count: field("count")?,
                seq: field("seq")?,
            });
        }
        Ok(RunTrace { events })
    }

    /// Structural validity for the Chrome UI: every event must carry the
    /// `name`/`ph`/`ts`/`pid`/`tid` fields the trace viewer requires.
    /// Returns the event count.
    pub fn validate_chrome_document(text: &str) -> Result<usize, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let list =
            doc.get("traceEvents").and_then(|v| v.as_array()).ok_or("missing traceEvents array")?;
        for (i, ev) in list.iter().enumerate() {
            if ev.get("name").and_then(|v| v.as_str()).is_none() {
                return Err(format!("event {i}: missing name"));
            }
            if ev.get("ph").and_then(|v| v.as_str()) != Some("X") {
                return Err(format!("event {i}: not a complete ('X') event"));
            }
            for k in ["ts", "dur", "pid", "tid"] {
                if ev.get(k).and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("event {i}: missing numeric {k}"));
                }
            }
        }
        Ok(list.len())
    }

    // ------------------------------------------------------------------
    // run-manifest export
    // ------------------------------------------------------------------

    /// A flat run manifest: totals per event kind plus per-stage roll-ups
    /// (attempts, retries, GC pause time and traced objects, spill and
    /// release volumes). Stages appear in first-execution order.
    pub fn to_manifest_json(&self) -> Json {
        let mut stages: Vec<String> = Vec::new();
        for e in &self.events {
            if !e.stage.is_empty() && !stages.iter().any(|s| s == &e.stage) {
                stages.push(e.stage.clone());
            }
        }
        let count_of = |kind: TraceEventKind| -> u64 {
            self.events.iter().filter(|e| e.kind == kind).count() as u64
        };
        let stage_rows: Vec<Json> = stages
            .iter()
            .map(|name| {
                let evs: Vec<&TraceEvent> =
                    self.events.iter().filter(|e| &e.stage == name).collect();
                let of = |k: TraceEventKind| evs.iter().filter(|e| e.kind == k).collect::<Vec<_>>();
                let attempts = of(TraceEventKind::TaskAttempt);
                let gc = of(TraceEventKind::GcPause);
                let spills = of(TraceEventKind::SpillIo);
                let releases = of(TraceEventKind::PageGroupRelease);
                let handovers = of(TraceEventKind::PageHandover);
                Json::obj(vec![
                    ("name", Json::str(name.as_str())),
                    ("attempts", Json::int(attempts.len() as u64)),
                    (
                        "attempt_sim_ns",
                        Json::int(attempts.iter().map(|e| e.sim_dur_ns).sum::<u64>()),
                    ),
                    ("steals", Json::int(of(TraceEventKind::TaskSteal).len() as u64)),
                    ("speculative", Json::int(of(TraceEventKind::TaskSpeculative).len() as u64)),
                    ("timeouts", Json::int(of(TraceEventKind::TaskTimeout).len() as u64)),
                    ("retries", Json::int(of(TraceEventKind::Retry).len() as u64)),
                    ("quarantines", Json::int(of(TraceEventKind::Quarantine).len() as u64)),
                    ("restarts", Json::int(of(TraceEventKind::Restart).len() as u64)),
                    (
                        "rehydrated_blocks",
                        Json::int(of(TraceEventKind::CacheRehydrate).len() as u64),
                    ),
                    (
                        "rehydrated_bytes",
                        Json::int(
                            of(TraceEventKind::CacheRehydrate).iter().map(|e| e.bytes).sum::<u64>(),
                        ),
                    ),
                    ("oom_recoveries", Json::int(of(TraceEventKind::OomRecovery).len() as u64)),
                    ("gc_pauses", Json::int(gc.len() as u64)),
                    ("gc_pause_ns", Json::int(gc.iter().map(|e| e.dur_ns).sum::<u64>())),
                    ("objects_traced", Json::int(gc.iter().map(|e| e.count).sum::<u64>())),
                    ("spill_bytes", Json::int(spills.iter().map(|e| e.bytes).sum::<u64>())),
                    ("groups_released", Json::int(releases.len() as u64)),
                    ("released_bytes", Json::int(releases.iter().map(|e| e.bytes).sum::<u64>())),
                    ("pages_handed", Json::int(handovers.iter().map(|e| e.count).sum::<u64>())),
                    ("handover_bytes", Json::int(handovers.iter().map(|e| e.bytes).sum::<u64>())),
                ])
            })
            .collect();
        let totals: Vec<(String, Json)> = TraceEventKind::ALL
            .into_iter()
            .map(|k| (k.name().to_string(), Json::int(count_of(k))))
            .collect();
        Json::obj(vec![
            ("schema", Json::str("deca-run-manifest-v1")),
            ("events", Json::int(self.events.len() as u64)),
            ("event_counts", Json::Obj(totals)),
            ("stages", Json::Arr(stage_rows)),
        ])
    }

    pub fn to_manifest_string(&self) -> String {
        self.to_manifest_json().to_pretty()
    }
}

/// Convert a [`Duration`] to saturating nanoseconds (trace field unit).
pub fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceEventKind, stage: &str, task: Option<usize>, seq: u64) -> TraceEvent {
        TraceEvent {
            kind,
            job: 0,
            stage: stage.to_string(),
            task,
            attempt: 0,
            executor: None,
            label: format!("{stage}-{task:?}"),
            wall_ns: seq * 100,
            dur_ns: 50,
            sim_ns: seq * 10,
            sim_dur_ns: 5,
            bytes: 7,
            count: 3,
            seq,
        }
    }

    fn sample_trace() -> RunTrace {
        let mut driver = TraceRecorder::new(true);
        driver.record(
            TraceEventKind::StageStart,
            Some("map"),
            None,
            None,
            None,
            "map",
            0,
            0,
            0,
            0,
            0,
            4,
        );
        driver.record(
            TraceEventKind::StageEnd,
            Some("map"),
            None,
            None,
            None,
            "map",
            900,
            0,
            90,
            0,
            0,
            5,
        );
        let mut e0 = TraceRecorder::new(true);
        e0.set_context("map", 0, 0);
        e0.record(
            TraceEventKind::TaskAttempt,
            None,
            None,
            None,
            None,
            "map-0",
            10,
            200,
            1,
            20,
            0,
            0,
        );
        e0.record(
            TraceEventKind::GcPause,
            None,
            None,
            None,
            None,
            "gc-minor",
            15,
            40,
            1,
            4,
            64,
            12,
        );
        e0.clear_context();
        let mut e1 = TraceRecorder::new(true);
        e1.set_context("map", 1, 0);
        e1.record(
            TraceEventKind::TaskAttempt,
            None,
            None,
            None,
            None,
            "map-1",
            12,
            210,
            1,
            21,
            0,
            0,
        );
        e1.record(
            TraceEventKind::PageGroupRelease,
            None,
            None,
            None,
            None,
            "group-3",
            100,
            0,
            9,
            0,
            4096,
            2,
        );
        e1.clear_context();
        RunTrace::merge(&driver, &[&e0, &e1])
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let mut r = TraceRecorder::new(false);
        r.record(TraceEventKind::Retry, Some("s"), Some(0), Some(1), None, "r", 0, 0, 0, 0, 0, 0);
        assert!(r.is_empty());
        let mut on = TraceRecorder::new(true);
        on.record(TraceEventKind::Retry, Some("s"), Some(0), Some(1), None, "r", 0, 0, 0, 0, 0, 0);
        assert_eq!(on.len(), 1);
    }

    #[test]
    fn context_fills_nested_events() {
        let mut r = TraceRecorder::new(true);
        r.set_context("reduce", 3, 2);
        r.record(TraceEventKind::GcPause, None, None, None, None, "gc-full", 0, 9, 0, 9, 0, 100);
        r.clear_context();
        let e = &r.events()[0];
        assert_eq!((e.stage.as_str(), e.task, e.attempt), ("reduce", Some(3), 2));
    }

    #[test]
    fn merge_orders_logically_and_attributes_executors() {
        let t = sample_trace();
        let kinds: Vec<TraceEventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::StageStart,
                TraceEventKind::TaskAttempt,
                TraceEventKind::GcPause,
                TraceEventKind::TaskAttempt,
                TraceEventKind::PageGroupRelease,
                TraceEventKind::StageEnd,
            ]
        );
        // Executor attribution by recorder position; driver stays None.
        assert_eq!(t.events[0].executor, None);
        assert_eq!(t.events[1].executor, Some(0));
        assert_eq!(t.events[3].executor, Some(1));
        // Merging the same recorders again yields the same order: the key
        // is logical position, not wall time.
        assert_eq!(t.of_kind(TraceEventKind::TaskAttempt).count(), 2);
    }

    #[test]
    fn merge_is_independent_of_wall_timestamps() {
        let make = |wall_scale: u64| {
            let driver = TraceRecorder::new(true);
            let mut e0 = TraceRecorder::new(true);
            for (task, seq) in [(1usize, 0u64), (0, 1)] {
                e0.set_context("s", task, 0);
                e0.record(
                    TraceEventKind::TaskAttempt,
                    None,
                    None,
                    None,
                    None,
                    format!("s-{task}"),
                    seq * wall_scale,
                    10,
                    0,
                    10,
                    0,
                    0,
                );
            }
            RunTrace::merge(&driver, &[&e0])
        };
        let a = make(1);
        let b = make(1_000_000);
        let order_a: Vec<Option<usize>> = a.events.iter().map(|e| e.task).collect();
        let order_b: Vec<Option<usize>> = b.events.iter().map(|e| e.task).collect();
        assert_eq!(order_a, order_b, "order must come from logical position");
        assert_eq!(order_a, vec![Some(0), Some(1)]);
    }

    #[test]
    fn chrome_export_roundtrips_losslessly() {
        let t = sample_trace();
        let text = t.to_chrome_string();
        assert_eq!(RunTrace::validate_chrome_document(&text), Ok(t.len()));
        let back = RunTrace::from_chrome_string(&text).unwrap();
        assert_eq!(back, t, "every field must survive the round-trip");
    }

    #[test]
    fn chrome_export_shape() {
        let t = sample_trace();
        let doc = t.to_chrome_json();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 6);
        // Driver on tid 0, executors on tid i+1.
        assert_eq!(evs[0].get("tid").unwrap().as_u64(), Some(0));
        assert_eq!(evs[1].get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(evs[3].get("tid").unwrap().as_u64(), Some(2));
        // ts is µs: the GC pause started at wall_ns 15 → 0.015 µs.
        let gc = &evs[2];
        assert_eq!(gc.get("cat").unwrap().as_str(), Some("gc-pause"));
        assert!((gc.get("ts").unwrap().as_f64().unwrap() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn from_chrome_rejects_foreign_documents() {
        assert!(RunTrace::from_chrome_string("{}").is_err());
        assert!(RunTrace::from_chrome_string(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(RunTrace::validate_chrome_document(r#"{"traceEvents":[{"name":"x"}]}"#).is_err());
    }

    #[test]
    fn manifest_rolls_up_per_stage() {
        let t = sample_trace();
        let m = t.to_manifest_json();
        assert_eq!(m.get("schema").unwrap().as_str(), Some("deca-run-manifest-v1"));
        assert_eq!(m.get("events").unwrap().as_u64(), Some(6));
        let stages = m.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 1);
        let map = &stages[0];
        assert_eq!(map.get("attempts").unwrap().as_u64(), Some(2));
        assert_eq!(map.get("gc_pauses").unwrap().as_u64(), Some(1));
        assert_eq!(map.get("objects_traced").unwrap().as_u64(), Some(12));
        assert_eq!(map.get("groups_released").unwrap().as_u64(), Some(1));
        assert_eq!(map.get("released_bytes").unwrap().as_u64(), Some(4096));
        // Manifest parses back as JSON (the gate reads it).
        assert!(deca_check::json::Json::parse(&t.to_manifest_string()).is_ok());
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in TraceEventKind::ALL {
            assert_eq!(TraceEventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceEventKind::from_name("nope"), None);
    }

    #[test]
    fn sort_key_orders_stage_markers_around_tasks() {
        let start = ev(TraceEventKind::StageStart, "s", None, 9);
        let task = ev(TraceEventKind::TaskAttempt, "s", Some(0), 0);
        let end = ev(TraceEventKind::StageEnd, "s", None, 10);
        assert!(start.sort_key(0) < task.sort_key(0));
        assert!(task.sort_key(0) < end.sort_key(0));
    }
}
