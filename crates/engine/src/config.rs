//! Executor configuration: heap sizing, memory fractions, execution mode.
//!
//! The knobs mirror the settings the paper's experiments vary: executor
//! heap size (§6, 20–30 GB there, MB-scale here), the storage/shuffle
//! memory fractions of Table 4, and the collector algorithm.

use std::path::PathBuf;
use std::time::Duration;

use deca_heap::{GcAlgorithm, GcPlanKind};

/// Driver-side fault-handling knobs: how many times a task may run, when a
/// misbehaving executor is quarantined, and whether memory pressure is
/// degraded through (spill + retry) instead of aborting the job.
///
/// The default policy preserves the pre-fault-tolerance behaviour for task
/// errors — one attempt, first failure aborts — while keeping the graceful
/// OOM path on (a heap OOM triggers a cache spill and one in-place retry,
/// which is what the paper's substrate does rather than dying under
/// memory pressure).
#[derive(Copy, Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum times one task may run (attempts, not retries): 1 means no
    /// retries, Spark's default of 4 means up to 3 re-runs.
    pub max_attempts: u32,
    /// Simulated scheduling delay per re-run, accounted into stage
    /// recovery time (never a wall-clock sleep).
    pub backoff: Duration,
    /// Quarantine an executor after this many task failures within one
    /// stage (Spark's per-stage blacklisting threshold).
    pub quarantine_after: u32,
    /// Never quarantine the last healthy executor: restart it in place
    /// instead (the cluster-manager-replaces-the-node story). Turning this
    /// off makes crash-heavy plans unsurvivable on purpose.
    pub spare_last_executor: bool,
    /// Degrade memory pressure gracefully: on an OOM-classified task
    /// failure, spill the executor's cache to disk and retry once in
    /// place, instead of propagating the OOM.
    pub spill_on_oom: bool,
    /// On restart-in-place, treat the crash as wiping the cache's
    /// volatile (hot/warm) tiers and rehydrate cold blocks from the
    /// crash-consistent spill manifest, so verified on-disk page groups
    /// skip their lineage recompute. Turning this off restores the legacy
    /// hung-JVM model (all cache state survives the restart untouched).
    pub rehydrate: bool,
    /// Per-attempt deadline enforced by the watchdog: an attempt that
    /// hangs (see `FaultSite::TaskHang`) is charged this much simulated
    /// time, failed with the transient `EngineError::Deadline`, and
    /// retried through the normal quarantine machinery. `None` uses the
    /// built-in default budget, so hang plans are always survivable even
    /// without explicit configuration.
    pub task_deadline: Option<Duration>,
    /// Speculative execution (the pull scheduler only): once more than
    /// half a round's claims have completed, an idle executor may launch
    /// a duplicate of a claimed-but-unfinished attempt whose wall time
    /// exceeds twice the round's median completed-task time. First
    /// completion wins; the loser is cancelled cooperatively; the winner
    /// is reconciled deterministically in task order so results and the
    /// recovery roll-up stay bit-identical with speculation off.
    pub speculate: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(10),
            quarantine_after: 2,
            spare_last_executor: true,
            spill_on_oom: true,
            rehydrate: true,
            task_deadline: None,
            speculate: false,
        }
    }
}

impl RetryPolicy {
    /// Spark-like resilient settings: 4 attempts per task, per-stage
    /// quarantine after 2 failures, graceful OOM degradation.
    pub fn resilient() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, ..RetryPolicy::default() }
    }

    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    pub fn backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    pub fn quarantine_after(mut self, n: u32) -> Self {
        self.quarantine_after = n.max(1);
        self
    }

    pub fn spare_last_executor(mut self, keep: bool) -> Self {
        self.spare_last_executor = keep;
        self
    }

    pub fn spill_on_oom(mut self, spill: bool) -> Self {
        self.spill_on_oom = spill;
        self
    }

    pub fn rehydrate(mut self, on: bool) -> Self {
        self.rehydrate = on;
        self
    }

    pub fn task_deadline(mut self, d: Duration) -> Self {
        self.task_deadline = Some(d);
        self
    }

    pub fn speculate(mut self, on: bool) -> Self {
        self.speculate = on;
        self
    }

    /// The deadline budget the watchdog charges a hung attempt: the
    /// configured `task_deadline`, or a 100 ms default so `TaskHang`
    /// plans are survivable without explicit configuration.
    pub fn deadline_budget(&self) -> Duration {
        self.task_deadline.unwrap_or(Duration::from_millis(100))
    }
}

/// How `ClusterSession` hands tasks to executors within one scheduling
/// round (the initial task set, or a batch of retries).
///
/// Both modes produce bit-identical results and identical recovery
/// roll-ups for the same fault plan — the driver pins every
/// fault-affected attempt to its `t % E` home executor so failure
/// charging never depends on claim timing (see DESIGN.md "Task
/// scheduling") — but their wall-clock shape differs:
///
/// * [`Wave`](SchedulerMode::Wave) — the historical scheduler: tasks are
///   statically pinned `t % E` into per-executor queues and every round
///   ends at a barrier, so one straggler idles the other `E-1`
///   executors for the rest of the round.
/// * [`Pull`](SchedulerMode::Pull) — executors claim tasks from a shared
///   list, affinity-first: each drains its own `t % E` set in ascending
///   task order (preserving locality for executor-pinned cache blocks),
///   then steals remaining unpinned tasks in ascending task order.
///   Stolen tasks that miss an executor-local cache block rebuild it
///   through the app's lineage-recompute path.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SchedulerMode {
    /// Static `t % E` queues behind a per-round barrier.
    Wave,
    /// Shared-queue claiming, affinity-first then ascending steals.
    Pull,
}

impl SchedulerMode {
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::Wave => "wave",
            SchedulerMode::Pull => "pull",
        }
    }

    /// The process-wide default: `Pull`, unless the `DECA_SCHEDULER`
    /// environment variable says `wave` — the knob `scripts/ci.sh` uses
    /// to replay the fault-seed suite under both schedulers without
    /// touching test code.
    pub fn from_env() -> SchedulerMode {
        match std::env::var("DECA_SCHEDULER") {
            Ok(v) if v.eq_ignore_ascii_case("wave") => SchedulerMode::Wave,
            _ => SchedulerMode::Pull,
        }
    }
}

impl std::fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which system is being emulated for a run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecutionMode {
    /// Records as heap object graphs (baseline Spark).
    Spark,
    /// Cached data Kryo-serialized into heap byte blocks (SparkSer).
    SparkSer,
    /// Decomposed pages managed by lifetime (Deca).
    Deca,
}

impl ExecutionMode {
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::Spark => "Spark",
            ExecutionMode::SparkSer => "SparkSer",
            ExecutionMode::Deca => "Deca",
        }
    }

    pub const ALL: [ExecutionMode; 3] =
        [ExecutionMode::Spark, ExecutionMode::SparkSer, ExecutionMode::Deca];
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one executor.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    pub mode: ExecutionMode,
    /// Total simulated heap bytes (young + old).
    pub heap_bytes: usize,
    /// Fraction of the heap the cache manager may fill before evicting
    /// (Spark's `storage.memoryFraction`; Table 4 sweeps it).
    pub storage_fraction: f64,
    /// Fraction reserved for shuffle buffers (Table 4).
    pub shuffle_fraction: f64,
    pub gc_algorithm: GcAlgorithm,
    /// Explicit GC plan override. `None` (the default) uses the plan the
    /// collector algorithm maps to ([`GcAlgorithm::plan_kind`]); setting a
    /// plan — or the `DECA_GC_PLAN` environment variable — selects it
    /// directly, the knob the plan-matrix sweep and `tests/gc_plans.rs`
    /// iterate.
    pub gc_plan: Option<GcPlanKind>,
    /// Deca page size (§4.3.1 trade-off; ablation bench sweeps it).
    pub page_size: usize,
    /// Directory for spill/swap files.
    pub spill_dir: PathBuf,
    /// Driver fault-handling policy for sessions built from this config.
    pub retry: RetryPolicy,
    /// How the driver hands tasks to executors (`Pull` by default;
    /// `Wave` retained for in-run A/B comparison and the perf gate's
    /// skew cell). `DECA_SCHEDULER=wave` flips the default process-wide.
    pub scheduler: SchedulerMode,
    /// Record the structured run trace (`crate::trace`). On by default —
    /// overhead is a bounded number of vector pushes per task — and
    /// turned off by the perf gate's overhead-measurement control run.
    pub tracing: bool,
    /// A/B baseline knob: flatten every Deca shuffle hand-over into a
    /// fresh byte buffer (the pre-zero-copy exchange), counting the
    /// copies. Off by default; the perf gate's zero-copy floor cell turns
    /// it on via `DECA_SHUFFLE_COPY=1` to measure what the hand-over
    /// saves. Results are bit-identical either way.
    pub copying_shuffle: bool,
}

impl ExecutorConfig {
    pub fn new(mode: ExecutionMode, heap_bytes: usize) -> ExecutorConfig {
        ExecutorConfig::builder().mode(mode).heap_bytes(heap_bytes).build()
    }

    /// Start a builder with the default knobs (Spark mode, 16 MB heap,
    /// Table 4's default fractions).
    pub fn builder() -> ExecutorConfigBuilder {
        ExecutorConfigBuilder {
            config: ExecutorConfig {
                mode: ExecutionMode::Spark,
                heap_bytes: 16 << 20,
                storage_fraction: 0.6,
                shuffle_fraction: 0.2,
                gc_algorithm: GcAlgorithm::ParallelScavenge,
                gc_plan: GcPlanKind::from_env(),
                page_size: 64 << 10,
                spill_dir: ExecutorConfig::default_spill_dir(),
                retry: RetryPolicy::default(),
                scheduler: SchedulerMode::from_env(),
                tracing: true,
                copying_shuffle: std::env::var("DECA_SHUFFLE_COPY").as_deref() == Ok("1"),
            },
        }
    }

    /// The default spill directory: unique per process *and* thread, so
    /// concurrently running tests never share spill state. Tests that use
    /// the default can compute the same path to clean it up afterwards.
    pub fn default_spill_dir() -> PathBuf {
        std::env::temp_dir().join(format!(
            "deca-exec-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    pub fn storage_fraction(mut self, f: f64) -> Self {
        self.storage_fraction = f;
        self
    }

    pub fn shuffle_fraction(mut self, f: f64) -> Self {
        self.shuffle_fraction = f;
        self
    }

    pub fn gc_algorithm(mut self, a: GcAlgorithm) -> Self {
        self.gc_algorithm = a;
        self
    }

    pub fn gc_plan(mut self, p: GcPlanKind) -> Self {
        self.gc_plan = Some(p);
        self
    }

    pub fn page_size(mut self, s: usize) -> Self {
        self.page_size = s;
        self
    }

    pub fn spill_dir(mut self, d: PathBuf) -> Self {
        self.spill_dir = d;
        self
    }

    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    pub fn copying_shuffle(mut self, on: bool) -> Self {
        self.copying_shuffle = on;
        self
    }

    /// Cache budget in bytes. Clamped below the old generation's capacity
    /// (heap × 2/3 under the default NewRatio), mirroring Spark's safety
    /// fraction: the configured storage fraction can exceed what the
    /// tenured generation can actually hold, and the block manager must
    /// never pin more than fits.
    pub fn storage_budget(&self) -> usize {
        let configured = (self.heap_bytes as f64 * self.storage_fraction) as usize;
        let old_gen = self.heap_bytes - self.heap_bytes / 3;
        configured.min((old_gen as f64 * 0.95) as usize)
    }
}

/// Builder for [`ExecutorConfig`]. All knobs default to the values
/// `ExecutorConfig::new` has always used, so a builder chain only names
/// what it changes.
#[derive(Clone, Debug)]
pub struct ExecutorConfigBuilder {
    config: ExecutorConfig,
}

impl ExecutorConfigBuilder {
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    pub fn heap_bytes(mut self, bytes: usize) -> Self {
        self.config.heap_bytes = bytes;
        self
    }

    /// Heap size in mebibytes (the unit the paper's tables use).
    pub fn heap_mb(mut self, mb: usize) -> Self {
        self.config.heap_bytes = mb << 20;
        self
    }

    pub fn gc(mut self, algorithm: GcAlgorithm) -> Self {
        self.config.gc_algorithm = algorithm;
        self
    }

    /// Select a GC plan directly, bypassing the algorithm→plan mapping.
    pub fn gc_plan(mut self, p: GcPlanKind) -> Self {
        self.config.gc_plan = Some(p);
        self
    }

    pub fn storage_fraction(mut self, f: f64) -> Self {
        self.config.storage_fraction = f;
        self
    }

    pub fn shuffle_fraction(mut self, f: f64) -> Self {
        self.config.shuffle_fraction = f;
        self
    }

    pub fn page_size(mut self, s: usize) -> Self {
        self.config.page_size = s;
        self
    }

    pub fn spill_dir(mut self, d: PathBuf) -> Self {
        self.config.spill_dir = d;
        self
    }

    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.config.scheduler = mode;
        self
    }

    pub fn tracing(mut self, on: bool) -> Self {
        self.config.tracing = on;
        self
    }

    pub fn copying_shuffle(mut self, on: bool) -> Self {
        self.config.copying_shuffle = on;
        self
    }

    pub fn build(self) -> ExecutorConfig {
        self.config
    }
}

/// Configuration of the multi-job submission service
/// ([`crate::server::DecaServer`]): how many shared executors it owns, how
/// many jobs it runs concurrently, and the default admission cap applied
/// to tenants never configured explicitly.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Shared physical executors (one worker thread each).
    pub executors: usize,
    /// Job-runner threads — the ceiling on jobs *executing* concurrently
    /// (queued jobs wait for a free runner). `0` means "same as
    /// `executors`".
    pub runners: usize,
    /// Per-tenant in-flight job cap applied to tenants first seen at
    /// `submit` time; `DecaServer::configure_tenant` overrides per tenant.
    pub default_max_in_flight: usize,
    /// Configuration applied to every shared executor (mode, heap, retry
    /// policy, scheduler, tracing).
    pub executor: ExecutorConfig,
}

impl ServerConfig {
    pub fn new(executors: usize, executor: ExecutorConfig) -> ServerConfig {
        ServerConfig { executors, runners: 0, default_max_in_flight: usize::MAX, executor }
    }

    pub fn runners(mut self, n: usize) -> ServerConfig {
        self.runners = n;
        self
    }

    pub fn default_max_in_flight(mut self, n: usize) -> ServerConfig {
        self.default_max_in_flight = n.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_configs() {
        let c = ExecutorConfig::builder()
            .mode(ExecutionMode::Deca)
            .heap_mb(48)
            .gc(GcAlgorithm::Cms)
            .storage_fraction(0.5)
            .page_size(128 << 10)
            .build();
        assert_eq!(c.mode, ExecutionMode::Deca);
        assert_eq!(c.heap_bytes, 48 << 20);
        assert_eq!(c.gc_algorithm, GcAlgorithm::Cms);
        assert_eq!(c.page_size, 128 << 10);
        // The legacy constructor is a thin wrapper over the builder.
        let legacy = ExecutorConfig::new(ExecutionMode::Deca, 48 << 20);
        assert_eq!(legacy.storage_fraction, 0.6);
        assert_eq!(legacy.page_size, 64 << 10);
    }

    #[test]
    fn builder_and_budget() {
        let c = ExecutorConfig::new(ExecutionMode::Deca, 100 << 20)
            .storage_fraction(0.4)
            .shuffle_fraction(0.3)
            .page_size(1 << 20);
        assert_eq!(c.storage_budget(), 40 << 20);
        assert_eq!(c.page_size, 1 << 20);
        assert_eq!(c.mode.name(), "Deca");
    }

    #[test]
    fn retry_policy_defaults_and_presets() {
        let d = RetryPolicy::default();
        assert_eq!(d.max_attempts, 1, "default keeps fail-fast task semantics");
        assert!(d.spill_on_oom, "graceful OOM degradation is on by default");
        assert!(d.spare_last_executor);
        let r = RetryPolicy::resilient().quarantine_after(3).spare_last_executor(false);
        assert_eq!(r.max_attempts, 4);
        assert_eq!(r.quarantine_after, 3);
        assert!(!r.spare_last_executor);
        // Degenerate knobs clamp to sane minima.
        assert_eq!(RetryPolicy::default().max_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().quarantine_after(0).quarantine_after, 1);
        // The builder threads the policy through to the config.
        let c = ExecutorConfig::builder().retry(RetryPolicy::resilient()).build();
        assert_eq!(c.retry.max_attempts, 4);
        // Watchdog knobs: off by default, with a survivable hang budget.
        assert_eq!(d.task_deadline, None);
        assert!(!d.speculate);
        assert_eq!(d.deadline_budget(), Duration::from_millis(100));
        let w = RetryPolicy::resilient().task_deadline(Duration::from_millis(25)).speculate(true);
        assert_eq!(w.task_deadline, Some(Duration::from_millis(25)));
        assert_eq!(w.deadline_budget(), Duration::from_millis(25));
        assert!(w.speculate);
    }

    #[test]
    fn gc_plan_defaults_to_algorithm_mapping_and_is_overridable() {
        // No DECA_GC_PLAN in the test environment (the env branch is
        // exercised by scripts/ci.sh, like DECA_SCHEDULER), so the
        // default is "follow the algorithm".
        assert_eq!(ExecutorConfig::builder().build().gc_plan, None);
        let c = ExecutorConfig::builder().gc_plan(GcPlanKind::Immix).build();
        assert_eq!(c.gc_plan, Some(GcPlanKind::Immix));
        let c = ExecutorConfig::new(ExecutionMode::Spark, 1 << 20).gc_plan(GcPlanKind::SemiSpace);
        assert_eq!(c.gc_plan, Some(GcPlanKind::SemiSpace));
    }

    #[test]
    fn tracing_defaults_on_and_is_switchable() {
        assert!(ExecutorConfig::new(ExecutionMode::Spark, 1 << 20).tracing);
        assert!(!ExecutorConfig::builder().tracing(false).build().tracing);
        assert!(!ExecutorConfig::new(ExecutionMode::Spark, 1 << 20).tracing(false).tracing);
    }

    #[test]
    fn scheduler_defaults_to_pull_and_is_switchable() {
        // The builder default comes from `SchedulerMode::from_env()`;
        // the test environment does not set DECA_SCHEDULER, so it must
        // resolve to Pull. (Setting the variable from inside a test
        // would race with parallel tests, so the env branch is covered
        // by scripts/ci.sh's wave/pull replay legs instead.)
        assert_eq!(ExecutorConfig::builder().build().scheduler, SchedulerMode::Pull);
        let c = ExecutorConfig::builder().scheduler(SchedulerMode::Wave).build();
        assert_eq!(c.scheduler, SchedulerMode::Wave);
        let c = ExecutorConfig::new(ExecutionMode::Spark, 1 << 20).scheduler(SchedulerMode::Wave);
        assert_eq!(c.scheduler, SchedulerMode::Wave);
        assert_eq!(SchedulerMode::Wave.to_string(), "wave");
        assert_eq!(SchedulerMode::Pull.to_string(), "pull");
    }

    #[test]
    fn mode_names() {
        assert_eq!(ExecutionMode::Spark.to_string(), "Spark");
        assert_eq!(ExecutionMode::SparkSer.to_string(), "SparkSer");
        assert_eq!(ExecutionMode::ALL.len(), 3);
    }
}
