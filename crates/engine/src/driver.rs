//! The cluster job driver: multi-stage jobs across a [`LocalCluster`].
//!
//! The paper's executors are parallel JVM processes driven stage-by-stage
//! by Spark's DAG scheduler (§6.1): a job splits at shuffle boundaries
//! into a map stage, an all-to-all exchange of shuffle bytes, and a reduce
//! stage. [`ClusterSession`] is that driver layer: apps describe the task
//! bodies; the session runs the task waves in parallel OS threads, moves
//! the shuffle bytes between executors (serialized blocks for
//! Spark/SparkSer, raw page bytes for Deca — §6.1's "directly outputting
//! the raw bytes"), and rolls per-wave metrics into [`StageMetrics`].
//!
//! ## Task model and determinism
//!
//! A stage runs `tasks` tasks (one per data partition — independent of
//! the executor count). Task `t`'s *home* executor is `t % executors`.
//! How attempts reach executors is the [`SchedulerMode`]:
//!
//! * `Wave` (the historical scheduler) statically queues every attempt
//!   at its home and barriers per round, so one straggler idles the
//!   other `E-1` executors for the rest of the round;
//! * `Pull` (the default) has executors claim attempts from a shared
//!   list — their own home slots first, in ascending task order
//!   (affinity-first, preserving locality for executor-pinned state),
//!   then remaining tasks in ascending order (work stealing).
//!
//! Executor-local state written by task `t` in one stage (cached
//! blocks, registered classes) is found at home in later stages under
//! either scheduler; a stolen task that misses executor-local state
//! rebuilds it from lineage (the apps' recompute path). Shuffle
//! exchange concatenates map outputs in *map-task order*, not executor
//! order. Together these make a job's result a pure function of its
//! partitioning — bit-for-bit independent of executor count *and*
//! scheduler mode, which the cluster equivalence tests assert.
//!
//! ## Fault tolerance
//!
//! Spark's robustness story rests on the same determinism: a failed task
//! is simply re-run, elsewhere if needed, and the job converges to the
//! same result (§6.1 keeps shuffle/cache bytes reconstructible from
//! lineage precisely for this). The driver implements that story under a
//! [`RetryPolicy`]:
//!
//! * transient task failures ([`EngineError::is_transient`]) re-run on
//!   the next healthy executor in round-robin order, up to
//!   `max_attempts`, with per-retry backoff accounted into the stage's
//!   simulated `recovery` time (never a wall-clock sleep);
//! * an executor that crashes (or accumulates `quarantine_after` task
//!   failures within a stage) is **quarantined** — Spark-style
//!   blacklisting — and receives no further tasks; the last healthy
//!   executor is instead restarted in place when
//!   `spare_last_executor` is set;
//! * OOM-classified failures degrade gracefully: the executor spills its
//!   cache to disk, collects, and re-runs the task once in place
//!   (`spill_on_oom`), so memory-pressure runs finish slower instead of
//!   aborting.
//!
//! Failure scenarios are injected deterministically from a seeded
//! [`FaultPlan`], and the fault-tolerance suite asserts the headline
//! invariant: for any survivable plan, the job result is bit-identical to
//! the fault-free run at every mode × executor width. Under pull
//! scheduling, every fault-affected attempt is additionally *pinned* to
//! its home executor before the round runs (see `pin_faulted_slots`), so
//! a seeded plan produces identical failure charging, quarantines,
//! retries and OOM spills in both scheduler modes — the Wave/Pull
//! equivalence matrix asserts the roll-ups match counter for counter.
//!
//! ```
//! use deca_engine::{ClusterSession, ExecutionMode, ExecutorConfig};
//!
//! let cfg = ExecutorConfig::builder().mode(ExecutionMode::Deca).heap_mb(16).build();
//! let mut s = ClusterSession::new(2, cfg);
//! let parts: Vec<Vec<i64>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
//! let sums = s
//!     .run_stage("sum", parts.len(), |ctx, _e| Ok(parts[ctx.task].iter().sum::<i64>()))
//!     .unwrap();
//! assert_eq!(sums, vec![3, 7, 11]);
//! assert_eq!(s.stages()[0].tasks, 3);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::cluster::{exchange, ExecutorHealth, LocalCluster};
use crate::config::{ExecutorConfig, RetryPolicy, SchedulerMode};
use crate::error::EngineError;
use crate::executor::Executor;
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::{JobMetrics, StageMetrics, Timeline};
use crate::trace::{dur_ns, RunTrace, TraceEventKind, TraceRecorder};
pub use deca_core::ShufflePayload;

/// What a task knows about its place in a stage.
#[derive(Clone, Debug)]
pub struct TaskContext<'a> {
    /// The stage's name (task names are `"{stage}-{task}"`).
    pub stage: &'a str,
    /// This task's index within the stage, `0..tasks`.
    pub task: usize,
    /// Total tasks in the stage.
    pub tasks: usize,
    /// The executor this attempt runs on: the task's home
    /// (`task % executors`) under wave scheduling, possibly a stealing
    /// executor under pull scheduling, and retries may migrate to
    /// another executor under either.
    pub executor: usize,
    /// Executors in the cluster.
    pub executors: usize,
    /// Cooperative-cancellation token for this attempt: set when a
    /// speculative duplicate of the task completed first, or when the
    /// attempt's job was cancelled. Never set outside those paths.
    pub(crate) cancel: &'a AtomicBool,
}

/// Token for attempts that can never be cancelled (wave scheduling,
/// non-speculative pull rounds, and plain local sessions).
pub(crate) static NEVER_CANCELLED: AtomicBool = AtomicBool::new(false);

impl TaskContext<'_> {
    /// Has this attempt been cancelled cooperatively? Long-running task
    /// bodies should poll this and bail out with
    /// [`EngineError::Cancelled`] when it turns true: the result is no
    /// longer needed (a speculative duplicate already produced it, or
    /// the job was cancelled), and returning early releases the executor.
    /// Ignoring the token is always *correct* — a completed loser is
    /// discarded deterministically — just slower.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Per-reducer shuffle outputs of one map task: `outputs[reducer]` is the
/// payload this task contributes to that reduce partition — pages handed
/// over without a copy (Deca) or a pooled byte buffer (Spark/SparkSer).
pub type MapOutputs = Vec<ShufflePayload>;

/// One finished physical attempt, as the schedulers hand it back:
/// `(task, attempt, result, oom_rerun, oom_recovered, speculative)`.
type Attempt<R> = (usize, u32, Result<R, EngineError>, bool, bool, bool);

/// Shared bookkeeping for one speculative pull round
/// (`RetryPolicy::speculate`): who is running each slot, since when,
/// whether a finished copy exists, and the cancel token pair
/// (`[primary, duplicate]`) each slot's copies poll.
struct SpecRound {
    epoch: Instant,
    /// Per-slot primary start, ns since `epoch` plus one (0 = unstarted).
    started: Vec<AtomicU64>,
    /// Executor running each slot's primary copy.
    runner: Vec<AtomicUsize>,
    /// A finished copy exists for the slot.
    done: Vec<AtomicBool>,
    /// Wall duration of a finished copy, ns (the watchdog's runtime
    /// estimate sample).
    dur: Vec<AtomicU64>,
    /// A duplicate has been launched for the slot.
    taken: Vec<AtomicBool>,
    /// Cooperative cancel tokens per slot: `[primary, duplicate]`.
    cancels: Vec<[AtomicBool; 2]>,
    /// Slots with a finished copy (the round ends at `slots`).
    finished: AtomicUsize,
}

impl SpecRound {
    fn new(slots: usize) -> SpecRound {
        SpecRound {
            epoch: Instant::now(),
            started: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            runner: (0..slots).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            done: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            dur: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            taken: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            cancels: (0..slots).map(|_| [AtomicBool::new(false), AtomicBool::new(false)]).collect(),
            finished: AtomicUsize::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// One copy of slot `j` finished: record its duration sample, mark
    /// the slot complete, and cancel the other copy cooperatively.
    fn finish(&self, j: usize, started_ns: u64, loser_copy: usize) {
        self.dur[j].store(self.now_ns().saturating_sub(started_ns).max(1), Ordering::Relaxed);
        if !self.done[j].swap(true, Ordering::Relaxed) {
            self.finished.fetch_add(1, Ordering::Relaxed);
        }
        self.cancels[j][loser_copy].store(true, Ordering::Relaxed);
    }

    /// The watchdog's staleness threshold: twice the median duration of
    /// the round's completed copies — available only once at least half
    /// the round has completed (the quantile estimate needs evidence).
    fn stale_threshold_ns(&self, total: usize) -> Option<u64> {
        let completed = self.finished.load(Ordering::Relaxed);
        if completed == 0 || completed * 2 < total {
            return None;
        }
        let mut ds: Vec<u64> = (0..self.done.len())
            .filter(|&j| self.done[j].load(Ordering::Relaxed))
            .map(|j| self.dur[j].load(Ordering::Relaxed))
            .filter(|&d| d > 0)
            .collect();
        if ds.is_empty() {
            return None;
        }
        ds.sort_unstable();
        Some(ds[ds.len() / 2].saturating_mul(2).max(1))
    }
}

/// A multi-stage job driver over a [`LocalCluster`].
pub struct ClusterSession {
    cluster: LocalCluster,
    stages: Vec<StageMetrics>,
    policy: RetryPolicy,
    scheduler: SchedulerMode,
    faults: FaultPlan,
    /// Driver-side run-trace recorder (stage lifecycle and fault-handling
    /// decisions); executors record their own events.
    trace: TraceRecorder,
    /// Driver's simulated job clock: cumulative stage critical-path plus
    /// recovery time.
    sim_now: Duration,
}

impl ClusterSession {
    /// A session over `executors` identical executors (per-executor spill
    /// subdirectories, as [`LocalCluster::uniform`]). The retry policy is
    /// taken from the config; no faults are injected until
    /// [`ClusterSession::install_faults`].
    pub fn new(executors: usize, config: ExecutorConfig) -> ClusterSession {
        assert!(executors > 0, "a cluster needs at least one executor");
        let policy = config.retry;
        let scheduler = config.scheduler;
        let tracing = config.tracing;
        ClusterSession {
            cluster: LocalCluster::uniform(executors, config),
            stages: Vec::new(),
            policy,
            scheduler,
            faults: FaultPlan::quiet(),
            trace: TraceRecorder::new(tracing),
            sim_now: Duration::ZERO,
        }
    }

    /// A session over explicitly configured (possibly heterogeneous)
    /// executors. The retry policy and scheduler mode are taken from the
    /// first config.
    pub fn with_configs(configs: Vec<ExecutorConfig>) -> ClusterSession {
        assert!(!configs.is_empty(), "a cluster needs at least one executor");
        let policy = configs[0].retry;
        let scheduler = configs[0].scheduler;
        let tracing = configs[0].tracing;
        ClusterSession {
            cluster: LocalCluster::new(configs),
            stages: Vec::new(),
            policy,
            scheduler,
            faults: FaultPlan::quiet(),
            trace: TraceRecorder::new(tracing),
            sim_now: Duration::ZERO,
        }
    }

    pub fn executors(&self) -> usize {
        self.cluster.len()
    }

    /// The cluster's execution mode (executor 0's; `uniform` clusters are
    /// homogeneous).
    pub fn mode(&self) -> crate::config::ExecutionMode {
        self.cluster.executors[0].mode()
    }

    pub fn executor(&self, i: usize) -> &Executor {
        &self.cluster.executors[i]
    }

    pub fn executor_mut(&mut self, i: usize) -> &mut Executor {
        &mut self.cluster.executors[i]
    }

    // ------------------------------------------------------------------
    // fault-handling knobs
    // ------------------------------------------------------------------

    /// Replace the driver's retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Switch the task scheduler for subsequent stages (in-run A/B:
    /// results are identical either way; wall-clock shape differs).
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.scheduler = mode;
    }

    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Install a fault plan; subsequent stages consult it at every
    /// injection site. Installing [`FaultPlan::quiet`] turns faults off.
    /// The plan is also installed into every executor's cache manager so
    /// the spill-path kill points (`SpillWrite`, `ManifestCommit`,
    /// `SpillRead`, `Rehydrate`) can fire inside the cache itself.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for e in &mut self.cluster.executors {
            e.install_fault_plan(&plan);
        }
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Driver-side health record of executor `i`.
    pub fn health(&self, i: usize) -> &ExecutorHealth {
        &self.cluster.health[i]
    }

    /// Executors currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.cluster.len() - self.cluster.healthy_count()
    }

    /// Bring executor `i` back into service: clear its crash poison,
    /// quarantine flag, and per-stage failure count (the operator
    /// replacing a node between jobs).
    pub fn recover_executor(&mut self, i: usize) {
        self.cluster.executors[i].recover();
        self.cluster.health[i].quarantined = false;
        self.cluster.health[i].stage_failures = 0;
    }

    // ------------------------------------------------------------------
    // stages
    // ------------------------------------------------------------------

    /// Run one stage: `tasks` tasks scheduled over the healthy executors
    /// (see [`SchedulerMode`] for how), each wrapped in
    /// [`Executor::run_task`] for metric attribution. Returns the task
    /// results in task order.
    ///
    /// The task closure must be deterministic in `(ctx.task, executor
    /// state)` for cluster results to be independent of executor count —
    /// and for retries to be sound: a re-run attempt must produce the
    /// same bytes the failed attempt would have.
    pub fn run_stage<R: Send>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        self.run_stage_inner(name, tasks, f, false)
    }

    /// The retry engine behind [`ClusterSession::run_stage`].
    /// `shuffle_stage` marks stages whose outputs cross the exchange:
    /// only those draw [`FaultSite::ShuffleFrame`] corruption (detected
    /// as a failed attempt, so the map task re-executes — Spark's
    /// fetch-failure → resubmit story — and corrupt bytes are never
    /// consumed).
    fn run_stage_inner<R: Send>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
        shuffle_stage: bool,
    ) -> Result<Vec<R>, EngineError> {
        assert!(tasks > 0, "a stage needs at least one task");
        let executors = self.cluster.len();
        let policy = self.policy;
        let plan = self.faults.clone();
        // Per-stage blacklisting: failure counts reset, quarantine holds.
        for h in &mut self.cluster.health {
            h.stage_failures = 0;
        }

        let stage_wall_start = self.trace.now_ns();
        let stage_sim_start = dur_ns(self.sim_now);
        self.trace.record(
            TraceEventKind::StageStart,
            Some(name),
            None,
            None,
            None,
            name,
            stage_wall_start,
            0,
            stage_sim_start,
            0,
            0,
            tasks as u64,
        );

        // A fully quarantined cluster cannot schedule anything: abort up
        // front, attributed to the cluster state — not to whichever
        // executor happened to be next in round-robin order — and record
        // a zeroed aborted-stage row rather than a half-initialized one.
        if self.cluster.healthy_count() == 0 {
            let err =
                EngineError::AllExecutorsLost { executors, quarantined: self.quarantined_count() };
            let mut stage = StageMetrics::new(name);
            stage.aborted = true;
            let now = self.trace.now_ns();
            self.trace.record(
                TraceEventKind::StageEnd,
                Some(name),
                None,
                None,
                None,
                name,
                now,
                now.saturating_sub(stage_wall_start),
                stage_sim_start,
                0,
                0,
                0,
            );
            self.stages.push(stage);
            return Err(err.in_task(name, 0));
        }

        let mut stage = StageMetrics::new(name);
        stage.tasks = tasks;
        let mut results: Vec<Option<R>> = (0..tasks).map(|_| None).collect();

        // Initial assignment: task t starts on the first healthy executor
        // at or after t % E — exactly t % E when nothing is quarantined,
        // preserving static round-robin pinning. (`healthy_from` is only
        // `None` on an all-quarantined cluster, excluded above.)
        let mut pending: Vec<(usize, u32, usize)> = Vec::with_capacity(tasks);
        for t in 0..tasks {
            let x = self.cluster.healthy_from(t % executors).expect("a healthy executor exists");
            pending.push((t, 0, x));
        }

        let scheduler = self.scheduler;
        // Per-executor busy time accumulated over every round; under
        // `Pull` the stage's critical path is this vector's max.
        let mut busy_total: Vec<Duration> = vec![Duration::ZERO; executors];

        let outcome: Result<(), EngineError> = 'stage: loop {
            if pending.is_empty() {
                break Ok(());
            }
            // One scheduling round: the initial task set, or a batch of
            // retries. `(task, attempt, home executor)` triples.
            let round: Vec<(usize, u32, usize)> = pending.drain(..).collect();
            let marks: Vec<usize> = self.cluster.executors.iter().map(|e| e.tasks.len()).collect();

            // One physical attempt, identical under both schedulers.
            // Fault decisions are pure functions of (site, stage, task,
            // attempt) and poison flags are only touched by the thread
            // hosting the executor, so the failure scenario is identical
            // across widths and interleavings.
            let run_attempt =
                |e: &mut Executor, i: usize, t: usize, a: u32, cancel: &AtomicBool| -> Attempt<R> {
                    let ctx =
                        TaskContext { stage: name, task: t, tasks, executor: i, executors, cancel };
                    let mut oom_rerun = false;
                    let mut oom_recovered = false;
                    let mut r = e.run_task_in(format!("{name}-{t}"), name, t, a, |e| {
                        if e.is_poisoned() {
                            return Err(EngineError::ExecutorLost { executor: i });
                        }
                        if plan.fires(FaultSite::ExecutorCrash, name, t, a) {
                            e.poison();
                            return Err(EngineError::ExecutorLost { executor: i });
                        }
                        if plan.fires(FaultSite::TaskBody, name, t, a) {
                            return Err(EngineError::Injected { site: FaultSite::TaskBody });
                        }
                        if plan.fires(FaultSite::Alloc, name, t, a) {
                            return Err(EngineError::Injected { site: FaultSite::Alloc });
                        }
                        if plan.fires(FaultSite::TaskHang, name, t, a) {
                            // The attempt hangs: it never runs the body and
                            // burns its whole deadline budget in simulated
                            // time. The watchdog fails it with the transient
                            // Deadline error; the budget is charged to stage
                            // recovery at outcome processing (single-threaded,
                            // so Wave and Pull charge identically).
                            return Err(EngineError::Deadline {
                                stage: name.to_string(),
                                task: t,
                                attempt: a,
                                budget: policy.deadline_budget(),
                            });
                        }
                        let out = f(&ctx, e)?;
                        if shuffle_stage && plan.fires(FaultSite::ShuffleFrame, name, t, a) {
                            return Err(EngineError::Injected { site: FaultSite::ShuffleFrame });
                        }
                        Ok(out)
                    });
                    // A spill-path kill point fired inside the cache: the
                    // modelled executor process died mid-spill/restore.
                    // Poison it so the restart/quarantine machinery — not a
                    // plain task retry — performs the recovery.
                    if r.as_ref().err().and_then(|err| err.injected_kill()).is_some() {
                        e.poison();
                    }
                    // Graceful OOM degradation: spill the cache, collect, and
                    // re-run once in place. An injected Alloc fault models the
                    // same pressure, so the spill relieves it and it is not
                    // re-drawn on the in-place re-run.
                    if policy.spill_on_oom
                        && r.as_ref().is_err_and(|err| err.is_memory_pressure())
                        && !e.is_poisoned()
                    {
                        e.spill_for_memory();
                        oom_rerun = true;
                        r = e.run_task_in(format!("{name}-{t}-oom-retry"), name, t, a, |e| {
                            let out = f(&ctx, e)?;
                            if shuffle_stage && plan.fires(FaultSite::ShuffleFrame, name, t, a) {
                                return Err(EngineError::Injected {
                                    site: FaultSite::ShuffleFrame,
                                });
                            }
                            Ok(out)
                        });
                        oom_recovered = r.is_ok();
                    }
                    (t, a, r, oom_rerun, oom_recovered, false)
                };

            let collected: Vec<Vec<Attempt<R>>> = match scheduler {
                SchedulerMode::Wave => {
                    // Static queues behind a barrier: executor i runs its
                    // queued attempts sequentially on its own thread.
                    let mut queues: Vec<Vec<(usize, u32)>> = vec![Vec::new(); executors];
                    for &(t, a, x) in &round {
                        queues[x].push((t, a));
                    }
                    self.cluster.par_run(|i, e| {
                        queues[i]
                            .iter()
                            .map(|&(t, a)| run_attempt(e, i, t, a, &NEVER_CANCELLED))
                            .collect()
                    })
                }
                SchedulerMode::Pull => {
                    // Shared-queue claiming, affinity-first. Slots are
                    // ordered ascending by task index; each executor
                    // drains its own home slots first, then steals
                    // remaining *unpinned* slots in ascending task order.
                    //
                    // Determinism: fault-affected attempts are pinned to
                    // their home up front, so crash poisoning, failure
                    // charging, quarantines and OOM spills land exactly
                    // where the wave scheduler puts them; fault-free
                    // attempts never touch health state, so a steal only
                    // changes *where* the same deterministic bytes are
                    // computed.
                    let mut slots = round.clone();
                    slots.sort_unstable_by_key(|&(t, ..)| t);
                    let pinned = self.pin_faulted_slots(&slots, name, shuffle_stage, &plan);
                    let claimed: Vec<AtomicBool> =
                        slots.iter().map(|_| AtomicBool::new(false)).collect();
                    let benched: Vec<bool> =
                        self.cluster.health.iter().map(|h| h.quarantined).collect();
                    // Speculation bookkeeping, shared across the round's
                    // executor threads. Physical wall-clock here steers
                    // *where* duplicates launch — never what the job
                    // computes, because reconciliation below is
                    // deterministic in task order.
                    let spec = policy.speculate.then(|| SpecRound::new(slots.len()));
                    let (slots, pinned, claimed, spec) = (&slots, &pinned, &claimed, &spec);
                    self.cluster.par_run(|i, e| {
                        let mut out = Vec::new();
                        if benched[i] {
                            return out;
                        }
                        // One primary (non-duplicate) attempt for slot j.
                        // With speculation on, publish who runs it and
                        // when it started so idle executors can spot a
                        // straggler, and on completion raise the
                        // duplicate's cancel token.
                        let run_primary = |e: &mut Executor, j: usize, t: usize, a: u32| {
                            let Some(s) = spec else {
                                return run_attempt(e, i, t, a, &NEVER_CANCELLED);
                            };
                            s.runner[j].store(i, Ordering::Relaxed);
                            let start = s.now_ns().max(1);
                            s.started[j].store(start, Ordering::Relaxed);
                            let r = run_attempt(e, i, t, a, &s.cancels[j][0]);
                            s.finish(j, start, 1);
                            r
                        };
                        // Affinity pass: my home slots, ascending. Pinned
                        // slots are only ever claimed here, so a crash
                        // dooms exactly the affinity suffix a wave would
                        // have doomed.
                        for (j, &(t, a, home)) in slots.iter().enumerate() {
                            if home != i || claimed[j].swap(true, Ordering::Relaxed) {
                                continue;
                            }
                            out.push(run_primary(e, j, t, a));
                        }
                        // Steal pass: remaining unpinned slots, ascending
                        // task order. An executor that crashed this round
                        // must not pull in work the wave scheduler would
                        // never have handed it.
                        for (j, &(t, a, home)) in slots.iter().enumerate() {
                            if e.is_poisoned() {
                                break;
                            }
                            if home == i || pinned[j] || claimed[j].swap(true, Ordering::Relaxed) {
                                continue;
                            }
                            if e.trace.enabled() {
                                let now = e.trace.now_ns();
                                let sim = dur_ns(e.sim_now());
                                e.trace.record(
                                    TraceEventKind::TaskSteal,
                                    Some(name),
                                    Some(t),
                                    Some(a),
                                    None,
                                    format!("{name}-{t}-steal"),
                                    now,
                                    0,
                                    sim,
                                    0,
                                    0,
                                    home as u64,
                                );
                            }
                            out.push(run_primary(e, j, t, a));
                        }
                        // Speculation pass: every slot is claimed, so an
                        // idle executor watches the round instead of
                        // returning. Once at least half the round has
                        // completed, a primary running past 2× the median
                        // completed duration gets a duplicate launched
                        // here; first completion raises the loser's
                        // cancel token, and reconciliation picks the
                        // winner deterministically in task order. Pinned
                        // (fault-affected) slots are never duplicated —
                        // their failure must land on the home executor.
                        if let Some(s) = spec {
                            'watch: while !e.is_poisoned()
                                && s.finished.load(Ordering::Relaxed) < slots.len()
                            {
                                let Some(stale) = s.stale_threshold_ns(slots.len()) else {
                                    std::thread::sleep(Duration::from_micros(200));
                                    continue;
                                };
                                let now_ns = s.now_ns();
                                for (j, &(t, a, _)) in slots.iter().enumerate() {
                                    if pinned[j] || s.done[j].load(Ordering::Relaxed) {
                                        continue;
                                    }
                                    let started = s.started[j].load(Ordering::Relaxed);
                                    if started == 0
                                        || s.runner[j].load(Ordering::Relaxed) == i
                                        || now_ns.saturating_sub(started) <= stale
                                        || s.taken[j].swap(true, Ordering::Relaxed)
                                    {
                                        continue;
                                    }
                                    let home = s.runner[j].load(Ordering::Relaxed);
                                    if e.trace.enabled() {
                                        let now = e.trace.now_ns();
                                        let sim = dur_ns(e.sim_now());
                                        e.trace.record(
                                            TraceEventKind::TaskSpeculative,
                                            Some(name),
                                            Some(t),
                                            Some(a),
                                            None,
                                            format!("{name}-{t}-speculative"),
                                            now,
                                            0,
                                            sim,
                                            0,
                                            0,
                                            home as u64,
                                        );
                                    }
                                    let start = s.now_ns().max(1);
                                    let (t, a, r, rerun, oomr, _) =
                                        run_attempt(e, i, t, a, &s.cancels[j][1]);
                                    s.finish(j, start, 0);
                                    out.push((t, a, r, rerun, oomr, true));
                                    continue 'watch;
                                }
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                        out
                    })
                }
            };

            // Roll the round's attempt metrics into the stage. Under
            // `Wave` the barrier makes each round's critical path the
            // busiest executor of that round, and the stage's path their
            // sum; under `Pull` rounds don't barrier against stage wall
            // time, so only the per-executor totals accumulate here.
            let mut round_max = Duration::ZERO;
            for (i, e) in self.cluster.executors.iter().enumerate() {
                let mut busy = Duration::ZERO;
                for t in &e.tasks[marks[i]..] {
                    stage.add_task(t);
                    busy += t.total();
                }
                busy_total[i] += busy;
                round_max = round_max.max(busy);
            }
            if scheduler == SchedulerMode::Wave {
                stage.exec += round_max;
            }

            // Process outcomes single-threaded, in task order, so health
            // and retry decisions never depend on thread interleaving.
            let mut flat: Vec<(usize, u32, usize, Result<R, EngineError>, bool, bool, bool)> =
                Vec::new();
            for (i, list) in collected.into_iter().enumerate() {
                for (t, a, r, rerun, oomr, sp) in list {
                    flat.push((t, a, i, r, rerun, oomr, sp));
                }
            }
            // Tasks ascending, primary before its duplicate.
            flat.sort_by_key(|&(t, _, _, _, _, _, sp)| (t, sp));

            // Reconcile speculative duplicates: exactly one canonical
            // attempt per slot enters the six counters, chosen by rules
            // that never depend on which copy physically finished first.
            // A successful primary always wins (a duplicate only ever
            // improves wall-clock, never results); a failed primary loses
            // to a successful duplicate; when both fail, keep the copy
            // that failed for a real reason over one that was merely
            // cancelled. The loser's metrics, errors, and OOM flags are
            // discarded entirely.
            let mut canonical: Vec<(usize, u32, usize, Result<R, EngineError>, bool, bool)> =
                Vec::with_capacity(flat.len());
            let mut it = flat.into_iter().peekable();
            while let Some((t, a, x, r, rerun, oomr)) =
                it.next().map(|(t, a, x, r, re, o, _)| (t, a, x, r, re, o))
            {
                let dup = match it.peek() {
                    Some(&(t2, _, _, _, _, _, true)) if t2 == t => it.next(),
                    _ => None,
                };
                let entry = match dup {
                    None => (t, a, x, r, rerun, oomr),
                    Some((_, da, dx, dr, drerun, doomr, _)) => {
                        stage.speculative_launched += 1;
                        let primary_won = match (&r, &dr) {
                            (Ok(_), _) => true,
                            (Err(_), Ok(_)) => false,
                            (Err(pe), Err(de)) => {
                                !matches!(pe, EngineError::Cancelled { .. })
                                    || matches!(de, EngineError::Cancelled { .. })
                            }
                        };
                        if primary_won {
                            (t, a, x, r, rerun, oomr)
                        } else {
                            stage.speculative_wins += 1;
                            (t, da, dx, dr, drerun, doomr)
                        }
                    }
                };
                canonical.push(entry);
            }

            let mut failures: Vec<(usize, u32, usize, EngineError)> = Vec::new();
            for (t, a, x, r, rerun, oomr) in canonical {
                // An OOM in-place re-run is a physical task run: count it
                // in `attempts` (and `oom_reruns`), never in `retries`.
                stage.attempts += 1 + rerun as u64;
                stage.oom_reruns += rerun as u64;
                if oomr {
                    stage.oom_recoveries += 1;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::OomRecovery,
                        Some(name),
                        Some(t),
                        Some(a),
                        Some(x),
                        format!("{name}-{t}-oom"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        0,
                        0,
                        0,
                    );
                }
                match r {
                    Ok(v) => results[t] = Some(v),
                    Err(err) => {
                        // The watchdog's verdict on a hung attempt: the
                        // whole deadline budget was burned, charged to
                        // stage recovery in simulated time (never slept).
                        if let EngineError::Deadline { budget, .. } = &err {
                            stage.timeouts += 1;
                            stage.recovery += *budget;
                            let now = self.trace.now_ns();
                            self.trace.record(
                                TraceEventKind::TaskTimeout,
                                Some(name),
                                Some(t),
                                Some(a),
                                Some(x),
                                format!("{name}-{t}-timeout"),
                                now,
                                0,
                                dur_ns(self.sim_now),
                                dur_ns(*budget),
                                0,
                                0,
                            );
                        }
                        failures.push((t, a, x, err));
                    }
                }
            }

            // Charge failures to executor health, then deal with dead or
            // repeat offenders: quarantine, or — for the last healthy
            // executor under `spare_last_executor` — restart in place.
            for &(_, _, x, _) in &failures {
                self.cluster.health[x].stage_failures += 1;
            }
            for x in 0..executors {
                let dead = self.cluster.executors[x].is_poisoned();
                let over = self.cluster.health[x].stage_failures >= policy.quarantine_after;
                if (!dead && !over) || self.cluster.health[x].quarantined {
                    continue;
                }
                if self.cluster.healthy_count() == 1 && policy.spare_last_executor {
                    // Restart in place. With `policy.rehydrate` the crash
                    // wipes the cache's volatile tiers and cold blocks are
                    // rehydrated from the spill manifest (saving their
                    // lineage recompute); without it, the legacy model — a
                    // hung JVM brought back with its state — applies. The
                    // ordinal (restarts *before* this one) keys the
                    // `Rehydrate` kill point, so a crash during recovery
                    // resolves differently on the next restart.
                    let ordinal = self.cluster.health[x].restarts as u32;
                    if policy.rehydrate {
                        let out = self.cluster.executors[x].restart_in_place(name, ordinal);
                        if out.killed {
                            // Died again mid-recovery: stay poisoned. The
                            // restart still counts, so the next one runs
                            // at a higher ordinal and finishes the scan.
                            self.cluster.executors[x].poison();
                        }
                        let blocks = out.rehydrated.len() as u64;
                        let bytes: u64 = out.rehydrated.iter().map(|r| r.1).sum();
                        self.cluster.health[x].rehydrated_blocks += blocks;
                        stage.rehydrated_blocks += blocks;
                        stage.rehydrated_bytes += bytes;
                    } else {
                        self.cluster.executors[x].recover();
                    }
                    self.cluster.health[x].stage_failures = 0;
                    self.cluster.health[x].restarts += 1;
                    stage.restarts += 1;
                    stage.recovery += policy.backoff;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::Restart,
                        Some(name),
                        None,
                        None,
                        Some(x),
                        format!("restart-executor-{x}"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        dur_ns(policy.backoff),
                        0,
                        0,
                    );
                } else {
                    self.cluster.health[x].quarantined = true;
                    stage.quarantines += 1;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::Quarantine,
                        Some(name),
                        None,
                        None,
                        Some(x),
                        format!("quarantine-executor-{x}"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        0,
                        0,
                        0,
                    );
                }
            }

            // Reschedule failed tasks on the next healthy executor, or
            // fail the stage: fatal error, attempts exhausted, or no
            // healthy executor left. The error keeps its innermost task
            // attribution and transient/fatal classification.
            for (t, a, x, err) in failures {
                if !err.is_transient() || a + 1 >= policy.max_attempts {
                    break 'stage Err(err.in_task(name, t));
                }
                let Some(y) = self.cluster.healthy_after(x) else {
                    break 'stage Err(err.in_task(name, t));
                };
                stage.retries += 1;
                stage.recovery += policy.backoff;
                let now = self.trace.now_ns();
                self.trace.record(
                    TraceEventKind::Retry,
                    Some(name),
                    Some(t),
                    Some(a),
                    Some(x),
                    format!("{name}-{t}-retry"),
                    now,
                    0,
                    dur_ns(self.sim_now),
                    dur_ns(policy.backoff),
                    0,
                    y as u64,
                );
                pending.push((t, a + 1, y));
            }
        };

        // Under `Pull` there is no intra-stage barrier: the stage's
        // critical path is the busiest executor across the whole stage
        // (fixing the wave-era overstatement where an executor idle in
        // one round but busy the next was double-counted).
        if scheduler == SchedulerMode::Pull {
            stage.exec = busy_total.into_iter().max().unwrap_or(Duration::ZERO);
        }

        // The stage is recorded even when it fails: partial work and
        // recovery attempts stay visible in the metrics.
        self.sim_now += stage.exec + stage.recovery;
        let now = self.trace.now_ns();
        self.trace.record(
            TraceEventKind::StageEnd,
            Some(name),
            None,
            None,
            None,
            name,
            now,
            now.saturating_sub(stage_wall_start),
            stage_sim_start,
            dur_ns(stage.exec + stage.recovery),
            stage.shuffle_bytes,
            stage.attempts,
        );
        self.stages.push(stage);
        outcome?;
        Ok(results.into_iter().map(|r| r.expect("completed stage fills every slot")).collect())
    }

    /// Pull-mode fault pinning: decide, before a round runs, which slots
    /// must execute on their home executor so the failure scenario —
    /// which executor a fault charges, poisons, or OOM-spills — is
    /// identical to wave scheduling. Walks each executor's affinity
    /// slots in ascending task order, mirroring exactly what its wave
    /// queue would run: a crash dooms every later affinity slot (they
    /// fail with `ExecutorLost` at home), and any other firing site pins
    /// just its own slot. Fault-free slots stay stealable — they never
    /// touch health state, so where they run is observability, not
    /// semantics.
    fn pin_faulted_slots(
        &self,
        slots: &[(usize, u32, usize)],
        name: &str,
        shuffle_stage: bool,
        plan: &FaultPlan,
    ) -> Vec<bool> {
        let doomed: Vec<bool> = self.cluster.executors.iter().map(|e| e.is_poisoned()).collect();
        pin_faulted_slots_in(&doomed, slots, name, shuffle_stage, plan)
    }

    /// Run a two-stage shuffle job: a map wave producing per-reducer byte
    /// runs, an all-to-all exchange, and a reduce wave consuming its
    /// partition's runs in map-task order.
    ///
    /// Each map task must return exactly `reduce_tasks` output runs; each
    /// reduce task receives `map_tasks` input runs (possibly empty). The
    /// stage pair is recorded as `"{name}-map"` / `"{name}-reduce"`, with
    /// the exchanged byte volume on the map stage's `shuffle_bytes`.
    pub fn run_shuffle_job<R: Send>(
        &mut self,
        name: &str,
        map_tasks: usize,
        reduce_tasks: usize,
        map: impl Fn(&TaskContext, &mut Executor) -> Result<MapOutputs, EngineError> + Sync,
        reduce: impl Fn(&TaskContext, &mut Executor, &[ShufflePayload]) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        let map_stage = format!("{name}-map");
        let outputs = self.run_stage_inner(
            &map_stage,
            map_tasks,
            |ctx: &TaskContext, e: &mut Executor| {
                let out = map(ctx, e)?;
                if out.len() != reduce_tasks {
                    return Err(EngineError::Shuffle(format!(
                        "map task {} produced {} reducer outputs, expected {}",
                        ctx.task,
                        out.len(),
                        reduce_tasks
                    ))
                    .in_task(ctx.stage, ctx.task));
                }
                Ok(out)
            },
            true,
        )?;
        let bytes: u64 = outputs.iter().flatten().map(|p| p.len() as u64).sum();
        let pages: u64 = outputs.iter().flatten().map(|p| p.page_count() as u64).sum();
        if let Some(s) = self.stages.last_mut() {
            s.shuffle_bytes = bytes;
            s.shuffle_pages = pages;
        }

        // All-to-all exchange: inputs[reducer][map task], map-task order.
        // Payloads *move* — page-backed runs change owner here, no copy.
        let inputs = exchange(outputs);
        let result = {
            let inputs = &inputs;
            self.run_stage(&format!("{name}-reduce"), reduce_tasks, |ctx, e| {
                reduce(ctx, e, &inputs[ctx.task])
            })
        };
        // The exchange's lifetime ends with the reduce wave: return the
        // consumed payloads' storage to the executor arenas so the next
        // shuffle round reuses pages/buffers instead of allocating.
        if result.is_ok() {
            let n = self.cluster.executors.len();
            for (i, p) in inputs.into_iter().flatten().enumerate() {
                self.cluster.executors[i % n].recycle_payload(p);
            }
        }
        result
    }

    // ------------------------------------------------------------------
    // roll-ups
    // ------------------------------------------------------------------

    /// Per-stage metrics, in execution order.
    pub fn stages(&self) -> &[StageMetrics] {
        &self.stages
    }

    /// The most recent stage with the given name. Iterative jobs reuse
    /// stage names (multi-iteration PageRank/CC loops), and callers
    /// reading "the" stage after a run want the latest execution — use
    /// [`ClusterSession::stages_named`] for the full history.
    pub fn stage(&self, name: &str) -> Option<&StageMetrics> {
        self.stages.iter().rev().find(|s| s.name == name)
    }

    /// Every execution of the named stage, in run order (indexed access
    /// for repeated-name jobs; `stages_named(n).last()` ==
    /// [`ClusterSession::stage`]`(n)`).
    pub fn stages_named(&self, name: &str) -> Vec<&StageMetrics> {
        self.stages.iter().filter(|s| s.name == name).collect()
    }

    /// Tasks run so far, across all stages (logical tasks; see
    /// [`JobMetrics::attempts`] for runs including retries).
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total bytes moved through shuffle exchanges so far.
    pub fn shuffle_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes).sum()
    }

    /// Refresh job-level cache statistics on every executor (call before
    /// reading [`ClusterSession::job_summary`] cache fields).
    pub fn finish_job(&mut self) {
        for e in &mut self.cluster.executors {
            e.finish_job();
        }
    }

    /// Aggregate job metrics across executors (sums; exec is the max —
    /// executors run in parallel), plus the fault-handling counters
    /// folded up from every stage run so far.
    pub fn job_summary(&self) -> JobMetrics {
        let mut out = self.cluster.job_summary();
        for s in &self.stages {
            out.add_stage_recovery(s);
        }
        out
    }

    /// All executors' lifetime-timeline samples merged in time order
    /// (each executor samples against its own clock; the merge orders by
    /// per-executor elapsed time, which is what Figures 8a/9a plot).
    pub fn merged_timeline(&self) -> Timeline {
        let mut samples: Vec<_> = self
            .cluster
            .executors
            .iter()
            .flat_map(|e| e.timeline().samples.iter().copied())
            .collect();
        samples.sort_by_key(|s| s.at);
        Timeline { samples }
    }

    /// The slowest task across all executors (Figure 11 reports the
    /// slowest task).
    pub fn slowest_task(&self) -> Option<&crate::metrics::TaskMetrics> {
        self.cluster.executors.iter().filter_map(|e| e.slowest_task()).max_by_key(|t| t.total())
    }

    // ------------------------------------------------------------------
    // run trace
    // ------------------------------------------------------------------

    /// The driver's own trace recorder (stage lifecycle, retries,
    /// quarantines, restarts, OOM recoveries).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The merged run trace: driver events plus every executor's,
    /// deterministically ordered by logical position (see
    /// [`RunTrace::merge`]). Empty when tracing is off.
    pub fn merged_trace(&self) -> RunTrace {
        let executors: Vec<&TraceRecorder> =
            self.cluster.executors.iter().map(|e| &e.trace).collect();
        RunTrace::merge(&self.trace, &executors)
    }

    /// Write the merged trace as Chrome trace-event JSON (loadable in
    /// `chrome://tracing` or Perfetto).
    pub fn export_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.merged_trace().to_chrome_string())
    }

    /// Write the merged trace's flat run manifest JSON.
    pub fn export_manifest(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.merged_trace().to_manifest_string())
    }

    /// The underlying cluster (raw `par_run` waves, direct executor
    /// iteration).
    pub fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    pub fn cluster_mut(&mut self) -> &mut LocalCluster {
        &mut self.cluster
    }
}

/// The slot-pinning walk behind `ClusterSession::pin_faulted_slots`,
/// parameterized over the executor set's initial doomed flags so the job
/// service can run it against a job's *virtual* executors (whose poison
/// state is per-job, never the shared physical processes'). Walks each
/// executor's affinity slots in ascending task order, mirroring exactly
/// what its wave queue would run: a crash dooms every later affinity slot
/// (they fail with `ExecutorLost` at home), and any other firing site pins
/// just its own slot. Fault-free slots stay stealable — they never touch
/// health state, so where they run is observability, not semantics.
pub(crate) fn pin_faulted_slots_in(
    doomed_at_start: &[bool],
    slots: &[(usize, u32, usize)],
    name: &str,
    shuffle_stage: bool,
    plan: &FaultPlan,
) -> Vec<bool> {
    let mut pinned = vec![false; slots.len()];
    // Fast path: a quiet plan on a healthy cluster pins nothing.
    if plan.is_quiet() && doomed_at_start.iter().all(|&d| !d) {
        return pinned;
    }
    for (i, &start_doomed) in doomed_at_start.iter().enumerate() {
        let mut doomed = start_doomed;
        for (j, &(t, a, home)) in slots.iter().enumerate() {
            if home != i {
                continue;
            }
            if doomed {
                pinned[j] = true;
            } else if plan.fires(FaultSite::ExecutorCrash, name, t, a) {
                pinned[j] = true;
                doomed = true;
            } else if FaultSite::SPILL_PATH.iter().any(|&s| plan.fires(s, name, t, a)) {
                // A spill-path kill *may* fire in this attempt (only
                // if the cache reaches the instrumented point); treat
                // it like a crash — pin it and everything after it.
                // Over-pinning is safe: pinned slots run at home
                // exactly as the wave scheduler would run them.
                pinned[j] = true;
                doomed = true;
            } else if plan.fires(FaultSite::TaskBody, name, t, a)
                || plan.fires(FaultSite::Alloc, name, t, a)
                || plan.fires(FaultSite::TaskHang, name, t, a)
                || (shuffle_stage && plan.fires(FaultSite::ShuffleFrame, name, t, a))
            {
                // A hang, like any in-task failure, must be charged to
                // the home executor's health — pin just its own slot.
                pinned[j] = true;
            }
        }
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    fn session(executors: usize) -> ClusterSession {
        ClusterSession::new(executors, ExecutorConfig::new(ExecutionMode::Spark, 8 << 20))
    }

    /// A session pinned to wave scheduling, for tests that assert *which*
    /// executor ran a task — under pull scheduling an idle executor may
    /// legitimately steal an unpinned slot, so those attributions are
    /// timing-dependent there by design.
    fn wave_session(executors: usize) -> ClusterSession {
        ClusterSession::new(
            executors,
            ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(SchedulerMode::Wave),
        )
    }

    #[test]
    fn stage_results_are_in_task_order() {
        for executors in [1, 2, 3, 5] {
            let mut s = session(executors);
            let out = s.run_stage("ids", 7, |ctx, _e| Ok(ctx.task * 10)).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60], "{executors} executors");
            assert_eq!(s.stages()[0].tasks, 7);
            assert_eq!(s.stages()[0].attempts, 7, "fault-free: one attempt per task");
            assert_eq!(s.total_tasks(), 7);
        }
    }

    #[test]
    fn tasks_pin_to_executors_round_robin() {
        let mut s = wave_session(2);
        let homes = s.run_stage("home", 5, |ctx, _e| Ok(ctx.executor)).unwrap();
        assert_eq!(homes, vec![0, 1, 0, 1, 0]);
        // Executor-local state persists across stages for the same task
        // index: define a class in stage 1, find it in stage 2.
        s.run_stage("define", 2, |ctx, e| {
            e.heap.define_class(
                deca_heap::ClassBuilder::new(format!("T{}", ctx.task))
                    .field("v", deca_heap::FieldKind::I64),
            );
            Ok(())
        })
        .unwrap();
        let found = s
            .run_stage("lookup", 2, |ctx, e| {
                Ok(e.heap.registry().by_name(&format!("T{}", ctx.task)).is_some())
            })
            .unwrap();
        assert_eq!(found, vec![true, true]);
    }

    #[test]
    fn shuffle_job_exchanges_all_to_all() {
        // Map task t emits its task id to every reducer; each reducer
        // must see every map task's bytes, in map-task order.
        for executors in [1, 2, 4] {
            let mut s = session(executors);
            let got = s
                .run_shuffle_job(
                    "x",
                    3,
                    2,
                    |ctx, e| {
                        Ok((0..2)
                            .map(|_| {
                                let mut run = e.new_run();
                                run.push(&mut e.arena, &[ctx.task as u8]);
                                e.hand_over(run)
                            })
                            .collect())
                    },
                    |_ctx, _e, inputs| {
                        Ok(inputs.iter().map(|b| b.contiguous()[0]).collect::<Vec<u8>>())
                    },
                )
                .unwrap();
            assert_eq!(got, vec![vec![0, 1, 2], vec![0, 1, 2]], "{executors} executors");
            let map_stage = s.stage("x-map").unwrap();
            assert_eq!(map_stage.tasks, 3);
            assert_eq!(map_stage.shuffle_bytes, 6);
            assert_eq!(map_stage.shuffle_pages, 6, "one page per single-record run");
            assert_eq!(s.stage("x-reduce").unwrap().tasks, 2);
        }
    }

    #[test]
    fn mis_sized_map_output_is_a_shuffle_error() {
        let mut s = session(2);
        let err = s
            .run_shuffle_job(
                "bad",
                2,
                3,
                |_ctx, _e| Ok((0..2).map(|_| ShufflePayload::from(Vec::new())).collect()), // wrong: 2 ≠ 3 reducers
                |_ctx, _e, _inputs| Ok(()),
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("reducer outputs"), "{msg}");
        assert!(matches!(err, EngineError::Task { .. }), "carries task attribution");
    }

    #[test]
    fn task_errors_carry_stage_and_task() {
        let mut s = session(3);
        let err = s
            .run_stage("fragile", 4, |ctx, _e| {
                if ctx.task == 2 {
                    Err(EngineError::Shuffle("boom".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fragile") && msg.contains("task 2"), "{msg}");
        // The wave itself completed; the other tasks were still recorded.
        assert_eq!(s.stages()[0].tasks, 4);
    }

    #[test]
    fn stage_metrics_accumulate_without_wall_clock_assumptions() {
        let mut s = session(2);
        s.run_stage("alloc", 4, |_ctx, e| {
            let c = e.heap.define_class(
                deca_heap::ClassBuilder::new("A").field("x", deca_heap::FieldKind::I64),
            );
            for _ in 0..1000 {
                e.heap.alloc(c)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.total_tasks(), 4);
        assert_eq!(s.cluster().executors.iter().map(|e| e.task_metrics().len()).sum::<usize>(), 4);
        // Metric sanity on counts, not timings: this must never flake on
        // a frozen clock. job_summary sums collection counts across
        // executors.
        let summary = s.job_summary();
        let minors: u64 =
            s.cluster().executors.iter().map(|e| e.heap_stats().minor_collections).sum();
        assert_eq!(summary.minor_gcs, minors);
        assert!(!s.stages().is_empty());
    }

    // ------------------------------------------------------------------
    // fault handling
    // ------------------------------------------------------------------

    #[test]
    fn transient_failure_retries_on_next_executor() {
        let mut s = wave_session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(FaultSite::TaskBody, "flaky", Some(1), Some(0)));
        let out = s.run_stage("flaky", 4, |ctx, _e| Ok(ctx.executor)).unwrap();
        // Task 1's first attempt (executor 1) fails; the retry migrates
        // to the next healthy executor, 0.
        assert_eq!(out, vec![0, 0, 0, 1]);
        let st = s.stage("flaky").unwrap();
        assert_eq!((st.tasks, st.attempts, st.retries), (4, 5, 1));
        assert_eq!(st.quarantines, 0, "one failure is under the threshold");
        assert!(st.recovery > Duration::ZERO, "backoff is accounted, not slept");
        assert_eq!(s.job_summary().retries, 1);
    }

    #[test]
    fn crash_poisons_executor_then_quarantines_it() {
        let mut s = wave_session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(
            FaultSite::ExecutorCrash,
            "crashy",
            Some(1),
            Some(0),
        ));
        let out = s.run_stage("crashy", 6, |ctx, _e| Ok(ctx.executor)).unwrap();
        // Executor 1's whole queue (tasks 1, 3, 5) fails — the crash on
        // task 1 poisons it — and every retry lands on executor 0.
        assert_eq!(out, vec![0, 0, 0, 0, 0, 0]);
        let st = s.stage("crashy").unwrap();
        assert_eq!((st.attempts, st.retries, st.quarantines), (9, 3, 1));
        assert!(s.health(1).quarantined);
        assert_eq!(s.quarantined_count(), 1);
        assert_eq!(s.job_summary().quarantines, 1);
        // A later stage avoids the quarantined executor entirely.
        let homes = s.run_stage("after", 4, |ctx, _e| Ok(ctx.executor)).unwrap();
        assert_eq!(homes, vec![0, 0, 0, 0]);
        // Recovery returns it to rotation.
        s.recover_executor(1);
        let homes = s.run_stage("healed", 4, |ctx, _e| Ok(ctx.executor)).unwrap();
        assert_eq!(homes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn last_executor_is_restarted_in_place_not_quarantined() {
        let mut s = session(1);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(
            FaultSite::ExecutorCrash,
            "solo",
            Some(0),
            Some(0),
        ));
        let out = s.run_stage("solo", 3, |ctx, _e| Ok(ctx.task)).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
        let st = s.stage("solo").unwrap();
        assert_eq!(st.quarantines, 0, "the last healthy executor is never quarantined");
        assert_eq!(st.restarts, 1);
        assert_eq!(s.health(0).restarts, 1);
        assert!(!s.health(0).quarantined);
        assert_eq!(s.job_summary().restarts, 1);
    }

    #[test]
    fn forced_alloc_failure_recovers_by_spilling_in_place() {
        // Even under the default fail-fast policy (max_attempts = 1), OOM
        // degrades gracefully: spill, collect, re-run in place.
        let mut s = session(2);
        s.install_faults(FaultPlan::quiet().force(FaultSite::Alloc, "mem", Some(2), Some(0)));
        let out = s.run_stage("mem", 4, |ctx, _e| Ok(ctx.task)).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
        let st = s.stage("mem").unwrap();
        assert_eq!(st.oom_recoveries, 1);
        assert_eq!(st.retries, 0, "absorbed in place, no driver-level retry");
        assert_eq!(s.job_summary().oom_recoveries, 1);
    }

    #[test]
    fn shuffle_frame_corruption_forces_map_rerun() {
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(
            FaultSite::ShuffleFrame,
            "x-map",
            Some(0),
            Some(0),
        ));
        let got = s
            .run_shuffle_job(
                "x",
                3,
                2,
                |ctx, e| {
                    Ok((0..2)
                        .map(|_| {
                            let mut run = e.new_run();
                            run.push(&mut e.arena, &[ctx.task as u8]);
                            e.hand_over(run)
                        })
                        .collect())
                },
                |_ctx, _e, inputs| {
                    Ok(inputs.iter().map(|b| b.contiguous()[0]).collect::<Vec<u8>>())
                },
            )
            .unwrap();
        // Corrupt frames are never consumed: the map task re-executes and
        // the exchange sees only clean bytes.
        assert_eq!(got, vec![vec![0, 1, 2], vec![0, 1, 2]]);
        assert_eq!(s.stage("x-map").unwrap().retries, 1);
        assert_eq!(s.stage("x-reduce").unwrap().retries, 0);
        // The same site never fires on a non-shuffle stage.
        let mut s2 = session(2);
        s2.set_retry_policy(RetryPolicy::resilient());
        s2.install_faults(FaultPlan::quiet().force(FaultSite::ShuffleFrame, "plain", None, None));
        s2.run_stage("plain", 4, |_ctx, _e| Ok(())).unwrap();
        assert_eq!(s2.stage("plain").unwrap().retries, 0);
    }

    #[test]
    fn attempts_exhausted_fails_with_task_attributed_transient_error() {
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient().max_attempts(2));
        // Fails on every attempt: survivability is impossible.
        s.install_faults(FaultPlan::quiet().force(FaultSite::TaskBody, "doom", Some(1), None));
        let err = s.run_stage("doom", 2, |_ctx, _e| Ok(())).unwrap_err();
        assert!(matches!(err, EngineError::Task { .. }), "task-attributed: {err}");
        assert!(err.is_transient(), "classification survives the wrapper");
        assert!(err.to_string().contains("doom"), "{err}");
        // The failed stage is still recorded, with its attempts.
        let st = s.stage("doom").unwrap();
        assert_eq!(st.tasks, 2);
        assert!(st.attempts >= 3, "original wave plus at least one retry");
    }

    #[test]
    fn losing_every_executor_fails_cleanly() {
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient().quarantine_after(1).spare_last_executor(false));
        s.install_faults(FaultPlan::quiet().force(FaultSite::ExecutorCrash, "melt", None, None));
        let err = s.run_stage("melt", 4, |_ctx, _e| Ok(())).unwrap_err();
        assert!(matches!(err, EngineError::Task { .. }), "{err}");
        assert!(err.is_transient());
        assert_eq!(s.quarantined_count(), 2, "both executors ended up quarantined");
        assert_eq!(s.cluster().healthy_count(), 0);
        // A subsequent stage on a fully quarantined cluster fails
        // immediately (and is still recorded).
        let err = s.run_stage("after", 1, |_ctx, _e| Ok(())).unwrap_err();
        assert!(matches!(err, EngineError::Task { .. }), "{err}");
        assert!(s.stage("after").is_some());
    }

    #[test]
    fn all_quarantined_abort_blames_cluster_state_with_zeroed_row() {
        // Regression: the up-front abort used to report `ExecutorLost
        // { executor: t % executors }` — an arbitrary round-robin slot —
        // and push a half-initialized row (tasks set, zero attempts).
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient().quarantine_after(1).spare_last_executor(false));
        s.install_faults(FaultPlan::quiet().force(FaultSite::ExecutorCrash, "melt", None, None));
        s.run_stage("melt", 4, |_ctx, _e| Ok(())).unwrap_err();
        assert_eq!(s.cluster().healthy_count(), 0);
        let err = s.run_stage("after", 3, |_ctx, _e| Ok(())).unwrap_err();
        // The cause names the cluster state, not a scapegoat executor.
        match &err {
            EngineError::Task { stage, source, .. } => {
                assert_eq!(stage, "after");
                assert!(
                    matches!(
                        **source,
                        EngineError::AllExecutorsLost { executors: 2, quarantined: 2 }
                    ),
                    "cause must be the all-quarantined cluster: {source}"
                );
            }
            other => panic!("expected task-wrapped AllExecutorsLost, got {other}"),
        }
        assert!(err.is_transient());
        assert!(err.to_string().contains("no healthy executors"), "{err}");
        // The recorded row is zeroed and flagged, never half-initialized.
        let st = s.stage("after").unwrap();
        assert!(st.aborted);
        assert_eq!((st.tasks, st.attempts, st.retries), (0, 0, 0));
        assert_eq!(st.exec, Duration::ZERO);
        // Stages that actually ran are not marked aborted.
        assert!(!s.stage("melt").unwrap().aborted);
    }

    #[test]
    fn repeated_stage_names_read_most_recent_and_index_all() {
        // Iterative jobs reuse stage names; `stage()` must read the most
        // recent execution, and `stages_named` exposes the history.
        let mut s = session(2);
        for iter in 0..3u64 {
            s.run_stage("pr-iter", 2 + iter as usize, |ctx, _e| Ok(ctx.task)).unwrap();
        }
        assert_eq!(s.stage("pr-iter").unwrap().tasks, 4, "most recent execution wins");
        let all = s.stages_named("pr-iter");
        assert_eq!(all.iter().map(|st| st.tasks).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(
            all.last().map(|st| st.tasks),
            s.stage("pr-iter").map(|st| st.tasks),
            "stage() is stages_named().last()"
        );
        assert!(s.stages_named("absent").is_empty());
    }

    #[test]
    fn oom_rerun_is_counted_as_a_physical_attempt_not_a_retry() {
        // Regression for the attempts accounting: the OOM in-place re-run
        // is a physical task run. It used to vanish from `attempts`
        // (under-counting the work the cluster did).
        let mut s = session(2);
        s.install_faults(FaultPlan::quiet().force(FaultSite::Alloc, "mem", Some(2), Some(0)));
        s.run_stage("mem", 4, |ctx, _e| Ok(ctx.task)).unwrap();
        let st = s.stage("mem").unwrap();
        assert_eq!(st.tasks, 4);
        assert_eq!(st.oom_reruns, 1);
        assert_eq!(st.oom_recoveries, 1);
        assert_eq!(st.retries, 0);
        assert_eq!(st.attempts, 5, "4 scheduled + 1 in-place re-run");
        assert_eq!(
            st.attempts,
            st.tasks as u64 + st.retries + st.oom_reruns,
            "the attempts invariant"
        );
        let j = s.job_summary();
        assert_eq!((j.oom_reruns, j.oom_recoveries, j.attempts), (1, 1, 5));
    }

    // ------------------------------------------------------------------
    // run trace
    // ------------------------------------------------------------------

    #[test]
    fn trace_records_stage_lifecycle_and_attempts() {
        use crate::trace::TraceEventKind;
        let mut s = wave_session(2);
        s.run_stage("ids", 3, |ctx, _e| Ok(ctx.task)).unwrap();
        let t = s.merged_trace();
        assert_eq!(t.of_kind(TraceEventKind::StageStart).count(), 1);
        assert_eq!(t.of_kind(TraceEventKind::StageEnd).count(), 1);
        assert_eq!(t.of_kind(TraceEventKind::TaskAttempt).count(), 3);
        // Logical order: start, attempts by task index, end.
        assert_eq!(t.events.first().unwrap().kind, TraceEventKind::StageStart);
        assert_eq!(t.events.last().unwrap().kind, TraceEventKind::StageEnd);
        let tasks: Vec<Option<usize>> =
            t.of_kind(TraceEventKind::TaskAttempt).map(|e| e.task).collect();
        assert_eq!(tasks, vec![Some(0), Some(1), Some(2)]);
        // Attempts are attributed to the round-robin executor.
        let execs: Vec<Option<usize>> =
            t.of_kind(TraceEventKind::TaskAttempt).map(|e| e.executor).collect();
        assert_eq!(execs, vec![Some(0), Some(1), Some(0)]);
        assert_eq!(t.events.last().unwrap().count, 3, "StageEnd carries attempts");
    }

    #[test]
    fn trace_records_fault_handling_events() {
        use crate::trace::TraceEventKind;
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(FaultSite::TaskBody, "flaky", Some(1), Some(0)));
        s.run_stage("flaky", 4, |ctx, _e| Ok(ctx.executor)).unwrap();
        let t = s.merged_trace();
        let retries: Vec<&crate::trace::TraceEvent> = t.of_kind(TraceEventKind::Retry).collect();
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].task, Some(1));
        assert_eq!(retries[0].executor, Some(1), "failed on executor 1");
        assert_eq!(retries[0].count, 0, "rescheduled onto executor 0");
        // 4 first attempts + 1 retry = 5 TaskAttempt events.
        assert_eq!(t.of_kind(TraceEventKind::TaskAttempt).count(), 5);
        // The retried attempt carries attempt=1.
        assert!(t
            .of_kind(TraceEventKind::TaskAttempt)
            .any(|e| e.task == Some(1) && e.attempt == 1));
    }

    #[test]
    fn trace_records_oom_recovery_and_disabled_tracing_is_empty() {
        use crate::trace::TraceEventKind;
        let mut s = session(2);
        s.install_faults(FaultPlan::quiet().force(FaultSite::Alloc, "mem", Some(2), Some(0)));
        s.run_stage("mem", 4, |ctx, _e| Ok(ctx.task)).unwrap();
        let t = s.merged_trace();
        assert_eq!(t.of_kind(TraceEventKind::OomRecovery).count(), 1);
        // Both the failed attempt and the in-place re-run are attempts.
        assert_eq!(t.of_kind(TraceEventKind::TaskAttempt).count(), 5);

        // With tracing off, nothing is recorded anywhere.
        let cfg = ExecutorConfig::builder().heap_mb(8).tracing(false).build();
        let mut quiet = ClusterSession::new(2, cfg);
        quiet.run_stage("ids", 3, |ctx, _e| Ok(ctx.task)).unwrap();
        assert!(quiet.merged_trace().is_empty());
    }

    // ------------------------------------------------------------------
    // pull scheduler
    // ------------------------------------------------------------------

    #[test]
    fn pull_scheduler_matches_wave_results_and_emits_steals() {
        // A straggling home slot forces steals — structurally, not by
        // wall clock: under pull, task 0 holds executor 0 until some
        // task observes itself stolen (running off its home executor),
        // which executor 1 is guaranteed to do once it drains its
        // affinity set {1, 3, 5} and pulls executor 0's remaining slots
        // {2, 4}. A bounded spin caps the wait so a scheduler regression
        // fails the steal assertion instead of hanging the suite.
        let run = |mode: SchedulerMode| {
            let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(mode);
            let mut s = ClusterSession::new(2, cfg);
            assert_eq!(s.scheduler(), mode);
            let stolen = AtomicBool::new(false);
            let out = s
                .run_stage("skew", 6, |ctx, _e| {
                    if ctx.executor != ctx.task % 2 {
                        stolen.store(true, Ordering::SeqCst);
                    }
                    if mode == SchedulerMode::Pull && ctx.task == 0 {
                        for _ in 0..50_000 {
                            if stolen.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                    Ok(ctx.task * 3)
                })
                .unwrap();
            let trace = s.merged_trace();
            let steals: Vec<(Option<usize>, u64, Option<usize>)> = trace
                .of_kind(TraceEventKind::TaskSteal)
                .map(|e| (e.task, e.count, e.executor))
                .collect();
            (out, steals, s.stage("skew").unwrap().attempts)
        };
        let (wave_out, wave_steals, wave_attempts) = run(SchedulerMode::Wave);
        let (pull_out, pull_steals, pull_attempts) = run(SchedulerMode::Pull);
        assert_eq!(wave_out, pull_out, "results are scheduler-independent");
        assert_eq!(pull_out, (0..6).map(|t| t * 3).collect::<Vec<_>>());
        assert_eq!(wave_attempts, pull_attempts);
        assert!(wave_steals.is_empty(), "wave scheduling never steals");
        assert!(!pull_steals.is_empty(), "the straggler's affinity slots must be stolen");
        for (task, home, thief) in &pull_steals {
            let t = task.expect("steal events carry the task index");
            assert_eq!(*home as usize, t % 2, "count is the home executor");
            assert_ne!(thief.unwrap(), *home as usize, "a steal crosses executors");
        }
    }

    #[test]
    fn pull_preserves_fault_rollups_and_attribution() {
        // The crash scenario from `crash_poisons_executor_then_
        // quarantines_it`, under pull: fault pinning must reproduce the
        // wave's roll-ups exactly, and poisoned executor 1 must not
        // steal work after its crash.
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(SchedulerMode::Pull);
        let mut s = ClusterSession::new(2, cfg);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(
            FaultSite::ExecutorCrash,
            "crashy",
            Some(1),
            Some(0),
        ));
        let out = s.run_stage("crashy", 6, |ctx, _e| Ok(ctx.executor)).unwrap();
        // Tasks 1, 3, 5 are pinned to (and fail on) executor 1; retries
        // land on executor 0, the only healthy one left.
        assert_eq!(out, vec![0, 0, 0, 0, 0, 0]);
        let st = s.stage("crashy").unwrap();
        assert_eq!((st.attempts, st.retries, st.quarantines), (9, 3, 1));
        assert!(s.health(1).quarantined);
        // The quarantined executor claims nothing in later stages.
        let homes = s.run_stage("after", 4, |ctx, _e| Ok(ctx.executor)).unwrap();
        assert_eq!(homes, vec![0, 0, 0, 0]);
    }

    // ------------------------------------------------------------------
    // watchdog: hangs, deadlines, speculation
    // ------------------------------------------------------------------

    #[test]
    fn hung_task_is_timed_out_charged_and_retried() {
        for mode in [SchedulerMode::Wave, SchedulerMode::Pull] {
            let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(mode);
            let mut s = ClusterSession::new(2, cfg);
            s.set_retry_policy(RetryPolicy::resilient().task_deadline(Duration::from_millis(25)));
            s.install_faults(FaultPlan::quiet().force(
                FaultSite::TaskHang,
                "hang",
                Some(1),
                Some(0),
            ));
            let out = s.run_stage("hang", 4, |ctx, _e| Ok(ctx.task * 2)).unwrap();
            assert_eq!(out, vec![0, 2, 4, 6], "{mode}: the retry recomputes the hung task");
            let st = s.stage("hang").unwrap();
            assert_eq!(
                (st.attempts, st.retries, st.timeouts),
                (5, 1, 1),
                "{mode}: the hang is one timed-out attempt plus one retry"
            );
            assert_eq!(st.quarantines, 0, "{mode}: one timeout is under the threshold");
            assert!(
                st.recovery >= Duration::from_millis(25),
                "{mode}: the deadline budget is charged in simulated time, never slept"
            );
            assert_eq!(s.job_summary().timeouts, 1, "{mode}: timeouts roll up to the job");
            let trace = s.merged_trace();
            let timeouts: Vec<_> = trace.of_kind(TraceEventKind::TaskTimeout).collect();
            assert_eq!(timeouts.len(), 1, "{mode}");
            assert_eq!(timeouts[0].task, Some(1), "{mode}");
            assert_eq!(
                timeouts[0].sim_dur_ns,
                dur_ns(Duration::from_millis(25)),
                "{mode}: the event carries the charged budget"
            );
        }
    }

    #[test]
    fn hang_without_a_configured_deadline_uses_the_default_budget() {
        let mut s = wave_session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        s.install_faults(FaultPlan::quiet().force(FaultSite::TaskHang, "h", Some(0), Some(0)));
        let out = s.run_stage("h", 2, |ctx, _e| Ok(ctx.task)).unwrap();
        assert_eq!(out, vec![0, 1]);
        let st = s.stage("h").unwrap();
        assert_eq!(st.timeouts, 1);
        assert!(st.recovery >= Duration::from_millis(100), "default 100ms budget charged");
    }

    #[test]
    fn speculation_duplicates_stragglers_without_changing_results() {
        // Task 0 is slow only on its home (executor 0), cooperatively
        // polling its cancel token; every other task is instant. With
        // speculation on, executor 1 finishes its work, spots the
        // straggler, and runs a duplicate that completes immediately —
        // results and recovery counters must be bit-identical to the
        // speculation-off run.
        let straggle_ms: u64 =
            std::env::var("DECA_TEST_STRAGGLER_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
        let run = |speculate: bool| {
            let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20)
                .scheduler(SchedulerMode::Pull)
                .retry(RetryPolicy::resilient().speculate(speculate));
            let mut s = ClusterSession::new(2, cfg);
            let out = s
                .run_stage("spec", 8, |ctx, _e| {
                    if ctx.task == 0 && ctx.executor == 0 {
                        for _ in 0..straggle_ms {
                            if ctx.is_cancelled() {
                                return Err(EngineError::Cancelled {
                                    reason: "duplicate won".to_string(),
                                });
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    Ok(ctx.task * 7)
                })
                .unwrap();
            let st = s.stage("spec").unwrap().clone();
            let speculative_events =
                s.merged_trace().of_kind(TraceEventKind::TaskSpeculative).count();
            (out, st, speculative_events)
        };
        let (base_out, base, base_events) = run(false);
        let (spec_out, spec, spec_events) = run(true);
        assert_eq!(base_out, spec_out, "speculation never changes results");
        assert_eq!(spec_out, (0..8).map(|t| t * 7).collect::<Vec<_>>());
        let rollup = |st: &StageMetrics| {
            (st.attempts, st.retries, st.quarantines, st.restarts, st.oom_reruns, st.oom_recoveries)
        };
        assert_eq!(
            rollup(&base),
            rollup(&spec),
            "the six recovery counters are identical with speculation on and off"
        );
        assert_eq!(spec.attempts, 8, "the losing duplicate never reaches the counters");
        assert_eq!((base.speculative_launched, base_events), (0, 0), "off means off");
        assert!(spec.speculative_launched >= 1, "the straggler gets a duplicate");
        assert!(spec_events >= 1, "the launch is traced");
        assert!(
            spec.speculative_wins <= spec.speculative_launched,
            "wins are a subset of launches"
        );
    }

    #[test]
    fn natural_failure_in_stolen_task_charges_the_thief() {
        // The pull scheduler's charging rule, pinned: fault *pinning*
        // only covers injected faults, so a natural failure in a stolen
        // task is charged to the executor that ran it — the thief. This
        // is deliberate (health tracks where failures physically happen,
        // and natural failures are not part of the deterministic fault
        // scenario), and it is why quiet-plan runs may attribute
        // failures differently across schedulers.
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(SchedulerMode::Pull);
        let mut s = ClusterSession::new(2, cfg);
        s.set_retry_policy(RetryPolicy::resilient());
        let tripped = AtomicBool::new(false);
        let task2_ran = AtomicBool::new(false);
        let failed_on = AtomicUsize::new(usize::MAX);
        let out = s
            .run_stage("stolen", 6, |ctx, _e| {
                // Executor 0 holds task 0 until task 2 has run somewhere,
                // so executor 1 is guaranteed to steal the home slots
                // (2, 4) — structural forcing, no wall-clock dependence;
                // the bounded spin turns a scheduler regression into an
                // assertion failure rather than a hang.
                if ctx.task == 0 {
                    for _ in 0..50_000 {
                        if task2_ran.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
                if ctx.task == 2 {
                    task2_ran.store(true, Ordering::SeqCst);
                }
                if ctx.task == 2 && !tripped.swap(true, Ordering::Relaxed) {
                    failed_on.store(ctx.executor, Ordering::Relaxed);
                    return Err(EngineError::Shuffle("flaky input".to_string()));
                }
                Ok(ctx.task + 100)
            })
            .unwrap();
        assert_eq!(out, (0..6).map(|t| t + 100).collect::<Vec<_>>());
        let st = s.stage("stolen").unwrap();
        assert_eq!((st.attempts, st.retries), (7, 1));
        let stole_task_2 =
            s.merged_trace().of_kind(TraceEventKind::TaskSteal).any(|e| e.task == Some(2));
        assert!(stole_task_2, "task 2 must be stolen while its home straggles");
        let thief = failed_on.load(Ordering::Relaxed);
        assert_eq!(thief, 1, "the failure happened on the thief");
        assert_eq!(
            s.health(1).stage_failures,
            1,
            "the natural failure is charged to the thief's health"
        );
        assert_eq!(s.health(0).stage_failures, 0, "the home executor is not charged");
    }

    #[test]
    fn exec_critical_path_is_bounded_by_task_totals() {
        // Regression for the stage.exec semantics: under either
        // scheduler the critical path can never exceed the sum of all
        // task totals, nor undercut the single slowest task. (The
        // wave-era bug summed per-round maxima, which can exceed the
        // busiest executor when rounds alternate who is busy; Pull
        // computes max per-executor busy time directly.)
        for mode in [SchedulerMode::Wave, SchedulerMode::Pull] {
            let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).scheduler(mode);
            let mut s = ClusterSession::new(2, cfg);
            s.set_retry_policy(RetryPolicy::resilient());
            // A retried failure adds a second scheduling round, so the
            // bound is exercised over multiple rounds, not just one.
            s.install_faults(FaultPlan::quiet().force(
                FaultSite::TaskBody,
                "work",
                Some(1),
                Some(0),
            ));
            s.run_stage("work", 5, |_ctx, e| {
                let c = e.heap.define_class(
                    deca_heap::ClassBuilder::new("W").field("x", deca_heap::FieldKind::I64),
                );
                for _ in 0..1000 {
                    e.heap.alloc(c)?;
                }
                Ok(())
            })
            .unwrap();
            let st = s.stage("work").unwrap();
            let totals: Vec<Duration> = s
                .cluster()
                .executors
                .iter()
                .flat_map(|e| e.task_metrics().iter().map(|t| t.total()))
                .collect();
            let sum: Duration = totals.iter().sum();
            let max = *totals.iter().max().unwrap();
            assert!(st.exec <= sum, "{mode}: exec {:?} > sum of task totals {:?}", st.exec, sum);
            assert!(st.exec >= max, "{mode}: exec {:?} < slowest task {:?}", st.exec, max);
        }
    }

    #[test]
    fn chrome_export_of_a_real_run_roundtrips() {
        let mut s = session(2);
        s.run_shuffle_job(
            "x",
            3,
            2,
            |ctx, e| {
                Ok((0..2)
                    .map(|_| {
                        let mut run = e.new_run();
                        run.push(&mut e.arena, &[ctx.task as u8]);
                        e.hand_over(run)
                    })
                    .collect())
            },
            |_ctx, _e, inputs| Ok(inputs.iter().map(|b| b.contiguous()[0]).collect::<Vec<u8>>()),
        )
        .unwrap();
        let t = s.merged_trace();
        assert!(!t.is_empty());
        let text = t.to_chrome_string();
        assert_eq!(RunTrace::validate_chrome_document(&text), Ok(t.len()));
        let back = RunTrace::from_chrome_string(&text).unwrap();
        assert_eq!(back, t);
        // The manifest sees both stages with their attempt counts, and the
        // map stage's zero-copy hand-overs.
        let manifest = t.to_manifest_json();
        let stages = manifest.get("stages").unwrap().as_array().unwrap();
        let names: Vec<&str> =
            stages.iter().filter_map(|s| s.get("name").and_then(|n| n.as_str())).collect();
        assert_eq!(names, vec!["x-map", "x-reduce"]);
        assert_eq!(stages[0].get("attempts").unwrap().as_u64(), Some(3));
        assert_eq!(stages[1].get("attempts").unwrap().as_u64(), Some(2));
        assert_eq!(stages[0].get("pages_handed").unwrap().as_u64(), Some(6));
        assert_eq!(stages[0].get("handover_bytes").unwrap().as_u64(), Some(6));
    }

    #[test]
    fn merged_timeline_merges_without_duplication() {
        // Regression: merging used to deep-clone every executor's sample
        // vector per call; repeated merges must return the same samples,
        // exactly once each, still sorted by per-executor elapsed time.
        let mut s = session(2);
        for (i, e) in s.cluster.executors.iter_mut().enumerate() {
            e.timeline.record(Duration::from_millis(i as u64), 10 + i, Duration::ZERO);
            e.timeline.record(Duration::from_millis(10 + i as u64), 20 + i, Duration::ZERO);
        }
        let once = s.merged_timeline();
        let twice = s.merged_timeline();
        assert_eq!(once.samples.len(), 4, "each executor's two samples appear exactly once");
        assert_eq!(once, twice, "re-merging must not duplicate or reorder samples");
        assert!(once.samples.windows(2).all(|w| w[0].at <= w[1].at), "sorted by elapsed time");
        // The executors' own timelines are untouched by the merge.
        assert!(s.cluster.executors.iter().all(|e| e.timeline.samples.len() == 2));
    }

    /// A page-run shuffle job for the fault-invariance and hand-over
    /// tests: map task t emits four 4-byte records per reducer; reduce
    /// concatenates its inputs in map-task order.
    fn run_page_shuffle(s: &mut ClusterSession, name: &str) -> Result<Vec<Vec<u8>>, EngineError> {
        s.run_shuffle_job(
            name,
            4,
            3,
            |ctx, e| {
                Ok((0..3u8)
                    .map(|r| {
                        let mut run = e.new_run();
                        for i in 0..4u8 {
                            run.push(&mut e.arena, &[ctx.task as u8, r, i, 0xAB]);
                        }
                        e.hand_over(run)
                    })
                    .collect())
            },
            |_ctx, _e, inputs| {
                let mut out = Vec::new();
                for p in inputs {
                    for c in p.chunks() {
                        out.extend_from_slice(c);
                    }
                }
                Ok(out)
            },
        )
    }

    #[test]
    fn shuffle_bytes_rollup_is_fault_invariant() {
        // The exchanged-byte roll-up counts the winning attempts' outputs
        // only: retries, OOM re-runs, crashes, and speculation must all
        // report the fault-free value (and the fault-free bytes).
        let run = |faults: Option<FaultPlan>, speculate: bool| {
            let mut s = session(2);
            s.set_retry_policy(RetryPolicy::resilient().speculate(speculate));
            if let Some(f) = faults {
                s.install_faults(f);
            }
            let got = run_page_shuffle(&mut s, "sb").unwrap();
            let st = s.stage("sb-map").unwrap();
            (got, st.shuffle_bytes, st.shuffle_pages, st.clone())
        };
        let (base_out, base_bytes, base_pages, _) = run(None, false);
        assert_eq!(base_bytes, 4 * 3 * 16, "4 maps x 3 reducers x 4 records x 4 bytes");
        let scenarios: Vec<(&str, FaultPlan)> = vec![
            (
                "map retry",
                FaultPlan::quiet().force(FaultSite::TaskBody, "sb-map", Some(1), Some(0)),
            ),
            (
                "corrupt frame rerun",
                FaultPlan::quiet().force(FaultSite::ShuffleFrame, "sb-map", Some(0), Some(0)),
            ),
            ("oom rerun", FaultPlan::quiet().force(FaultSite::Alloc, "sb-map", Some(2), Some(0))),
            (
                "executor crash",
                FaultPlan::quiet().force(FaultSite::ExecutorCrash, "sb-map", Some(3), Some(0)),
            ),
        ];
        for (label, plan) in scenarios {
            let (out, bytes, pages, st) = run(Some(plan), false);
            assert_eq!(out, base_out, "{label}: results are fault-invariant");
            assert_eq!(bytes, base_bytes, "{label}: shuffle_bytes counts winners only");
            assert_eq!(pages, base_pages, "{label}: shuffle_pages counts winners only");
            assert!(
                st.retries + st.oom_reruns + st.restarts >= 1,
                "{label}: the fault actually fired"
            );
        }
        let (out, bytes, pages, _) = run(None, true);
        assert_eq!((out, bytes, pages), (base_out, base_bytes, base_pages), "speculation");
    }

    #[test]
    fn partial_handover_retry_neither_leaks_nor_double_frees_pages() {
        // A map attempt that dies *after* handing over part of its output
        // must not leak those pages, free them twice, or let them reach a
        // reducer — the retry's fresh runs are the only ones exchanged.
        let first = AtomicBool::new(true);
        let seen = std::sync::Mutex::new(std::collections::HashSet::<usize>::new());
        let mut s = session(2);
        s.set_retry_policy(RetryPolicy::resilient());
        let got = s
            .run_shuffle_job(
                "ph",
                3,
                2,
                |ctx, e| {
                    let mut out = Vec::new();
                    for r in 0..2u8 {
                        let mut run = e.new_run();
                        run.push(&mut e.arena, &[ctx.task as u8, r]);
                        out.push(e.hand_over(run));
                        if ctx.task == 0 && r == 0 && first.swap(false, Ordering::SeqCst) {
                            return Err(EngineError::Shuffle("killed mid-handover".into()));
                        }
                    }
                    Ok(out)
                },
                |_ctx, _e, inputs| {
                    let mut ptrs = seen.lock().unwrap();
                    let mut bytes = Vec::new();
                    for p in inputs {
                        for c in p.chunks() {
                            assert!(
                                ptrs.insert(c.as_ptr() as usize),
                                "a page was observed by two reducers"
                            );
                            bytes.extend_from_slice(c);
                        }
                    }
                    Ok(bytes)
                },
            )
            .unwrap();
        // Bit-identical to a fault-free run: only winning attempts' pages
        // were exchanged, in map-task order.
        assert_eq!(got, vec![vec![0, 0, 1, 0, 2, 0], vec![0, 1, 1, 1, 2, 1]]);
        assert_eq!(s.stage("ph-map").unwrap().retries, 1);
        for (i, e) in s.cluster.executors.iter().enumerate() {
            let stats = e.arena.stats();
            assert_eq!(
                stats.live_pages(),
                0,
                "executor {i}: every page settled exactly once (>0 leaks, <0 double-frees)"
            );
            assert_eq!(stats.copied_bytes(), 0, "executor {i}: the hand-over path never copies");
        }
    }

    #[test]
    fn deca_handover_copies_zero_bytes_and_the_baseline_copies_all() {
        // Zero-copy hand-over: the exchange moves page ownership.
        let mut s = session(2);
        let base = run_page_shuffle(&mut s, "zc").unwrap();
        let (copied, handed_runs, handed_bytes): (u64, u64, u64) =
            s.cluster.executors.iter().map(|e| e.arena.stats()).fold((0, 0, 0), |acc, st| {
                (acc.0 + st.copied_bytes(), acc.1 + st.handed_runs(), acc.2 + st.handed_bytes())
            });
        assert_eq!(copied, 0, "zero bytes copied on the Deca hand-over path");
        assert_eq!(handed_runs, 4 * 3, "every per-reducer run was handed over");
        assert_eq!(handed_bytes, 4 * 3 * 16);
        assert!(s.merged_trace().of_kind(TraceEventKind::PageHandover).count() >= 1);

        // The copying A/B baseline flattens every run into fresh bytes —
        // same results, every byte counted as a copy.
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 8 << 20).copying_shuffle(true);
        let mut s2 = ClusterSession::new(2, cfg);
        let copying = run_page_shuffle(&mut s2, "zc").unwrap();
        assert_eq!(copying, base, "results are bit-identical across hand-over modes");
        let (copied2, handed2): (u64, u64) = s2
            .cluster
            .executors
            .iter()
            .map(|e| e.arena.stats())
            .fold((0, 0), |acc, st| (acc.0 + st.copied_bytes(), acc.1 + st.handed_runs()));
        assert_eq!(copied2, 4 * 3 * 16, "the baseline copies every exchanged byte");
        assert_eq!(handed2, 0, "no page ownership transfer in copying mode");
        assert_eq!(s2.merged_trace().of_kind(TraceEventKind::PageHandover).count(), 0);
        assert_eq!(s2.stage("zc-map").unwrap().shuffle_pages, 0);
    }
}
