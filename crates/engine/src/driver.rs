//! The cluster job driver: multi-stage jobs across a [`LocalCluster`].
//!
//! The paper's executors are parallel JVM processes driven stage-by-stage
//! by Spark's DAG scheduler (§6.1): a job splits at shuffle boundaries
//! into a map stage, an all-to-all exchange of shuffle bytes, and a reduce
//! stage. [`ClusterSession`] is that driver layer: apps describe the task
//! bodies; the session runs the task waves in parallel OS threads, moves
//! the shuffle bytes between executors (serialized blocks for
//! Spark/SparkSer, raw page bytes for Deca — §6.1's "directly outputting
//! the raw bytes"), and rolls per-wave metrics into [`StageMetrics`].
//!
//! ## Task model and determinism
//!
//! A stage runs `tasks` tasks (one per data partition — independent of
//! the executor count). Task `t` always runs on executor `t % executors`:
//! the assignment is *static round-robin*, so a task in a later stage sees
//! exactly the executor-local state (cached blocks, registered classes)
//! that the same task index produced in an earlier stage. Shuffle
//! exchange concatenates map outputs in *map-task order*, not executor
//! order. Together these make a job's result a pure function of its
//! partitioning — bit-for-bit independent of how many executors run it,
//! which the cluster equivalence tests assert.
//!
//! ```
//! use deca_engine::{ClusterSession, ExecutionMode, ExecutorConfig};
//!
//! let cfg = ExecutorConfig::builder().mode(ExecutionMode::Deca).heap_mb(16).build();
//! let mut s = ClusterSession::new(2, cfg);
//! let parts: Vec<Vec<i64>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
//! let sums = s
//!     .run_stage("sum", parts.len(), |ctx, _e| Ok(parts[ctx.task].iter().sum::<i64>()))
//!     .unwrap();
//! assert_eq!(sums, vec![3, 7, 11]);
//! assert_eq!(s.stages()[0].tasks, 3);
//! ```

use std::time::Duration;

use crate::cluster::{exchange, LocalCluster};
use crate::config::ExecutorConfig;
use crate::error::EngineError;
use crate::executor::Executor;
use crate::metrics::{JobMetrics, StageMetrics, Timeline};

/// What a task knows about its place in a stage.
#[derive(Clone, Debug)]
pub struct TaskContext<'a> {
    /// The stage's name (task names are `"{stage}-{task}"`).
    pub stage: &'a str,
    /// This task's index within the stage, `0..tasks`.
    pub task: usize,
    /// Total tasks in the stage.
    pub tasks: usize,
    /// The executor this task runs on (`task % executors`).
    pub executor: usize,
    /// Executors in the cluster.
    pub executors: usize,
}

/// Per-reducer shuffle outputs of one map task: `outputs[reducer]` is the
/// raw byte run this task contributes to that reduce partition.
pub type MapOutputs = Vec<Vec<u8>>;

/// A multi-stage job driver over a [`LocalCluster`].
pub struct ClusterSession {
    cluster: LocalCluster,
    stages: Vec<StageMetrics>,
}

impl ClusterSession {
    /// A session over `executors` identical executors (per-executor spill
    /// subdirectories, as [`LocalCluster::uniform`]).
    pub fn new(executors: usize, config: ExecutorConfig) -> ClusterSession {
        assert!(executors > 0, "a cluster needs at least one executor");
        ClusterSession { cluster: LocalCluster::uniform(executors, config), stages: Vec::new() }
    }

    /// A session over explicitly configured (possibly heterogeneous)
    /// executors.
    pub fn with_configs(configs: Vec<ExecutorConfig>) -> ClusterSession {
        assert!(!configs.is_empty(), "a cluster needs at least one executor");
        ClusterSession { cluster: LocalCluster::new(configs), stages: Vec::new() }
    }

    pub fn executors(&self) -> usize {
        self.cluster.len()
    }

    /// The cluster's execution mode (executor 0's; `uniform` clusters are
    /// homogeneous).
    pub fn mode(&self) -> crate::config::ExecutionMode {
        self.cluster.executors[0].mode()
    }

    pub fn executor(&self, i: usize) -> &Executor {
        &self.cluster.executors[i]
    }

    pub fn executor_mut(&mut self, i: usize) -> &mut Executor {
        &mut self.cluster.executors[i]
    }

    /// Run one stage: `tasks` tasks distributed round-robin over the
    /// executors, each wrapped in [`Executor::run_task`] for metric
    /// attribution. Returns the task results in task order.
    ///
    /// The task closure must be deterministic in `(ctx.task, executor
    /// state)` for cluster results to be independent of executor count.
    pub fn run_stage<R: Send>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        assert!(tasks > 0, "a stage needs at least one task");
        let executors = self.cluster.len();
        // Remember each executor's task-log length so the roll-up below
        // attributes exactly this wave's tasks.
        let marks: Vec<usize> = self.cluster.executors.iter().map(|e| e.tasks.len()).collect();

        // The wave: executor i runs tasks i, i+E, i+2E, … sequentially on
        // its own thread.
        let mut per_exec: Vec<Vec<Result<R, EngineError>>> = self.cluster.par_run(|i, e| {
            let mut out = Vec::new();
            let mut t = i;
            while t < tasks {
                let ctx = TaskContext { stage: name, task: t, tasks, executor: i, executors };
                let r = e
                    .run_task(format!("{name}-{t}"), |e| f(&ctx, e))
                    .map_err(|err| err.in_task(name, t));
                out.push(r);
                t += executors;
            }
            out
        });

        // Roll this wave's tasks into a StageMetrics entry. `exec` is the
        // critical path: the busiest executor's summed task totals.
        let mut stage = StageMetrics::new(name);
        for (i, e) in self.cluster.executors.iter().enumerate() {
            let mut busy = Duration::ZERO;
            for t in &e.tasks[marks[i]..] {
                stage.add_task(t);
                busy += t.total();
            }
            stage.exec = stage.exec.max(busy);
        }
        self.stages.push(stage);

        // Re-interleave executor-local result lists into task order.
        let mut results = Vec::with_capacity(tasks);
        for t in 0..tasks {
            results.push(per_exec[t % executors].remove(0));
        }
        results.into_iter().collect()
    }

    /// Run a two-stage shuffle job: a map wave producing per-reducer byte
    /// runs, an all-to-all exchange, and a reduce wave consuming its
    /// partition's runs in map-task order.
    ///
    /// Each map task must return exactly `reduce_tasks` output runs; each
    /// reduce task receives `map_tasks` input runs (possibly empty). The
    /// stage pair is recorded as `"{name}-map"` / `"{name}-reduce"`, with
    /// the exchanged byte volume on the map stage's `shuffle_bytes`.
    pub fn run_shuffle_job<R: Send>(
        &mut self,
        name: &str,
        map_tasks: usize,
        reduce_tasks: usize,
        map: impl Fn(&TaskContext, &mut Executor) -> Result<MapOutputs, EngineError> + Sync,
        reduce: impl Fn(&TaskContext, &mut Executor, &[Vec<u8>]) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        let map_stage = format!("{name}-map");
        let outputs = self.run_stage(&map_stage, map_tasks, |ctx, e| {
            let out = map(ctx, e)?;
            if out.len() != reduce_tasks {
                return Err(EngineError::Shuffle(format!(
                    "map task {} produced {} reducer outputs, expected {}",
                    ctx.task,
                    out.len(),
                    reduce_tasks
                ))
                .in_task(ctx.stage, ctx.task));
            }
            Ok(out)
        })?;
        let bytes: u64 = outputs.iter().flatten().map(|b| b.len() as u64).sum();
        if let Some(s) = self.stages.last_mut() {
            s.shuffle_bytes = bytes;
        }

        // All-to-all exchange: inputs[reducer][map task], map-task order.
        let inputs = exchange(outputs);
        let inputs = &inputs;
        self.run_stage(&format!("{name}-reduce"), reduce_tasks, |ctx, e| {
            reduce(ctx, e, &inputs[ctx.task])
        })
    }

    // ------------------------------------------------------------------
    // roll-ups
    // ------------------------------------------------------------------

    /// Per-stage metrics, in execution order.
    pub fn stages(&self) -> &[StageMetrics] {
        &self.stages
    }

    /// The most recent stage with the given name.
    pub fn stage(&self, name: &str) -> Option<&StageMetrics> {
        self.stages.iter().rev().find(|s| s.name == name)
    }

    /// Tasks run so far, across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// Total bytes moved through shuffle exchanges so far.
    pub fn shuffle_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes).sum()
    }

    /// Refresh job-level cache statistics on every executor (call before
    /// reading [`ClusterSession::job_summary`] cache fields).
    pub fn finish_job(&mut self) {
        for e in &mut self.cluster.executors {
            e.finish_job();
        }
    }

    /// Aggregate job metrics across executors (sums; exec is the max —
    /// executors run in parallel).
    pub fn job_summary(&self) -> JobMetrics {
        self.cluster.job_summary()
    }

    /// All executors' lifetime-timeline samples merged in time order
    /// (each executor samples against its own clock; the merge orders by
    /// per-executor elapsed time, which is what Figures 8a/9a plot).
    pub fn merged_timeline(&self) -> Timeline {
        let mut samples: Vec<_> =
            self.cluster.executors.iter().flat_map(|e| e.timeline().samples.clone()).collect();
        samples.sort_by_key(|s| s.at);
        Timeline { samples }
    }

    /// The slowest task across all executors (Figure 11 reports the
    /// slowest task).
    pub fn slowest_task(&self) -> Option<&crate::metrics::TaskMetrics> {
        self.cluster.executors.iter().filter_map(|e| e.slowest_task()).max_by_key(|t| t.total())
    }

    /// The underlying cluster (raw `par_run` waves, direct executor
    /// iteration).
    pub fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    pub fn cluster_mut(&mut self) -> &mut LocalCluster {
        &mut self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    fn session(executors: usize) -> ClusterSession {
        ClusterSession::new(executors, ExecutorConfig::new(ExecutionMode::Spark, 8 << 20))
    }

    #[test]
    fn stage_results_are_in_task_order() {
        for executors in [1, 2, 3, 5] {
            let mut s = session(executors);
            let out = s.run_stage("ids", 7, |ctx, _e| Ok(ctx.task * 10)).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60], "{executors} executors");
            assert_eq!(s.stages()[0].tasks, 7);
            assert_eq!(s.total_tasks(), 7);
        }
    }

    #[test]
    fn tasks_pin_to_executors_round_robin() {
        let mut s = session(2);
        let homes = s.run_stage("home", 5, |ctx, _e| Ok(ctx.executor)).unwrap();
        assert_eq!(homes, vec![0, 1, 0, 1, 0]);
        // Executor-local state persists across stages for the same task
        // index: define a class in stage 1, find it in stage 2.
        s.run_stage("define", 2, |ctx, e| {
            e.heap.define_class(
                deca_heap::ClassBuilder::new(format!("T{}", ctx.task))
                    .field("v", deca_heap::FieldKind::I64),
            );
            Ok(())
        })
        .unwrap();
        let found = s
            .run_stage("lookup", 2, |ctx, e| {
                Ok(e.heap.registry().by_name(&format!("T{}", ctx.task)).is_some())
            })
            .unwrap();
        assert_eq!(found, vec![true, true]);
    }

    #[test]
    fn shuffle_job_exchanges_all_to_all() {
        // Map task t emits its task id to every reducer; each reducer
        // must see every map task's bytes, in map-task order.
        for executors in [1, 2, 4] {
            let mut s = session(executors);
            let got = s
                .run_shuffle_job(
                    "x",
                    3,
                    2,
                    |ctx, _e| Ok(vec![vec![ctx.task as u8]; 2]),
                    |_ctx, _e, inputs| Ok(inputs.iter().map(|b| b[0]).collect::<Vec<u8>>()),
                )
                .unwrap();
            assert_eq!(got, vec![vec![0, 1, 2], vec![0, 1, 2]], "{executors} executors");
            let map_stage = s.stage("x-map").unwrap();
            assert_eq!(map_stage.tasks, 3);
            assert_eq!(map_stage.shuffle_bytes, 6);
            assert_eq!(s.stage("x-reduce").unwrap().tasks, 2);
        }
    }

    #[test]
    fn mis_sized_map_output_is_a_shuffle_error() {
        let mut s = session(2);
        let err = s
            .run_shuffle_job(
                "bad",
                2,
                3,
                |_ctx, _e| Ok(vec![Vec::new(); 2]), // wrong: 2 ≠ 3 reducers
                |_ctx, _e, _inputs| Ok(()),
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("reducer outputs"), "{msg}");
        assert!(matches!(err, EngineError::Task { .. }), "carries task attribution");
    }

    #[test]
    fn task_errors_carry_stage_and_task() {
        let mut s = session(3);
        let err = s
            .run_stage("fragile", 4, |ctx, _e| {
                if ctx.task == 2 {
                    Err(EngineError::Shuffle("boom".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fragile") && msg.contains("task 2"), "{msg}");
        // The wave itself completed; the other tasks were still recorded.
        assert_eq!(s.stages()[0].tasks, 4);
    }

    #[test]
    fn stage_metrics_accumulate_without_wall_clock_assumptions() {
        let mut s = session(2);
        s.run_stage("alloc", 4, |_ctx, e| {
            let c = e.heap.define_class(
                deca_heap::ClassBuilder::new("A").field("x", deca_heap::FieldKind::I64),
            );
            for _ in 0..1000 {
                e.heap.alloc(c)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.total_tasks(), 4);
        assert_eq!(s.cluster().executors.iter().map(|e| e.task_metrics().len()).sum::<usize>(), 4);
        // Metric sanity on counts, not timings: this must never flake on
        // a frozen clock. job_summary sums collection counts across
        // executors.
        let summary = s.job_summary();
        let minors: u64 =
            s.cluster().executors.iter().map(|e| e.heap_stats().minor_collections).sum();
        assert_eq!(summary.minor_gcs, minors);
        assert!(!s.stages().is_empty());
    }
}
