//! The multi-job submission service: one shared [`LocalCluster`] (and its
//! tiered cache) multiplexing N concurrent jobs behind a
//! `submit(JobSpec) -> JobHandle` API.
//!
//! ## Why a server
//!
//! The paper's deployment target is a long-lived cluster service (§6.1
//! runs Deca inside Spark's executor processes, which serve many jobs over
//! their lifetime), while this repo historically grew one
//! `run`/`run_cluster`/`run_cluster_faulty`/`run_text_cluster` entry point
//! per app — each spinning up and tearing down a private cluster.
//! [`DecaServer`] replaces that sprawl: apps describe themselves once as
//! an [`AppJob`] (a body over the [`JobCtx`] stage API), and every
//! harness — single-shot CLI runs, the fault matrix, the concurrency
//! soak — submits the same description with a different [`JobSpec`].
//!
//! ## Execution model
//!
//! The server owns `E` physical executors, each bound to one *worker*
//! thread (executor state is only ever touched by a worker holding its
//! mutex, preserving the single-writer discipline the deterministic
//! heap/GC model relies on). `R` *runner* threads drain the submission
//! queue; each runs one job's driver loop ([`ServerJobSession`], a port of
//! the standalone [`ClusterSession`] retry engine) and publishes rounds of
//! claimable task slots into a shared pool — the PR-5 pull scheduler's
//! claim list generalized across jobs.
//!
//! Workers claim slots under the pool lock: **affinity first** (a slot
//! whose home maps to this worker, lowest task index first — pinned
//! fault-affected slots are only ever claimable here), then **steals**
//! (unpinned slots of pull-mode jobs, ascending). When several jobs have
//! claimable work, a worker picks the job with the fewest claims already
//! running (ties to the lowest job id): cross-job **fair sharing** without
//! per-job worker reservations.
//!
//! ## Virtual executors
//!
//! A job runs at a *width* `W` chosen in its [`JobSpec`] — its task→home
//! mapping, retry round-robin, and failure charging all use `W` virtual
//! executors, exactly as a standalone `ClusterSession::new(W, ..)` would.
//! Virtual executor `v` executes on physical worker `v % E`. Injected
//! faults poison the job's *virtual* executor (a per-job atomic flag),
//! never the shared process: one tenant's fault plan cannot take a
//! physical executor away from everyone else. Because app bodies are
//! deterministic in `(task, partition data)` and recompute executor-local
//! state from lineage when it is missing, a job's results are bit-identical
//! to its standalone run at the same width — the server soak asserts this
//! for hundreds of concurrent submissions.
//!
//! ## Tenancy
//!
//! Every job belongs to a tenant. Admission control caps each tenant's
//! in-flight jobs ([`DecaServer::configure_tenant`]), and
//! [`DecaServer::set_tenant_cache_budget`] gives a tenant a shared-cache
//! resident budget enforced by the cache's victim shielding: while a
//! tenant is at or under its budget, other tenants' memory pressure cannot
//! evict its blocks. Job-stamped cache entries are released when the job
//! finishes, so a long-lived server never accumulates dead jobs' state.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::{
    exchange, healthy_after_in, healthy_count_in, healthy_from_in, ExecutorHealth, LocalCluster,
};
use crate::config::{ExecutorConfig, RetryPolicy, SchedulerMode, ServerConfig};
use crate::driver::{
    pin_faulted_slots_in, ClusterSession, MapOutputs, ShufflePayload, TaskContext,
};
use crate::error::EngineError;
use crate::executor::Executor;
use crate::faults::{FaultPlan, FaultSite};
use crate::metrics::{JobMetrics, StageMetrics};
use crate::trace::{dur_ns, RunTrace, TraceEvent, TraceEventKind, TraceRecorder};

/// Lock a mutex, riding through poisoning: a panicking task body is caught
/// at the pool boundary and surfaced as [`EngineError::TaskPanic`], so a
/// poisoned lock only means "a panic unwound here once", never that the
/// protected state is torn (executor state is updated transactionally per
/// task).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn panic_message(p: Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

// ----------------------------------------------------------------------
// AppJob / JobCtx: the unified app description
// ----------------------------------------------------------------------

/// What an app submits: a name and a body that drives stages through a
/// [`JobCtx`] and returns the job's checksum. The same description runs
/// on a [`DecaServer`] (via [`JobSpec::app`]) or standalone (via
/// [`JobCtx::local`] over a [`ClusterSession`] — the apps' `run_local`
/// shims).
#[derive(Clone)]
pub struct AppJob {
    name: String,
    body: Arc<dyn Fn(&mut JobCtx) -> Result<f64, EngineError> + Send + Sync>,
}

impl AppJob {
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&mut JobCtx) -> Result<f64, EngineError> + Send + Sync + 'static,
    ) -> AppJob {
        AppJob { name: name.into(), body: Arc::new(body) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run the job body against `ctx`, returning its checksum.
    pub fn run(&self, ctx: &mut JobCtx) -> Result<f64, EngineError> {
        (self.body)(ctx)
    }
}

impl std::fmt::Debug for AppJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppJob").field("name", &self.name).finish()
    }
}

enum JobDriver<'a> {
    Local(&'a mut ClusterSession),
    Server(&'a mut ServerJobSession),
}

/// The stage API an [`AppJob`] body runs against — a [`ClusterSession`]
/// standalone or a [`ServerJobSession`] on the server, with identical
/// semantics (same retry engine, same task→home mapping, same
/// deterministic results).
pub struct JobCtx<'a> {
    driver: JobDriver<'a>,
    noted_cache_bytes: usize,
}

impl<'a> JobCtx<'a> {
    /// A context over a standalone session (the apps' `run_local` path).
    pub fn local(session: &'a mut ClusterSession) -> JobCtx<'a> {
        JobCtx { driver: JobDriver::Local(session), noted_cache_bytes: 0 }
    }

    pub(crate) fn server(session: &'a mut ServerJobSession) -> JobCtx<'a> {
        JobCtx { driver: JobDriver::Server(session), noted_cache_bytes: 0 }
    }

    /// The job's executor width (virtual width on the server).
    pub fn executors(&self) -> usize {
        match &self.driver {
            JobDriver::Local(s) => s.executors(),
            JobDriver::Server(s) => s.width(),
        }
    }

    pub fn mode(&self) -> crate::config::ExecutionMode {
        match &self.driver {
            JobDriver::Local(s) => s.mode(),
            JobDriver::Server(s) => s.mode(),
        }
    }

    /// Run one stage; see [`ClusterSession::run_stage`].
    pub fn run_stage<R: Send + 'static>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        match &mut self.driver {
            JobDriver::Local(s) => s.run_stage(name, tasks, f),
            JobDriver::Server(s) => s.run_stage(name, tasks, f),
        }
    }

    /// Run a map/exchange/reduce stage pair; see
    /// [`ClusterSession::run_shuffle_job`].
    pub fn run_shuffle_job<R: Send + 'static>(
        &mut self,
        name: &str,
        map_tasks: usize,
        reduce_tasks: usize,
        map: impl Fn(&TaskContext, &mut Executor) -> Result<MapOutputs, EngineError> + Sync,
        reduce: impl Fn(&TaskContext, &mut Executor, &[ShufflePayload]) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        match &mut self.driver {
            JobDriver::Local(s) => s.run_shuffle_job(name, map_tasks, reduce_tasks, map, reduce),
            JobDriver::Server(s) => s.run_shuffle_job(name, map_tasks, reduce_tasks, map, reduce),
        }
    }

    /// Snapshot the job's current cached footprint (resident + spilled)
    /// into [`JobCtx::noted_cache_bytes`]. Apps call this at the point
    /// their caches are fully built (e.g. after the adjacency-build
    /// stage), since end-of-job cleanup releases the blocks.
    pub fn note_cache_bytes(&mut self) {
        self.noted_cache_bytes = match &mut self.driver {
            JobDriver::Local(s) => {
                s.finish_job();
                let m = s.job_summary();
                m.cache_bytes + m.swapped_cache_bytes
            }
            JobDriver::Server(s) => s.job_cache_bytes(),
        };
    }

    /// The footprint recorded by the last [`JobCtx::note_cache_bytes`].
    pub fn noted_cache_bytes(&self) -> usize {
        self.noted_cache_bytes
    }
}

// ----------------------------------------------------------------------
// JobSpec / JobHandle / JobOutput: the submission API
// ----------------------------------------------------------------------

/// A job submission: which tenant it belongs to, what to run, and how —
/// executor width, retry policy, fault plan, scheduler. Unset knobs
/// default to the server's executor configuration.
///
/// ```
/// use deca_engine::{JobSpec, RetryPolicy, SchedulerMode};
/// let spec = JobSpec::new("analytics")
///     .executors(4)
///     .retry(RetryPolicy::resilient())
///     .scheduler(SchedulerMode::Pull);
/// ```
#[derive(Clone, Debug)]
pub struct JobSpec {
    tenant: String,
    executors: usize,
    retry: Option<RetryPolicy>,
    scheduler: Option<SchedulerMode>,
    faults: FaultPlan,
    deadline: Option<Duration>,
    app: Option<AppJob>,
}

impl JobSpec {
    pub fn new(tenant: impl Into<String>) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            executors: 0,
            retry: None,
            scheduler: None,
            faults: FaultPlan::quiet(),
            deadline: None,
            app: None,
        }
    }

    /// The job's virtual executor width (task homes are `task % width`).
    /// Defaults to the server's physical executor count. May exceed it:
    /// virtual executors share physical workers round-robin.
    pub fn executors(mut self, n: usize) -> JobSpec {
        self.executors = n;
        self
    }

    pub fn retry(mut self, policy: RetryPolicy) -> JobSpec {
        self.retry = Some(policy);
        self
    }

    pub fn scheduler(mut self, mode: SchedulerMode) -> JobSpec {
        self.scheduler = Some(mode);
        self
    }

    /// Install a fault plan for this job. Faults poison the job's virtual
    /// executors only — they never damage the shared physical cluster or
    /// other tenants' jobs.
    pub fn faults(mut self, plan: FaultPlan) -> JobSpec {
        self.faults = plan;
        self
    }

    /// A wall-clock deadline measured from submission. A job past its
    /// deadline is cancelled cooperatively at its next stage or round
    /// boundary (and never starts at all if it is still queued), failing
    /// with [`EngineError::Cancelled`] and releasing its admission slot,
    /// claim-pool slots, and job-stamped cache entries.
    pub fn deadline(mut self, d: Duration) -> JobSpec {
        self.deadline = Some(d);
        self
    }

    pub fn app(mut self, app: AppJob) -> JobSpec {
        self.app = Some(app);
        self
    }
}

/// Everything a finished job hands back: checksum, per-job metric
/// roll-up (stamped with the job id), per-stage metrics, and the job's
/// own deterministic run trace.
#[derive(Clone, Debug)]
pub struct JobOutput {
    pub job: u64,
    pub checksum: f64,
    /// The cache footprint noted by the app via [`JobCtx::note_cache_bytes`]
    /// (resident + spilled cached bytes at the app's snapshot point).
    pub cache_bytes: usize,
    pub metrics: JobMetrics,
    pub stages: Vec<StageMetrics>,
    pub trace: RunTrace,
}

struct JobState {
    id: u64,
    tenant: String,
    /// The cooperative cancel flag, shared with the job's session and its
    /// published rounds so in-flight attempts can observe it.
    cancelled: Arc<AtomicBool>,
    /// Metrics and trace of a job that *failed* (cancelled, deadline,
    /// fatal error): the partial roll-up up to the failure point, so
    /// cancellation remains observable through [`JobHandle::metrics`] and
    /// [`JobHandle::trace`] even though [`JobHandle::wait`] reports an
    /// error.
    partial: Mutex<Option<JobOutput>>,
    result: Mutex<Option<Result<JobOutput, Arc<EngineError>>>>,
    cv: Condvar,
}

/// A submitted job. Cheap to clone; waitable from any thread.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.state.id)
            .field("tenant", &self.state.tenant)
            .finish()
    }
}

impl JobHandle {
    /// The server-assigned job id (1-based; 0 means "standalone session"
    /// everywhere job ids appear in metrics and traces).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    pub fn tenant(&self) -> &str {
        &self.state.tenant
    }

    /// Block until the job finishes.
    pub fn wait(&self) -> Result<JobOutput, Arc<EngineError>> {
        let mut slot = lock(&self.state.result);
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.state.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The result if the job has finished, without blocking.
    pub fn try_result(&self) -> Option<Result<JobOutput, Arc<EngineError>>> {
        lock(&self.state.result).clone()
    }

    /// The job's metric roll-up: the full roll-up of a finished job, or
    /// the partial roll-up of a failed/cancelled one. `None` while the
    /// job is still queued or running.
    pub fn metrics(&self) -> Option<JobMetrics> {
        match self.try_result()? {
            Ok(o) => Some(o.metrics),
            Err(_) => lock(&self.state.partial).as_ref().map(|o| o.metrics.clone()),
        }
    }

    /// The job's run trace: the full trace of a finished job, or the
    /// partial trace of a failed/cancelled one. `None` while the job is
    /// still queued or running.
    pub fn trace(&self) -> Option<RunTrace> {
        match self.try_result()? {
            Ok(o) => Some(o.trace),
            Err(_) => lock(&self.state.partial).as_ref().map(|o| o.trace.clone()),
        }
    }

    /// Request cooperative cancellation. A still-queued job never starts;
    /// a running job fails fast at its next round boundary (in-flight
    /// attempts observe [`TaskContext::is_cancelled`] and fail with
    /// [`EngineError::Cancelled`]), and its tenant admission slot,
    /// claim-pool slots, and job-stamped cache entries are released
    /// through the normal end-of-job cleanup. Idempotent; a no-op once
    /// the job has finished.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------------------
// the shared task pool
// ----------------------------------------------------------------------

type ErasedResult = Box<dyn Any + Send>;
type TaskFn<'a> =
    &'a (dyn Fn(&TaskContext, &mut Executor) -> Result<ErasedResult, EngineError> + Sync);

/// What a worker hands back for one executed slot: the attempt outcome
/// plus the task metrics and trace events it produced on the physical
/// executor, routed to the owning job's session for per-job roll-up.
struct SlotDone {
    task: usize,
    attempt: u32,
    vhome: usize,
    result: Result<ErasedResult, EngineError>,
    oom_rerun: bool,
    oom_recovered: bool,
    task_metrics: Vec<crate::metrics::TaskMetrics>,
    events: Vec<TraceEvent>,
}

struct RoundState {
    done: Vec<Option<SlotDone>>,
    completed: usize,
}

/// One scheduling round of one job's stage, published to the pool: the
/// cross-job generalization of the pull scheduler's claim list. Slots are
/// `(task, attempt, virtual home)` sorted ascending by task.
struct Round {
    job: u64,
    tenant: u32,
    stage: String,
    tasks: usize,
    slots: Vec<(usize, u32, usize)>,
    /// Slots that must run at home (fault-affected; see
    /// `pin_faulted_slots_in`). Wave-mode jobs pin everything.
    pinned: Vec<bool>,
    claimed: Vec<AtomicBool>,
    /// Whether non-home workers may claim unpinned slots (pull mode).
    steal: bool,
    shuffle_stage: bool,
    plan: FaultPlan,
    policy: RetryPolicy,
    /// The owning job's virtual-executor poison flags (width-sized,
    /// persistent across the job's stages).
    vpoison: Arc<Vec<AtomicBool>>,
    /// The owning job's cooperative cancel flag: set, remaining attempts
    /// of this round fail fast with [`EngineError::Cancelled`] so the
    /// round still fully retires and releases its claim-pool slots.
    cancel: Arc<AtomicBool>,
    /// Borrowed from the runner's `run_stage` frame. SAFETY: the frame
    /// waits for every slot's `SlotDone` and retires the round from the
    /// pool before returning, so no worker dereferences this afterwards.
    body: TaskFn<'static>,
    state: Mutex<RoundState>,
    done_cv: Condvar,
}

struct QueuedJob {
    id: u64,
    tenant_id: u32,
    spec: JobSpec,
    state: Arc<JobState>,
    /// When the job was admitted — the epoch its deadline counts from.
    submitted: Instant,
}

struct PoolState {
    rounds: Vec<Arc<Round>>,
    queue: VecDeque<QueuedJob>,
    /// Jobs admitted but not yet finished (queued or running). Workers
    /// may only exit when this reaches zero after shutdown.
    active_jobs: usize,
    /// Claims currently executing per job — the fair-share signal.
    running: Vec<(u64, usize)>,
}

fn running_of(pool: &PoolState, job: u64) -> usize {
    pool.running.iter().find(|(j, _)| *j == job).map(|(_, n)| *n).unwrap_or(0)
}

fn bump_running(pool: &mut PoolState, job: u64, up: bool) {
    match pool.running.iter_mut().find(|(j, _)| *j == job) {
        Some(slot) => {
            if up {
                slot.1 += 1;
            } else {
                slot.1 = slot.1.saturating_sub(1);
            }
        }
        None => {
            if up {
                pool.running.push((job, 1));
            }
        }
    }
}

struct TenantState {
    name: String,
    id: u32,
    max_in_flight: usize,
    in_flight: usize,
}

struct ServerInner {
    executors: Vec<Mutex<Executor>>,
    exec_config: ExecutorConfig,
    pool: Mutex<PoolState>,
    /// Workers wait here for claimable slots (and shutdown).
    work_cv: Condvar,
    /// Runners wait here for queued jobs (and shutdown).
    job_cv: Condvar,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    tenants: Mutex<Vec<TenantState>>,
    default_max_in_flight: usize,
}

// ----------------------------------------------------------------------
// worker threads
// ----------------------------------------------------------------------

/// Pick the best claimable slot for `worker` under the pool lock, or
/// `None` to wait. Affinity candidates (home slot on this worker — the
/// only way pinned slots run) beat steal candidates across all rounds;
/// within a class, prefer the job with the fewest running claims, tie on
/// the lower job id, then the lower task index — deterministic fair
/// sharing.
fn find_claim(pool: &PoolState, worker: usize, executors: usize) -> Option<(usize, usize)> {
    let mut best: Option<((bool, usize, u64, usize), usize, usize)> = None;
    for (ri, round) in pool.rounds.iter().enumerate() {
        let mut cand: Option<(usize, usize, bool)> = None;
        for (j, &(t, _a, v)) in round.slots.iter().enumerate() {
            if round.claimed[j].load(Ordering::Relaxed) {
                continue;
            }
            if v % executors == worker {
                cand = Some((j, t, false));
                break;
            }
        }
        if cand.is_none() && round.steal {
            for (j, &(t, _a, v)) in round.slots.iter().enumerate() {
                if round.pinned[j]
                    || round.claimed[j].load(Ordering::Relaxed)
                    || v % executors == worker
                {
                    continue;
                }
                cand = Some((j, t, true));
                break;
            }
        }
        let Some((j, t, steal)) = cand else { continue };
        let key = (steal, running_of(pool, round.job), round.job, t);
        if best.as_ref().is_none_or(|(k, ..)| key < *k) {
            best = Some((key, ri, j));
        }
    }
    best.map(|(_, ri, j)| (ri, j))
}

/// One physical attempt of slot `(t, a)` of `round` on `worker` — the
/// server port of the driver's `run_attempt`, with the crash machinery
/// redirected at the job's virtual executor `v`: poison checks read and
/// set `vpoison[v]`, never the shared process. Fault decisions are pure
/// functions of `(site, stage, task, attempt)`, so a job's failure
/// scenario is identical to its standalone run at the same width.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    round: &Round,
    e: &mut Executor,
    worker: usize,
    executors: usize,
    t: usize,
    a: u32,
    v: usize,
) -> (Result<ErasedResult, EngineError>, bool, bool) {
    let name = round.stage.as_str();
    let plan = &round.plan;
    let vpoison = &round.vpoison[v];
    let cancel = &*round.cancel;
    let ctx = TaskContext {
        stage: name,
        task: t,
        tasks: round.tasks,
        executor: worker,
        executors,
        cancel,
    };
    let body = round.body;
    // Panics are caught per attempt so one bad job body cannot wedge the
    // shared worker (they surface as fatal `TaskPanic` errors).
    let run_body = |e: &mut Executor| -> Result<ErasedResult, EngineError> {
        match catch_unwind(AssertUnwindSafe(|| body(&ctx, e))) {
            Ok(r) => r,
            Err(p) => Err(EngineError::TaskPanic {
                stage: name.to_string(),
                task: t,
                message: panic_message(p),
            }),
        }
    };
    let mut oom_rerun = false;
    let mut oom_recovered = false;
    let mut r = e.run_task_in(format!("{name}-{t}"), name, t, a, |e| {
        // A cancelled job's remaining attempts fail fast (never running
        // the body) so the round retires promptly and its claim-pool
        // slots free up for other jobs.
        if cancel.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled { reason: "job cancelled".to_string() });
        }
        // Only an at-home attempt observes the virtual executor's death.
        // Stolen slots are fault-free by construction (the pin walk pins
        // every slot a crash dooms), so reading the home's *live* poison
        // flag from a thief would add an ExecutorLost that depends on
        // when the steal ran relative to the crash — a timing-dependent
        // extra retry the serial reference never sees. The driver's
        // analog: a poisoned executor never steals, and a thief checks
        // its own health, not the home's.
        if v % executors == worker && vpoison.load(Ordering::Relaxed) {
            return Err(EngineError::ExecutorLost { executor: v });
        }
        if plan.fires(FaultSite::ExecutorCrash, name, t, a) {
            vpoison.store(true, Ordering::Relaxed);
            return Err(EngineError::ExecutorLost { executor: v });
        }
        if plan.fires(FaultSite::TaskBody, name, t, a) {
            return Err(EngineError::Injected { site: FaultSite::TaskBody });
        }
        if plan.fires(FaultSite::Alloc, name, t, a) {
            return Err(EngineError::Injected { site: FaultSite::Alloc });
        }
        if plan.fires(FaultSite::TaskHang, name, t, a) {
            // The watchdog's verdict on a hung attempt: the whole
            // deadline budget is burned in simulated time, charged at
            // the session's outcome processing.
            return Err(EngineError::Deadline {
                stage: name.to_string(),
                task: t,
                attempt: a,
                budget: round.policy.deadline_budget(),
            });
        }
        let out = run_body(e)?;
        if round.shuffle_stage && plan.fires(FaultSite::ShuffleFrame, name, t, a) {
            return Err(EngineError::Injected { site: FaultSite::ShuffleFrame });
        }
        Ok(out)
    });
    // Spill-path kill points model the executor process dying; on the
    // server that death is virtual. (Job fault plans are not installed
    // into the shared caches, so this only fires for errors the body
    // itself surfaces.)
    if r.as_ref().err().and_then(|err| err.injected_kill()).is_some() {
        vpoison.store(true, Ordering::Relaxed);
    }
    if round.policy.spill_on_oom
        && r.as_ref().is_err_and(|err| err.is_memory_pressure())
        && !vpoison.load(Ordering::Relaxed)
    {
        e.spill_for_memory();
        oom_rerun = true;
        r = e.run_task_in(format!("{name}-{t}-oom-retry"), name, t, a, |e| {
            let out = run_body(e)?;
            if round.shuffle_stage && plan.fires(FaultSite::ShuffleFrame, name, t, a) {
                return Err(EngineError::Injected { site: FaultSite::ShuffleFrame });
            }
            Ok(out)
        });
        oom_recovered = r.is_ok();
    }
    (r, oom_rerun, oom_recovered)
}

/// Execute one claimed slot: lock the physical executor, stamp its trace
/// and cache with the owning job/tenant, run the attempt, and collect the
/// task metrics and trace events it produced for routing to the job.
fn execute_slot(inner: &ServerInner, worker: usize, round: &Round, j: usize) -> SlotDone {
    let executors = inner.executors.len();
    let (t, a, v) = round.slots[j];
    let e = &mut *lock(&inner.executors[worker]);
    e.trace.set_job(round.job);
    e.cache.set_tenant_ctx(Some(round.tenant));
    e.cache.set_job_ctx(Some(round.job));
    let task_mark = e.tasks.len();
    let trace_mark = e.trace.len();
    if v % executors != worker && e.trace.enabled() {
        let now = e.trace.now_ns();
        let sim = dur_ns(e.sim_now());
        e.trace.record(
            TraceEventKind::TaskSteal,
            Some(round.stage.as_str()),
            Some(t),
            Some(a),
            None,
            format!("{}-{t}-steal", round.stage),
            now,
            0,
            sim,
            0,
            0,
            v as u64,
        );
    }
    let (result, oom_rerun, oom_recovered) = run_attempt(round, e, worker, executors, t, a, v);
    let task_metrics = e.tasks[task_mark..].to_vec();
    let mut events = e.trace.drain_from(trace_mark);
    for ev in &mut events {
        ev.executor = ev.executor.or(Some(worker));
    }
    e.cache.set_job_ctx(None);
    e.cache.set_tenant_ctx(None);
    e.trace.set_job(0);
    SlotDone {
        task: t,
        attempt: a,
        vhome: v,
        result,
        oom_rerun,
        oom_recovered,
        task_metrics,
        events,
    }
}

fn worker_loop(inner: Arc<ServerInner>, worker: usize) {
    let executors = inner.executors.len();
    loop {
        let claim = {
            let mut pool = lock(&inner.pool);
            loop {
                if let Some((ri, j)) = find_claim(&pool, worker, executors) {
                    let round = pool.rounds[ri].clone();
                    round.claimed[j].store(true, Ordering::Relaxed);
                    bump_running(&mut pool, round.job, true);
                    break Some((round, j));
                }
                if inner.shutdown.load(Ordering::Relaxed) && pool.active_jobs == 0 {
                    break None;
                }
                pool = inner.work_cv.wait(pool).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some((round, j)) = claim else { return };
        let done = execute_slot(&inner, worker, &round, j);
        {
            let mut pool = lock(&inner.pool);
            bump_running(&mut pool, round.job, false);
        }
        let mut st = lock(&round.state);
        st.done[j] = Some(done);
        st.completed += 1;
        if st.completed == round.slots.len() {
            round.done_cv.notify_all();
        }
    }
}

// ----------------------------------------------------------------------
// ServerJobSession: the per-job driver loop
// ----------------------------------------------------------------------

/// One job's driver state on its runner thread: the standalone
/// [`ClusterSession`] retry engine ported to virtual executors whose
/// attempts execute on the shared pool. Stage lifecycle, failure
/// charging, quarantine/restart decisions, retry routing, and metric
/// roll-up follow the standalone driver line for line — the equivalence
/// the server soak asserts counter for counter.
pub struct ServerJobSession {
    inner: Arc<ServerInner>,
    job: u64,
    tenant: u32,
    width: usize,
    policy: RetryPolicy,
    scheduler: SchedulerMode,
    faults: FaultPlan,
    vhealth: Vec<ExecutorHealth>,
    vpoison: Arc<Vec<AtomicBool>>,
    /// Shared with the [`JobHandle`] and every published round.
    cancel: Arc<AtomicBool>,
    /// Wall-clock deadline measured from `submitted`, checked at stage
    /// and round boundaries.
    deadline: Option<Duration>,
    submitted: Instant,
    stages: Vec<StageMetrics>,
    trace: TraceRecorder,
    /// Executor-side events routed back from workers, job-stamped.
    exec_events: Vec<TraceEvent>,
    metrics: JobMetrics,
    /// Cumulative busy time per virtual executor; the job's `exec` is its
    /// max (virtual executors run in parallel, as a width-W cluster's
    /// physical ones would).
    busy_job: Vec<Duration>,
    sim_now: Duration,
}

impl ServerJobSession {
    #[allow(clippy::too_many_arguments)]
    fn new(
        inner: Arc<ServerInner>,
        job: u64,
        tenant: u32,
        width: usize,
        policy: RetryPolicy,
        scheduler: SchedulerMode,
        faults: FaultPlan,
        cancel: Arc<AtomicBool>,
        deadline: Option<Duration>,
        submitted: Instant,
    ) -> ServerJobSession {
        let tracing = inner.exec_config.tracing;
        let mut trace = TraceRecorder::new(tracing);
        trace.set_job(job);
        ServerJobSession {
            inner,
            job,
            tenant,
            width,
            policy,
            scheduler,
            faults,
            vhealth: vec![ExecutorHealth::default(); width],
            vpoison: Arc::new((0..width).map(|_| AtomicBool::new(false)).collect()),
            cancel,
            deadline,
            submitted,
            stages: Vec::new(),
            trace,
            exec_events: Vec::new(),
            metrics: JobMetrics::default(),
            busy_job: vec![Duration::ZERO; width],
            sim_now: Duration::ZERO,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// The deadline-aware cancellation check, run at stage and round
    /// boundaries. A tripped deadline raises the shared cancel flag so
    /// in-flight attempts fail fast; the first trip emits the
    /// `JobCancelled` event and bumps the job's `cancelled` counter.
    fn check_cancelled(&mut self) -> Result<(), EngineError> {
        let overdue = self.deadline.is_some_and(|d| self.submitted.elapsed() >= d);
        if overdue {
            self.cancel.store(true, Ordering::Relaxed);
        }
        if !self.cancel.load(Ordering::Relaxed) {
            return Ok(());
        }
        let reason = if overdue {
            format!("deadline {:?} exceeded", self.deadline.unwrap_or_default())
        } else {
            "cancelled via JobHandle::cancel".to_string()
        };
        self.note_cancelled(&reason);
        Err(EngineError::Cancelled { reason })
    }

    /// Record the job's cancellation (once): the `cancelled` counter and
    /// the `JobCancelled` trace event, whose label carries the reason.
    fn note_cancelled(&mut self, reason: &str) {
        if self.metrics.cancelled != 0 {
            return;
        }
        self.metrics.cancelled = 1;
        let now = self.trace.now_ns();
        self.trace.record(
            TraceEventKind::JobCancelled,
            None,
            None,
            None,
            None,
            reason.to_string(),
            now,
            0,
            dur_ns(self.sim_now),
            0,
            0,
            0,
        );
    }

    pub fn mode(&self) -> crate::config::ExecutionMode {
        self.inner.exec_config.mode
    }

    /// Cached bytes currently stamped with this job across the shared
    /// executors (all tiers).
    pub fn job_cache_bytes(&self) -> usize {
        self.inner.executors.iter().map(|m| lock(m).cache.job_bytes(self.job)).sum()
    }

    pub fn run_stage<R: Send + 'static>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        self.run_stage_typed(name, tasks, f, false)
    }

    fn run_stage_typed<R: Send + 'static>(
        &mut self,
        name: &str,
        tasks: usize,
        f: impl Fn(&TaskContext, &mut Executor) -> Result<R, EngineError> + Sync,
        shuffle_stage: bool,
    ) -> Result<Vec<R>, EngineError> {
        let erased = |ctx: &TaskContext, e: &mut Executor| -> Result<ErasedResult, EngineError> {
            f(ctx, e).map(|r| Box::new(r) as ErasedResult)
        };
        let out = self.run_stage_erased(name, tasks, &erased, shuffle_stage)?;
        Ok(out
            .into_iter()
            .map(|b| *b.downcast::<R>().expect("stage results are the stage's result type"))
            .collect())
    }

    pub fn run_shuffle_job<R: Send + 'static>(
        &mut self,
        name: &str,
        map_tasks: usize,
        reduce_tasks: usize,
        map: impl Fn(&TaskContext, &mut Executor) -> Result<MapOutputs, EngineError> + Sync,
        reduce: impl Fn(&TaskContext, &mut Executor, &[ShufflePayload]) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        let map_stage = format!("{name}-map");
        let outputs: Vec<MapOutputs> = self.run_stage_typed(
            &map_stage,
            map_tasks,
            |ctx: &TaskContext, e: &mut Executor| {
                let out = map(ctx, e)?;
                if out.len() != reduce_tasks {
                    return Err(EngineError::Shuffle(format!(
                        "map task {} produced {} reducer outputs, expected {}",
                        ctx.task,
                        out.len(),
                        reduce_tasks
                    ))
                    .in_task(ctx.stage, ctx.task));
                }
                Ok(out)
            },
            true,
        )?;
        let bytes: u64 = outputs.iter().flatten().map(|p| p.len() as u64).sum();
        let pages: u64 = outputs.iter().flatten().map(|p| p.page_count() as u64).sum();
        if let Some(s) = self.stages.last_mut() {
            s.shuffle_bytes = bytes;
            s.shuffle_pages = pages;
        }
        // Payloads move through the exchange; pages change owner, no copy.
        let inputs = exchange(outputs);
        let result = {
            let inputs = &inputs;
            self.run_stage(&format!("{name}-reduce"), reduce_tasks, |ctx, e| {
                reduce(ctx, e, &inputs[ctx.task])
            })
        };
        // Return consumed payload storage to the physical executors' pools.
        if result.is_ok() {
            let n = self.inner.executors.len();
            for (i, p) in inputs.into_iter().flatten().enumerate() {
                lock(&self.inner.executors[i % n]).recycle_payload(p);
            }
        }
        result
    }

    /// The retry engine: the standalone driver's `run_stage_inner` with
    /// task waves replaced by pool rounds and physical health replaced by
    /// the job's virtual health/poison state.
    fn run_stage_erased(
        &mut self,
        name: &str,
        tasks: usize,
        body: TaskFn<'_>,
        shuffle_stage: bool,
    ) -> Result<Vec<ErasedResult>, EngineError> {
        // A job already cancelled (or past its deadline) never starts
        // another stage.
        self.check_cancelled()?;
        // SAFETY: `body` outlives every use — each round is fully executed
        // (every slot's SlotDone deposited) and retired from the pool
        // before this frame continues, and no code between publishing a
        // round and retiring it can panic out of the frame.
        let body: TaskFn<'static> =
            unsafe { std::mem::transmute::<TaskFn<'_>, TaskFn<'static>>(body) };
        assert!(tasks > 0, "a stage needs at least one task");
        let width = self.width;
        let policy = self.policy;
        let plan = self.faults.clone();
        for h in &mut self.vhealth {
            h.stage_failures = 0;
        }

        let stage_wall_start = self.trace.now_ns();
        let stage_sim_start = dur_ns(self.sim_now);
        self.trace.record(
            TraceEventKind::StageStart,
            Some(name),
            None,
            None,
            None,
            name,
            stage_wall_start,
            0,
            stage_sim_start,
            0,
            0,
            tasks as u64,
        );

        if healthy_count_in(&self.vhealth) == 0 {
            let quarantined = width - healthy_count_in(&self.vhealth);
            let err = EngineError::AllExecutorsLost { executors: width, quarantined };
            let mut stage = StageMetrics::new(name);
            stage.aborted = true;
            let now = self.trace.now_ns();
            self.trace.record(
                TraceEventKind::StageEnd,
                Some(name),
                None,
                None,
                None,
                name,
                now,
                now.saturating_sub(stage_wall_start),
                stage_sim_start,
                0,
                0,
                0,
            );
            self.stages.push(stage);
            return Err(err.in_task(name, 0));
        }

        let mut stage = StageMetrics::new(name);
        stage.tasks = tasks;
        let mut results: Vec<Option<ErasedResult>> = (0..tasks).map(|_| None).collect();

        let mut pending: Vec<(usize, u32, usize)> = Vec::with_capacity(tasks);
        for t in 0..tasks {
            let v = healthy_from_in(&self.vhealth, t % width).expect("a healthy executor exists");
            pending.push((t, 0, v));
        }

        let scheduler = self.scheduler;
        let mut busy_stage: Vec<Duration> = vec![Duration::ZERO; width];

        let outcome: Result<(), EngineError> = 'stage: loop {
            if pending.is_empty() {
                break Ok(());
            }
            // Round-boundary watchdog: a cancelled or overdue job stops
            // scheduling new rounds; the stage still records its metrics
            // and StageEnd below.
            if let Err(err) = self.check_cancelled() {
                break 'stage Err(err);
            }
            let mut slots: Vec<(usize, u32, usize)> = pending.drain(..).collect();
            slots.sort_unstable_by_key(|&(t, ..)| t);
            let doomed: Vec<bool> =
                self.vpoison.iter().map(|p| p.load(Ordering::Relaxed)).collect();
            // Wave jobs pin everything (static home queues, no stealing);
            // pull jobs pin exactly the fault-affected slots, as the
            // standalone pull scheduler does.
            let (pinned, steal) = match scheduler {
                SchedulerMode::Wave => (vec![true; slots.len()], false),
                SchedulerMode::Pull => {
                    (pin_faulted_slots_in(&doomed, &slots, name, shuffle_stage, &plan), true)
                }
            };
            let n = slots.len();
            let round = Arc::new(Round {
                job: self.job,
                tenant: self.tenant,
                stage: name.to_string(),
                tasks,
                slots,
                pinned,
                claimed: (0..n).map(|_| AtomicBool::new(false)).collect(),
                steal,
                shuffle_stage,
                plan: plan.clone(),
                policy,
                vpoison: self.vpoison.clone(),
                cancel: self.cancel.clone(),
                body,
                state: Mutex::new(RoundState {
                    done: (0..n).map(|_| None).collect(),
                    completed: 0,
                }),
                done_cv: Condvar::new(),
            });
            {
                let mut pool = lock(&self.inner.pool);
                pool.rounds.push(round.clone());
                self.inner.work_cv.notify_all();
            }
            let mut done: Vec<SlotDone> = {
                let mut st = lock(&round.state);
                while st.completed < n {
                    st = round.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                st.done.iter_mut().map(|d| d.take().expect("completed slot")).collect()
            };
            {
                let mut pool = lock(&self.inner.pool);
                pool.rounds.retain(|r| !Arc::ptr_eq(r, &round));
            }

            // Outcome processing, single-threaded in task order — health
            // and retry decisions never depend on worker interleaving.
            done.sort_by_key(|d| d.task);
            let mut round_busy: Vec<Duration> = vec![Duration::ZERO; width];
            let mut failures: Vec<(usize, u32, usize, EngineError)> = Vec::new();
            for d in done {
                let SlotDone {
                    task: t,
                    attempt: a,
                    vhome: x,
                    result,
                    oom_rerun,
                    oom_recovered,
                    task_metrics,
                    events,
                } = d;
                for tm in &task_metrics {
                    stage.add_task(tm);
                    self.metrics.add_task(tm);
                    round_busy[x] += tm.total();
                }
                self.exec_events.extend(events);
                stage.attempts += 1 + oom_rerun as u64;
                stage.oom_reruns += oom_rerun as u64;
                if oom_recovered {
                    stage.oom_recoveries += 1;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::OomRecovery,
                        Some(name),
                        Some(t),
                        Some(a),
                        Some(x),
                        format!("{name}-{t}-oom"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        0,
                        0,
                        0,
                    );
                }
                match result {
                    Ok(v) => results[t] = Some(v),
                    Err(err) => {
                        // The watchdog's verdict on a hung attempt: the
                        // whole deadline budget was burned, charged in
                        // simulated time (never slept).
                        if let EngineError::Deadline { budget, .. } = &err {
                            stage.timeouts += 1;
                            stage.recovery += *budget;
                            let now = self.trace.now_ns();
                            self.trace.record(
                                TraceEventKind::TaskTimeout,
                                Some(name),
                                Some(t),
                                Some(a),
                                Some(x),
                                format!("{name}-{t}-timeout"),
                                now,
                                0,
                                dur_ns(self.sim_now),
                                dur_ns(*budget),
                                0,
                                0,
                            );
                        }
                        failures.push((t, a, x, err));
                    }
                }
            }
            for v in 0..width {
                busy_stage[v] += round_busy[v];
                self.busy_job[v] += round_busy[v];
            }
            if scheduler == SchedulerMode::Wave {
                stage.exec += round_busy.into_iter().max().unwrap_or(Duration::ZERO);
            }

            for &(_, _, x, _) in &failures {
                self.vhealth[x].stage_failures += 1;
            }
            for x in 0..width {
                let dead = self.vpoison[x].load(Ordering::Relaxed);
                let over = self.vhealth[x].stage_failures >= policy.quarantine_after;
                if (!dead && !over) || self.vhealth[x].quarantined {
                    continue;
                }
                if healthy_count_in(&self.vhealth) == 1 && policy.spare_last_executor {
                    // Virtual restart-in-place: clear the job's poison
                    // flag. The shared physical executor never died, so
                    // there is no cache wipe to rehydrate from — the
                    // job's cached blocks are all still live, and the
                    // rehydration counters stay zero by construction.
                    self.vpoison[x].store(false, Ordering::Relaxed);
                    self.vhealth[x].stage_failures = 0;
                    self.vhealth[x].restarts += 1;
                    stage.restarts += 1;
                    stage.recovery += policy.backoff;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::Restart,
                        Some(name),
                        None,
                        None,
                        Some(x),
                        format!("restart-executor-{x}"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        dur_ns(policy.backoff),
                        0,
                        0,
                    );
                } else {
                    self.vhealth[x].quarantined = true;
                    stage.quarantines += 1;
                    let now = self.trace.now_ns();
                    self.trace.record(
                        TraceEventKind::Quarantine,
                        Some(name),
                        None,
                        None,
                        Some(x),
                        format!("quarantine-executor-{x}"),
                        now,
                        0,
                        dur_ns(self.sim_now),
                        0,
                        0,
                        0,
                    );
                }
            }

            for (t, a, x, err) in failures {
                if !err.is_transient() || a + 1 >= policy.max_attempts {
                    break 'stage Err(err.in_task(name, t));
                }
                let Some(y) = healthy_after_in(&self.vhealth, x) else {
                    break 'stage Err(err.in_task(name, t));
                };
                stage.retries += 1;
                stage.recovery += policy.backoff;
                let now = self.trace.now_ns();
                self.trace.record(
                    TraceEventKind::Retry,
                    Some(name),
                    Some(t),
                    Some(a),
                    Some(x),
                    format!("{name}-{t}-retry"),
                    now,
                    0,
                    dur_ns(self.sim_now),
                    dur_ns(policy.backoff),
                    0,
                    y as u64,
                );
                pending.push((t, a + 1, y));
            }
        };

        if scheduler == SchedulerMode::Pull {
            stage.exec = busy_stage.into_iter().max().unwrap_or(Duration::ZERO);
        }
        self.sim_now += stage.exec + stage.recovery;
        let now = self.trace.now_ns();
        self.trace.record(
            TraceEventKind::StageEnd,
            Some(name),
            None,
            None,
            None,
            name,
            now,
            now.saturating_sub(stage_wall_start),
            stage_sim_start,
            dur_ns(stage.exec + stage.recovery),
            stage.shuffle_bytes,
            stage.attempts,
        );
        self.stages.push(stage);
        outcome?;
        Ok(results.into_iter().map(|r| r.expect("completed stage fills every slot")).collect())
    }

    /// Seal the job: roll stages into the job metrics, stamp the job id,
    /// and build the per-job deterministic trace (driver events first,
    /// then routed executor events — the same order `RunTrace::merge`
    /// uses).
    fn finish(mut self, checksum: f64, cache_bytes: usize) -> JobOutput {
        self.metrics.job = self.job;
        self.metrics.exec = self.busy_job.iter().copied().max().unwrap_or(Duration::ZERO);
        for s in &self.stages {
            self.metrics.add_stage_recovery(s);
        }
        self.metrics.cache_bytes = cache_bytes;
        let mut events = self.trace.drain_from(0);
        events.append(&mut self.exec_events);
        JobOutput {
            job: self.job,
            checksum,
            cache_bytes,
            metrics: self.metrics,
            stages: self.stages,
            trace: RunTrace::from_events(events),
        }
    }
}

// ----------------------------------------------------------------------
// runner threads
// ----------------------------------------------------------------------

fn run_job(inner: &Arc<ServerInner>, q: QueuedJob) {
    let QueuedJob { id, tenant_id, spec, state, submitted } = q;
    let width = if spec.executors == 0 { inner.executors.len() } else { spec.executors };
    let policy = spec.retry.unwrap_or(inner.exec_config.retry);
    let scheduler = spec.scheduler.unwrap_or(inner.exec_config.scheduler);
    let app = spec.app.expect("submit validates the app");
    let mut session = ServerJobSession::new(
        inner.clone(),
        id,
        tenant_id,
        width,
        policy,
        scheduler,
        spec.faults,
        state.cancelled.clone(),
        spec.deadline,
        submitted,
    );
    // A job cancelled (or overdue) while still queued never runs its
    // body; it still flows through the full cleanup path below so its
    // admission slot and any stamped state are released.
    let (result, noted) = match session.check_cancelled() {
        Err(err) => (Err(err), 0),
        Ok(()) => {
            let mut ctx = JobCtx::server(&mut session);
            let r = match catch_unwind(AssertUnwindSafe(|| app.run(&mut ctx))) {
                Ok(r) => r,
                Err(p) => Err(EngineError::TaskPanic {
                    stage: app.name().to_string(),
                    task: 0,
                    message: panic_message(p),
                }),
            };
            (r, ctx.noted_cache_bytes())
        }
    };
    let output = match result {
        Ok(checksum) => Ok(session.finish(checksum, noted)),
        Err(err) => {
            // A cancel observed mid-stage (the tasks failed fast before
            // any boundary check ran) still gets its event and counter.
            if session.cancel.load(Ordering::Relaxed) {
                session.note_cancelled("job cancelled");
            }
            // Keep the failed job's partial roll-up reachable (the
            // JobCancelled event and `cancelled` counter live there).
            *lock(&state.partial) = Some(session.finish(f64::NAN, noted));
            Err(Arc::new(err))
        }
    };
    // End-of-job cleanup: release this job's cache blocks on every shared
    // executor so a long-lived server never accumulates finished jobs'
    // state.
    for m in inner.executors.iter() {
        lock(m).release_job_blocks(id);
    }
    // Release the tenant's admission slot *before* publishing the result:
    // a waiter that wakes on the result and immediately resubmits must not
    // race the slot release into a spurious AdmissionRejected.
    {
        let mut tenants = lock(&inner.tenants);
        if let Some(t) = tenants.iter_mut().find(|t| t.id == tenant_id) {
            t.in_flight = t.in_flight.saturating_sub(1);
        }
    }
    {
        let mut slot = lock(&state.result);
        *slot = Some(output);
        state.cv.notify_all();
    }
    {
        let mut pool = lock(&inner.pool);
        pool.active_jobs -= 1;
        // Wake idle workers so they can observe shutdown + drained pool.
        inner.work_cv.notify_all();
    }
}

fn runner_loop(inner: Arc<ServerInner>) {
    loop {
        let next = {
            let mut pool = lock(&inner.pool);
            loop {
                if let Some(q) = pool.queue.pop_front() {
                    break Some(q);
                }
                if inner.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                pool = inner.job_cv.wait(pool).unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some(q) = next else { return };
        run_job(&inner, q);
    }
}

// ----------------------------------------------------------------------
// DecaServer
// ----------------------------------------------------------------------

/// The job service. See the module docs for the execution model.
///
/// ```
/// use deca_engine::{AppJob, DecaServer, ExecutionMode, ExecutorConfig, JobSpec};
///
/// let cfg = ExecutorConfig::builder().mode(ExecutionMode::Deca).heap_mb(16).build();
/// let server = DecaServer::new(2, cfg);
/// let job = AppJob::new("sum", |ctx| {
///     let parts = ctx.run_stage("sum", 3, |c, _e| Ok((c.task * 10) as f64))?;
///     Ok(parts.into_iter().sum())
/// });
/// let handle = server.submit(JobSpec::new("docs").app(job)).unwrap();
/// assert_eq!(handle.wait().unwrap().checksum, 30.0);
/// ```
pub struct DecaServer {
    inner: Arc<ServerInner>,
    jobs: Mutex<Vec<Arc<JobState>>>,
    workers: Vec<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl DecaServer {
    /// A server over `executors` identical shared executors, with as many
    /// runner threads and no default admission cap.
    pub fn new(executors: usize, config: ExecutorConfig) -> DecaServer {
        DecaServer::with_config(ServerConfig::new(executors, config))
    }

    pub fn with_config(config: ServerConfig) -> DecaServer {
        assert!(config.executors > 0, "a server needs at least one executor");
        let cluster = LocalCluster::uniform(config.executors, config.executor.clone());
        let executors: Vec<Mutex<Executor>> =
            cluster.executors.into_iter().map(Mutex::new).collect();
        let inner = Arc::new(ServerInner {
            executors,
            exec_config: config.executor,
            pool: Mutex::new(PoolState {
                rounds: Vec::new(),
                queue: VecDeque::new(),
                active_jobs: 0,
                running: Vec::new(),
            }),
            work_cv: Condvar::new(),
            job_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            tenants: Mutex::new(Vec::new()),
            default_max_in_flight: config.default_max_in_flight,
        });
        let workers = (0..config.executors)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("deca-worker-{i}"))
                    .spawn(move || worker_loop(inner, i))
                    .expect("spawn worker")
            })
            .collect();
        let runner_count = if config.runners == 0 { config.executors } else { config.runners };
        let runners = (0..runner_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("deca-runner-{i}"))
                    .spawn(move || runner_loop(inner))
                    .expect("spawn runner")
            })
            .collect();
        DecaServer { inner, jobs: Mutex::new(Vec::new()), workers, runners }
    }

    /// Physical executors shared by all jobs.
    pub fn executors(&self) -> usize {
        self.inner.executors.len()
    }

    /// Submit a job. Fails with [`EngineError::AdmissionRejected`] when
    /// the tenant is at its in-flight cap and
    /// [`EngineError::ServerShutdown`] after shutdown. The spec must
    /// carry an app ([`JobSpec::app`]).
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, EngineError> {
        assert!(spec.app.is_some(), "JobSpec needs an app (JobSpec::app)");
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(EngineError::ServerShutdown);
        }
        let tenant_id = {
            let mut tenants = lock(&self.inner.tenants);
            let idx = match tenants.iter().position(|t| t.name == spec.tenant) {
                Some(i) => i,
                None => {
                    let id = tenants.len() as u32 + 1;
                    tenants.push(TenantState {
                        name: spec.tenant.clone(),
                        id,
                        max_in_flight: self.inner.default_max_in_flight,
                        in_flight: 0,
                    });
                    tenants.len() - 1
                }
            };
            let t = &mut tenants[idx];
            if t.in_flight >= t.max_in_flight {
                return Err(EngineError::AdmissionRejected {
                    tenant: t.name.clone(),
                    in_flight: t.in_flight,
                    limit: t.max_in_flight,
                });
            }
            t.in_flight += 1;
            t.id
        };
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        let state = Arc::new(JobState {
            id,
            tenant: spec.tenant.clone(),
            cancelled: Arc::new(AtomicBool::new(false)),
            partial: Mutex::new(None),
            result: Mutex::new(None),
            cv: Condvar::new(),
        });
        lock(&self.jobs).push(state.clone());
        {
            let mut pool = lock(&self.inner.pool);
            pool.queue.push_back(QueuedJob {
                id,
                tenant_id,
                spec,
                state: state.clone(),
                submitted: Instant::now(),
            });
            pool.active_jobs += 1;
            self.inner.job_cv.notify_one();
        }
        Ok(JobHandle { state })
    }

    /// Cap `tenant`'s concurrently in-flight jobs (creating the tenant if
    /// it was never seen).
    pub fn configure_tenant(&self, tenant: &str, max_in_flight: usize) {
        let mut tenants = lock(&self.inner.tenants);
        match tenants.iter_mut().find(|t| t.name == tenant) {
            Some(t) => t.max_in_flight = max_in_flight.max(1),
            None => {
                let id = tenants.len() as u32 + 1;
                tenants.push(TenantState {
                    name: tenant.to_string(),
                    id,
                    max_in_flight: max_in_flight.max(1),
                    in_flight: 0,
                });
            }
        }
    }

    fn tenant_id(&self, tenant: &str, create: bool) -> Option<u32> {
        let mut tenants = lock(&self.inner.tenants);
        if let Some(t) = tenants.iter().find(|t| t.name == tenant) {
            return Some(t.id);
        }
        if !create {
            return None;
        }
        let id = tenants.len() as u32 + 1;
        tenants.push(TenantState {
            name: tenant.to_string(),
            id,
            max_in_flight: self.inner.default_max_in_flight,
            in_flight: 0,
        });
        Some(id)
    }

    /// Give `tenant` a shared-cache resident budget on every executor:
    /// while at or under it, other tenants' memory pressure cannot evict
    /// its blocks (see the cache's tenant shielding).
    pub fn set_tenant_cache_budget(&self, tenant: &str, bytes: usize) {
        let id = self.tenant_id(tenant, true).expect("tenant created");
        for m in self.inner.executors.iter() {
            lock(m).cache.set_tenant_budget(id, bytes);
        }
    }

    /// Resident in-memory cached bytes owned by `tenant` across the
    /// shared executors.
    pub fn tenant_resident_bytes(&self, tenant: &str) -> usize {
        let Some(id) = self.tenant_id(tenant, false) else { return 0 };
        self.inner
            .executors
            .iter()
            .map(|m| {
                let e = lock(m);
                e.cache.tenant_resident_bytes(id, &e.mm)
            })
            .sum()
    }

    /// Cold-tier evictions charged to `tenant` across the shared
    /// executors.
    pub fn tenant_evictions(&self, tenant: &str) -> u64 {
        let Some(id) = self.tenant_id(tenant, false) else { return 0 };
        self.inner.executors.iter().map(|m| lock(m).cache.tenant_evictions(id)).sum()
    }

    /// Every finished job's trace merged, in submission order. Per-job
    /// views come from [`RunTrace::of_job`]; events never bleed across
    /// jobs because every event is job-stamped at record time.
    pub fn merged_trace(&self) -> RunTrace {
        let mut events: Vec<TraceEvent> = Vec::new();
        for s in lock(&self.jobs).iter() {
            if let Some(Ok(out)) = lock(&s.result).as_ref() {
                events.extend(out.trace.events.iter().cloned());
            }
        }
        RunTrace { events }
    }

    /// Graceful shutdown: stop accepting submissions, drain the queue
    /// (every already-submitted job completes), and join all threads.
    /// Called by `Drop`; safe to call twice.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        {
            let _pool = lock(&self.inner.pool);
            self.inner.job_cv.notify_all();
            self.inner.work_cv.notify_all();
        }
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
        {
            let _pool = lock(&self.inner.pool);
            self.inner.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DecaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    fn cfg() -> ExecutorConfig {
        ExecutorConfig::new(ExecutionMode::Spark, 8 << 20)
    }

    fn sum_job() -> AppJob {
        AppJob::new("sum", |ctx| {
            let parts = ctx.run_stage("sum", 5, |c, _e| Ok((c.task * 10) as f64))?;
            Ok(parts.into_iter().sum())
        })
    }

    #[test]
    fn submits_and_waits() {
        let server = DecaServer::new(2, cfg());
        let h = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        let out = h.wait().unwrap();
        assert_eq!(out.checksum, 100.0);
        assert_eq!(out.job, h.id());
        assert_eq!(out.metrics.job, h.id());
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.stages[0].tasks, 5);
        assert_eq!(out.stages[0].attempts, 5);
    }

    #[test]
    fn shuffle_jobs_exchange_all_to_all() {
        let server = DecaServer::new(3, cfg());
        let job = AppJob::new("x", |ctx| {
            let got = ctx.run_shuffle_job(
                "x",
                3,
                2,
                |c, e| {
                    Ok((0..2)
                        .map(|_| {
                            let mut run = e.new_run();
                            run.push(&mut e.arena, &[c.task as u8]);
                            e.hand_over(run)
                        })
                        .collect())
                },
                |_c, _e, inputs| Ok(inputs.iter().map(|b| b.contiguous()[0] as f64).sum::<f64>()),
            )?;
            assert_eq!(got, vec![3.0, 3.0]);
            Ok(got.into_iter().sum())
        });
        let out = server.submit(JobSpec::new("t").app(job)).unwrap().wait().unwrap();
        assert_eq!(out.checksum, 6.0);
        let map = out.stages.iter().find(|s| s.name == "x-map").unwrap();
        assert_eq!(map.shuffle_bytes, 6);
        assert_eq!(map.shuffle_pages, 6);
    }

    #[test]
    fn width_is_virtual_not_physical() {
        // A width-5 job on a 2-executor server: task homes follow the
        // virtual width, like a standalone 5-executor session.
        let server = DecaServer::new(2, cfg());
        let job = AppJob::new("w", |ctx| {
            assert_eq!(ctx.executors(), 5);
            let v = ctx.run_stage("w", 7, |c, _e| Ok(c.task as f64))?;
            Ok(v.into_iter().sum())
        });
        let out = server.submit(JobSpec::new("t").executors(5).app(job)).unwrap().wait().unwrap();
        assert_eq!(out.checksum, 21.0);
    }

    #[test]
    fn admission_caps_in_flight_jobs_per_tenant() {
        let server = DecaServer::with_config(ServerConfig::new(1, cfg()).runners(1));
        server.configure_tenant("capped", 1);
        // A job that blocks until we let it finish, holding the tenant's
        // only admission slot.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = gate.clone();
        let blocker = AppJob::new("block", move |ctx| {
            let g = g.clone();
            ctx.run_stage("block", 1, move |_c, _e| {
                let (m, cv) = &*g;
                let mut open = lock(m);
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(0.0)
            })?;
            Ok(0.0)
        });
        let h = server.submit(JobSpec::new("capped").app(blocker)).unwrap();
        let err = server.submit(JobSpec::new("capped").app(sum_job())).unwrap_err();
        match err {
            EngineError::AdmissionRejected { tenant, in_flight, limit } => {
                assert_eq!(tenant, "capped");
                assert_eq!((in_flight, limit), (1, 1));
            }
            other => panic!("expected AdmissionRejected, got {other}"),
        }
        // Another tenant is not affected by the capped tenant's limit.
        // (Queued behind the blocker on this 1-runner server, so release
        // the gate before waiting.)
        let other = server.submit(JobSpec::new("open").app(sum_job())).unwrap();
        {
            let (m, cv) = &*gate;
            *lock(m) = true;
            cv.notify_all();
        }
        h.wait().unwrap();
        other.wait().unwrap();
        // The slot freed: the capped tenant can submit again.
        let again = server.submit(JobSpec::new("capped").app(sum_job())).unwrap();
        assert_eq!(again.wait().unwrap().checksum, 100.0);
    }

    #[test]
    fn shutdown_drains_then_rejects() {
        let mut server = DecaServer::new(2, cfg());
        let h = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        server.shutdown();
        assert_eq!(h.wait().unwrap().checksum, 100.0, "submitted jobs drain");
        let err = server.submit(JobSpec::new("t").app(sum_job())).unwrap_err();
        assert!(matches!(err, EngineError::ServerShutdown), "{err}");
    }

    #[test]
    fn task_panic_is_contained_to_its_job() {
        let server = DecaServer::new(2, cfg());
        let bad = AppJob::new("bad", |ctx| {
            ctx.run_stage("bad", 2, |c, _e| {
                if c.task == 1 {
                    panic!("boom in task");
                }
                Ok(0.0)
            })?;
            Ok(0.0)
        });
        let err = server.submit(JobSpec::new("t").app(bad)).unwrap().wait().unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
        // The shared cluster still serves other jobs.
        let ok = server.submit(JobSpec::new("t").app(sum_job())).unwrap().wait().unwrap();
        assert_eq!(ok.checksum, 100.0);
    }

    #[test]
    fn deadline_zero_job_is_cancelled_before_it_starts() {
        let server = DecaServer::new(2, cfg());
        server.configure_tenant("t", 1);
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        let job = AppJob::new("late", move |ctx| {
            r.store(true, Ordering::Relaxed);
            let parts = ctx.run_stage("late", 2, |c, _e| Ok(c.task as f64))?;
            Ok(parts.into_iter().sum())
        });
        let h = server.submit(JobSpec::new("t").deadline(Duration::ZERO).app(job)).unwrap();
        let err = h.wait().unwrap_err();
        assert!(matches!(&*err, EngineError::Cancelled { .. }), "{err}");
        assert!(err.to_string().contains("deadline"), "{err}");
        assert!(!ran.load(Ordering::Relaxed), "an overdue queued job never runs its body");
        // The cancellation is observable through the partial roll-up.
        let m = h.metrics().expect("partial metrics of a cancelled job");
        assert_eq!(m.cancelled, 1);
        let trace = h.trace().expect("partial trace of a cancelled job");
        assert_eq!(trace.of_kind(TraceEventKind::JobCancelled).count(), 1);
        // The tenant's admission slot was released by the cleanup path.
        let again = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        assert_eq!(again.wait().unwrap().checksum, 100.0);
    }

    #[test]
    fn cancel_stops_a_running_job_and_frees_its_state() {
        let server = DecaServer::new(2, cfg());
        server.configure_tenant("t", 1);
        // The task cooperatively polls its cancel token; without the
        // cancel it would spin forever.
        let spinner = AppJob::new("spin", |ctx| {
            ctx.run_stage("spin", 2, |c, _e| -> Result<(), EngineError> {
                while !c.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(EngineError::Cancelled { reason: "token observed".to_string() })
            })?;
            Ok(0.0)
        });
        let h = server.submit(JobSpec::new("t").app(spinner)).unwrap();
        h.cancel();
        let err = h.wait().unwrap_err();
        assert!(err.to_string().contains("cancel"), "{err}");
        let m = h.metrics().expect("partial metrics of a cancelled job");
        assert_eq!(m.cancelled, 1);
        // Claim-pool slots and the admission slot are released: the
        // tenant's next job runs to completion on the same server.
        let again = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        assert_eq!(again.wait().unwrap().checksum, 100.0);
    }

    #[test]
    fn job_traces_are_job_scoped() {
        let server = DecaServer::new(2, cfg());
        let a = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        let b = server.submit(JobSpec::new("t").app(sum_job())).unwrap();
        let (ra, rb) = (a.wait().unwrap(), b.wait().unwrap());
        for (h, out) in [(&a, &ra), (&b, &rb)] {
            assert!(!out.trace.is_empty());
            assert!(out.trace.events.iter().all(|e| e.job == h.id()), "no cross-job bleed");
        }
        let merged = server.merged_trace();
        let mut jobs = merged.jobs();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![a.id(), b.id()]);
        assert_eq!(merged.of_job(a.id()).count(), ra.trace.len());
        assert_eq!(merged.of_job(b.id()).count(), rb.trace.len());
    }
}
