//! Record traits: one logical record, three physical representations.
//!
//! A workload type (the paper's UDT) implements:
//!
//! * [`HeapRecord`] — materialisation as an object graph on the simulated
//!   heap (Spark mode). `register` defines the JVM-layout classes once;
//!   `store` allocates the graph; `load` reads it back field by field.
//! * [`KryoRecord`] — Kryo-style tagged encoding (SparkSer mode).
//! * `deca_core::DecaRecord` — flat decomposed layout (Deca mode).
//!
//! The umbrella trait [`Record`] ties them together for the cache manager.

use deca_core::DecaRecord;
use deca_heap::{Heap, ObjRef, OomError};

use crate::serde_sim::{read_varint, write_varint};

/// Heap (Spark-mode) representation of a record.
pub trait HeapRecord: Sized {
    /// App-defined bundle of `ClassId`s for this record's object graph.
    type Classes: Copy + Send;

    /// Register the record's classes on a fresh heap.
    fn register(heap: &mut Heap) -> Self::Classes;

    /// Allocate the record's object graph; the returned root object is NOT
    /// yet rooted — callers must root it (stack or slot) before the next
    /// allocation.
    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError>;

    /// Read the record back from its object graph (field-by-field heap
    /// reads — the real cost of Spark-mode iteration).
    fn load(heap: &Heap, cls: &Self::Classes, obj: ObjRef) -> Self;

    /// Nominal heap bytes of one stored record's graph (for cache
    /// accounting). Includes headers and references, unlike `data_size`.
    fn heap_size(&self) -> usize;
}

/// Kryo-style (SparkSer-mode) representation.
pub trait KryoRecord: Sized {
    fn kryo_encode(&self, out: &mut Vec<u8>);
    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self;
}

/// A record usable in all three execution modes.
pub trait Record: DecaRecord + HeapRecord + KryoRecord + Clone + Send {}

impl<T: DecaRecord + HeapRecord + KryoRecord + Clone + Send> Record for T {}

/// Look up a class by name, defining it only if absent. `register` must be
/// idempotent: under the cluster driver and [`crate::DecaServer`] every task
/// re-registers on a long-lived executor, and recomputes/samples must see
/// the same `ClassId` the cached objects were allocated with (duplicate
/// definitions would also leak registry entries across jobs on a server).
pub fn class_or_define(
    heap: &mut Heap,
    name: &str,
    build: impl FnOnce() -> deca_heap::ClassBuilder,
) -> deca_heap::ClassId {
    match heap.registry().by_name(name) {
        Some(c) => c,
        None => heap.define_class(build()),
    }
}

// ---------------------------------------------------------------------
// implementations for pair-of-scalars records (WordCount's Tuple2, SQL
// projections, shuffle messages)
// ---------------------------------------------------------------------

/// Classes of a boxed pair: `Tuple2 { _1: ref, _2: ref }` with boxed
/// primitive fields, as Scala generics produce on the JVM (the auto-boxing
/// cost §6.5 mentions).
#[derive(Copy, Clone)]
pub struct PairClasses {
    pub tuple: deca_heap::ClassId,
    pub box_a: deca_heap::ClassId,
    pub box_b: deca_heap::ClassId,
}

macro_rules! scalar_pair_record {
    ($a:ty, $b:ty, $an:literal, $bn:literal) => {
        impl HeapRecord for ($a, $b) {
            type Classes = PairClasses;

            fn register(heap: &mut Heap) -> PairClasses {
                use deca_heap::{ClassBuilder, FieldKind};
                let tuple = class_or_define(heap, "Tuple2", || {
                    ClassBuilder::new("Tuple2")
                        .field("_1", FieldKind::Ref)
                        .field("_2", FieldKind::Ref)
                });
                let box_a = class_or_define(heap, $an, || {
                    ClassBuilder::new($an).field("value", FieldKind::I64)
                });
                let box_b = class_or_define(heap, $bn, || {
                    ClassBuilder::new($bn).field("value", FieldKind::I64)
                });
                PairClasses { tuple, box_a, box_b }
            }

            fn store(&self, heap: &mut Heap, cls: &PairClasses) -> Result<ObjRef, OomError> {
                let a = heap.alloc(cls.box_a)?;
                heap.write_i64(a, 0, self.0 as i64);
                let sa = heap.push_stack(a);
                let b = heap.alloc(cls.box_b)?;
                heap.write_i64(b, 0, self.1 as i64);
                let sb = heap.push_stack(b);
                let t = heap.alloc(cls.tuple)?;
                heap.write_ref(t, 0, heap.stack_ref(sa));
                heap.write_ref(t, 1, heap.stack_ref(sb));
                heap.truncate_stack(sa.min(sb));
                Ok(t)
            }

            fn load(heap: &Heap, _cls: &PairClasses, obj: ObjRef) -> Self {
                let a = heap.read_ref(obj, 0);
                let b = heap.read_ref(obj, 1);
                (heap.read_i64(a, 0) as $a, heap.read_i64(b, 0) as $b)
            }

            fn heap_size(&self) -> usize {
                // Tuple2(16+16) + two boxed scalars (16+8 each)
                32 + 24 + 24
            }
        }

        impl KryoRecord for ($a, $b) {
            fn kryo_encode(&self, out: &mut Vec<u8>) {
                write_varint(zigzag(self.0 as i64), out);
                write_varint(zigzag(self.1 as i64), out);
            }

            fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
                let a = unzigzag(read_varint(buf, pos)) as $a;
                let b = unzigzag(read_varint(buf, pos)) as $b;
                (a, b)
            }
        }
    };
}

scalar_pair_record!(i64, i64, "java.lang.Long", "java.lang.Long");

/// `(i64, f64)` pairs (rank messages in PageRank; SQL aggregates).
impl HeapRecord for (i64, f64) {
    type Classes = PairClasses;

    fn register(heap: &mut Heap) -> PairClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let tuple = class_or_define(heap, "Tuple2", || {
            ClassBuilder::new("Tuple2").field("_1", FieldKind::Ref).field("_2", FieldKind::Ref)
        });
        let box_a = class_or_define(heap, "java.lang.Long", || {
            ClassBuilder::new("java.lang.Long").field("value", FieldKind::I64)
        });
        let box_b = class_or_define(heap, "java.lang.Double", || {
            ClassBuilder::new("java.lang.Double").field("value", FieldKind::F64)
        });
        PairClasses { tuple, box_a, box_b }
    }

    fn store(&self, heap: &mut Heap, cls: &PairClasses) -> Result<ObjRef, OomError> {
        let a = heap.alloc(cls.box_a)?;
        heap.write_i64(a, 0, self.0);
        let sa = heap.push_stack(a);
        let b = heap.alloc(cls.box_b)?;
        heap.write_f64(b, 0, self.1);
        let sb = heap.push_stack(b);
        let t = heap.alloc(cls.tuple)?;
        heap.write_ref(t, 0, heap.stack_ref(sa));
        heap.write_ref(t, 1, heap.stack_ref(sb));
        heap.truncate_stack(sa.min(sb));
        Ok(t)
    }

    fn load(heap: &Heap, _cls: &PairClasses, obj: ObjRef) -> Self {
        let a = heap.read_ref(obj, 0);
        let b = heap.read_ref(obj, 1);
        (heap.read_i64(a, 0), heap.read_f64(b, 0))
    }

    fn heap_size(&self) -> usize {
        32 + 24 + 24
    }
}

impl KryoRecord for (i64, f64) {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(zigzag(self.0), out);
        out.extend_from_slice(&self.1.to_le_bytes());
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let a = unzigzag(read_varint(buf, pos));
        let b = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        (a, b)
    }
}

/// `(f64, i64)` pairs (feature/index pairs; session examples).
impl HeapRecord for (f64, i64) {
    type Classes = PairClasses;

    fn register(heap: &mut Heap) -> PairClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let tuple = class_or_define(heap, "Tuple2", || {
            ClassBuilder::new("Tuple2").field("_1", FieldKind::Ref).field("_2", FieldKind::Ref)
        });
        let box_a = class_or_define(heap, "java.lang.Double", || {
            ClassBuilder::new("java.lang.Double").field("value", FieldKind::F64)
        });
        let box_b = class_or_define(heap, "java.lang.Long", || {
            ClassBuilder::new("java.lang.Long").field("value", FieldKind::I64)
        });
        PairClasses { tuple, box_a, box_b }
    }

    fn store(&self, heap: &mut Heap, cls: &PairClasses) -> Result<ObjRef, OomError> {
        let a = heap.alloc(cls.box_a)?;
        heap.write_f64(a, 0, self.0);
        let sa = heap.push_stack(a);
        let b = heap.alloc(cls.box_b)?;
        heap.write_i64(b, 0, self.1);
        let sb = heap.push_stack(b);
        let t = heap.alloc(cls.tuple)?;
        heap.write_ref(t, 0, heap.stack_ref(sa));
        heap.write_ref(t, 1, heap.stack_ref(sb));
        heap.truncate_stack(sa.min(sb));
        Ok(t)
    }

    fn load(heap: &Heap, _cls: &PairClasses, obj: ObjRef) -> Self {
        let a = heap.read_ref(obj, 0);
        let b = heap.read_ref(obj, 1);
        (heap.read_f64(a, 0), heap.read_i64(b, 0))
    }

    fn heap_size(&self) -> usize {
        32 + 24 + 24
    }
}

impl KryoRecord for (f64, i64) {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        write_varint(zigzag(self.1), out);
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let a = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        let b = unzigzag(read_varint(buf, pos));
        (a, b)
    }
}

/// `(i64, Vec<f64>)` pairs (keyed vectors): heap graph is a Tuple2 with a
/// boxed key and a raw double[] value.
impl HeapRecord for (i64, Vec<f64>) {
    type Classes = PairClasses;

    fn register(heap: &mut Heap) -> PairClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let tuple = class_or_define(heap, "Tuple2", || {
            ClassBuilder::new("Tuple2").field("_1", FieldKind::Ref).field("_2", FieldKind::Ref)
        });
        let box_a = class_or_define(heap, "java.lang.Long", || {
            ClassBuilder::new("java.lang.Long").field("value", FieldKind::I64)
        });
        let box_b = match heap.registry().by_name("double[]") {
            Some(c) => c,
            None => heap.define_array_class("double[]", FieldKind::F64),
        };
        PairClasses { tuple, box_a, box_b }
    }

    fn store(&self, heap: &mut Heap, cls: &PairClasses) -> Result<ObjRef, OomError> {
        let a = heap.alloc(cls.box_a)?;
        heap.write_i64(a, 0, self.0);
        let sa = heap.push_stack(a);
        let arr = heap.alloc_array(cls.box_b, self.1.len())?;
        for (i, v) in self.1.iter().enumerate() {
            heap.array_set_f64(arr, i, *v);
        }
        let sb = heap.push_stack(arr);
        let t = heap.alloc(cls.tuple)?;
        heap.write_ref(t, 0, heap.stack_ref(sa));
        heap.write_ref(t, 1, heap.stack_ref(sb));
        heap.truncate_stack(sa.min(sb));
        Ok(t)
    }

    fn load(heap: &Heap, _cls: &PairClasses, obj: ObjRef) -> Self {
        let a = heap.read_ref(obj, 0);
        let b = heap.read_ref(obj, 1);
        let n = heap.array_len(b);
        let v = (0..n).map(|i| heap.array_get_f64(b, i)).collect();
        (heap.read_i64(a, 0), v)
    }

    fn heap_size(&self) -> usize {
        32 + 24 + (16 + 8 * self.1.len()).div_ceil(8) * 8
    }
}

impl KryoRecord for (i64, Vec<f64>) {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(zigzag(self.0), out);
        write_varint(self.1.len() as u64, out);
        for v in &self.1 {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let k = unzigzag(read_varint(buf, pos));
        let n = read_varint(buf, pos) as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes")));
            *pos += 8;
        }
        (k, v)
    }
}

/// Boxed scalar classes (a single `java.lang.*` box).
#[derive(Copy, Clone)]
pub struct BoxClasses {
    pub class: deca_heap::ClassId,
}

/// A plain `i64` record: on the heap it is a boxed `java.lang.Long` (the
/// auto-boxing cost of generic containers, §6.5).
impl HeapRecord for i64 {
    type Classes = BoxClasses;

    fn register(heap: &mut Heap) -> BoxClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let class = match heap.registry().by_name("java.lang.Long") {
            Some(c) => c,
            None => heap
                .define_class(ClassBuilder::new("java.lang.Long").field("value", FieldKind::I64)),
        };
        BoxClasses { class }
    }

    fn store(&self, heap: &mut Heap, cls: &BoxClasses) -> Result<ObjRef, OomError> {
        let o = heap.alloc(cls.class)?;
        heap.write_i64(o, 0, *self);
        Ok(o)
    }

    fn load(heap: &Heap, _cls: &BoxClasses, obj: ObjRef) -> Self {
        heap.read_i64(obj, 0)
    }

    fn heap_size(&self) -> usize {
        24
    }
}

impl KryoRecord for i64 {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(zigzag(*self), out);
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        unzigzag(read_varint(buf, pos))
    }
}

/// A plain `f64` record: boxed `java.lang.Double` on the heap.
impl HeapRecord for f64 {
    type Classes = BoxClasses;

    fn register(heap: &mut Heap) -> BoxClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let class = match heap.registry().by_name("java.lang.Double") {
            Some(c) => c,
            None => heap
                .define_class(ClassBuilder::new("java.lang.Double").field("value", FieldKind::F64)),
        };
        BoxClasses { class }
    }

    fn store(&self, heap: &mut Heap, cls: &BoxClasses) -> Result<ObjRef, OomError> {
        let o = heap.alloc(cls.class)?;
        heap.write_f64(o, 0, *self);
        Ok(o)
    }

    fn load(heap: &Heap, _cls: &BoxClasses, obj: ObjRef) -> Self {
        heap.read_f64(obj, 0)
    }

    fn heap_size(&self) -> usize {
        24
    }
}

impl KryoRecord for f64 {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let v = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        v
    }
}

/// Heap classes of a `java.lang.String`: the String object plus its
/// backing `char[]` (pre-compact-strings JVM layout, as in the paper's
/// JDK 1.7 setup).
#[derive(Copy, Clone)]
pub struct StringClasses {
    pub string: deca_heap::ClassId,
    pub char_array: deca_heap::ClassId,
}

impl HeapRecord for String {
    type Classes = StringClasses;

    fn register(heap: &mut Heap) -> StringClasses {
        use deca_heap::{ClassBuilder, FieldKind};
        let string = match heap.registry().by_name("java.lang.String") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("java.lang.String")
                    .field("value", FieldKind::Ref)
                    .field("hash", FieldKind::I32),
            ),
        };
        let char_array = match heap.registry().by_name("char[]") {
            Some(c) => c,
            None => heap.define_array_class("char[]", FieldKind::Char),
        };
        StringClasses { string, char_array }
    }

    fn store(&self, heap: &mut Heap, cls: &StringClasses) -> Result<ObjRef, OomError> {
        // One UTF-16 code unit per char slot (we restrict to BMP text).
        let units: Vec<u16> = self.encode_utf16().collect();
        let arr = heap.alloc_array(cls.char_array, units.len())?;
        for (i, u) in units.iter().enumerate() {
            heap.array_set(arr, i, *u as u64);
        }
        let sa = heap.push_stack(arr);
        let obj = heap.alloc(cls.string)?;
        heap.write_ref(obj, 0, heap.stack_ref(sa));
        heap.truncate_stack(sa);
        Ok(obj)
    }

    fn load(heap: &Heap, _cls: &StringClasses, obj: ObjRef) -> Self {
        let arr = heap.read_ref(obj, 0);
        let n = heap.array_len(arr);
        let units: Vec<u16> = (0..n).map(|i| heap.array_get(arr, i) as u16).collect();
        String::from_utf16(&units).expect("valid UTF-16")
    }

    fn heap_size(&self) -> usize {
        let n = self.encode_utf16().count();
        // String 16+8+4 -> 32; char[n] 16+2n aligned
        32 + (16 + 2 * n).div_ceil(8) * 8
    }
}

impl KryoRecord for String {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let n = read_varint(buf, pos) as usize;
        let s = String::from_utf8(buf[*pos..*pos + n].to_vec()).expect("valid UTF-8");
        *pos += n;
        s
    }
}

/// Zigzag encoding for signed varints (as Kryo does).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn pair_heap_roundtrip() {
        let mut heap = Heap::new(HeapConfig::small());
        let cls = <(i64, i64)>::register(&mut heap);
        let rec = (42i64, -7i64);
        let obj = rec.store(&mut heap, &cls).unwrap();
        assert_eq!(<(i64, i64)>::load(&heap, &cls, obj), rec);
        // Three objects per record: the header/boxing bloat of Figure 2.
        assert_eq!(heap.object_count(), 3);
        assert_eq!(rec.heap_size(), 80);
    }

    #[test]
    fn pair_if64_heap_roundtrip() {
        let mut heap = Heap::new(HeapConfig::small());
        let cls = <(i64, f64)>::register(&mut heap);
        let rec = (5i64, 2.25f64);
        let obj = rec.store(&mut heap, &cls).unwrap();
        assert_eq!(<(i64, f64)>::load(&heap, &cls, obj), rec);
    }

    #[test]
    fn pair_kryo_roundtrip() {
        let recs = [(0i64, 0i64), (1, -1), (i64::MAX, i64::MIN)];
        for rec in recs {
            let mut buf = Vec::new();
            rec.kryo_encode(&mut buf);
            let mut pos = 0;
            assert_eq!(<(i64, i64)>::kryo_decode(&buf, &mut pos), rec);
            assert_eq!(pos, buf.len());
        }
    }
}
