//! A local "cluster": several executors, each owning its heap and memory
//! manager, running in parallel OS threads.
//!
//! Shuffle data moves between executors as serialized byte buffers (Spark
//! serializes shuffle writes; Deca writes its decomposed bytes verbatim —
//! §6.1's "saves the cost of data (de-)serialization by directly
//! outputting the raw bytes").

use crate::config::ExecutorConfig;
use crate::executor::Executor;

/// Driver-side health record of one executor, updated between task waves
/// (never from executor threads, so health decisions are deterministic).
#[derive(Clone, Debug, Default)]
pub struct ExecutorHealth {
    /// Task failures charged to this executor in the current stage
    /// (Spark's per-stage blacklisting counter; reset at stage start).
    pub stage_failures: u32,
    /// Quarantined executors receive no further tasks (persists across
    /// stages until [`Executor::recover`] + un-quarantine).
    pub quarantined: bool,
    /// Times this executor was restarted in place (the
    /// spare-last-executor path).
    pub restarts: u64,
    /// Cached blocks rehydrated from the spill manifest across this
    /// executor's restarts (each saved its lineage recompute).
    pub rehydrated_blocks: u64,
}

/// A set of executors driven stage-by-stage by the workload code.
pub struct LocalCluster {
    pub executors: Vec<Executor>,
    /// Health state per executor, index-aligned with `executors`.
    pub health: Vec<ExecutorHealth>,
}

impl LocalCluster {
    pub fn new(configs: Vec<ExecutorConfig>) -> LocalCluster {
        let executors: Vec<Executor> = configs.into_iter().map(Executor::new).collect();
        let health = vec![ExecutorHealth::default(); executors.len()];
        LocalCluster { executors, health }
    }

    /// A cluster of `n` identical executors.
    pub fn uniform(n: usize, config: ExecutorConfig) -> LocalCluster {
        let configs = (0..n)
            .map(|i| {
                let mut c = config.clone();
                c.spill_dir = config.spill_dir.join(format!("exec-{i}"));
                c
            })
            .collect();
        LocalCluster::new(configs)
    }

    pub fn len(&self) -> usize {
        self.executors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.executors.is_empty()
    }

    /// Executors currently accepting tasks.
    pub fn healthy_count(&self) -> usize {
        healthy_count_in(&self.health)
    }

    /// The first non-quarantined executor at or cyclically after `start`.
    /// With nothing quarantined this is `start` itself, which preserves
    /// the static round-robin pinning (task `t` → executor `t % E`).
    pub fn healthy_from(&self, start: usize) -> Option<usize> {
        healthy_from_in(&self.health, start)
    }

    /// The first non-quarantined executor cyclically *after* `failed` —
    /// where a retry migrates to. Cycles all the way around, so on a
    /// one-executor cluster the (restarted) same executor is returned.
    pub fn healthy_after(&self, failed: usize) -> Option<usize> {
        healthy_after_in(&self.health, failed)
    }

    /// Run `f` on every executor in parallel (one stage's task wave).
    /// Results are returned in executor order.
    pub fn par_run<R: Send>(&mut self, f: impl Fn(usize, &mut Executor) -> R + Sync) -> Vec<R> {
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .executors
                .iter_mut()
                .enumerate()
                .map(|(i, e)| {
                    let f = &f;
                    s.spawn(move || f(i, e))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("executor task")).collect()
        })
    }

    /// Aggregate job metrics across executors (sums; exec time is the max,
    /// since executors run in parallel).
    pub fn job_summary(&self) -> crate::metrics::JobMetrics {
        let mut out = crate::metrics::JobMetrics::default();
        for e in &self.executors {
            let j = &e.job;
            out.exec = out.exec.max(j.exec);
            out.gc += j.gc;
            out.ser += j.ser;
            out.deser += j.deser;
            out.shuffle_read += j.shuffle_read;
            out.shuffle_write += j.shuffle_write;
            out.io += j.io;
            out.cache_bytes += j.cache_bytes;
            out.swapped_cache_bytes += j.swapped_cache_bytes;
            out.minor_gcs += j.minor_gcs;
            out.full_gcs += j.full_gcs;
        }
        out
    }
}

/// [`LocalCluster::healthy_count`] over any health slice. The job
/// service's virtual per-job health records reuse these scans so its
/// retry decisions match the standalone driver's exactly.
pub fn healthy_count_in(health: &[ExecutorHealth]) -> usize {
    health.iter().filter(|h| !h.quarantined).count()
}

/// [`LocalCluster::healthy_from`] over any health slice.
pub fn healthy_from_in(health: &[ExecutorHealth], start: usize) -> Option<usize> {
    let n = health.len();
    (0..n).map(|off| (start + off) % n).find(|&i| !health[i].quarantined)
}

/// [`LocalCluster::healthy_after`] over any health slice.
pub fn healthy_after_in(health: &[ExecutorHealth], failed: usize) -> Option<usize> {
    let n = health.len();
    (1..=n).map(|off| (failed + off) % n).find(|&i| !health[i].quarantined)
}

/// Transpose map-side shuffle outputs into reduce-side inputs:
/// `outputs[map][reduce]` → `inputs[reduce][map]`. Buffers move, never
/// copy — for page-backed payloads this is the ownership hand-over.
pub fn exchange<T>(outputs: Vec<Vec<T>>) -> Vec<Vec<T>> {
    if outputs.is_empty() {
        return Vec::new();
    }
    let reducers = outputs[0].len();
    debug_assert!(outputs.iter().all(|o| o.len() == reducers));
    // Every reducer receives exactly one buffer per map task.
    let maps = outputs.len();
    let mut inputs: Vec<Vec<T>> = (0..reducers).map(|_| Vec::with_capacity(maps)).collect();
    for map_out in outputs {
        for (r, buf) in map_out.into_iter().enumerate() {
            inputs[r].push(buf);
        }
    }
    inputs
}

/// Assign a key to a reduce partition.
pub fn partition_of(key_hash: u64, reducers: usize) -> usize {
    (key_hash % reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    #[test]
    fn parallel_execution_and_summary() {
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 4 << 20);
        let mut cluster = LocalCluster::uniform(3, cfg);
        let ids = cluster.par_run(|i, e| {
            e.run_task(format!("t{i}"), |_| i * 10);
            i
        });
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(cluster.executors.iter().all(|e| e.tasks.len() == 1));
        let _ = cluster.job_summary();
    }

    #[test]
    fn health_helpers_respect_quarantine() {
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 4 << 20);
        let mut cluster = LocalCluster::uniform(3, cfg);
        assert_eq!(cluster.healthy_count(), 3);
        assert_eq!(cluster.healthy_from(1), Some(1), "no quarantine keeps round-robin pinning");
        assert_eq!(cluster.healthy_after(1), Some(2));
        cluster.health[1].quarantined = true;
        assert_eq!(cluster.healthy_count(), 2);
        assert_eq!(cluster.healthy_from(1), Some(2), "skips the quarantined executor");
        assert_eq!(cluster.healthy_after(2), Some(0), "wraps past quarantine");
        cluster.health[0].quarantined = true;
        cluster.health[2].quarantined = true;
        assert_eq!(cluster.healthy_from(0), None);
        assert_eq!(cluster.healthy_after(0), None);
    }

    #[test]
    fn exchange_transposes() {
        let outputs = vec![vec![vec![1], vec![2]], vec![vec![3], vec![4]], vec![vec![5], vec![6]]];
        let inputs = exchange(outputs);
        assert_eq!(inputs, vec![vec![vec![1], vec![3], vec![5]], vec![vec![2], vec![4], vec![6]],]);
    }

    #[test]
    fn partitioning_is_stable() {
        for h in 0..100u64 {
            assert_eq!(partition_of(h, 4), (h % 4) as usize);
        }
        assert_eq!(partition_of(7, 1), 0);
    }
}
