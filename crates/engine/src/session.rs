//! A high-level session facade over one executor: cache datasets, iterate
//! them, and aggregate — in any execution mode — without hand-wiring the
//! heap, serializer, and memory manager.
//!
//! ```
//! use deca_engine::{DecaSession, ExecutionMode, ExecutorConfig};
//!
//! let mut s = DecaSession::new(ExecutorConfig::new(ExecutionMode::Deca, 16 << 20));
//! let data: Vec<(f64, i64)> = (0..1000).map(|i| (i as f64, i)).collect();
//! let cached = s.cache("pairs", &data, 4).unwrap();
//! let sum = s.fold(&cached, 0.0, |acc, (x, _)| acc + x).unwrap();
//! assert_eq!(sum, (0..1000).map(|i| i as f64).sum());
//! s.unpersist(cached);
//! ```
//!
//! The facade keeps each mode's *cost profile*: Spark-mode folds read every
//! field through the simulated heap, SparkSer-mode folds deserialize every
//! record, Deca-mode folds decode from page bytes. Apps that need the raw
//! kernels (e.g. Figure 12-style offset reads) still use [`Executor`]
//! directly.

use crate::cache::BlockId;
use crate::config::{ExecutionMode, ExecutorConfig};
use crate::error::EngineError;
use crate::executor::Executor;
use crate::record::Record;

/// Handle to a cached dataset within a session.
pub struct Cached<T> {
    pub name: String,
    blocks: Vec<BlockId>,
    len: usize,
    released: bool,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T> Cached<T> {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }
}

/// One-executor session.
pub struct DecaSession {
    exec: Executor,
}

impl DecaSession {
    pub fn new(config: ExecutorConfig) -> DecaSession {
        DecaSession { exec: Executor::new(config) }
    }

    /// The underlying executor (metrics, heap introspection, raw kernels).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    pub fn mode(&self) -> ExecutionMode {
        self.exec.config.mode
    }

    /// Cache `records` in `partitions` blocks using the session mode's
    /// storage level.
    pub fn cache<T: Record + 'static>(
        &mut self,
        name: impl Into<String>,
        records: &[T],
        partitions: usize,
    ) -> Result<Cached<T>, EngineError>
    where
        T::Classes: 'static,
    {
        assert!(partitions > 0);
        let name = name.into();
        let classes = T::register(&mut self.exec.heap);
        let per = records.len().div_ceil(partitions).max(1);
        let mut blocks = Vec::new();
        for (pi, chunk) in records.chunks(per).enumerate() {
            let block =
                self.exec.run_task(format!("{name}-cache-{pi}"), |e| match e.config.mode {
                    ExecutionMode::Spark => {
                        e.cache.put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &classes, chunk)
                    }
                    ExecutionMode::SparkSer => {
                        e.cache.put_serialized(&mut e.heap, &mut e.kryo, &mut e.mm, chunk)
                    }
                    ExecutionMode::Deca => match T::FIXED_SIZE {
                        Some(size) => e.cache.put_deca_sfst(&mut e.heap, &mut e.mm, chunk, size),
                        None => e.cache.put_deca(&mut e.heap, &mut e.mm, chunk),
                    },
                })?;
            blocks.push(block);
        }
        Ok(Cached {
            name,
            blocks,
            len: records.len(),
            released: false,
            _t: std::marker::PhantomData,
        })
    }

    /// Visit every record of a cached dataset, materialised through the
    /// session mode's representation.
    pub fn for_each<T: Record + 'static>(
        &mut self,
        cached: &Cached<T>,
        mut f: impl FnMut(T),
    ) -> Result<(), EngineError>
    where
        T::Classes: 'static,
    {
        assert!(!cached.released, "dataset was unpersisted");
        let classes = T::register(&mut self.exec.heap);
        let name = cached.name.clone();
        for (bi, &block) in cached.blocks.iter().enumerate() {
            self.exec.run_task(format!("{name}-scan-{bi}"), |e| -> Result<(), EngineError> {
                match e.config.mode {
                    ExecutionMode::Spark => {
                        let (root, len) =
                            e.cache.objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)?;
                        for i in 0..len {
                            let arr = e.heap.root_ref(root);
                            let obj = e.heap.array_get_ref(arr, i);
                            f(T::load(&e.heap, &classes, obj));
                        }
                        Ok(())
                    }
                    ExecutionMode::SparkSer => Ok(e.cache.iter_serialized(
                        block,
                        &mut e.heap,
                        &mut e.kryo,
                        &mut e.mm,
                        &mut f,
                    )?),
                    ExecutionMode::Deca => {
                        let heap = &mut e.heap;
                        let mm = &mut e.mm;
                        let b = e.cache.deca_block(block);
                        b.scan_bytes(mm, heap, |bytes| f(T::decode(bytes)), |_| {})
                            .map_err(EngineError::Mem)
                    }
                }
            })?;
        }
        Ok(())
    }

    /// Fold over a cached dataset.
    pub fn fold<T: Record + 'static, A>(
        &mut self,
        cached: &Cached<T>,
        init: A,
        mut f: impl FnMut(A, T) -> A,
    ) -> Result<A, EngineError>
    where
        T::Classes: 'static,
    {
        let mut acc = Some(init);
        self.for_each(cached, |rec| {
            let a = acc.take().expect("acc");
            acc = Some(f(a, rec));
        })?;
        Ok(acc.expect("acc"))
    }

    /// Eagerly-combined aggregation by key over an input stream (the
    /// `reduceByKey` path), in the session mode's shuffle representation.
    pub fn reduce_by_key(
        &mut self,
        pairs: impl IntoIterator<Item = (i64, i64)>,
        combine: impl Fn(i64, i64) -> i64 + Copy,
    ) -> Result<Vec<(i64, i64)>, EngineError> {
        let mode = self.exec.config.mode;
        self.exec.run_task("reduce-by-key", |e| match mode {
            ExecutionMode::Deca => {
                let mut buf = deca_core::DecaHashShuffle::new(&mut e.mm, 8, 8);
                for (k, v) in pairs {
                    buf.insert(
                        &mut e.mm,
                        &mut e.heap,
                        &k.to_le_bytes(),
                        &v.to_le_bytes(),
                        |acc, add| {
                            let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
                            let b = i64::from_le_bytes(add[..8].try_into().unwrap());
                            acc[..8].copy_from_slice(&combine(a, b).to_le_bytes());
                        },
                    )?;
                }
                let mut out = Vec::with_capacity(buf.len());
                buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    out.push((
                        i64::from_le_bytes(k[..8].try_into().unwrap()),
                        i64::from_le_bytes(v[..8].try_into().unwrap()),
                    ));
                })?;
                buf.release(&mut e.mm, &mut e.heap);
                Ok(out)
            }
            _ => {
                let mut buf: crate::shuffle::SparkHashShuffle<i64, i64> =
                    crate::shuffle::SparkHashShuffle::new(&mut e.heap)?;
                for (k, v) in pairs {
                    buf.insert(&mut e.heap, k, v, combine)?;
                }
                let out = buf.drain(&e.heap);
                buf.release(&mut e.heap);
                Ok(out)
            }
        })
    }

    /// Release a cached dataset (`unpersist()`).
    pub fn unpersist<T>(&mut self, mut cached: Cached<T>) {
        for block in cached.blocks.drain(..) {
            self.exec.cache.release(block, &mut self.exec.heap, &mut self.exec.mm);
        }
        cached.released = true;
    }

    /// The session's aggregated job metrics so far.
    pub fn metrics(&self) -> &crate::metrics::JobMetrics {
        &self.exec.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(mode: ExecutionMode) -> DecaSession {
        DecaSession::new(ExecutorConfig::new(mode, 16 << 20))
    }

    #[test]
    fn cache_and_fold_agree_across_modes() {
        let data: Vec<(f64, i64)> = (0..5_000).map(|i| (i as f64 * 0.5, i)).collect();
        let expect: f64 = data.iter().map(|(x, _)| x).sum();
        for mode in ExecutionMode::ALL {
            let mut s = session(mode);
            let cached = s.cache("pairs", &data, 4).unwrap();
            assert_eq!(cached.len(), 5_000);
            let sum = s.fold(&cached, 0.0, |a, (x, _)| a + x).unwrap();
            assert_eq!(sum, expect, "{mode}");
            s.unpersist(cached);
        }
    }

    #[test]
    fn rfst_records_via_session() {
        let data: Vec<(i64, Vec<f64>)> =
            (0..500).map(|i| (i, vec![i as f64; (i % 5) as usize])).collect();
        for mode in ExecutionMode::ALL {
            let mut s = session(mode);
            let cached = s.cache("vectors", &data, 3).unwrap();
            let total: usize = s.fold(&cached, 0, |a, (_, v)| a + v.len()).unwrap();
            assert_eq!(total, data.iter().map(|(_, v)| v.len()).sum::<usize>(), "{mode}");
            s.unpersist(cached);
        }
    }

    #[test]
    fn reduce_by_key_across_modes() {
        let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i % 37, 1)).collect();
        for mode in ExecutionMode::ALL {
            let mut s = session(mode);
            let mut out = s.reduce_by_key(pairs.iter().copied(), |a, b| a + b).unwrap();
            out.sort_unstable();
            assert_eq!(out.len(), 37);
            assert!(out
                .iter()
                .all(|&(_, v)| v == 10_000 / 37 + i64::from(37 * (10_000 / 37) < 10_000)
                    || v == 10_000 / 37));
            let total: i64 = out.iter().map(|&(_, v)| v).sum();
            assert_eq!(total, 10_000, "{mode}");
        }
    }

    #[test]
    fn unpersist_frees_deca_pages() {
        let mut s = session(ExecutionMode::Deca);
        let data: Vec<(f64, i64)> = (0..2_000).map(|i| (i as f64, i)).collect();
        let cached = s.cache("pairs", &data, 2).unwrap();
        assert!(s.executor().heap.external_bytes() > 0);
        s.unpersist(cached);
        assert_eq!(s.executor().heap.external_bytes(), 0);
    }

    #[test]
    fn metrics_accumulate() {
        let mut s = session(ExecutionMode::Spark);
        let data: Vec<(i64, i64)> = (0..3_000).map(|i| (i, i)).collect();
        let cached = s.cache("pairs", &data, 2).unwrap();
        let _ = s.fold(&cached, 0i64, |a, (k, _)| a + k).unwrap();
        assert!(s.metrics().exec > std::time::Duration::ZERO);
        assert!(s.executor().tasks.len() >= 4, "cache tasks + scan tasks");
    }
}
