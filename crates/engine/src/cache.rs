//! The cache manager: cached RDD blocks in a three-tier store with a
//! crash-consistent cold tier.
//!
//! **Tiers.** Every block sits in one of three tiers:
//!
//! * **hot** — directly scannable in memory: `Objects` blocks (Spark) hold
//!   a heap `Object[]` of record graphs; resident `Deca` blocks hold
//!   decomposed pages managed by `deca-core`;
//! * **warm** — in memory but serialized: `Serialized` blocks hold one
//!   heap `byte[]` of Kryo bytes (SparkSer's native format, and where
//!   demoted Spark blocks land first — the Kolokasis et al. middle ground
//!   between collecting object graphs and paying disk I/O);
//! * **cold** — on disk: `Disk` blocks (serialized payload files) and
//!   `Deca` blocks whose page group is swapped out.
//!
//! **Weights.** Demotion victims are picked by *weight*, not pure LRU:
//! `weight = access_count + lifetime hint`, where the hint comes from
//! `deca-core`'s refcount-based [`MemoryManager::lifetime_hint`] (a
//! ROLP-style observed-lifetime signal: a page group shared by more
//! consumers will live longer and deserves a warmer tier). Ties break on
//! `last_used`, so equal-weight blocks still age out LRU-fashion. A block
//! demotes one tier per step (hot → warm → cold) under budget pressure
//! and promotes back on access.
//!
//! **Crash consistency.** Every cold-tier mutation rewrites a *spill
//! manifest* (`spill-manifest.json` in the cache dir): a checksummed JSON
//! record of each on-disk payload — FNV-1a digest per payload plus a
//! whole-document digest — written to a temp file and atomically renamed.
//! After an executor crash, restart-in-place calls [`CacheManager::
//! crash_restart`]: volatile tiers (hot/warm) are dropped, and each cold
//! block is kept only if the manifest vouches for it (id, kind, sizes and
//! payload digest all match). Anything the manifest cannot verify — or
//! the whole cold tier, if the manifest itself fails its checksum — is
//! discarded, and the app's lineage-recompute path rebuilds it. Deca rows
//! persist the group's per-page sizes, the one part of the spill record
//! that otherwise lives only in [`deca_core::MemoryManager`] memory.
//!
//! The spill/restore/manifest path is fault-instrumented: the four
//! [`FaultSite`] kill points (`SpillWrite`, `ManifestCommit`, `SpillRead`,
//! `Rehydrate`) consult the installed [`FaultPlan`] and abort the
//! operation mid-flight, modelling the executor dying at exactly that
//! point; `tests/crash_recovery.rs` proves recovery from every one.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

use deca_check::Json;
use deca_core::{DecaCacheBlock, MemError, MemoryManager};
use deca_heap::{FieldKind, Heap, OomError, RootId};

use crate::faults::{FaultPlan, FaultSite};
use crate::record::Record;
use crate::serde_sim::KryoSim;

/// Identifier of a cached block within an executor's cache manager.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BlockId(u32);

/// The storage tier a block currently occupies.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Tier {
    /// Directly scannable in memory (object graphs or resident pages).
    Hot,
    /// In memory, serialized (one `byte[]`).
    Warm,
    /// On disk (payload file or swapped page group).
    Cold,
}

/// Cache errors.
#[derive(Debug)]
pub enum CacheError {
    Oom(OomError),
    Mem(MemError),
    Io(std::io::Error),
    /// A deterministic kill-point fault fired inside the spill/restore/
    /// manifest path: the operation was abandoned exactly where the
    /// modelled executor process died.
    Injected(FaultSite),
}

impl From<OomError> for CacheError {
    fn from(e: OomError) -> Self {
        CacheError::Oom(e)
    }
}

impl From<MemError> for CacheError {
    fn from(e: MemError) -> Self {
        CacheError::Mem(e)
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Oom(e) => write!(f, "cache: {e}"),
            CacheError::Mem(e) => write!(f, "cache: {e}"),
            CacheError::Io(e) => write!(f, "cache I/O: {e}"),
            CacheError::Injected(site) => write!(f, "cache: injected {site} crash"),
        }
    }
}

impl std::error::Error for CacheError {}

/// FNV-1a over a byte payload — the digest the spill manifest records for
/// each cold payload and for the manifest document itself.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Type-erased operations on an `Objects` block (needed to demote it
/// without knowing `T` at the eviction site).
trait ObjectBlockOps: Send {
    /// Serialize all records of the block (for demotion).
    fn serialize(&self, heap: &mut Heap, kryo: &mut KryoSim, root: RootId, len: usize) -> Vec<u8>;
    /// Re-materialise records from serialized bytes; returns the new root.
    fn deserialize(
        &self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        bytes: &[u8],
    ) -> Result<(RootId, usize), OomError>;
}

struct Ops<T: Record> {
    classes: T::Classes,
}

impl<T: Record + 'static> ObjectBlockOps for Ops<T>
where
    T::Classes: 'static,
{
    fn serialize(&self, heap: &mut Heap, kryo: &mut KryoSim, root: RootId, len: usize) -> Vec<u8> {
        let arr = heap.root_ref(root);
        kryo.time_ser(|k| {
            let mut out = Vec::new();
            for i in 0..len {
                let obj = heap.array_get_ref(arr, i);
                let rec = T::load(heap, &self.classes, obj);
                k.serialize(&rec, &mut out);
            }
            out
        })
    }

    fn deserialize(
        &self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        bytes: &[u8],
    ) -> Result<(RootId, usize), OomError> {
        let recs: Vec<T> = kryo.deserialize_all(bytes);
        store_object_array(heap, &self.classes, &recs).map(|root| (root, recs.len()))
    }
}

/// Allocate a heap `Object[]` holding each record's stored graph; returns
/// a root id keeping the whole block alive.
pub(crate) fn store_object_array<T: Record>(
    heap: &mut Heap,
    classes: &T::Classes,
    recs: &[T],
) -> Result<RootId, OomError> {
    let arr_class = object_array_class(heap);
    let arr = heap.alloc_array(arr_class, recs.len())?;
    let root = heap.add_root(arr);
    for (i, rec) in recs.iter().enumerate() {
        let obj = rec.store(heap, classes)?;
        let arr = heap.root_ref(root);
        heap.array_set_ref(arr, i, obj);
    }
    Ok(root)
}

/// The shared `Object[]` class (registered once per heap).
pub(crate) fn object_array_class(heap: &mut Heap) -> deca_heap::ClassId {
    match heap.registry().by_name("Object[]") {
        Some(c) => c,
        None => heap.define_array_class("Object[]", FieldKind::Ref),
    }
}

/// The shared `byte[]` class.
pub(crate) fn byte_array_class(heap: &mut Heap) -> deca_heap::ClassId {
    match heap.registry().by_name("byte[]") {
        Some(c) => c,
        None => heap.define_array_class("byte[]", FieldKind::I8),
    }
}

enum BlockState {
    /// Hot tier: a heap `Object[]` of record graphs.
    Objects { root: RootId, len: usize, ops: Box<dyn ObjectBlockOps> },
    /// Warm tier: one heap `byte[]` of Kryo bytes. `ops` is `Some` for a
    /// demoted Objects block (so it can promote back to hot), `None` for
    /// a native SparkSer block. `mem_bytes` is the hot-tier footprint a
    /// promotion restores.
    Serialized { root: RootId, len: usize, ops: Option<Box<dyn ObjectBlockOps>>, mem_bytes: usize },
    /// Hot or cold tier depending on whether the page group is resident
    /// (residency is tracked by `deca-core`, not here).
    Deca { block: DecaCacheBlock },
    /// Cold tier: a serialized payload file. `was_objects` says how to
    /// re-materialise, `mem_bytes` what residency will cost again, and
    /// `checksum` the FNV-1a digest the manifest records for the payload.
    Disk {
        len: usize,
        was_objects: Option<Box<dyn ObjectBlockOps>>,
        mem_bytes: usize,
        checksum: u64,
    },
}

struct Entry {
    state: BlockState,
    /// Accounted in-memory bytes while resident; disk bytes when cold.
    bytes: usize,
    last_used: u64,
    /// Accesses since creation — the access-frequency half of the block's
    /// demotion weight.
    access_count: u64,
    pinned: bool,
    /// Owning tenant (0 = untenanted single-job use). The server stamps
    /// the submitting tenant so budget isolation can shield one tenant's
    /// resident blocks from another tenant's pressure.
    tenant: u32,
    /// Owning job submission (0 = standalone session). Lets the server
    /// release a finished job's blocks without tracking ids app-side.
    job: u64,
}

/// What one `crash_restart` did, for the driver's trace/metrics wiring.
#[derive(Clone, Debug, Default)]
pub struct RehydrateOutcome {
    /// The manifest parsed and passed its whole-document checksum. When
    /// false the entire cold tier was discarded (graceful degradation to
    /// lineage recompute).
    pub manifest_ok: bool,
    /// Blocks kept from the cold tier: `(block id, payload bytes,
    /// cached records)` per manifest-verified block.
    pub rehydrated: Vec<(u32, u64, u64)>,
    /// Entries lost: volatile tiers wiped by the crash plus cold blocks
    /// the manifest could not vouch for.
    pub dropped: usize,
    /// A `Rehydrate` kill point fired partway: recovery was abandoned
    /// mid-scan and the executor died again. A later restart finishes the
    /// job (rehydration is idempotent).
    pub killed: bool,
}

/// One verified row of the parsed spill manifest.
#[derive(Debug)]
struct ManifestRow {
    id: u32,
    kind: String,
    len: u64,
    file_bytes: u64,
    checksum: u64,
    group: Option<u64>,
    page_sizes: Vec<usize>,
}

const MANIFEST_SCHEMA: &str = "deca-spill-manifest-v1";

/// Per-executor cache manager.
pub struct CacheManager {
    entries: Vec<Option<Entry>>,
    clock: u64,
    budget: usize,
    dir: Option<PathBuf>,
    /// Bytes written/read to cache spill files (adds simulated disk time).
    pub spill_write_bytes: u64,
    pub spill_read_bytes: u64,
    /// Cold-tier eviction events (a block moved to disk / swapped out).
    pub evictions: u64,
    /// Hot → warm demotion events (serialize-in-place, no disk I/O).
    pub demotions: u64,
    /// Installed fault plan + the running task's (stage, task, attempt),
    /// consulted at the spill-path kill points.
    probe: Option<FaultPlan>,
    probe_ctx: Option<(String, usize, u32)>,
    /// Tenant the currently running task belongs to: new blocks are
    /// stamped with it, and victim searches treat it as the tenant
    /// applying pressure.
    tenant_ctx: Option<u32>,
    /// Job the currently running task belongs to: new blocks are stamped
    /// with it so the server can release them when the job completes.
    job_ctx: Option<u64>,
    /// Per-tenant resident-byte budgets. A tenant at or under its budget
    /// is shielded from other tenants' evictions.
    tenant_budgets: Vec<(u32, usize)>,
    /// Cold-tier evictions per victim tenant.
    tenant_evictions: Vec<(u32, u64)>,
}

impl CacheManager {
    pub fn new(budget: usize) -> CacheManager {
        CacheManager {
            entries: Vec::new(),
            clock: 0,
            budget,
            dir: None,
            spill_write_bytes: 0,
            spill_read_bytes: 0,
            evictions: 0,
            demotions: 0,
            probe: None,
            probe_ctx: None,
            tenant_ctx: None,
            job_ctx: None,
            tenant_budgets: Vec::new(),
            tenant_evictions: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // tenancy
    // ------------------------------------------------------------------

    /// Give `tenant` a resident-byte budget. While at or under it, the
    /// tenant's blocks cannot be victimized by *other* tenants' pressure
    /// (its own pressure may still demote them).
    pub fn set_tenant_budget(&mut self, tenant: u32, budget: usize) {
        match self.tenant_budgets.iter_mut().find(|(t, _)| *t == tenant) {
            Some(slot) => slot.1 = budget,
            None => self.tenant_budgets.push((tenant, budget)),
        }
    }

    /// Set the tenant new blocks are stamped with (and on whose behalf
    /// victim searches run). `None` reverts to untenanted behaviour.
    pub fn set_tenant_ctx(&mut self, tenant: Option<u32>) {
        self.tenant_ctx = tenant;
    }

    /// Set the job submission new blocks are stamped with (`None` reverts
    /// to standalone-session behaviour).
    pub fn set_job_ctx(&mut self, job: Option<u64>) {
        self.job_ctx = job;
    }

    /// Live block ids stamped with `job` (the server's end-of-job cleanup
    /// releases these so a long-lived shared executor never accumulates
    /// finished jobs' cache state).
    pub fn blocks_of_job(&self, job: u64) -> Vec<BlockId> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().filter(|e| e.job == job).map(|_| BlockId(i as u32)))
            .collect()
    }

    /// Total cached bytes stamped with `job`, across every tier (the
    /// resident + swapped footprint apps report as their job's cache
    /// usage).
    pub fn job_bytes(&self, job: u64) -> usize {
        self.entries.iter().flatten().filter(|e| e.job == job).map(|e| e.bytes).sum()
    }

    fn tenant_budget(&self, tenant: u32) -> Option<usize> {
        self.tenant_budgets.iter().find(|(t, _)| *t == tenant).map(|(_, b)| *b)
    }

    /// Resident in-memory bytes owned by `tenant` (Deca residency via
    /// `mm`, as in [`CacheManager::resident_bytes_mm`]).
    pub fn tenant_resident_bytes(&self, tenant: u32, mm: &MemoryManager) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.tenant == tenant)
            .filter(|e| match &e.state {
                BlockState::Disk { .. } => false,
                BlockState::Deca { block } => !mm.is_swapped(block.group()),
                _ => true,
            })
            .map(|e| e.bytes)
            .sum()
    }

    /// Cold-tier evictions whose victim belonged to `tenant`.
    pub fn tenant_evictions(&self, tenant: u32) -> u64 {
        self.tenant_evictions.iter().find(|(t, _)| *t == tenant).map(|(_, n)| *n).unwrap_or(0)
    }

    fn bump_tenant_eviction(&mut self, tenant: u32) {
        match self.tenant_evictions.iter_mut().find(|(t, _)| *t == tenant) {
            Some(slot) => slot.1 += 1,
            None => self.tenant_evictions.push((tenant, 1)),
        }
    }

    /// Tenants whose blocks this victim search must not touch: every
    /// budgeted tenant other than the one applying pressure that is at or
    /// under its budget. Tenant 0 (untenanted) is never shielded.
    fn shielded_tenants(&self, mm: &MemoryManager) -> Vec<u32> {
        let active = self.tenant_ctx.unwrap_or(0);
        self.tenant_budgets
            .iter()
            .filter(|(t, budget)| {
                *t != 0 && *t != active && self.tenant_resident_bytes(*t, mm) <= *budget
            })
            .map(|(t, _)| *t)
            .collect()
    }

    pub fn set_dir(&mut self, dir: PathBuf) {
        self.dir = Some(dir);
    }

    fn dir(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("deca-cache-{}", std::process::id()))
        })
    }

    // ------------------------------------------------------------------
    // fault probe
    // ------------------------------------------------------------------

    pub(crate) fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.probe = if plan.is_quiet() { None } else { Some(plan) };
    }

    pub(crate) fn set_fault_ctx(&mut self, stage: &str, task: usize, attempt: u32) {
        if self.probe.is_some() {
            self.probe_ctx = Some((stage.to_string(), task, attempt));
        }
    }

    pub(crate) fn clear_fault_ctx(&mut self) {
        self.probe_ctx = None;
    }

    /// Does `site` fire for the task currently running on this executor?
    /// Always false outside a task (no context) or without a plan.
    fn killed(&self, site: FaultSite) -> bool {
        match (&self.probe, &self.probe_ctx) {
            (Some(p), Some((stage, task, attempt))) => p.fires(site, stage, *task, *attempt),
            _ => false,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn push(&mut self, e: Entry) -> BlockId {
        self.entries.push(Some(e));
        BlockId((self.entries.len() - 1) as u32)
    }

    /// Is `id` still a live block? False once released — and, after a
    /// crash restart, for blocks the crash wiped: app code holding block
    /// ids across stages checks this and falls back to lineage recompute.
    pub fn contains(&self, id: BlockId) -> bool {
        self.entries.get(id.0 as usize).is_some_and(|e| e.is_some())
    }

    /// The tier a block currently occupies (Deca residency via `mm`).
    pub fn tier(&self, id: BlockId, mm: &MemoryManager) -> Tier {
        let e = self.entries[id.0 as usize].as_ref().expect("block");
        Self::tier_of(e, mm)
    }

    fn tier_of(e: &Entry, mm: &MemoryManager) -> Tier {
        match &e.state {
            BlockState::Objects { .. } => Tier::Hot,
            BlockState::Serialized { .. } => Tier::Warm,
            BlockState::Disk { .. } => Tier::Cold,
            BlockState::Deca { block } => {
                if mm.is_swapped(block.group()) {
                    Tier::Cold
                } else {
                    Tier::Hot
                }
            }
        }
    }

    /// Demotion weight: access frequency plus the core layer's lifetime
    /// hint (Deca page groups only — the hint is refcount-derived).
    /// Lower weight demotes first.
    fn weight_of(e: &Entry, mm: &MemoryManager) -> u64 {
        let hint = match &e.state {
            BlockState::Deca { block } => mm.lifetime_hint(block.group()) as u64,
            _ => 0,
        };
        e.access_count + hint
    }

    /// Resident (in-memory) cached bytes.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| !matches!(e.state, BlockState::Disk { .. }))
            .map(|e| e.bytes)
            .sum()
    }

    /// Resident bytes with Deca residency resolved through `mm`: a swapped
    /// page group's entry stays `Deca` but its pages are on disk, so the
    /// budget loops must not count it against the in-memory cap.
    fn resident_bytes_mm(&self, mm: &MemoryManager) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| match &e.state {
                BlockState::Disk { .. } => false,
                BlockState::Deca { block } => !mm.is_swapped(block.group()),
                _ => true,
            })
            .map(|e| e.bytes)
            .sum()
    }

    /// Resident bytes held in the warm (serialized in-memory) tier.
    pub fn warm_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| matches!(e.state, BlockState::Serialized { .. }))
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes of cached data currently on disk.
    pub fn disk_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| matches!(e.state, BlockState::Disk { .. }))
            .map(|e| e.bytes)
            .sum()
    }

    fn file(&self, id: u32) -> PathBuf {
        self.dir().join(format!("cache-block-{id}.bin"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir().join("spill-manifest.json")
    }

    // ------------------------------------------------------------------
    // put
    // ------------------------------------------------------------------

    /// Cache records as a heap object block (Spark mode).
    pub fn put_objects<T: Record + 'static>(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        classes: &T::Classes,
        recs: &[T],
    ) -> Result<BlockId, CacheError>
    where
        T::Classes: 'static,
    {
        let bytes: usize = recs.iter().map(|r| r.heap_size()).sum::<usize>() + 16 + recs.len() * 8;
        self.make_room(heap, kryo, mm, bytes)?;
        let root = match store_object_array(heap, classes, recs) {
            Ok(r) => r,
            Err(oom) => {
                // Heap pressure beyond the budget model: evict everything
                // evictable, collect, and retry once.
                while self.evict_lru(heap, kryo, mm)? {}
                heap.full_gc();
                store_object_array(heap, classes, recs).map_err(|_| CacheError::Oom(oom))?
            }
        };
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Objects {
                root,
                len: recs.len(),
                ops: Box::new(Ops::<T> { classes: *classes }),
            },
            bytes,
            last_used: t,
            access_count: 1,
            pinned: false,
            tenant: self.tenant_ctx.unwrap_or(0),
            job: self.job_ctx.unwrap_or(0),
        }))
    }

    /// Cache records as a serialized heap byte block (SparkSer mode).
    pub fn put_serialized<T: Record>(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        let buf = kryo.serialize_all(recs);
        self.make_room(heap, kryo, mm, buf.len())?;
        let cls = byte_array_class(heap);
        let arr = heap.alloc_array(cls, buf.len())?;
        heap.byte_array_write(arr, 0, &buf);
        let root = heap.add_root(arr);
        let bytes = buf.len() + 16;
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Serialized { root, len: recs.len(), ops: None, mem_bytes: bytes },
            bytes,
            last_used: t,
            access_count: 1,
            pinned: false,
            tenant: self.tenant_ctx.unwrap_or(0),
            job: self.job_ctx.unwrap_or(0),
        }))
    }

    /// Cache records as decomposed pages (Deca mode).
    pub fn put_deca<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        let block = DecaCacheBlock::new::<T>(mm);
        self.put_deca_block(heap, mm, block, recs)
    }

    /// Cache records as decomposed pages with a runtime-resolved uniform
    /// SFST size (unframed segments — e.g. LR's `D`-dimensional points).
    pub fn put_deca_sfst<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        recs: &[T],
        size: usize,
    ) -> Result<BlockId, CacheError> {
        let block = DecaCacheBlock::new_sfst(mm, size);
        self.put_deca_block(heap, mm, block, recs)
    }

    fn put_deca_block<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        mut block: DecaCacheBlock,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        for r in recs {
            block.append(mm, heap, r)?;
        }
        let bytes = block.footprint(mm, heap)?;
        // Deca puts respect the storage budget too: over it, the
        // lowest-weight resident page group (access count + lifetime hint)
        // swaps to the cold tier before the new block is admitted.
        self.make_room_deca(heap, mm, bytes)?;
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Deca { block },
            bytes,
            last_used: t,
            access_count: 1,
            pinned: false,
            tenant: self.tenant_ctx.unwrap_or(0),
            job: self.job_ctx.unwrap_or(0),
        }))
    }

    // ------------------------------------------------------------------
    // access
    // ------------------------------------------------------------------

    /// Number of records in a block.
    pub fn block_len(&self, id: BlockId) -> usize {
        match &self.entries[id.0 as usize].as_ref().expect("block").state {
            BlockState::Objects { len, .. }
            | BlockState::Serialized { len, .. }
            | BlockState::Disk { len, .. } => *len,
            BlockState::Deca { block } => block.len(),
        }
    }

    fn touch(&mut self, id: BlockId) {
        let t = self.tick();
        let e = self.entries[id.0 as usize].as_mut().expect("block");
        e.last_used = t;
        e.access_count += 1;
    }

    /// Direct access to an Objects block's root array (Spark kernels walk
    /// the heap themselves). Promotes the block back to the hot tier if it
    /// was demoted (warm) or evicted (cold).
    pub fn objects_root(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<(RootId, usize), CacheError> {
        self.ensure_resident(id, heap, kryo, mm)?;
        self.touch(id);
        if matches!(
            self.entries[id.0 as usize].as_ref().expect("block").state,
            BlockState::Serialized { ops: Some(_), .. }
        ) {
            self.promote_warm(id, heap, kryo, mm)?;
        }
        match &self.entries[id.0 as usize].as_ref().expect("block").state {
            BlockState::Objects { root, len, .. } => Ok((*root, *len)),
            _ => panic!("objects_root on a non-Objects block"),
        }
    }

    /// Iterate a Serialized block by deserializing every record (the
    /// SparkSer access path: real deser cost + temporary objects created by
    /// the caller).
    pub fn iter_serialized<T: Record>(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        mut f: impl FnMut(T),
    ) -> Result<(), CacheError> {
        self.ensure_resident(id, heap, kryo, mm)?;
        self.touch(id);
        let e = self.entries[id.0 as usize].as_ref().expect("block");
        let (root, len) = match &e.state {
            BlockState::Serialized { root, len, .. } => (*root, *len),
            _ => panic!("iter_serialized on a non-Serialized block"),
        };
        let arr = heap.root_ref(root);
        let n = heap.array_len(arr);
        let mut buf = vec![0u8; n];
        heap.byte_array_read(arr, 0, &mut buf);
        let recs: Vec<T> = kryo.time_deser(|k| {
            let mut pos = 0;
            (0..len).map(|_| k.deserialize(&buf, &mut pos)).collect()
        });
        for rec in recs {
            f(rec);
        }
        Ok(())
    }

    /// The Deca block backing `id` (panics if the block is not Deca).
    pub fn deca_block(&mut self, id: BlockId) -> &mut DecaCacheBlock {
        self.touch(id);
        let e = self.entries[id.0 as usize].as_mut().expect("block");
        match &mut e.state {
            BlockState::Deca { block } => block,
            _ => panic!("deca_block on a non-Deca block"),
        }
    }

    // ------------------------------------------------------------------
    // lifetime / eviction
    // ------------------------------------------------------------------

    /// Release a block (`unpersist()`): Objects/Serialized drop their
    /// roots (space reclaimed by the *next collection*, as in Spark); Deca
    /// blocks release their page group immediately. Cold-tier releases
    /// update the spill manifest.
    pub fn release(&mut self, id: BlockId, heap: &mut Heap, mm: &mut MemoryManager) {
        let mut cold = false;
        if let Some(mut e) = self.entries[id.0 as usize].take() {
            match &mut e.state {
                BlockState::Objects { root, .. } | BlockState::Serialized { root, .. } => {
                    heap.remove_root(*root);
                }
                BlockState::Deca { block } => {
                    cold = mm.is_swapped(block.group());
                    block.release(mm, heap);
                }
                BlockState::Disk { .. } => {
                    let _ = std::fs::remove_file(self.file(id.0));
                    cold = true;
                }
            }
        }
        if cold {
            // Best-effort: a release is infallible, and a stale manifest
            // row is harmless (restart verification drops it).
            let _ = self.commit_manifest(mm);
        }
    }

    fn make_room(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        incoming: usize,
    ) -> Result<(), CacheError> {
        // A budgeted tenant first makes room within its own allotment, so
        // its pressure lands on its own blocks before anyone else's.
        if let Some(t) = self.tenant_ctx {
            if let Some(budget) = self.tenant_budget(t) {
                while self.tenant_resident_bytes(t, mm) + incoming > budget {
                    if !self.demote_coldest(heap, kryo, mm, Some(t))? {
                        break;
                    }
                }
            }
        }
        while self.resident_bytes_mm(mm) + incoming > self.budget {
            if !self.demote_coldest(heap, kryo, mm, None)? {
                break; // nothing demotable: allow overshoot (heap will GC/OOM)
            }
        }
        Ok(())
    }

    /// Budget admission for Deca puts. No serializer is in hand on this
    /// path, so only Deca victims can move — and they go straight cold via
    /// a page-group swap (Deca has no warm form: its pages *are* the
    /// serialized representation).
    fn make_room_deca(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        incoming: usize,
    ) -> Result<(), CacheError> {
        // Per-tenant admission first: the active tenant swaps its own
        // groups out until it fits its allotment.
        if let Some(t) = self.tenant_ctx {
            if let Some(budget) = self.tenant_budget(t) {
                while self.tenant_resident_bytes(t, mm) + incoming > budget {
                    let Some(i) = self.deca_victim(mm, Some(t), &[]) else { break };
                    self.evict_deca(BlockId(i as u32), heap, mm)?;
                }
            }
        }
        while self.resident_bytes_mm(mm) + incoming > self.budget {
            let shielded = self.shielded_tenants(mm);
            let Some(i) = self.deca_victim(mm, None, &shielded) else { break };
            self.evict_deca(BlockId(i as u32), heap, mm)?;
        }
        Ok(())
    }

    /// Lowest-weight resident, swappable Deca victim — optionally
    /// restricted to one tenant, otherwise skipping shielded tenants.
    fn deca_victim(
        &self,
        mm: &MemoryManager,
        restrict: Option<u32>,
        shielded: &[u32],
    ) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| {
                !e.pinned
                    && matches!(&e.state, BlockState::Deca { block }
                        if !mm.is_swapped(block.group()) && mm.is_swappable(block.group()))
            })
            .filter(|(_, e)| match restrict {
                Some(t) => e.tenant == t,
                None => !shielded.contains(&e.tenant),
            })
            .min_by_key(|(i, e)| (Self::weight_of(e, mm), e.last_used, *i))
            .map(|(i, _)| i)
    }

    /// Swap one resident Deca page group to the cold tier and commit the
    /// manifest. Same kill windows as [`CacheManager::evict`].
    fn evict_deca(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        if self.killed(FaultSite::SpillWrite) {
            return Err(CacheError::Injected(FaultSite::SpillWrite));
        }
        let e = self.entries[id.0 as usize].as_ref().expect("block");
        let BlockState::Deca { block } = &e.state else { return Ok(()) };
        let group = block.group();
        let tenant = e.tenant;
        if !mm.is_swapped(group) && mm.is_swappable(group) {
            let freed = mm.swap_out(group, heap)?;
            self.spill_write_bytes += freed as u64;
            self.evictions += 1;
            self.bump_tenant_eviction(tenant);
            self.commit_manifest(mm)?;
        }
        Ok(())
    }

    /// Demote the lowest-weight non-cold block one tier: a hot Objects
    /// block serializes into the warm tier; warm blocks and hot Deca
    /// blocks go cold. Returns false when nothing is demotable.
    fn demote_coldest(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        only_tenant: Option<u32>,
    ) -> Result<bool, CacheError> {
        let shielded = if only_tenant.is_some() { Vec::new() } else { self.shielded_tenants(mm) };
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.pinned && Self::tier_of(e, mm) != Tier::Cold)
            .filter(|(_, e)| match only_tenant {
                Some(t) => e.tenant == t,
                None => !shielded.contains(&e.tenant),
            })
            .min_by_key(|(i, e)| (Self::weight_of(e, mm), e.last_used, *i))
            .map(|(i, _)| i);
        let Some(i) = victim else { return Ok(false) };
        let id = BlockId(i as u32);
        match self.entries[i].as_ref().expect("block").state {
            BlockState::Objects { .. } => self.demote_to_warm(id, heap, kryo)?,
            _ => self.evict(id, heap, kryo, mm)?,
        }
        Ok(true)
    }

    /// Hot → warm: serialize an Objects block into one heap `byte[]`,
    /// keeping its ops so a later access can promote it back. If the heap
    /// cannot even hold the serialized form, the block skips the warm
    /// tier and spills straight to disk.
    fn demote_to_warm(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
    ) -> Result<(), CacheError> {
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let BlockState::Objects { root, len, ops } = e.state else {
            self.entries[id.0 as usize] = Some(e);
            return Ok(());
        };
        let buf = ops.serialize(heap, kryo, root, len);
        heap.remove_root(root);
        let mem_bytes = e.bytes;
        let cls = byte_array_class(heap);
        match heap.alloc_array(cls, buf.len()) {
            Ok(arr) => {
                heap.byte_array_write(arr, 0, &buf);
                let new_root = heap.add_root(arr);
                e.bytes = buf.len() + 16;
                e.state = BlockState::Serialized { root: new_root, len, ops: Some(ops), mem_bytes };
                self.demotions += 1;
                self.entries[id.0 as usize] = Some(e);
            }
            Err(_) => {
                // No heap room for the warm form: write the bytes we
                // already have straight to the cold tier.
                let path = self.file(id.0);
                std::fs::create_dir_all(self.dir())?;
                std::fs::File::create(&path)?.write_all(&buf)?;
                self.spill_write_bytes += buf.len() as u64;
                let checksum = fnv1a(&buf);
                e.bytes = buf.len();
                e.state = BlockState::Disk { len, was_objects: Some(ops), mem_bytes, checksum };
                self.evictions += 1;
                self.bump_tenant_eviction(e.tenant);
                self.entries[id.0 as usize] = Some(e);
                // The cold tier changed: record it durably. (No mm access
                // needed for digesting, but the manifest also re-lists
                // swapped Deca rows; callers of the demote path always
                // hold mm, so this rare edge re-commits on next cold step
                // instead.)
                self.commit_manifest_blocks_only()?;
            }
        }
        Ok(())
    }

    /// Warm → hot: deserialize a demoted Objects block back into record
    /// graphs. The serialized copy stays alive until the new graph is
    /// built (Spark's unroll does the same), so an OOM mid-promotion
    /// leaves the block intact in the warm tier.
    fn promote_warm(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let BlockState::Serialized { root, len, ops: Some(ops), mem_bytes } = e.state else {
            self.entries[id.0 as usize] = Some(e);
            return Ok(());
        };
        let arr = heap.root_ref(root);
        let n = heap.array_len(arr);
        let mut buf = vec![0u8; n];
        heap.byte_array_read(arr, 0, &mut buf);
        match ops.deserialize(heap, kryo, &buf) {
            Ok((new_root, n)) => {
                debug_assert_eq!(n, len);
                heap.remove_root(root);
                e.bytes = mem_bytes;
                e.state = BlockState::Objects { root: new_root, len, ops };
                self.entries[id.0 as usize] = Some(e);
                Ok(())
            }
            Err(oom) => {
                // Heap pressure: put the block back warm, evict harder,
                // collect, and retry once.
                e.state = BlockState::Serialized { root, len, ops: Some(ops), mem_bytes };
                self.entries[id.0 as usize] = Some(e);
                while self.evict_lru_excluding(id, heap, kryo, mm)? {}
                heap.full_gc();
                let mut e = self.entries[id.0 as usize].take().expect("block");
                let BlockState::Serialized { root, len, ops: Some(ops), mem_bytes } = e.state
                else {
                    unreachable!()
                };
                match ops.deserialize(heap, kryo, &buf) {
                    Ok((new_root, n)) => {
                        debug_assert_eq!(n, len);
                        heap.remove_root(root);
                        e.bytes = mem_bytes;
                        e.state = BlockState::Objects { root: new_root, len, ops };
                        self.entries[id.0 as usize] = Some(e);
                        Ok(())
                    }
                    Err(_) => {
                        e.state = BlockState::Serialized { root, len, ops: Some(ops), mem_bytes };
                        self.entries[id.0 as usize] = Some(e);
                        Err(CacheError::Oom(oom))
                    }
                }
            }
        }
    }

    /// Evict every evictable resident block to disk — the graceful OOM
    /// degradation path: under memory pressure the driver spills the whole
    /// cache and retries the failed task. Returns the resident bytes
    /// freed (Deca page groups swap through `mm` and keep their entry
    /// accounting, so the figure under-reports their share).
    pub fn evict_all(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<u64, CacheError> {
        let before = self.resident_bytes();
        let shielded = self.shielded_tenants(mm);
        let victims: Vec<u32> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.pinned && Self::tier_of(e, mm) != Tier::Cold)
            .filter(|(_, e)| !shielded.contains(&e.tenant))
            .map(|(i, _)| i as u32)
            .collect();
        for i in victims {
            self.evict(BlockId(i), heap, kryo, mm)?;
        }
        Ok(before.saturating_sub(self.resident_bytes()) as u64)
    }

    /// Evict the lowest-weight resident block straight to disk (skipping
    /// the warm tier — callers need real heap bytes back). Returns false
    /// if no candidate exists.
    fn evict_lru(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<bool, CacheError> {
        let shielded = self.shielded_tenants(mm);
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.pinned && Self::tier_of(e, mm) != Tier::Cold)
            .filter(|(_, e)| !shielded.contains(&e.tenant))
            .min_by_key(|(i, e)| (Self::weight_of(e, mm), e.last_used, *i))
            .map(|(i, _)| i);
        let Some(i) = victim else { return Ok(false) };
        self.evict(BlockId(i as u32), heap, kryo, mm)?;
        Ok(true)
    }

    /// Move one block to the cold tier (serialize + payload file for
    /// Spark/SparkSer blocks, a verbatim page-group swap for Deca), then
    /// commit the spill manifest. Fault-instrumented: `SpillWrite` kills
    /// before anything durable is written; the manifest commit's own
    /// `ManifestCommit` kill lands after the payload but before the
    /// rename — the two windows the recovery suite must survive.
    fn evict(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        {
            let e = self.entries[id.0 as usize].as_ref().expect("block");
            if !matches!(e.state, BlockState::Disk { .. }) && self.killed(FaultSite::SpillWrite) {
                return Err(CacheError::Injected(FaultSite::SpillWrite));
            }
        }
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let path = self.file(id.0);
        std::fs::create_dir_all(self.dir())?;
        let mut went_cold = false;
        match e.state {
            BlockState::Objects { root, len, ops } => {
                // Spark serializes object blocks before writing them out.
                let bytes = ops.serialize(heap, kryo, root, len);
                heap.remove_root(root);
                std::fs::File::create(&path)?.write_all(&bytes)?;
                self.spill_write_bytes += bytes.len() as u64;
                let checksum = fnv1a(&bytes);
                let mem_bytes = e.bytes;
                e.bytes = bytes.len();
                e.state = BlockState::Disk { len, was_objects: Some(ops), mem_bytes, checksum };
                went_cold = true;
            }
            BlockState::Serialized { root, len, ops, mem_bytes } => {
                let arr = heap.root_ref(root);
                let n = heap.array_len(arr);
                let mut buf = vec![0u8; n];
                heap.byte_array_read(arr, 0, &mut buf);
                heap.remove_root(root);
                std::fs::File::create(&path)?.write_all(&buf)?;
                self.spill_write_bytes += buf.len() as u64;
                let checksum = fnv1a(&buf);
                // A demoted Objects block restores its hot footprint; a
                // native SparkSer block its byte[] footprint.
                let mem_bytes = if ops.is_some() { mem_bytes } else { e.bytes };
                e.bytes = buf.len();
                e.state = BlockState::Disk { len, was_objects: ops, mem_bytes, checksum };
                went_cold = true;
            }
            BlockState::Deca { ref block } => {
                // Deca swaps page groups verbatim through its own manager.
                // The group may already be out (swapped by an earlier
                // pressure event, or pinned unswappable): only resident
                // swappable groups go to disk.
                let group = block.group();
                if !mm.is_swapped(group) && mm.is_swappable(group) {
                    let freed = mm.swap_out(group, heap)?;
                    self.spill_write_bytes += freed as u64;
                    went_cold = true;
                }
                // state stays Deca; residency tracked by mm.
            }
            BlockState::Disk { .. } => {}
        }
        self.evictions += 1;
        self.bump_tenant_eviction(e.tenant);
        self.entries[id.0 as usize] = Some(e);
        if went_cold {
            self.commit_manifest(mm)?;
        }
        Ok(())
    }

    fn ensure_resident(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        // Deca blocks re-register through `mm` lazily on access, so this
        // path only handles evicted Spark/SparkSer blocks.
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        let mem_bytes = match self.entries[id.0 as usize].as_ref().expect("block").state {
            BlockState::Disk { mem_bytes, .. } => mem_bytes,
            _ => return Ok(()),
        };
        if self.killed(FaultSite::SpillRead) {
            return Err(CacheError::Injected(FaultSite::SpillRead));
        }
        // Re-materialising costs memory: evict low-weight blocks first,
        // both to respect the storage budget and to leave heap headroom
        // (Spark's unified memory manager does the same before unrolling).
        while self.resident_bytes_mm(mm) + mem_bytes > self.budget {
            if !self.evict_lru_excluding(id, heap, kryo, mm)? {
                break;
            }
        }
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let path = self.file(id.0);
        let mut buf = Vec::new();
        std::fs::File::open(&path)?.read_to_end(&mut buf)?;
        self.spill_read_bytes += buf.len() as u64;
        let BlockState::Disk { len, was_objects, mem_bytes, checksum } = e.state else {
            unreachable!()
        };
        match was_objects {
            Some(ops) => {
                let (root, n) = match ops.deserialize(heap, kryo, &buf) {
                    Ok(v) => v,
                    Err(_) => {
                        // Heap-level pressure: evict harder and retry once.
                        self.entries[id.0 as usize] = Some(Entry {
                            state: BlockState::Disk {
                                len,
                                was_objects: Some(ops),
                                mem_bytes,
                                checksum,
                            },
                            ..e
                        });
                        while self.evict_lru_excluding(id, heap, kryo, mm)? {}
                        heap.full_gc();
                        let mut e = self.entries[id.0 as usize].take().expect("block");
                        let BlockState::Disk { len, was_objects, .. } = e.state else {
                            unreachable!()
                        };
                        let ops = was_objects.expect("objects block");
                        let (root, n) = ops.deserialize(heap, kryo, &buf)?;
                        debug_assert_eq!(n, len);
                        e.bytes = mem_bytes;
                        e.state = BlockState::Objects { root, len, ops };
                        let _ = std::fs::remove_file(&path);
                        self.entries[id.0 as usize] = Some(e);
                        self.commit_manifest(mm)?;
                        return Ok(());
                    }
                };
                debug_assert_eq!(n, len);
                e.bytes = mem_bytes;
                e.state = BlockState::Objects { root, len, ops };
            }
            None => {
                let cls = byte_array_class(heap);
                let arr = heap.alloc_array(cls, buf.len())?;
                heap.byte_array_write(arr, 0, &buf);
                let root = heap.add_root(arr);
                e.bytes = mem_bytes;
                e.state = BlockState::Serialized { root, len, ops: None, mem_bytes };
            }
        }
        let _ = std::fs::remove_file(&path);
        self.entries[id.0 as usize] = Some(e);
        self.commit_manifest(mm)?;
        Ok(())
    }

    /// Evict the lowest-weight resident block other than `keep`. Returns
    /// false when nothing is evictable.
    fn evict_lru_excluding(
        &mut self,
        keep: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<bool, CacheError> {
        let shielded = self.shielded_tenants(mm);
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(i, e)| {
                *i != keep.0 as usize && !e.pinned && Self::tier_of(e, mm) != Tier::Cold
            })
            .filter(|(_, e)| !shielded.contains(&e.tenant))
            .min_by_key(|(i, e)| (Self::weight_of(e, mm), e.last_used, *i))
            .map(|(i, _)| i);
        let Some(i) = victim else { return Ok(false) };
        self.evict(BlockId(i as u32), heap, kryo, mm)?;
        Ok(true)
    }

    // ------------------------------------------------------------------
    // spill manifest + crash recovery
    // ------------------------------------------------------------------

    /// Build the manifest rows for the current cold tier. Deca rows carry
    /// the group's per-page sizes (otherwise memory-only state in the
    /// core layer) and a digest of the verbatim spill file.
    fn manifest_blocks(&self, mm: &MemoryManager) -> Result<Vec<Json>, CacheError> {
        let mut rows = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            match &e.state {
                BlockState::Disk { len, was_objects, mem_bytes, checksum } => {
                    let kind = if was_objects.is_some() { "objects" } else { "bytes" };
                    rows.push(Json::obj(vec![
                        ("id", Json::int(i as u64)),
                        ("kind", Json::str(kind)),
                        ("len", Json::int(*len as u64)),
                        ("mem_bytes", Json::int(*mem_bytes as u64)),
                        ("file_bytes", Json::int(e.bytes as u64)),
                        ("checksum", Json::str(format!("{checksum:016x}"))),
                    ]));
                }
                BlockState::Deca { block } => {
                    let group = block.group();
                    if !mm.is_swapped(group) {
                        continue;
                    }
                    let payload = std::fs::read(mm.spill_file(group))?;
                    let sizes = mm.spill_page_sizes(group).unwrap_or_default();
                    rows.push(Json::obj(vec![
                        ("id", Json::int(i as u64)),
                        ("kind", Json::str("deca")),
                        ("len", Json::int(block.len() as u64)),
                        ("group", Json::int(group.raw() as u64)),
                        (
                            "page_sizes",
                            Json::Arr(sizes.iter().map(|&s| Json::int(s as u64)).collect()),
                        ),
                        ("file_bytes", Json::int(payload.len() as u64)),
                        ("checksum", Json::str(format!("{:016x}", fnv1a(&payload)))),
                    ]));
                }
                _ => {}
            }
        }
        Ok(rows)
    }

    /// Write the spill manifest: body JSON + whole-document FNV-1a digest,
    /// to a temp file, then an atomic rename. The `ManifestCommit` kill
    /// point sits between the temp write and the rename — a crash there
    /// leaves the *previous* manifest in effect, which is exactly the
    /// consistency the atomic rename buys.
    fn commit_manifest(&mut self, mm: &MemoryManager) -> Result<(), CacheError> {
        let rows = self.manifest_blocks(mm)?;
        self.commit_manifest_rows(rows)
    }

    /// Manifest commit without Deca rows (only used on the rare
    /// demote-to-warm fallback path, which has no `mm` in hand).
    fn commit_manifest_blocks_only(&mut self) -> Result<(), CacheError> {
        let mut rows = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            let Some(e) = e else { continue };
            if let BlockState::Disk { len, was_objects, mem_bytes, checksum } = &e.state {
                let kind = if was_objects.is_some() { "objects" } else { "bytes" };
                rows.push(Json::obj(vec![
                    ("id", Json::int(i as u64)),
                    ("kind", Json::str(kind)),
                    ("len", Json::int(*len as u64)),
                    ("mem_bytes", Json::int(*mem_bytes as u64)),
                    ("file_bytes", Json::int(e.bytes as u64)),
                    ("checksum", Json::str(format!("{checksum:016x}"))),
                ]));
            }
        }
        self.commit_manifest_rows(rows)
    }

    fn commit_manifest_rows(&mut self, rows: Vec<Json>) -> Result<(), CacheError> {
        let dir = self.dir();
        std::fs::create_dir_all(&dir)?;
        let mut members = vec![
            ("schema".to_string(), Json::str(MANIFEST_SCHEMA)),
            ("blocks".to_string(), Json::Arr(rows)),
        ];
        let digest = fnv1a(Json::Obj(members.clone()).to_compact().as_bytes());
        members.push(("checksum".to_string(), Json::str(format!("{digest:016x}"))));
        let doc = Json::Obj(members);
        let tmp = dir.join("spill-manifest.json.tmp");
        std::fs::write(&tmp, doc.to_pretty())?;
        if self.killed(FaultSite::ManifestCommit) {
            return Err(CacheError::Injected(FaultSite::ManifestCommit));
        }
        std::fs::rename(&tmp, self.manifest_path())?;
        Ok(())
    }

    /// Parse and verify the spill manifest. `None` if it is missing,
    /// malformed, or fails its whole-document checksum.
    fn load_manifest(&self) -> Option<Vec<ManifestRow>> {
        let text = std::fs::read_to_string(self.manifest_path()).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("schema")?.as_str()? != MANIFEST_SCHEMA {
            return None;
        }
        let recorded = u64::from_str_radix(doc.get("checksum")?.as_str()?, 16).ok()?;
        let body = Json::obj(vec![
            ("schema", doc.get("schema")?.clone()),
            ("blocks", doc.get("blocks")?.clone()),
        ]);
        if fnv1a(body.to_compact().as_bytes()) != recorded {
            return None;
        }
        let mut rows = Vec::new();
        for b in doc.get("blocks")?.as_array()? {
            let page_sizes = match b.get("page_sizes") {
                Some(arr) => arr
                    .as_array()?
                    .iter()
                    .map(|s| s.as_u64().map(|v| v as usize))
                    .collect::<Option<Vec<usize>>>()?,
                None => Vec::new(),
            };
            rows.push(ManifestRow {
                id: b.get("id")?.as_u64()? as u32,
                kind: b.get("kind")?.as_str()?.to_string(),
                len: b.get("len")?.as_u64()?,
                file_bytes: b.get("file_bytes")?.as_u64()?,
                checksum: u64::from_str_radix(b.get("checksum")?.as_str()?, 16).ok()?,
                group: b.get("group").and_then(|g| g.as_u64()),
                page_sizes,
            });
        }
        Some(rows)
    }

    /// Restart-in-place recovery: the crash wiped the volatile tiers, so
    /// drop every hot/warm entry (the app's lineage recompute rebuilds
    /// them), then keep each cold entry *only if* the spill manifest
    /// vouches for it — matching id/kind/sizes and a payload digest that
    /// checks out. An unverifiable block (or the whole cold tier, when
    /// the manifest itself fails its checksum) is discarded: graceful
    /// degradation to recompute, never a wrong answer.
    ///
    /// Idempotent by construction: a second call finds the volatile tiers
    /// already empty and re-verifies the same cold blocks to the same
    /// result — which is also what makes a `Rehydrate` kill (a crash
    /// *during* recovery, checked per cold entry against `(stage, entry,
    /// ordinal)`) survivable: the next restart finishes the scan.
    pub(crate) fn crash_restart(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        stage: &str,
        ordinal: u32,
    ) -> RehydrateOutcome {
        let manifest = self.load_manifest();
        let mut out =
            RehydrateOutcome { manifest_ok: manifest.is_some(), ..RehydrateOutcome::default() };
        let rows = manifest.unwrap_or_default();
        for i in 0..self.entries.len() {
            let Some(e) = self.entries[i].as_ref() else { continue };
            let cold = match &e.state {
                BlockState::Disk { .. } => true,
                BlockState::Deca { block } => mm.is_swapped(block.group()),
                _ => false,
            };
            if cold {
                if let Some(p) = &self.probe {
                    if p.fires(FaultSite::Rehydrate, stage, i, ordinal) {
                        out.killed = true;
                        return out;
                    }
                }
            }
            let mut e = self.entries[i].take().expect("block");
            match &mut e.state {
                BlockState::Objects { root, .. } | BlockState::Serialized { root, .. } => {
                    heap.remove_root(*root);
                    out.dropped += 1;
                }
                BlockState::Deca { block } => {
                    let group = block.group();
                    if !mm.is_swapped(group) {
                        block.release(mm, heap);
                        out.dropped += 1;
                    } else if Self::verify_deca_row(&rows, i as u32, block, mm) {
                        let bytes = mm.spill_file(group).metadata().map(|m| m.len()).unwrap_or(0);
                        out.rehydrated.push((i as u32, bytes, block.len() as u64));
                        self.entries[i] = Some(e);
                    } else {
                        block.release(mm, heap);
                        out.dropped += 1;
                    }
                }
                BlockState::Disk { len, .. } => {
                    let len = *len;
                    if self.verify_disk_row(&rows, i as u32, &e) {
                        out.rehydrated.push((i as u32, e.bytes as u64, len as u64));
                        self.entries[i] = Some(e);
                    } else {
                        let _ = std::fs::remove_file(self.file(i as u32));
                        out.dropped += 1;
                    }
                }
            }
        }
        // Re-commit so the manifest reflects exactly what survived (and a
        // corrupted manifest is replaced by a valid empty one).
        let _ = self.commit_manifest(mm);
        out
    }

    /// Verify one cold Spark/SparkSer block against its manifest row:
    /// the row must exist with the block's kind and record count, and the
    /// payload file must match the recorded size and FNV-1a digest.
    fn verify_disk_row(&self, rows: &[ManifestRow], id: u32, e: &Entry) -> bool {
        let BlockState::Disk { len, was_objects, .. } = &e.state else { return false };
        let kind = if was_objects.is_some() { "objects" } else { "bytes" };
        let Some(row) = rows.iter().find(|r| r.id == id) else { return false };
        if row.kind != kind || row.len != *len as u64 {
            return false;
        }
        let Ok(payload) = std::fs::read(self.file(id)) else { return false };
        payload.len() as u64 == row.file_bytes && fnv1a(&payload) == row.checksum
    }

    /// Verify one swapped Deca block: the manifest row must name the same
    /// page group with the same per-page sizes the core layer has, and the
    /// verbatim spill file must match the recorded digest.
    fn verify_deca_row(
        rows: &[ManifestRow],
        id: u32,
        block: &DecaCacheBlock,
        mm: &MemoryManager,
    ) -> bool {
        let group = block.group();
        let Some(row) = rows.iter().find(|r| r.id == id) else { return false };
        if row.kind != "deca"
            || row.len != block.len() as u64
            || row.group != Some(group.raw() as u64)
        {
            return false;
        }
        if mm.spill_page_sizes(group).as_deref() != Some(row.page_sizes.as_slice()) {
            return false;
        }
        let Ok(payload) = std::fs::read(mm.spill_file(group)) else { return false };
        payload.len() as u64 == row.file_bytes && fnv1a(&payload) == row.checksum
    }

    /// Simulated disk time for cache spill traffic since construction.
    pub fn sim_io_time(&self) -> Duration {
        let bytes = (self.spill_write_bytes + self.spill_read_bytes) as f64;
        Duration::from_secs_f64(bytes / crate::executor::SIM_DISK_BPS)
    }

    /// Snapshot of the manager's occupancy and eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_bytes: self.resident_bytes(),
            warm_bytes: self.warm_bytes(),
            disk_bytes: self.disk_bytes(),
            evictions: self.evictions,
            demotions: self.demotions,
            spill_write_bytes: self.spill_write_bytes,
            spill_read_bytes: self.spill_read_bytes,
        }
    }
}

/// A point-in-time summary of a [`CacheManager`]'s state, for apps and
/// harnesses that report cache behaviour without poking manager fields.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached bytes currently resident in memory (hot + warm tiers).
    pub resident_bytes: usize,
    /// The serialized-in-memory (warm tier) share of `resident_bytes`.
    pub warm_bytes: usize,
    /// Cached bytes currently evicted to disk.
    pub disk_bytes: usize,
    /// Cold-tier eviction events since construction.
    pub evictions: u64,
    /// Hot → warm demotion events since construction.
    pub demotions: u64,
    /// Bytes written to / read from cache spill files.
    pub spill_write_bytes: u64,
    pub spill_read_bytes: u64,
}

/// A cached RDD handle: the block ids of its partitions on one executor.
#[derive(Debug, Default)]
pub struct CachedRdd<T> {
    pub name: String,
    pub blocks: Vec<BlockId>,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T> CachedRdd<T> {
    pub fn new(name: impl Into<String>) -> CachedRdd<T> {
        CachedRdd { name: name.into(), blocks: Vec::new(), _t: std::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeapRecord;
    use deca_heap::HeapConfig;

    fn setup(heap_bytes: usize, budget: usize) -> (Heap, KryoSim, MemoryManager, CacheManager) {
        let dir = std::env::temp_dir().join(format!(
            "deca-cachemgr-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cm = CacheManager::new(budget);
        cm.set_dir(dir.clone());
        (
            Heap::new(HeapConfig::with_total(heap_bytes)),
            KryoSim::new(),
            MemoryManager::new(16 << 10, dir),
            cm,
        )
    }

    #[test]
    fn objects_block_roundtrip() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i * 3)).collect();
        let id = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert_eq!(cm.block_len(id), 500);
        assert!(cm.contains(id));
        assert_eq!(cm.tier(id, &mm), Tier::Hot);
        let (root, len) = cm.objects_root(id, &mut heap, &mut kryo, &mut mm).unwrap();
        let arr = heap.root_ref(root);
        for i in 0..len {
            let obj = heap.array_get_ref(arr, i);
            let rec = <(i64, i64) as HeapRecord>::load(&heap, &classes, obj);
            assert_eq!(rec, (i as i64, i as i64 * 3));
        }
        cm.release(id, &mut heap, &mut mm);
        assert!(!cm.contains(id));
        heap.full_gc();
        assert_eq!(heap.object_count(), 0, "released block is collectable");
    }

    #[test]
    fn serialized_block_roundtrip() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let recs: Vec<(i64, i64)> = (0..300).map(|i| (i, -i)).collect();
        let id = cm.put_serialized(&mut heap, &mut kryo, &mut mm, &recs).unwrap();
        // One byte[] object on the heap, regardless of record count.
        assert_eq!(heap.object_count(), 1);
        assert_eq!(cm.tier(id, &mm), Tier::Warm);
        let mut got = Vec::new();
        cm.iter_serialized::<(i64, i64)>(id, &mut heap, &mut kryo, &mut mm, |r| got.push(r))
            .unwrap();
        assert_eq!(got, recs);
        assert!(kryo.objects_deserialized >= 300);
    }

    #[test]
    fn deca_block_via_manager() {
        let (mut heap, _kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let recs: Vec<(i64, i64)> = (0..400).map(|i| (i, i + 1)).collect();
        let id = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        let block = cm.deca_block(id);
        assert_eq!(block.len(), 400);
        let back: Vec<(i64, i64)> = block.decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(back, recs);
        cm.release(id, &mut heap, &mut mm);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn evict_all_spills_every_resident_block() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..200).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let _b = cm.put_serialized(&mut heap, &mut kryo, &mut mm, &recs).unwrap();
        assert!(cm.resident_bytes() > 0);
        let freed = cm.evict_all(&mut heap, &mut kryo, &mut mm).unwrap();
        assert!(freed > 0);
        assert_eq!(cm.resident_bytes(), 0, "everything evictable is out");
        assert!(cm.disk_bytes() > 0);
        // The spill manifest is durable and verifiable after the spill.
        let rows = cm.load_manifest().expect("manifest must verify after evict_all");
        assert_eq!(rows.len(), 2, "both cold blocks recorded");
        // Blocks stay readable: access swaps them back in.
        let (_root, len) = cm.objects_root(a, &mut heap, &mut kryo, &mut mm).unwrap();
        assert_eq!(len, 200);
        // ... and the manifest row for the rematerialised block is gone.
        let rows = cm.load_manifest().expect("manifest stays valid after swap-in");
        assert_eq!(rows.len(), 1, "only the still-cold block remains listed");
    }

    #[test]
    fn budget_pressure_demotes_through_tiers_and_reloads() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 64 << 10);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        // Each block ~80B * 500 = 40KB accounted; two blocks exceed the
        // 64KB budget, so the first (lower weight, older) block demotes
        // hot → warm; the serialized form is far smaller, so both fit.
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let b = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert!(cm.demotions > 0, "second block must demote the first");
        assert_eq!(cm.tier(a, &mm), Tier::Warm);
        assert_eq!(cm.tier(b, &mm), Tier::Hot);
        assert!(cm.warm_bytes() > 0);
        // Keep piling on: a third block pushes the warm block cold.
        let c = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert_eq!(cm.tier(a, &mm), Tier::Cold, "lowest-weight block reaches disk");
        assert!(cm.disk_bytes() > 0);
        assert!(cm.evictions > 0);
        let _ = c;
        // Access the cold block: it reloads and promotes back to hot.
        let (root, len) = cm.objects_root(a, &mut heap, &mut kryo, &mut mm).unwrap();
        assert_eq!(cm.tier(a, &mm), Tier::Hot, "access promotes to the hot tier");
        let arr = heap.root_ref(root);
        assert_eq!(len, 500);
        let rec = <(i64, i64) as HeapRecord>::load(&heap, &classes, heap.array_get_ref(arr, 42));
        assert_eq!(rec, (42, 42));
    }

    #[test]
    fn access_counts_protect_hot_blocks_from_demotion() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 96 << 10);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let b = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        // Access `a` repeatedly: its weight now exceeds `b`'s even though
        // `b` is more recently created.
        for _ in 0..5 {
            cm.objects_root(a, &mut heap, &mut kryo, &mut mm).unwrap();
        }
        let _c = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert_eq!(cm.tier(a, &mm), Tier::Hot, "frequently accessed block stays hot");
        assert_ne!(cm.tier(b, &mm), Tier::Hot, "low-weight block demoted instead");
    }

    #[test]
    fn deca_puts_respect_the_budget_and_swap_low_weight_groups() {
        let (mut heap, _kryo, mut mm, mut cm) = setup(16 << 20, 40 << 10);
        let recs: Vec<(i64, i64)> = (0..400).map(|i| (i, i)).collect();
        let a = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        let b = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        // Touch `b` so its access weight protects it over `a`.
        let _ = cm.deca_block(b);
        let c = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        assert_eq!(cm.tier(a, &mm), Tier::Cold, "lowest-weight group swapped out");
        assert_eq!(cm.tier(b, &mm), Tier::Hot);
        assert_eq!(cm.tier(c, &mm), Tier::Hot);
        let rows = cm.load_manifest().expect("manifest committed on the deca swap");
        assert!(
            rows.iter().any(|r| r.kind == "deca" && r.id == a.0),
            "swapped page group recorded with its page sizes: {rows:?}"
        );
        // The swapped group still reads back (swap-in on access).
        let back: Vec<(i64, i64)> = cm.deca_block(a).decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn tenant_within_budget_is_shielded_from_other_tenants_pressure() {
        // Global budget 96KB, each tenant gets 48KB. Tenant 2 caches one
        // ~40KB block (under its budget); tenant 1 then thrashes well past
        // its own allotment. Tenant 1's pressure must land entirely on its
        // own blocks: tenant 2's block stays hot with zero evictions.
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 96 << 10);
        cm.set_tenant_budget(1, 48 << 10);
        cm.set_tenant_budget(2, 48 << 10);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
        cm.set_tenant_ctx(Some(2));
        let shielded = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        cm.set_tenant_ctx(Some(1));
        let mut own = Vec::new();
        for _ in 0..4 {
            own.push(cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap());
        }
        assert_eq!(cm.tier(shielded, &mm), Tier::Hot, "tenant 2's hot block must survive");
        assert_eq!(cm.tenant_evictions(2), 0, "no cross-tenant evictions");
        assert!(cm.demotions + cm.evictions > 0, "tenant 1's pressure demoted its own blocks");
        assert!(
            own.iter().any(|&b| cm.tier(b, &mm) != Tier::Hot),
            "tenant 1's own blocks paid for its pressure"
        );
        assert!(cm.tenant_resident_bytes(1, &mm) <= 48 << 10, "tenant 1 held to its own allotment");
        // Once tenant 2 overshoots its own budget, its blocks stop being
        // shielded: its own pre-pass demotes its coldest block.
        cm.set_tenant_ctx(Some(2));
        for _ in 0..2 {
            cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        }
        assert_ne!(cm.tier(shielded, &mm), Tier::Hot, "over budget, tenant 2 pays too");
    }

    #[test]
    fn crash_restart_rehydrates_verified_cold_blocks_and_drops_the_rest() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..200).map(|i| (i, i * 7)).collect();
        let cold = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let hot = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let deca = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        // Spill everything, then warm two blocks back up so the crash has
        // all three tiers to bite on.
        cm.evict_all(&mut heap, &mut kryo, &mut mm).unwrap();
        cm.objects_root(hot, &mut heap, &mut kryo, &mut mm).unwrap();
        let _: Vec<(i64, i64)> = cm.deca_block(deca).decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(cm.tier(cold, &mm), Tier::Cold);
        let out = cm.crash_restart(&mut heap, &mut mm, "s", 0);
        assert!(out.manifest_ok);
        assert!(!out.killed);
        assert_eq!(out.rehydrated.len(), 1, "the cold block survives");
        assert_eq!(out.rehydrated[0].0, 0, "and it is the first block we cached");
        assert_eq!(out.dropped, 2, "hot object and hot deca blocks are wiped");
        assert!(cm.contains(cold));
        assert!(!cm.contains(hot));
        assert!(!cm.contains(deca));
        // The survivor still reads back correctly.
        let (root, len) = cm.objects_root(cold, &mut heap, &mut kryo, &mut mm).unwrap();
        let arr = heap.root_ref(root);
        assert_eq!(len, 200);
        let rec = <(i64, i64) as HeapRecord>::load(&heap, &classes, heap.array_get_ref(arr, 3));
        assert_eq!(rec, (3, 21));
    }

    #[test]
    fn second_crash_restart_is_a_no_op() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let d = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        cm.evict_all(&mut heap, &mut kryo, &mut mm).unwrap();
        let first = cm.crash_restart(&mut heap, &mut mm, "s", 0);
        assert!(first.manifest_ok);
        assert_eq!(first.rehydrated.len(), 2, "both cold blocks verified");
        let stats = cm.stats();
        let second = cm.crash_restart(&mut heap, &mut mm, "s", 1);
        assert!(second.manifest_ok);
        assert_eq!(second.dropped, 0, "second recovery drops nothing");
        assert_eq!(
            second.rehydrated, first.rehydrated,
            "second recovery re-verifies the same blocks"
        );
        assert_eq!(cm.stats(), stats, "no state change on the second pass");
        assert!(cm.contains(a) && cm.contains(d));
    }

    #[test]
    fn corrupted_manifest_degrades_to_a_full_drop() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        cm.evict_all(&mut heap, &mut kryo, &mut mm).unwrap();
        // Flip a byte inside the manifest body: the checksum must catch it.
        let path = cm.manifest_path();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"kind\": \"objects\"", "\"kind\": \"objectz\"");
        std::fs::write(&path, text).unwrap();
        assert!(cm.load_manifest().is_none(), "tampered manifest fails verification");
        let out = cm.crash_restart(&mut heap, &mut mm, "s", 0);
        assert!(!out.manifest_ok);
        assert!(out.rehydrated.is_empty(), "nothing is trusted");
        assert_eq!(out.dropped, 1);
        assert!(!cm.contains(a), "block dropped for lineage recompute");
        // The re-committed manifest is valid (and empty) again.
        assert_eq!(cm.load_manifest().expect("fresh manifest").len(), 0);
    }
}
