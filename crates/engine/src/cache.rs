//! The cache manager: cached RDD blocks in three storage levels, with LRU
//! eviction to disk under a storage budget.
//!
//! * `Objects` blocks (Spark) hold a heap `Object[]` of record graphs —
//!   the long-living live set the collector must trace;
//! * `Serialized` blocks (SparkSer) hold one heap `byte[]` of Kryo bytes —
//!   few objects, but every access deserializes;
//! * `Deca` blocks hold decomposed pages managed by `deca-core`.
//!
//! Eviction (Appendix C): when the cached bytes exceed the storage budget
//! (`storage.memoryFraction` × heap), the LRU block moves to disk — Spark
//! blocks are serialized first (real Kryo cost), Deca page groups are
//! written verbatim.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;

use deca_core::{DecaCacheBlock, MemError, MemoryManager};
use deca_heap::{FieldKind, Heap, OomError, RootId};

use crate::record::Record;
use crate::serde_sim::KryoSim;

/// Identifier of a cached block within an executor's cache manager.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BlockId(u32);

/// Cache errors.
#[derive(Debug)]
pub enum CacheError {
    Oom(OomError),
    Mem(MemError),
    Io(std::io::Error),
}

impl From<OomError> for CacheError {
    fn from(e: OomError) -> Self {
        CacheError::Oom(e)
    }
}

impl From<MemError> for CacheError {
    fn from(e: MemError) -> Self {
        CacheError::Mem(e)
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Oom(e) => write!(f, "cache: {e}"),
            CacheError::Mem(e) => write!(f, "cache: {e}"),
            CacheError::Io(e) => write!(f, "cache I/O: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Type-erased operations on an `Objects` block (needed to evict it
/// without knowing `T` at the eviction site).
trait ObjectBlockOps: Send {
    /// Serialize all records of the block (for eviction to disk).
    fn serialize(&self, heap: &mut Heap, kryo: &mut KryoSim, root: RootId, len: usize) -> Vec<u8>;
    /// Re-materialise records from serialized bytes; returns the new root.
    fn deserialize(
        &self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        bytes: &[u8],
    ) -> Result<(RootId, usize), OomError>;
}

struct Ops<T: Record> {
    classes: T::Classes,
}

impl<T: Record + 'static> ObjectBlockOps for Ops<T>
where
    T::Classes: 'static,
{
    fn serialize(&self, heap: &mut Heap, kryo: &mut KryoSim, root: RootId, len: usize) -> Vec<u8> {
        let arr = heap.root_ref(root);
        kryo.time_ser(|k| {
            let mut out = Vec::new();
            for i in 0..len {
                let obj = heap.array_get_ref(arr, i);
                let rec = T::load(heap, &self.classes, obj);
                k.serialize(&rec, &mut out);
            }
            out
        })
    }

    fn deserialize(
        &self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        bytes: &[u8],
    ) -> Result<(RootId, usize), OomError> {
        let recs: Vec<T> = kryo.deserialize_all(bytes);
        store_object_array(heap, &self.classes, &recs).map(|root| (root, recs.len()))
    }
}

/// Allocate a heap `Object[]` holding each record's stored graph; returns
/// a root id keeping the whole block alive.
pub(crate) fn store_object_array<T: Record>(
    heap: &mut Heap,
    classes: &T::Classes,
    recs: &[T],
) -> Result<RootId, OomError> {
    let arr_class = object_array_class(heap);
    let arr = heap.alloc_array(arr_class, recs.len())?;
    let root = heap.add_root(arr);
    for (i, rec) in recs.iter().enumerate() {
        let obj = rec.store(heap, classes)?;
        let arr = heap.root_ref(root);
        heap.array_set_ref(arr, i, obj);
    }
    Ok(root)
}

/// The shared `Object[]` class (registered once per heap).
pub(crate) fn object_array_class(heap: &mut Heap) -> deca_heap::ClassId {
    match heap.registry().by_name("Object[]") {
        Some(c) => c,
        None => heap.define_array_class("Object[]", FieldKind::Ref),
    }
}

/// The shared `byte[]` class.
pub(crate) fn byte_array_class(heap: &mut Heap) -> deca_heap::ClassId {
    match heap.registry().by_name("byte[]") {
        Some(c) => c,
        None => heap.define_array_class("byte[]", FieldKind::I8),
    }
}

enum BlockState {
    Objects {
        root: RootId,
        len: usize,
        ops: Box<dyn ObjectBlockOps>,
    },
    Serialized {
        root: RootId,
        len: usize,
    },
    Deca {
        block: DecaCacheBlock,
    },
    /// Evicted to disk; `was_objects` says how to re-materialise and
    /// `mem_bytes` what it will cost in memory again.
    Disk {
        len: usize,
        was_objects: Option<Box<dyn ObjectBlockOps>>,
        mem_bytes: usize,
    },
}

struct Entry {
    state: BlockState,
    /// Accounted in-memory bytes while resident; disk bytes when evicted.
    bytes: usize,
    last_used: u64,
    pinned: bool,
}

/// Per-executor cache manager.
pub struct CacheManager {
    entries: Vec<Option<Entry>>,
    clock: u64,
    budget: usize,
    dir: Option<PathBuf>,
    /// Bytes written/read to cache spill files (adds simulated disk time).
    pub spill_write_bytes: u64,
    pub spill_read_bytes: u64,
    /// Eviction events.
    pub evictions: u64,
}

impl CacheManager {
    pub fn new(budget: usize) -> CacheManager {
        CacheManager {
            entries: Vec::new(),
            clock: 0,
            budget,
            dir: None,
            spill_write_bytes: 0,
            spill_read_bytes: 0,
            evictions: 0,
        }
    }

    pub fn set_dir(&mut self, dir: PathBuf) {
        self.dir = Some(dir);
    }

    fn dir(&self) -> PathBuf {
        self.dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("deca-cache-{}", std::process::id()))
        })
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn push(&mut self, e: Entry) -> BlockId {
        self.entries.push(Some(e));
        BlockId((self.entries.len() - 1) as u32)
    }

    /// Resident (in-memory) cached bytes.
    pub fn resident_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| !matches!(e.state, BlockState::Disk { .. }))
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes of cached data currently on disk.
    pub fn disk_bytes(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| matches!(e.state, BlockState::Disk { .. }))
            .map(|e| e.bytes)
            .sum()
    }

    fn file(&self, id: u32) -> PathBuf {
        self.dir().join(format!("cache-block-{id}.bin"))
    }

    // ------------------------------------------------------------------
    // put
    // ------------------------------------------------------------------

    /// Cache records as a heap object block (Spark mode).
    pub fn put_objects<T: Record + 'static>(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        classes: &T::Classes,
        recs: &[T],
    ) -> Result<BlockId, CacheError>
    where
        T::Classes: 'static,
    {
        let bytes: usize = recs.iter().map(|r| r.heap_size()).sum::<usize>() + 16 + recs.len() * 8;
        self.make_room(heap, kryo, mm, bytes)?;
        let root = match store_object_array(heap, classes, recs) {
            Ok(r) => r,
            Err(oom) => {
                // Heap pressure beyond the budget model: evict everything
                // evictable, collect, and retry once.
                while self.evict_lru(heap, kryo, mm)? {}
                heap.full_gc();
                store_object_array(heap, classes, recs).map_err(|_| CacheError::Oom(oom))?
            }
        };
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Objects {
                root,
                len: recs.len(),
                ops: Box::new(Ops::<T> { classes: *classes }),
            },
            bytes,
            last_used: t,
            pinned: false,
        }))
    }

    /// Cache records as a serialized heap byte block (SparkSer mode).
    pub fn put_serialized<T: Record>(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        let buf = kryo.serialize_all(recs);
        self.make_room(heap, kryo, mm, buf.len())?;
        let cls = byte_array_class(heap);
        let arr = heap.alloc_array(cls, buf.len())?;
        heap.byte_array_write(arr, 0, &buf);
        let root = heap.add_root(arr);
        let bytes = buf.len() + 16;
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Serialized { root, len: recs.len() },
            bytes,
            last_used: t,
            pinned: false,
        }))
    }

    /// Cache records as decomposed pages (Deca mode).
    pub fn put_deca<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        let block = DecaCacheBlock::new::<T>(mm);
        self.put_deca_block(heap, mm, block, recs)
    }

    /// Cache records as decomposed pages with a runtime-resolved uniform
    /// SFST size (unframed segments — e.g. LR's `D`-dimensional points).
    pub fn put_deca_sfst<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        recs: &[T],
        size: usize,
    ) -> Result<BlockId, CacheError> {
        let block = DecaCacheBlock::new_sfst(mm, size);
        self.put_deca_block(heap, mm, block, recs)
    }

    fn put_deca_block<T: Record>(
        &mut self,
        heap: &mut Heap,
        mm: &mut MemoryManager,
        mut block: DecaCacheBlock,
        recs: &[T],
    ) -> Result<BlockId, CacheError> {
        for r in recs {
            block.append(mm, heap, r)?;
        }
        let bytes = block.footprint(mm, heap)?;
        let t = self.tick();
        Ok(self.push(Entry {
            state: BlockState::Deca { block },
            bytes,
            last_used: t,
            pinned: false,
        }))
    }

    // ------------------------------------------------------------------
    // access
    // ------------------------------------------------------------------

    /// Number of records in a block.
    pub fn block_len(&self, id: BlockId) -> usize {
        match &self.entries[id.0 as usize].as_ref().expect("block").state {
            BlockState::Objects { len, .. }
            | BlockState::Serialized { len, .. }
            | BlockState::Disk { len, .. } => *len,
            BlockState::Deca { block } => block.len(),
        }
    }

    /// Direct access to an Objects block's root array (Spark kernels walk
    /// the heap themselves). Swaps the block in if evicted.
    pub fn objects_root(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<(RootId, usize), CacheError> {
        self.ensure_resident(id, heap, kryo, mm)?;
        let t = self.tick();
        let e = self.entries[id.0 as usize].as_mut().expect("block");
        e.last_used = t;
        match &e.state {
            BlockState::Objects { root, len, .. } => Ok((*root, *len)),
            _ => panic!("objects_root on a non-Objects block"),
        }
    }

    /// Iterate a Serialized block by deserializing every record (the
    /// SparkSer access path: real deser cost + temporary objects created by
    /// the caller).
    pub fn iter_serialized<T: Record>(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        mut f: impl FnMut(T),
    ) -> Result<(), CacheError> {
        self.ensure_resident(id, heap, kryo, mm)?;
        let t = self.tick();
        let e = self.entries[id.0 as usize].as_mut().expect("block");
        e.last_used = t;
        let (root, len) = match &e.state {
            BlockState::Serialized { root, len } => (*root, *len),
            _ => panic!("iter_serialized on a non-Serialized block"),
        };
        let arr = heap.root_ref(root);
        let n = heap.array_len(arr);
        let mut buf = vec![0u8; n];
        heap.byte_array_read(arr, 0, &mut buf);
        let recs: Vec<T> = kryo.time_deser(|k| {
            let mut pos = 0;
            (0..len).map(|_| k.deserialize(&buf, &mut pos)).collect()
        });
        for rec in recs {
            f(rec);
        }
        Ok(())
    }

    /// The Deca block backing `id` (panics if the block is not Deca).
    pub fn deca_block(&mut self, id: BlockId) -> &mut DecaCacheBlock {
        let t = self.tick();
        let e = self.entries[id.0 as usize].as_mut().expect("block");
        e.last_used = t;
        match &mut e.state {
            BlockState::Deca { block } => block,
            _ => panic!("deca_block on a non-Deca block"),
        }
    }

    // ------------------------------------------------------------------
    // lifetime / eviction
    // ------------------------------------------------------------------

    /// Release a block (`unpersist()`): Objects/Serialized drop their
    /// roots (space reclaimed by the *next collection*, as in Spark); Deca
    /// blocks release their page group immediately.
    pub fn release(&mut self, id: BlockId, heap: &mut Heap, mm: &mut MemoryManager) {
        if let Some(mut e) = self.entries[id.0 as usize].take() {
            match &mut e.state {
                BlockState::Objects { root, .. } | BlockState::Serialized { root, .. } => {
                    heap.remove_root(*root);
                }
                BlockState::Deca { block } => block.release(mm, heap),
                BlockState::Disk { .. } => {
                    let _ = std::fs::remove_file(self.file(id.0));
                }
            }
        }
    }

    fn make_room(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
        incoming: usize,
    ) -> Result<(), CacheError> {
        while self.resident_bytes() + incoming > self.budget {
            if !self.evict_lru(heap, kryo, mm)? {
                break; // nothing evictable: allow overshoot (heap will GC/OOM)
            }
        }
        Ok(())
    }

    /// Evict every evictable resident block to disk — the graceful OOM
    /// degradation path: under memory pressure the driver spills the whole
    /// cache and retries the failed task. Returns the resident bytes
    /// freed (Deca page groups swap through `mm` and keep their entry
    /// accounting, so the figure under-reports their share).
    pub fn evict_all(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<u64, CacheError> {
        let before = self.resident_bytes();
        let victims: Vec<u32> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.pinned && !matches!(e.state, BlockState::Disk { .. }))
            .map(|(i, _)| i as u32)
            .collect();
        for i in victims {
            self.evict(BlockId(i), heap, kryo, mm)?;
        }
        Ok(before.saturating_sub(self.resident_bytes()) as u64)
    }

    /// Evict the least-recently-used resident block to disk. Returns false
    /// if no candidate exists.
    fn evict_lru(
        &mut self,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<bool, CacheError> {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| !e.pinned && !matches!(e.state, BlockState::Disk { .. }))
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i);
        let Some(i) = victim else { return Ok(false) };
        self.evict(BlockId(i as u32), heap, kryo, mm)?;
        Ok(true)
    }

    fn evict(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let path = self.file(id.0);
        std::fs::create_dir_all(self.dir())?;
        match e.state {
            BlockState::Objects { root, len, ops } => {
                // Spark serializes object blocks before writing them out.
                let bytes = ops.serialize(heap, kryo, root, len);
                heap.remove_root(root);
                std::fs::File::create(&path)?.write_all(&bytes)?;
                self.spill_write_bytes += bytes.len() as u64;
                let mem_bytes = e.bytes;
                e.bytes = bytes.len();
                e.state = BlockState::Disk { len, was_objects: Some(ops), mem_bytes };
            }
            BlockState::Serialized { root, len } => {
                let arr = heap.root_ref(root);
                let n = heap.array_len(arr);
                let mut buf = vec![0u8; n];
                heap.byte_array_read(arr, 0, &mut buf);
                heap.remove_root(root);
                std::fs::File::create(&path)?.write_all(&buf)?;
                self.spill_write_bytes += buf.len() as u64;
                let mem_bytes = e.bytes;
                e.bytes = buf.len();
                e.state = BlockState::Disk { len, was_objects: None, mem_bytes };
            }
            BlockState::Deca { ref block } => {
                // Deca swaps page groups verbatim through its own manager.
                // The group may already be out (swapped by an earlier
                // pressure event, or pinned unswappable): only resident
                // swappable groups go to disk.
                let group = block.group();
                if !mm.is_swapped(group) && mm.is_swappable(group) {
                    let freed = mm.swap_out(group, heap)?;
                    self.spill_write_bytes += freed as u64;
                }
                // state stays Deca; residency tracked by mm.
            }
            BlockState::Disk { .. } => {}
        }
        self.evictions += 1;
        self.entries[id.0 as usize] = Some(e);
        Ok(())
    }

    fn ensure_resident(
        &mut self,
        id: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        // Deca blocks re-register through `mm` lazily on access, so this
        // path only handles evicted Spark/SparkSer blocks.
        mm: &mut MemoryManager,
    ) -> Result<(), CacheError> {
        let mem_bytes = match self.entries[id.0 as usize].as_ref().expect("block").state {
            BlockState::Disk { mem_bytes, .. } => mem_bytes,
            _ => return Ok(()),
        };
        // Re-materialising costs memory: evict LRU blocks first, both to
        // respect the storage budget and to leave heap headroom (Spark's
        // unified memory manager does the same before unrolling a block).
        while self.resident_bytes() + mem_bytes > self.budget {
            if !self.evict_lru_excluding(id, heap, kryo, mm)? {
                break;
            }
        }
        let mut e = self.entries[id.0 as usize].take().expect("block");
        let path = self.file(id.0);
        let mut buf = Vec::new();
        std::fs::File::open(&path)?.read_to_end(&mut buf)?;
        self.spill_read_bytes += buf.len() as u64;
        let BlockState::Disk { len, was_objects, mem_bytes } = e.state else { unreachable!() };
        match was_objects {
            Some(ops) => {
                let (root, n) = match ops.deserialize(heap, kryo, &buf) {
                    Ok(v) => v,
                    Err(_) => {
                        // Heap-level pressure: evict harder and retry once.
                        self.entries[id.0 as usize] = Some(Entry {
                            state: BlockState::Disk { len, was_objects: Some(ops), mem_bytes },
                            ..e
                        });
                        while self.evict_lru_excluding(id, heap, kryo, mm)? {}
                        heap.full_gc();
                        let mut e = self.entries[id.0 as usize].take().expect("block");
                        let BlockState::Disk { len, was_objects, .. } = e.state else {
                            unreachable!()
                        };
                        let ops = was_objects.expect("objects block");
                        let (root, n) = ops.deserialize(heap, kryo, &buf)?;
                        debug_assert_eq!(n, len);
                        e.bytes = mem_bytes;
                        e.state = BlockState::Objects { root, len, ops };
                        let _ = std::fs::remove_file(&path);
                        self.entries[id.0 as usize] = Some(e);
                        return Ok(());
                    }
                };
                debug_assert_eq!(n, len);
                e.bytes = mem_bytes;
                e.state = BlockState::Objects { root, len, ops };
            }
            None => {
                let cls = byte_array_class(heap);
                let arr = heap.alloc_array(cls, buf.len())?;
                heap.byte_array_write(arr, 0, &buf);
                let root = heap.add_root(arr);
                e.bytes = mem_bytes;
                e.state = BlockState::Serialized { root, len };
            }
        }
        let _ = std::fs::remove_file(&path);
        self.entries[id.0 as usize] = Some(e);
        Ok(())
    }

    /// Evict the LRU resident block other than `keep`. Returns false when
    /// nothing is evictable.
    fn evict_lru_excluding(
        &mut self,
        keep: BlockId,
        heap: &mut Heap,
        kryo: &mut KryoSim,
        mm: &mut MemoryManager,
    ) -> Result<bool, CacheError> {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .filter(|(i, e)| {
                *i != keep.0 as usize && !e.pinned && !matches!(e.state, BlockState::Disk { .. })
            })
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i);
        let Some(i) = victim else { return Ok(false) };
        self.evict(BlockId(i as u32), heap, kryo, mm)?;
        Ok(true)
    }

    /// Simulated disk time for cache spill traffic since construction.
    pub fn sim_io_time(&self) -> Duration {
        let bytes = (self.spill_write_bytes + self.spill_read_bytes) as f64;
        Duration::from_secs_f64(bytes / crate::executor::SIM_DISK_BPS)
    }

    /// Snapshot of the manager's occupancy and eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident_bytes: self.resident_bytes(),
            disk_bytes: self.disk_bytes(),
            evictions: self.evictions,
            spill_write_bytes: self.spill_write_bytes,
            spill_read_bytes: self.spill_read_bytes,
        }
    }
}

/// A point-in-time summary of a [`CacheManager`]'s state, for apps and
/// harnesses that report cache behaviour without poking manager fields.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached bytes currently resident in memory.
    pub resident_bytes: usize,
    /// Cached bytes currently evicted to disk.
    pub disk_bytes: usize,
    /// Eviction events since construction.
    pub evictions: u64,
    /// Bytes written to / read from cache spill files.
    pub spill_write_bytes: u64,
    pub spill_read_bytes: u64,
}

/// A cached RDD handle: the block ids of its partitions on one executor.
#[derive(Debug, Default)]
pub struct CachedRdd<T> {
    pub name: String,
    pub blocks: Vec<BlockId>,
    _t: std::marker::PhantomData<fn() -> T>,
}

impl<T> CachedRdd<T> {
    pub fn new(name: impl Into<String>) -> CachedRdd<T> {
        CachedRdd { name: name.into(), blocks: Vec::new(), _t: std::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeapRecord;
    use deca_heap::HeapConfig;

    fn setup(heap_bytes: usize, budget: usize) -> (Heap, KryoSim, MemoryManager, CacheManager) {
        let dir = std::env::temp_dir().join(format!(
            "deca-cachemgr-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut cm = CacheManager::new(budget);
        cm.set_dir(dir.clone());
        (
            Heap::new(HeapConfig::with_total(heap_bytes)),
            KryoSim::new(),
            MemoryManager::new(16 << 10, dir),
            cm,
        )
    }

    #[test]
    fn objects_block_roundtrip() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i * 3)).collect();
        let id = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert_eq!(cm.block_len(id), 500);
        let (root, len) = cm.objects_root(id, &mut heap, &mut kryo, &mut mm).unwrap();
        let arr = heap.root_ref(root);
        for i in 0..len {
            let obj = heap.array_get_ref(arr, i);
            let rec = <(i64, i64) as HeapRecord>::load(&heap, &classes, obj);
            assert_eq!(rec, (i as i64, i as i64 * 3));
        }
        cm.release(id, &mut heap, &mut mm);
        heap.full_gc();
        assert_eq!(heap.object_count(), 0, "released block is collectable");
    }

    #[test]
    fn serialized_block_roundtrip() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let recs: Vec<(i64, i64)> = (0..300).map(|i| (i, -i)).collect();
        let id = cm.put_serialized(&mut heap, &mut kryo, &mut mm, &recs).unwrap();
        // One byte[] object on the heap, regardless of record count.
        assert_eq!(heap.object_count(), 1);
        let mut got = Vec::new();
        cm.iter_serialized::<(i64, i64)>(id, &mut heap, &mut kryo, &mut mm, |r| got.push(r))
            .unwrap();
        assert_eq!(got, recs);
        assert!(kryo.objects_deserialized >= 300);
    }

    #[test]
    fn deca_block_via_manager() {
        let (mut heap, _kryo, mut mm, mut cm) = setup(8 << 20, 4 << 20);
        let recs: Vec<(i64, i64)> = (0..400).map(|i| (i, i + 1)).collect();
        let id = cm.put_deca(&mut heap, &mut mm, &recs).unwrap();
        let block = cm.deca_block(id);
        assert_eq!(block.len(), 400);
        let back: Vec<(i64, i64)> = block.decode_all(&mut mm, &mut heap).unwrap();
        assert_eq!(back, recs);
        cm.release(id, &mut heap, &mut mm);
        assert_eq!(heap.external_bytes(), 0);
    }

    #[test]
    fn evict_all_spills_every_resident_block() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 4 << 20);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        let recs: Vec<(i64, i64)> = (0..200).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let _b = cm.put_serialized(&mut heap, &mut kryo, &mut mm, &recs).unwrap();
        assert!(cm.resident_bytes() > 0);
        let freed = cm.evict_all(&mut heap, &mut kryo, &mut mm).unwrap();
        assert!(freed > 0);
        assert_eq!(cm.resident_bytes(), 0, "everything evictable is out");
        assert!(cm.disk_bytes() > 0);
        // Blocks stay readable: access swaps them back in.
        let (_root, len) = cm.objects_root(a, &mut heap, &mut kryo, &mut mm).unwrap();
        assert_eq!(len, 200);
    }

    #[test]
    fn budget_pressure_evicts_lru_and_reloads() {
        let (mut heap, mut kryo, mut mm, mut cm) = setup(16 << 20, 64 << 10);
        let classes = <(i64, i64) as HeapRecord>::register(&mut heap);
        // Each block ~80B * 500 = 40KB accounted; two blocks exceed 64KB.
        let recs: Vec<(i64, i64)> = (0..500).map(|i| (i, i)).collect();
        let a = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        let _b = cm.put_objects(&mut heap, &mut kryo, &mut mm, &classes, &recs).unwrap();
        assert!(cm.evictions > 0, "second block must evict the first");
        assert!(cm.disk_bytes() > 0);
        // Access the evicted block: it reloads transparently.
        let (root, len) = cm.objects_root(a, &mut heap, &mut kryo, &mut mm).unwrap();
        let arr = heap.root_ref(root);
        assert_eq!(len, 500);
        let rec = <(i64, i64) as HeapRecord>::load(&heap, &classes, heap.array_get_ref(arr, 42));
        assert_eq!(rec, (42, 42));
    }
}
