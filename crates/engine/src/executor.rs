//! The executor: one simulated JVM process (heap + Deca memory manager +
//! serializer + metrics), running its tasks sequentially.
//!
//! The paper's executors are JVM processes running task threads; here each
//! executor is single-threaded and a [`crate::LocalCluster`] runs several
//! executors in parallel OS threads. Task timing attributes wall time to
//! compute / GC pause / (de)serialization / shuffle / spill-IO buckets
//! (Figure 11's breakdown). Collector pauses are *measured*: the heap's
//! stop-the-world time is charged to the triggering task, and concurrent
//! mark overlap (the Table-4 CMS/G1 plans) is reported alongside without
//! inflating task time.

use std::time::{Duration, Instant};

use deca_core::{MemoryManager, PageRun, ShuffleArena, ShufflePayload};
use deca_heap::{Heap, HeapConfig};

use crate::cache::CacheManager;
use crate::config::ExecutorConfig;
use crate::metrics::{GcAccounting, JobMetrics, TaskMetrics, Timeline};
use crate::serde_sim::KryoSim;
use crate::trace::{dur_ns, TraceEventKind, TraceRecorder};

/// Simulated disk bandwidth for spill accounting (bytes/sec). Real file
/// I/O also happens (tmpfs-fast); this models production SAS-disk costs so
/// spilling hurts proportionally, as in the paper's 100–200 GB runs.
pub const SIM_DISK_BPS: f64 = 500.0 * (1 << 20) as f64;

/// One executor. Fields are public where apps need direct access for
/// mode-specific kernels (the Deca "transformed code" reads pages through
/// `mm`; Spark kernels read objects through `heap`).
pub struct Executor {
    pub heap: Heap,
    pub mm: MemoryManager,
    /// Pooled shuffle pages and byte buffers, reused across shuffle
    /// rounds. A separate field (not inside `mm`) so map kernels can
    /// borrow `mm`/`heap` for container iteration while pushing into
    /// runs through the arena.
    pub arena: ShuffleArena,
    pub kryo: KryoSim,
    pub cache: CacheManager,
    pub config: ExecutorConfig,
    pub tasks: Vec<TaskMetrics>,
    pub job: JobMetrics,
    pub timeline: Timeline,
    /// Structured run-trace recorder (enabled by `config.tracing`); the
    /// driver merges every executor's events into one [`crate::RunTrace`].
    pub trace: TraceRecorder,
    gc_acc: GcAccounting,
    /// Simulated job clock: cumulative attributed task time.
    sim_clock: Duration,
    /// Shuffle time accumulated by helpers since the task started.
    pub(crate) pending_shuffle_read: Duration,
    pub(crate) pending_shuffle_write: Duration,
    /// Spill bytes observed at the start of the running task.
    spill_mark: u64,
    /// A "crashed" executor process: every task fails until the driver
    /// restarts it (fault-injection model; see `crate::faults`).
    poisoned: bool,
}

impl Executor {
    pub fn new(config: ExecutorConfig) -> Executor {
        // The collector algorithm selects its plan (PS → gencopy, CMS →
        // concurrent marksweep, G1 → concurrent immix); an explicit
        // `gc_plan` (or `DECA_GC_PLAN`) overrides that mapping.
        let mut heap_cfg =
            HeapConfig::with_total(config.heap_bytes).with_algorithm(config.gc_algorithm);
        if let Some(plan) = config.gc_plan {
            heap_cfg = heap_cfg.with_plan(plan);
        }
        let heap = Heap::new(heap_cfg);
        let mut mm = MemoryManager::new(config.page_size, config.spill_dir.clone());
        // Lifetime-based releases only reach the run trace when traced;
        // otherwise the manager's log stays off (and empty).
        mm.log_releases = config.tracing;
        // The cache spills under this executor's own directory: block ids
        // are per-executor, so a shared directory would alias
        // `cache-block-{id}.bin` across executors.
        let mut cache = CacheManager::new(config.storage_budget());
        cache.set_dir(config.spill_dir.join("cache"));
        Executor {
            heap,
            mm,
            arena: ShuffleArena::new(config.page_size),
            kryo: KryoSim::new(),
            cache,
            gc_acc: GcAccounting::new(),
            trace: TraceRecorder::new(config.tracing),
            sim_clock: Duration::ZERO,
            config,
            tasks: Vec::new(),
            job: JobMetrics::default(),
            timeline: Timeline::new(),
            pending_shuffle_read: Duration::ZERO,
            pending_shuffle_write: Duration::ZERO,
            spill_mark: 0,
            poisoned: false,
        }
    }

    /// Mark this executor as crashed: subsequent tasks fail with
    /// `ExecutorLost` until [`Executor::recover`]. The flag is only set
    /// from the executor's own thread and read between waves, so crash
    /// semantics are deterministic.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Restart a crashed executor in place. Heap/cache state survives —
    /// the model is a hung JVM brought back, not a wiped node; tasks must
    /// not rely on *uncached* state from before the crash.
    pub fn recover(&mut self) {
        self.poisoned = false;
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Relieve memory pressure: evict every evictable cached block to
    /// disk and run a full collection (the graceful-OOM degradation step
    /// the driver takes before retrying an OOM-failed task in place).
    /// Returns the resident cache bytes freed; eviction I/O shows up in
    /// the cache spill counters and the task's `io` bucket.
    pub fn spill_for_memory(&mut self) -> u64 {
        let freed = self.cache.evict_all(&mut self.heap, &mut self.kryo, &mut self.mm).unwrap_or(0);
        self.heap.full_gc();
        freed
    }

    /// Run one task as scheduling attempt `attempt` of `(stage, task)`,
    /// so the run trace attributes the attempt — and every GC pause,
    /// spill, and page-group release inside it — to its logical position.
    /// The driver's retry engine calls this; [`Executor::run_task`] is
    /// the standalone form (single-executor apps, tests).
    pub fn run_task_in<R>(
        &mut self,
        name: impl Into<String>,
        stage: &str,
        task: usize,
        attempt: u32,
        f: impl FnOnce(&mut Executor) -> R,
    ) -> R {
        self.trace.set_context(stage, task, attempt);
        self.cache.set_fault_ctx(stage, task, attempt);
        let r = self.run_task(name, f);
        self.cache.clear_fault_ctx();
        self.trace.clear_context();
        r
    }

    /// Install the run's fault plan into the cache manager so the
    /// spill-path kill points (`SpillWrite`, `ManifestCommit`,
    /// `SpillRead`, `Rehydrate`) can consult it.
    pub(crate) fn install_fault_plan(&mut self, plan: &crate::faults::FaultPlan) {
        self.cache.install_fault_plan(plan.clone());
    }

    /// Restart a crashed executor *in place with recovery*: clear the
    /// poison flag, then run the cache's [`crash_restart`] — the volatile
    /// (hot/warm) tiers are wiped as a real crash would, and cold blocks
    /// are rehydrated from the spill manifest where it vouches for them,
    /// saving their lineage recompute. One `CacheRehydrate` trace event is
    /// emitted per rehydrated block. `ordinal` is how many times this
    /// executor restarted before (it keys the `Rehydrate` kill point, so a
    /// crash *during* recovery resolves differently on the next restart).
    ///
    /// [`crash_restart`]: crate::cache::CacheManager::crash_restart
    pub(crate) fn restart_in_place(
        &mut self,
        stage: &str,
        ordinal: u32,
    ) -> crate::cache::RehydrateOutcome {
        self.poisoned = false;
        let out = self.cache.crash_restart(&mut self.heap, &mut self.mm, stage, ordinal);
        self.heap.full_gc();
        if self.trace.enabled() {
            let wall = self.trace.now_ns();
            let sim = dur_ns(self.sim_clock);
            for &(id, bytes, records) in &out.rehydrated {
                self.trace.record(
                    TraceEventKind::CacheRehydrate,
                    Some(stage),
                    None,
                    None,
                    None,
                    format!("block-{id}"),
                    wall,
                    0,
                    sim,
                    0,
                    bytes,
                    records,
                );
            }
        }
        out
    }

    /// Run one task, attributing its wall time. Returns the task's result.
    pub fn run_task<R>(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Executor) -> R,
    ) -> R {
        let name = name.into();
        let gc_event_mark = self.heap.stats().events.len();
        let wall_start_ns = self.trace.now_ns();
        let ser0 = self.kryo.ser_time;
        let deser0 = self.kryo.deser_time;
        self.pending_shuffle_read = Duration::ZERO;
        self.pending_shuffle_write = Duration::ZERO;
        self.spill_mark = self.mm.spill_write_bytes
            + self.mm.spill_read_bytes
            + self.cache.spill_write_bytes
            + self.cache.spill_read_bytes;
        // Baseline the GC accounting so earlier tasks' collections are not
        // re-attributed.
        let _ = self.gc_acc.account(self.heap.stats());

        let wall_start = Instant::now();
        let result = f(self);
        let wall = wall_start.elapsed();

        let (gc_pause, gc_concurrent) = self.gc_acc.account(self.heap.stats());
        let ser = self.kryo.ser_time - ser0;
        let deser = self.kryo.deser_time - deser0;
        let spill_now = self.mm.spill_write_bytes
            + self.mm.spill_read_bytes
            + self.cache.spill_write_bytes
            + self.cache.spill_read_bytes;
        let io = Duration::from_secs_f64((spill_now - self.spill_mark) as f64 / SIM_DISK_BPS);

        // Compute = wall minus attributed pauses. Concurrent-mark overlap
        // is *not* subtracted: the marker ran on another thread while this
        // task computed, so the task's wall clock already reflects only
        // whatever CPU contention the race actually caused — measured, not
        // modelled.
        let attributed =
            gc_pause + ser + deser + self.pending_shuffle_read + self.pending_shuffle_write;
        let compute = wall.saturating_sub(attributed);

        let t = TaskMetrics {
            name,
            compute,
            gc_pause,
            gc_concurrent,
            ser,
            deser,
            shuffle_read: self.pending_shuffle_read,
            shuffle_write: self.pending_shuffle_write,
            io,
        };

        if self.trace.enabled() {
            let sim_start = dur_ns(self.sim_clock);
            // Collections this task triggered, one GcPause each. Their
            // wall timestamps are heap-epoch-relative (the clock the
            // lifetime timelines sample), which is why `at` is kept
            // as-is rather than rebased.
            let gc_events: Vec<deca_heap::GcEvent> =
                self.heap.stats().events_since(gc_event_mark).to_vec();
            for ev in gc_events {
                self.trace.record(
                    TraceEventKind::GcPause,
                    None,
                    None,
                    None,
                    None,
                    format!("gc-{}", ev.kind.name()),
                    dur_ns(ev.at),
                    dur_ns(ev.duration),
                    sim_start,
                    dur_ns(ev.duration),
                    ev.live_bytes_after as u64,
                    ev.objects_traced,
                );
            }
            let spill_delta = spill_now - self.spill_mark;
            if spill_delta > 0 {
                self.trace.record(
                    TraceEventKind::SpillIo,
                    None,
                    None,
                    None,
                    None,
                    "spill",
                    wall_start_ns,
                    dur_ns(io),
                    sim_start,
                    dur_ns(io),
                    spill_delta,
                    0,
                );
            }
            // Lifetime-based reclamations since the last drain (this task
            // plus any inter-task releases, e.g. a driver-invoked spill).
            for r in self.mm.take_release_events() {
                self.trace.record(
                    TraceEventKind::PageGroupRelease,
                    None,
                    None,
                    None,
                    None,
                    format!("group-{}", r.group),
                    wall_start_ns,
                    0,
                    sim_start,
                    0,
                    r.bytes as u64,
                    r.pages as u64,
                );
            }
            // Shuffle page hand-overs: ownership of map-output pages moved
            // to the exchange without a copy (the zero-copy analogue of a
            // page-group release — the writer's claim on the pages ends).
            for h in self.mm.take_handover_events() {
                self.trace.record(
                    TraceEventKind::PageHandover,
                    None,
                    None,
                    None,
                    None,
                    "handover",
                    wall_start_ns,
                    0,
                    sim_start,
                    0,
                    h.bytes as u64,
                    h.pages as u64,
                );
            }
            self.trace.record(
                TraceEventKind::TaskAttempt,
                None,
                None,
                None,
                None,
                t.name.clone(),
                wall_start_ns,
                dur_ns(wall),
                sim_start,
                dur_ns(t.total()),
                0,
                0,
            );
        }
        self.sim_clock += t.total();

        self.job.add_task(&t);
        self.job.minor_gcs = self.heap.stats().minor_collections;
        self.job.full_gcs = self.heap.stats().full_collections;
        self.tasks.push(t);
        result
    }

    /// The simulated job clock: cumulative attributed task time on this
    /// executor (advances by each task's [`TaskMetrics::total`]).
    pub fn sim_now(&self) -> Duration {
        self.sim_clock
    }

    /// Start a per-reducer shuffle output run backed by this executor's
    /// page arena.
    pub fn new_run(&mut self) -> PageRun {
        self.arena.new_run()
    }

    /// Finish a map task's per-reducer run and hand it to the exchange.
    ///
    /// In the default zero-copy mode ownership of the pages transfers to
    /// the returned payload — no bytes move — and the hand-over is noted
    /// with the memory manager so it lands in the trace as a
    /// [`TraceEventKind::PageHandover`]. With
    /// [`ExecutorConfig::copying_shuffle`] set (the A/B baseline), the run
    /// is flattened into a fresh `Vec<u8>` (counted on
    /// [`deca_core::ArenaStats::copied_bytes`]) and its pages go straight
    /// back to the pool.
    pub fn hand_over(&mut self, run: PageRun) -> ShufflePayload {
        if self.config.copying_shuffle {
            let bytes = run.to_vec_counted();
            self.arena.recycle_run(run);
            ShufflePayload::Bytes(bytes)
        } else {
            let pages = run.page_count();
            let bytes = run.len();
            self.arena.stats().count_handover(pages as u64, bytes as u64);
            self.mm.note_handover(pages, bytes);
            ShufflePayload::Pages(run)
        }
    }

    /// A pooled byte buffer for byte-format (Spark/SparkSer) map outputs,
    /// cleared and with at least `cap` capacity. Pair with
    /// [`Executor::recycle_payload`] on the read side.
    pub fn take_shuffle_buf(&mut self, cap: usize) -> Vec<u8> {
        self.arena.take_buf(cap)
    }

    /// Return a consumed shuffle payload's storage to this executor's
    /// pools (pages for `Pages`, the byte buffer for `Bytes`).
    pub fn recycle_payload(&mut self, payload: ShufflePayload) {
        self.arena.recycle(payload);
    }

    /// Run a shuffle-write section: its wall time (minus serializer time,
    /// which stays in the `ser` bucket) is attributed to `shuffle_write`.
    pub fn shuffle_write_scope<R>(&mut self, f: impl FnOnce(&mut Executor) -> R) -> R {
        let ser0 = self.kryo.ser_time;
        let t = Instant::now();
        let r = f(self);
        let wall = t.elapsed();
        let ser = self.kryo.ser_time - ser0;
        self.pending_shuffle_write += wall.saturating_sub(ser);
        r
    }

    /// Run a shuffle-read section: wall minus deserializer time is
    /// attributed to `shuffle_read`.
    pub fn shuffle_read_scope<R>(&mut self, f: impl FnOnce(&mut Executor) -> R) -> R {
        let deser0 = self.kryo.deser_time;
        let t = Instant::now();
        let r = f(self);
        let wall = t.elapsed();
        let deser = self.kryo.deser_time - deser0;
        self.pending_shuffle_read += wall.saturating_sub(deser);
        r
    }

    /// Record a lifetime-timeline sample for the profiled class (Figures
    /// 8a/9a): live instance count and cumulative collector time.
    pub fn sample_timeline(&mut self, class: deca_heap::ClassId) {
        let live = self.heap.live_count(class);
        let gc = self.heap.stats().total_gc_time();
        let at = self.heap.elapsed();
        self.timeline.record(at, live, gc);
    }

    /// Release every cache block stamped with `job` (the job service's
    /// end-of-job cleanup: shared long-lived executors must not
    /// accumulate finished jobs' cache state).
    pub fn release_job_blocks(&mut self, job: u64) {
        for id in self.cache.blocks_of_job(job) {
            self.cache.release(id, &mut self.heap, &mut self.mm);
        }
    }

    /// Refresh job-level cache statistics from the cache manager.
    pub fn finish_job(&mut self) {
        self.job.cache_bytes = self.cache.resident_bytes();
        self.job.swapped_cache_bytes = self.cache.disk_bytes();
    }

    // ------------------------------------------------------------------
    // accessors — what apps and harnesses read without field-poking.
    // Mode-specific kernels (Deca page reads, Spark heap walks) still use
    // the public `heap` / `mm` fields directly.
    // ------------------------------------------------------------------

    /// The execution mode this executor runs in.
    pub fn mode(&self) -> crate::config::ExecutionMode {
        self.config.mode
    }

    /// Aggregated job metrics so far.
    pub fn metrics(&self) -> &JobMetrics {
        &self.job
    }

    /// Per-task breakdowns, in completion order.
    pub fn task_metrics(&self) -> &[TaskMetrics] {
        &self.tasks
    }

    /// Collector statistics of the simulated heap.
    pub fn heap_stats(&self) -> &deca_heap::GcStats {
        self.heap.stats()
    }

    /// Objects currently on the simulated heap (allocated, uncollected).
    pub fn object_count(&self) -> usize {
        self.heap.object_count()
    }

    /// Cache manager occupancy and eviction counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// The lifetime timeline recorded by [`Executor::sample_timeline`].
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The most recently completed task's metrics.
    pub fn last_task(&self) -> Option<&TaskMetrics> {
        self.tasks.last()
    }

    /// The slowest task by total time (Figure 11 reports the slowest task).
    pub fn slowest_task(&self) -> Option<&TaskMetrics> {
        self.tasks.iter().max_by_key(|t| t.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;
    use deca_heap::{ClassBuilder, FieldKind};

    fn exec() -> Executor {
        Executor::new(ExecutorConfig::new(ExecutionMode::Spark, 4 << 20))
    }

    #[test]
    fn task_attribution_includes_gc() {
        let mut e = exec();
        let c = e.heap.define_class(
            ClassBuilder::new("T").field("a", FieldKind::I64).field("b", FieldKind::I64),
        );
        e.run_task("churn", |e| {
            for _ in 0..300_000 {
                e.heap.alloc(c).unwrap();
            }
        });
        let t = e.last_task().unwrap();
        assert_eq!(t.name, "churn");
        assert!(e.heap.stats().minor_collections > 0);
        assert!(t.gc_pause > Duration::ZERO, "allocation churn must show GC time");
        assert!(e.job.exec >= t.gc_pause);
    }

    #[test]
    fn serialization_attribution() {
        let mut e = exec();
        let recs: Vec<(i64, i64)> = (0..20_000).map(|i| (i, i * 2)).collect();
        let buf = e.run_task("ser", |e| e.kryo.serialize_all(&recs));
        assert!(e.last_task().unwrap().ser > Duration::ZERO);
        let back = e.run_task("deser", |e| e.kryo.deserialize_all::<(i64, i64)>(&buf));
        assert_eq!(back.len(), recs.len());
        assert!(e.last_task().unwrap().deser > Duration::ZERO);
        assert_eq!(e.last_task().unwrap().ser, Duration::ZERO, "per-task deltas only");
    }

    #[test]
    fn concurrent_collector_reports_smaller_pause() {
        // CMS maps to the concurrent mark-sweep plan: the heap-sized trace
        // runs on a real marker thread racing the mutator, so the cycle's
        // stop-the-world pauses (initial mark + remark) cover only the
        // snapshot and the dirty log. Wall-clock ratios flake under
        // parallel test load, so the pause comparison is on *measured
        // traced work* — schedule-independent — plus the measured overlap.
        // (This test once compared retired `PauseModel` constants; the
        // overlap is now measured off the actual thread.)
        use deca_heap::GcEventKind;
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 4 << 20)
            .gc_algorithm(deca_heap::GcAlgorithm::Cms);
        let mut e = Executor::new(cfg);
        assert!(e.heap.config().concurrent, "CMS selects a concurrent plan");
        let c = e.heap.define_class(ClassBuilder::new("K").field("v", FieldKind::I64));
        let arr = e.heap.define_array_class("Object[]", FieldKind::Ref);
        e.run_task("pin+mark", |e| {
            // Build a large tenured live set, the graph the cycle marks.
            let n = 30_000;
            let holder = e.heap.alloc_array(arr, n).unwrap();
            let root = e.heap.add_root(holder);
            for i in 0..n {
                let o = e.heap.alloc(c).unwrap();
                let holder = e.heap.root_ref(root);
                e.heap.array_set_ref(holder, i, o);
            }
            e.heap.full_gc(); // tenure it (the STW baseline trace)
                              // One concurrent cycle to completion, allocating throughout.
            assert!(e.heap.start_concurrent_cycle());
            let mut spins: u64 = 0;
            while !e.heap.poll_gc() {
                e.heap.alloc(c).unwrap();
                std::thread::yield_now();
                spins += 1;
                assert!(spins < 100_000_000, "concurrent marker never finished");
            }
        });
        let stats = e.heap.stats().clone();
        assert_eq!(stats.concurrent_cycles, 1);
        assert_eq!(stats.concurrent_aborts, 0);
        assert!(stats.concurrent_mark_time > Duration::ZERO, "overlap is measured, not modelled");
        let traced = |kind| {
            stats
                .events
                .iter()
                .find(|ev| ev.kind == kind)
                .unwrap_or_else(|| panic!("expected a {kind:?} event"))
                .objects_traced
        };
        let stw_full = traced(GcEventKind::Full);
        let conc_mark = traced(GcEventKind::ConcMark);
        let remark = traced(GcEventKind::Remark);
        assert!(conc_mark >= 30_000, "the racing thread traced the tenured graph");
        assert!(
            remark < stw_full / 10,
            "the cycle's pause traces only the dirty log ({remark} objects), a sliver of the \
             STW full collection's whole-heap trace ({stw_full})"
        );
        // Accounting: pauses are charged to the task; the overlap is
        // reported beside them and never inflates task time.
        let t = e.last_task().unwrap();
        assert_eq!(t.gc_concurrent, stats.concurrent_mark_time);
        assert_eq!(e.job.gc, stats.total_gc_time());
        assert_eq!(e.job.gc_concurrent, stats.concurrent_mark_time);
        assert_eq!(e.sim_now(), e.job.exec, "sim clock excludes concurrent overlap");
    }

    #[test]
    fn trace_attributes_gc_pauses_to_the_triggering_task() {
        use crate::trace::TraceEventKind;
        let mut e = exec();
        let c = e.heap.define_class(
            ClassBuilder::new("T").field("a", FieldKind::I64).field("b", FieldKind::I64),
        );
        e.run_task_in("warm", "s", 0, 0, |_e| {});
        let pauses_before =
            e.trace.events().iter().filter(|ev| ev.kind == TraceEventKind::GcPause).count();
        assert_eq!(pauses_before, 0, "no collections, no GcPause events");
        e.run_task_in("churn", "s", 1, 0, |e| {
            for _ in 0..300_000 {
                e.heap.alloc(c).unwrap();
            }
        });
        let pauses: Vec<_> =
            e.trace.events().iter().filter(|ev| ev.kind == TraceEventKind::GcPause).collect();
        assert_eq!(pauses.len() as u64, e.heap.stats().total_collections());
        assert!(pauses.iter().all(|ev| ev.task == Some(1)), "pauses belong to the churn task");
        // Traced-object attribution is conserved: the per-event counts sum
        // to the heap's total. (Individual minor GCs here may trace zero —
        // the churn is all garbage.)
        assert_eq!(pauses.iter().map(|ev| ev.count).sum::<u64>(), e.heap.stats().objects_traced);
        // Every attempt is recorded, with the simulated clock advancing.
        let attempts: Vec<_> =
            e.trace.events().iter().filter(|ev| ev.kind == TraceEventKind::TaskAttempt).collect();
        assert_eq!(attempts.len(), 2);
        assert!(attempts[1].sim_ns >= attempts[0].sim_ns + attempts[0].sim_dur_ns);
        assert_eq!(e.sim_now(), e.job.exec, "sim clock is cumulative attributed time");
    }

    #[test]
    fn tracing_off_records_nothing_and_keeps_metrics() {
        let cfg = ExecutorConfig::new(ExecutionMode::Spark, 4 << 20).tracing(false);
        let mut e = Executor::new(cfg);
        let c = e.heap.define_class(ClassBuilder::new("K").field("v", FieldKind::I64));
        e.run_task("work", |e| {
            for _ in 0..50_000 {
                e.heap.alloc(c).unwrap();
            }
        });
        assert!(e.trace.is_empty());
        assert!(!e.mm.log_releases);
        assert_eq!(e.tasks.len(), 1, "metrics are unaffected by the tracing knob");
    }

    #[test]
    fn timeline_sampling() {
        let mut e = exec();
        let c = e.heap.define_class(ClassBuilder::new("P").field("x", FieldKind::I64));
        e.sample_timeline(c);
        for _ in 0..100 {
            e.heap.alloc(c).unwrap();
        }
        e.sample_timeline(c);
        assert_eq!(e.timeline.samples.len(), 2);
        assert_eq!(e.timeline.peak_live(), 100);
    }
}
