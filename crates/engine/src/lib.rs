//! # deca-engine — a mini-Spark dataflow substrate
//!
//! The evaluation baselines of the paper are defined by *where record data
//! lives* during a job:
//!
//! * **Spark** — records are object graphs on the managed heap; cached RDDs
//!   pin millions of long-living objects that every full collection must
//!   trace (the pathology of §2.2);
//! * **SparkSer** — cached RDDs hold Kryo-serialized byte blocks (few heap
//!   objects), but every access pays deserialization and re-materialises
//!   temporary objects (§6.2, §6.5);
//! * **Deca** — cached RDDs and shuffle buffers hold decomposed raw bytes in
//!   the page groups of `deca-core`; accesses read fields at offsets with no
//!   object materialisation, and space is reclaimed per container lifetime.
//!
//! This crate provides the executors, cache manager, shuffle buffers,
//! serializer and metrics that run the same workloads in all three modes
//! over the simulated heap of `deca-heap`.
//!
//! Scale note: the paper runs 5 nodes × 30 GB executors; we run in-process
//! executors with MB-scale heaps and proportionally scaled datasets. All
//! compute, tracing, copying and (de)serialization costs are real measured
//! work; see DESIGN.md §1 for the substitution argument.

pub mod cache;
pub mod cluster;
pub mod config;
pub mod driver;
pub mod error;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod record;
pub mod serde_sim;
pub mod server;
pub mod session;
pub mod shuffle;
pub mod trace;

pub use cache::{CacheError, CacheStats, CachedRdd, RehydrateOutcome, Tier};
pub use cluster::{ExecutorHealth, LocalCluster};
pub use config::{
    ExecutionMode, ExecutorConfig, ExecutorConfigBuilder, RetryPolicy, SchedulerMode, ServerConfig,
};
pub use driver::{ClusterSession, MapOutputs, ShufflePayload, TaskContext};
pub use error::EngineError;
pub use executor::Executor;
pub use faults::{FaultPlan, FaultSite, FaultSpec};
pub use metrics::{GcAccounting, JobMetrics, StageMetrics, TaskMetrics, Timeline, TimelineSample};
pub use record::{HeapRecord, KryoRecord, Record};
pub use serde_sim::KryoSim;
pub use server::{AppJob, DecaServer, JobCtx, JobHandle, JobOutput, JobSpec, ServerJobSession};
pub use session::{Cached, DecaSession};
pub use shuffle::{SparkGroupShuffle, SparkHashShuffle};
pub use trace::{RunTrace, TraceEvent, TraceEventKind, TraceRecorder};
