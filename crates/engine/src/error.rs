//! The unified engine error type.
//!
//! Every fallible engine-facing operation — session caching, cluster
//! stages, shuffle exchange, spill I/O — returns [`EngineError`], so apps
//! and harnesses handle one type instead of the per-layer errors
//! (`CacheError`, `OomError`, `MemError`) the lower crates raise.

use deca_core::MemError;
use deca_heap::OomError;

use crate::cache::CacheError;

/// Any error an engine session can raise.
#[derive(Debug)]
pub enum EngineError {
    /// Cache manager failure (block put/get/evict).
    Cache(CacheError),
    /// Simulated-heap allocation failure.
    Oom(OomError),
    /// Deca memory-manager failure (page budgeting, swap).
    Mem(MemError),
    /// Spill / swap file I/O failure.
    Io(std::io::Error),
    /// Malformed shuffle data or a mis-sized exchange (e.g. a map task
    /// produced outputs for the wrong number of reducers).
    Shuffle(String),
    /// A task failed; carries the stage and task index for diagnosis.
    Task { stage: String, task: usize, source: Box<EngineError> },
}

impl EngineError {
    /// Wrap an error with the stage/task it occurred in.
    pub fn in_task(self, stage: &str, task: usize) -> EngineError {
        match self {
            // Don't re-wrap: keep the innermost task attribution.
            e @ EngineError::Task { .. } => e,
            e => EngineError::Task { stage: stage.to_string(), task, source: Box::new(e) },
        }
    }
}

impl From<CacheError> for EngineError {
    fn from(e: CacheError) -> Self {
        // Flatten: CacheError already wraps Oom/Mem/Io; keep the cache
        // context only for genuinely cache-level failures.
        EngineError::Cache(e)
    }
}

impl From<OomError> for EngineError {
    fn from(e: OomError) -> Self {
        EngineError::Oom(e)
    }
}

impl From<MemError> for EngineError {
    fn from(e: MemError) -> Self {
        EngineError::Mem(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cache(e) => write!(f, "engine: {e}"),
            EngineError::Oom(e) => write!(f, "engine: {e}"),
            EngineError::Mem(e) => write!(f, "engine: {e}"),
            EngineError::Io(e) => write!(f, "engine I/O: {e}"),
            EngineError::Shuffle(msg) => write!(f, "engine shuffle: {msg}"),
            EngineError::Task { stage, task, source } => {
                write!(f, "stage {stage:?} task {task}: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Cache(e) => Some(e),
            EngineError::Oom(e) => Some(e),
            EngineError::Mem(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Shuffle(_) => None,
            EngineError::Task { source, .. } => Some(source.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let oom = OomError { requested: 64 };
        let e = EngineError::from(oom).in_task("wc-map", 3);
        let msg = e.to_string();
        assert!(msg.contains("wc-map"), "{msg}");
        assert!(msg.contains("task 3"), "{msg}");
        assert!(e.source().is_some());
        // Re-wrapping keeps the innermost attribution.
        let e2 = e.in_task("outer", 0);
        assert!(e2.to_string().contains("wc-map"));
    }

    #[test]
    fn conversions_flatten_layers() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "disk gone");
        assert!(matches!(EngineError::from(io), EngineError::Io(_)));
        let ce = CacheError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x"));
        assert!(matches!(EngineError::from(ce), EngineError::Cache(_)));
        let me = EngineError::Shuffle("bad frame".into());
        assert_eq!(me.to_string(), "engine shuffle: bad frame");
    }
}
