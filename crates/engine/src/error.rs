//! The unified engine error type.
//!
//! Every fallible engine-facing operation — session caching, cluster
//! stages, shuffle exchange, spill I/O — returns [`EngineError`], so apps
//! and harnesses handle one type instead of the per-layer errors
//! (`CacheError`, `OomError`, `MemError`) the lower crates raise.
//!
//! Errors carry a **transient/fatal classification**
//! ([`EngineError::is_transient`]): transient failures are the ones the
//! driver's retry machinery may absorb (memory pressure, a lost executor,
//! a corrupt shuffle frame, an injected fault — all of which a
//! deterministic, restartable task model recovers from by re-running),
//! while fatal ones (broken spill I/O, page-manager invariant violations)
//! abort the job immediately.

use deca_core::MemError;
use deca_heap::OomError;

use crate::cache::CacheError;
use crate::faults::FaultSite;

/// Any error an engine session can raise.
#[derive(Debug)]
pub enum EngineError {
    /// Cache manager failure (block put/get/evict).
    Cache(CacheError),
    /// Simulated-heap allocation failure.
    Oom(OomError),
    /// Deca memory-manager failure (page budgeting, swap).
    Mem(MemError),
    /// Spill / swap file I/O failure.
    Io(std::io::Error),
    /// Malformed shuffle data or a mis-sized exchange (e.g. a map task
    /// produced outputs for the wrong number of reducers).
    Shuffle(String),
    /// The executor hosting the task crashed (or was already poisoned by a
    /// crash earlier in the wave). The task itself did no wrong: it can be
    /// re-run on any healthy executor.
    ExecutorLost { executor: usize },
    /// No healthy executor remains in the cluster: `quarantined` of
    /// `executors` are out of service, so the stage cannot schedule at
    /// all. This is a cluster-state failure — no single executor (and no
    /// task) is at fault.
    AllExecutorsLost { executors: usize, quarantined: usize },
    /// A deterministic fault-plan injection fired at the given site.
    Injected { site: FaultSite },
    /// The watchdog failed an attempt that exceeded its per-task deadline
    /// (`RetryPolicy::task_deadline`). Transient: a hang is indistinguishable
    /// from a slow or wedged host, and re-running the deterministic task on
    /// another executor can succeed.
    Deadline { stage: String, task: usize, attempt: u32, budget: std::time::Duration },
    /// The job was cancelled cooperatively — by `JobHandle::cancel()` or
    /// by its `JobSpec::deadline` expiring. Fatal by design: cancellation
    /// is a caller decision, not a recoverable task failure.
    Cancelled { reason: String },
    /// The job service refused a submission: the tenant already has its
    /// maximum number of jobs queued or running.
    AdmissionRejected { tenant: String, in_flight: usize, limit: usize },
    /// The job service is shutting down (or has shut down) and no longer
    /// accepts or runs jobs.
    ServerShutdown,
    /// A task body panicked on a worker thread. The panic was caught at
    /// the pool boundary so one bad job cannot wedge the shared cluster.
    TaskPanic { stage: String, task: usize, message: String },
    /// A task failed; carries the stage and task index for diagnosis.
    Task { stage: String, task: usize, source: Box<EngineError> },
}

impl EngineError {
    /// Wrap an error with the stage/task it occurred in.
    pub fn in_task(self, stage: &str, task: usize) -> EngineError {
        match self {
            // Don't re-wrap: keep the innermost task attribution.
            e @ EngineError::Task { .. } => e,
            e => EngineError::Task { stage: stage.to_string(), task, source: Box::new(e) },
        }
    }

    /// Is this failure retryable? Transient errors are the ones re-running
    /// the (deterministic) task can fix: memory pressure, executor loss,
    /// shuffle corruption, injected faults. Fatal errors — spill I/O,
    /// page-manager invariant violations, non-OOM cache failures — abort
    /// the job. `Task` wrappers classify by their innermost cause.
    pub fn is_transient(&self) -> bool {
        match self {
            EngineError::Oom(_) => true,
            EngineError::ExecutorLost { .. } => true,
            EngineError::AllExecutorsLost { .. } => true,
            EngineError::Injected { .. } => true,
            EngineError::Deadline { .. } => true,
            EngineError::Shuffle(_) => true,
            EngineError::Cache(CacheError::Oom(_)) => true,
            // A spill-path kill point models the executor dying mid-spill;
            // the driver restarts the executor and re-runs the task.
            EngineError::Cache(CacheError::Injected(_)) => true,
            EngineError::Cache(_) => false,
            EngineError::Mem(_) | EngineError::Io(_) => false,
            // Admission and shutdown are caller-facing refusals, and a
            // panicking task is deterministic — re-running cannot help.
            EngineError::AdmissionRejected { .. } => false,
            EngineError::ServerShutdown => false,
            EngineError::TaskPanic { .. } => false,
            EngineError::Cancelled { .. } => false,
            EngineError::Task { source, .. } => source.is_transient(),
        }
    }

    /// If this failure is an injected *kill-point* fault — one of the
    /// spill-path sites whose semantics are "the executor process died
    /// here" — return the site, so the driver can poison the executor
    /// and route recovery through restart-in-place instead of a plain
    /// task retry. Walks `Task` wrappers to the innermost cause.
    pub fn injected_kill(&self) -> Option<FaultSite> {
        match self {
            EngineError::Cache(CacheError::Injected(site)) if site.kills_executor() => Some(*site),
            EngineError::Injected { site } if site.kills_executor() => Some(*site),
            EngineError::Task { source, .. } => source.injected_kill(),
            _ => None,
        }
    }

    /// Is this failure specifically memory pressure (a heap or cache OOM,
    /// or an injected allocation fault)? These get the graceful-degradation
    /// treatment: spill the executor's cache to disk and retry in place
    /// rather than migrating the task.
    pub fn is_memory_pressure(&self) -> bool {
        match self {
            EngineError::Oom(_) | EngineError::Cache(CacheError::Oom(_)) => true,
            EngineError::Injected { site } => *site == FaultSite::Alloc,
            EngineError::Task { source, .. } => source.is_memory_pressure(),
            _ => false,
        }
    }
}

impl From<CacheError> for EngineError {
    fn from(e: CacheError) -> Self {
        // Flatten: CacheError already wraps Oom/Mem/Io; keep the cache
        // context only for genuinely cache-level failures.
        EngineError::Cache(e)
    }
}

impl From<OomError> for EngineError {
    fn from(e: OomError) -> Self {
        EngineError::Oom(e)
    }
}

impl From<MemError> for EngineError {
    fn from(e: MemError) -> Self {
        EngineError::Mem(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cache(e) => write!(f, "engine: {e}"),
            EngineError::Oom(e) => write!(f, "engine: {e}"),
            EngineError::Mem(e) => write!(f, "engine: {e}"),
            EngineError::Io(e) => write!(f, "engine I/O: {e}"),
            EngineError::Shuffle(msg) => write!(f, "engine shuffle: {msg}"),
            EngineError::ExecutorLost { executor } => {
                write!(f, "executor {executor} lost (crashed or poisoned)")
            }
            EngineError::AllExecutorsLost { executors, quarantined } => {
                write!(f, "no healthy executors: {quarantined} of {executors} quarantined")
            }
            EngineError::Injected { site } => write!(f, "injected {site} fault"),
            EngineError::Deadline { stage, task, attempt, budget } => {
                write!(
                    f,
                    "stage {stage:?} task {task} attempt {attempt} exceeded its {budget:?} deadline"
                )
            }
            EngineError::Cancelled { reason } => write!(f, "job cancelled: {reason}"),
            EngineError::AdmissionRejected { tenant, in_flight, limit } => {
                write!(f, "tenant {tenant:?} rejected: {in_flight} jobs in flight (limit {limit})")
            }
            EngineError::ServerShutdown => write!(f, "job service shut down"),
            EngineError::TaskPanic { stage, task, message } => {
                write!(f, "stage {stage:?} task {task} panicked: {message}")
            }
            EngineError::Task { stage, task, source } => {
                write!(f, "stage {stage:?} task {task}: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Cache(e) => Some(e),
            EngineError::Oom(e) => Some(e),
            EngineError::Mem(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Shuffle(_) => None,
            EngineError::ExecutorLost { .. } => None,
            EngineError::AllExecutorsLost { .. } => None,
            EngineError::Injected { .. } => None,
            EngineError::Deadline { .. } => None,
            EngineError::Cancelled { .. } => None,
            EngineError::AdmissionRejected { .. } => None,
            EngineError::ServerShutdown => None,
            EngineError::TaskPanic { .. } => None,
            EngineError::Task { source, .. } => Some(source.as_ref()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let oom = OomError { requested: 64 };
        let e = EngineError::from(oom).in_task("wc-map", 3);
        let msg = e.to_string();
        assert!(msg.contains("wc-map"), "{msg}");
        assert!(msg.contains("task 3"), "{msg}");
        assert!(e.source().is_some());
        // Re-wrapping keeps the innermost attribution.
        let e2 = e.in_task("outer", 0);
        assert!(e2.to_string().contains("wc-map"));
    }

    #[test]
    fn conversions_flatten_layers() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "disk gone");
        assert!(matches!(EngineError::from(io), EngineError::Io(_)));
        let ce = CacheError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x"));
        assert!(matches!(EngineError::from(ce), EngineError::Cache(_)));
        let me = EngineError::Shuffle("bad frame".into());
        assert_eq!(me.to_string(), "engine shuffle: bad frame");
    }

    #[test]
    fn display_covers_fault_variants() {
        let lost = EngineError::ExecutorLost { executor: 2 };
        assert_eq!(lost.to_string(), "executor 2 lost (crashed or poisoned)");
        assert!(lost.source().is_none());
        let injected = EngineError::Injected { site: FaultSite::ShuffleFrame };
        assert_eq!(injected.to_string(), "injected shuffle-frame fault");
        assert!(injected.source().is_none());
        let all = EngineError::AllExecutorsLost { executors: 4, quarantined: 4 };
        assert_eq!(all.to_string(), "no healthy executors: 4 of 4 quarantined");
        assert!(all.source().is_none());
        assert!(all.is_transient(), "a replaced cluster could re-run the job");
        assert!(!all.is_memory_pressure());
        // Task attribution renders around the fault cause.
        let wrapped = EngineError::Injected { site: FaultSite::TaskBody }.in_task("pr-map", 1);
        let msg = wrapped.to_string();
        assert!(msg.contains("pr-map") && msg.contains("injected task-body fault"), "{msg}");
    }

    #[test]
    fn transient_classification() {
        // Transient: retrying the deterministic task can succeed.
        assert!(EngineError::Oom(OomError { requested: 1 }).is_transient());
        assert!(EngineError::ExecutorLost { executor: 0 }.is_transient());
        assert!(EngineError::Injected { site: FaultSite::TaskBody }.is_transient());
        assert!(EngineError::Shuffle("corrupt frame".into()).is_transient());
        assert!(EngineError::Cache(CacheError::Oom(OomError { requested: 8 })).is_transient());
        // Fatal: the environment is broken, not the attempt.
        assert!(
            !EngineError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x")).is_transient()
        );
        let cache_io = CacheError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x"));
        assert!(!EngineError::Cache(cache_io).is_transient());
        // Task wrappers delegate to the innermost cause.
        let wrapped = EngineError::Oom(OomError { requested: 1 }).in_task("s", 0);
        assert!(wrapped.is_transient() && wrapped.is_memory_pressure());
        let fatal =
            EngineError::Io(std::io::Error::new(std::io::ErrorKind::Other, "x")).in_task("s", 0);
        assert!(!fatal.is_transient());
    }

    #[test]
    fn injected_kill_detection() {
        // A spill-path kill point is transient (restart + re-run fixes it)
        // and reports the site through Task wrappers.
        let kill = EngineError::Cache(CacheError::Injected(FaultSite::SpillWrite));
        assert!(kill.is_transient());
        assert!(!kill.is_memory_pressure());
        assert_eq!(kill.injected_kill(), Some(FaultSite::SpillWrite));
        let wrapped =
            EngineError::Cache(CacheError::Injected(FaultSite::ManifestCommit)).in_task("s", 2);
        assert_eq!(wrapped.injected_kill(), Some(FaultSite::ManifestCommit));
        // Non-kill injections (task-body, alloc, …) are not kills.
        assert_eq!(EngineError::Injected { site: FaultSite::TaskBody }.injected_kill(), None);
        assert_eq!(EngineError::Oom(OomError { requested: 1 }).injected_kill(), None);
    }

    #[test]
    fn server_variants_are_fatal() {
        let rejected =
            EngineError::AdmissionRejected { tenant: "acme".into(), in_flight: 3, limit: 3 };
        assert!(!rejected.is_transient());
        assert!(rejected.to_string().contains("acme") && rejected.to_string().contains("limit 3"));
        assert!(rejected.source().is_none());
        assert!(!EngineError::ServerShutdown.is_transient());
        let panic =
            EngineError::TaskPanic { stage: "wc-map".into(), task: 2, message: "boom".into() };
        assert!(!panic.is_transient() && !panic.is_memory_pressure());
        assert_eq!(panic.injected_kill(), None);
        assert!(panic.to_string().contains("boom"));
    }

    #[test]
    fn watchdog_variants_classify_correctly() {
        // A deadline overrun is transient: the watchdog retries the
        // deterministic task elsewhere, exactly like a lost executor.
        let late = EngineError::Deadline {
            stage: "wc-map".into(),
            task: 3,
            attempt: 1,
            budget: std::time::Duration::from_millis(100),
        };
        assert!(late.is_transient());
        assert!(!late.is_memory_pressure());
        assert_eq!(late.injected_kill(), None);
        assert!(late.source().is_none());
        let msg = late.to_string();
        assert!(msg.contains("wc-map") && msg.contains("task 3") && msg.contains("100ms"), "{msg}");
        // Wrapping keeps the classification.
        assert!(late.in_task("wc-map", 3).is_transient());
        // Cancellation is a caller decision — fatal, never retried.
        let gone = EngineError::Cancelled { reason: "deadline 5ms exceeded".into() };
        assert!(!gone.is_transient());
        assert!(!gone.is_memory_pressure());
        assert_eq!(gone.injected_kill(), None);
        assert!(gone.source().is_none());
        assert!(gone.to_string().contains("deadline 5ms exceeded"));
    }

    #[test]
    fn memory_pressure_classification() {
        assert!(EngineError::Oom(OomError { requested: 1 }).is_memory_pressure());
        assert!(EngineError::Injected { site: FaultSite::Alloc }.is_memory_pressure());
        assert!(!EngineError::Injected { site: FaultSite::TaskBody }.is_memory_pressure());
        assert!(!EngineError::ExecutorLost { executor: 0 }.is_memory_pressure());
        assert!(!EngineError::Shuffle("x".into()).is_memory_pressure());
    }
}
