//! Metrics: task/job breakdowns, collector accounting, and the lifetime
//! timelines behind Figures 8(a)/9(a).

use std::time::Duration;

use deca_heap::GcStats;

/// Breakdown of one task's wall time, matching Figure 11's bars.
#[derive(Clone, Debug, Default)]
pub struct TaskMetrics {
    pub name: String,
    /// Pure computation (wall minus everything attributed below).
    pub compute: Duration,
    /// Stop-the-world collection pauses attributed to this task.
    pub gc_pause: Duration,
    /// Concurrent-mark wall time that overlapped this task (the marker
    /// thread racing the mutator). Observability only: it is *not* part
    /// of [`TaskMetrics::total`], because the task did not stop for it.
    pub gc_concurrent: Duration,
    /// Serialization time (Kryo-sim encodes, shuffle writes).
    pub ser: Duration,
    /// Deserialization time.
    pub deser: Duration,
    pub shuffle_read: Duration,
    pub shuffle_write: Duration,
    /// Spill / swap file I/O.
    pub io: Duration,
}

impl TaskMetrics {
    /// Total reported task time.
    pub fn total(&self) -> Duration {
        self.compute
            + self.gc_pause
            + self.ser
            + self.deser
            + self.shuffle_read
            + self.shuffle_write
            + self.io
    }
}

/// Aggregates over a whole job (or a whole run).
#[derive(Clone, Debug, Default)]
pub struct JobMetrics {
    /// Submission id of the job these aggregates belong to (0 for
    /// standalone sessions; the job service stamps its per-job roll-ups
    /// so multi-job metrics never alias).
    pub job: u64,
    pub exec: Duration,
    pub gc: Duration,
    /// Concurrent-mark overlap summed across tasks (not part of `exec`).
    pub gc_concurrent: Duration,
    pub ser: Duration,
    pub deser: Duration,
    pub shuffle_read: Duration,
    pub shuffle_write: Duration,
    pub io: Duration,
    /// Bytes held by the cache manager at job end.
    pub cache_bytes: usize,
    /// Bytes of cached data currently swapped to disk.
    pub swapped_cache_bytes: usize,
    pub minor_gcs: u64,
    pub full_gcs: u64,
    /// Physical task runs across the job: `tasks + retries + oom_reruns`
    /// when every stage completes.
    pub attempts: u64,
    /// Task re-runs the retry machinery performed.
    pub retries: u64,
    /// Executors quarantined (blacklisted) during the job.
    pub quarantines: u64,
    /// Executors restarted in place (the spare-last-executor path).
    pub restarts: u64,
    /// In-place re-runs performed by graceful OOM degradation (each is a
    /// physical run counted in `attempts`, never a `retries` entry).
    pub oom_reruns: u64,
    /// OOM-classified failures absorbed by spill-and-retry degradation
    /// (`oom_reruns` that succeeded).
    pub oom_recoveries: u64,
    /// Cached blocks rehydrated from the spill manifest across every
    /// restart-in-place (each saved its lineage recompute).
    pub rehydrated_blocks: u64,
    /// On-disk payload bytes of those rehydrated blocks.
    pub rehydrated_bytes: u64,
    /// Speculative duplicate attempts launched by the watchdog (timing-
    /// dependent: how many launch depends on wall-clock interleaving, so
    /// this is observability, never part of the determinism invariant).
    pub speculative_launched: u64,
    /// Speculative duplicates that won their race (timing-dependent).
    pub speculative_wins: u64,
    /// Attempts failed by the watchdog for exceeding their deadline.
    pub timeouts: u64,
    /// Jobs cancelled (by `JobHandle::cancel()` or a job deadline); 1 for
    /// a cancelled job's own roll-up, summed across jobs in merged views.
    pub cancelled: u64,
    /// Simulated time spent on retry backoff and recovery scheduling.
    pub recovery: Duration,
}

impl JobMetrics {
    pub fn add_task(&mut self, t: &TaskMetrics) {
        self.exec += t.total();
        self.gc += t.gc_pause;
        self.gc_concurrent += t.gc_concurrent;
        self.ser += t.ser;
        self.deser += t.deser;
        self.shuffle_read += t.shuffle_read;
        self.shuffle_write += t.shuffle_write;
        self.io += t.io;
    }

    /// Fold a stage's fault-handling counters into the job totals.
    pub fn add_stage_recovery(&mut self, s: &StageMetrics) {
        self.attempts += s.attempts;
        self.retries += s.retries;
        self.quarantines += s.quarantines;
        self.restarts += s.restarts;
        self.oom_reruns += s.oom_reruns;
        self.oom_recoveries += s.oom_recoveries;
        self.rehydrated_blocks += s.rehydrated_blocks;
        self.rehydrated_bytes += s.rehydrated_bytes;
        self.speculative_launched += s.speculative_launched;
        self.speculative_wins += s.speculative_wins;
        self.timeouts += s.timeouts;
        self.recovery += s.recovery;
    }

    /// GC share of execution (Table 3's "ratio" column).
    pub fn gc_ratio(&self) -> f64 {
        if self.exec.is_zero() {
            0.0
        } else {
            self.gc.as_secs_f64() / self.exec.as_secs_f64()
        }
    }
}

/// Roll-up of one stage's task wave across a cluster's executors
/// (the per-stage rows of a Spark UI, feeding [`JobMetrics`]).
///
/// `exec` is the wave's critical path: the busiest executor's summed task
/// time (executors run in parallel, so the wave takes as long as its
/// slowest member). The remaining buckets are sums over all tasks.
#[derive(Clone, Debug, Default)]
pub struct StageMetrics {
    pub name: String,
    /// Tasks run in this wave (≥ executor count tasks are multiplexed
    /// round-robin).
    pub tasks: usize,
    /// Critical-path time: max over executors of their summed task totals.
    pub exec: Duration,
    pub compute: Duration,
    pub gc: Duration,
    /// Concurrent-mark overlap summed across the wave's tasks (excluded
    /// from `total_task_time`; the mutator kept running through it).
    pub gc_concurrent: Duration,
    pub ser: Duration,
    pub deser: Duration,
    pub shuffle_read: Duration,
    pub shuffle_write: Duration,
    pub io: Duration,
    /// Bytes moved through the all-to-all exchange that follows this
    /// stage (set on the map side of a shuffle job; 0 otherwise).
    pub shuffle_bytes: u64,
    /// Pages whose ownership moved through that exchange without a copy
    /// (Deca zero-copy hand-over; 0 for byte-format modes).
    pub shuffle_pages: u64,
    /// Physical task runs this stage performed, successful or not —
    /// scheduled attempts plus OOM in-place re-runs; equals
    /// `tasks + retries + oom_reruns` when the stage completes.
    pub attempts: u64,
    /// Re-runs after transient failures.
    pub retries: u64,
    /// Executors quarantined during this stage.
    pub quarantines: u64,
    /// Executors restarted in place during this stage.
    pub restarts: u64,
    /// In-place re-runs performed by graceful OOM degradation (physical
    /// runs, counted in `attempts`; not `retries`).
    pub oom_reruns: u64,
    /// OOM failures absorbed by spill-and-retry (`oom_reruns` that
    /// succeeded).
    pub oom_recoveries: u64,
    /// Cached blocks rehydrated from the spill manifest by restart-in-
    /// place recoveries during this stage.
    pub rehydrated_blocks: u64,
    /// On-disk payload bytes of those rehydrated blocks.
    pub rehydrated_bytes: u64,
    /// Speculative duplicates launched during this stage (timing-
    /// dependent; excluded from the deterministic recovery roll-up).
    pub speculative_launched: u64,
    /// Speculative duplicates that completed before their primary.
    pub speculative_wins: u64,
    /// Attempts the watchdog failed for exceeding `task_deadline`.
    pub timeouts: u64,
    /// Simulated backoff/rescheduling time spent recovering from faults.
    pub recovery: Duration,
    /// The stage never ran any task: the driver aborted it up front (no
    /// healthy executor). Counters in an aborted row are all zero.
    pub aborted: bool,
}

impl StageMetrics {
    pub fn new(name: impl Into<String>) -> StageMetrics {
        StageMetrics { name: name.into(), ..StageMetrics::default() }
    }

    /// Fold one task *attempt* of the wave into the stage sums. The
    /// logical `tasks` count is set by the driver (attempts may exceed it
    /// under retries); `exec` is also handled separately, per executor.
    pub fn add_task(&mut self, t: &TaskMetrics) {
        self.compute += t.compute;
        self.gc += t.gc_pause;
        self.gc_concurrent += t.gc_concurrent;
        self.ser += t.ser;
        self.deser += t.deser;
        self.shuffle_read += t.shuffle_read;
        self.shuffle_write += t.shuffle_write;
        self.io += t.io;
    }

    /// Total attributed task time across the wave's buckets (not
    /// wall-clock; use `exec` for the critical path).
    pub fn total_task_time(&self) -> Duration {
        self.compute
            + self.gc
            + self.ser
            + self.deser
            + self.shuffle_read
            + self.shuffle_write
            + self.io
    }
}

/// Incremental attribution of collector time to task attempts: drains the
/// heap's *measured* pause and concurrent-overlap totals since the last
/// call. Earlier revisions converted stop-the-world measurements through a
/// per-algorithm `PauseModel`; the collectors are now implemented for real
/// (parallel tracing, an actual concurrent marker thread), so the split is
/// measured, not modelled.
#[derive(Clone, Debug, Default)]
pub struct GcAccounting {
    last_pause: Duration,
    last_concurrent: Duration,
}

impl GcAccounting {
    pub fn new() -> GcAccounting {
        GcAccounting::default()
    }

    /// Consume the collector time since the last call and return
    /// `(pause, concurrent)`: stop-the-world pause time charged to the
    /// task's wall clock, and concurrent-mark wall time that overlapped
    /// the task (observability only — the mutator never stopped for it,
    /// so it is never subtracted from compute).
    pub fn account(&mut self, stats: &GcStats) -> (Duration, Duration) {
        let pause = stats.total_gc_time().saturating_sub(self.last_pause);
        let concurrent = stats.concurrent_mark_time.saturating_sub(self.last_concurrent);
        self.last_pause = stats.total_gc_time();
        self.last_concurrent = stats.concurrent_mark_time;
        (pause, concurrent)
    }
}

/// One sample of the lifetime timeline (Figures 8a/9a): how many objects of
/// the profiled class are on the heap, and cumulative GC time, at a moment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimelineSample {
    pub at: Duration,
    pub live_objects: usize,
    pub cumulative_gc: Duration,
}

/// Recorder for lifetime timelines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    pub fn record(&mut self, at: Duration, live_objects: usize, cumulative_gc: Duration) {
        self.samples.push(TimelineSample { at, live_objects, cumulative_gc });
    }

    pub fn peak_live(&self) -> usize {
        self.samples.iter().map(|s| s.live_objects).max().unwrap_or(0)
    }

    pub fn final_gc(&self) -> Duration {
        self.samples.last().map(|s| s.cumulative_gc).unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::{GcEvent, GcEventKind};

    #[test]
    fn task_totals_and_job_aggregation() {
        let t = TaskMetrics {
            name: "t".into(),
            compute: Duration::from_millis(10),
            gc_pause: Duration::from_millis(5),
            gc_concurrent: Duration::from_millis(40),
            ser: Duration::from_millis(1),
            deser: Duration::from_millis(2),
            shuffle_read: Duration::from_millis(3),
            shuffle_write: Duration::from_millis(4),
            io: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(30), "concurrent overlap is not task time");
        let mut j = JobMetrics::default();
        j.add_task(&t);
        j.add_task(&t);
        assert_eq!(j.exec, Duration::from_millis(60));
        assert_eq!(j.gc, Duration::from_millis(10));
        assert_eq!(j.gc_concurrent, Duration::from_millis(80));
        assert!((j.gc_ratio() - 10.0 / 60.0).abs() < 1e-9);
        let mut s = StageMetrics::new("w");
        s.add_task(&t);
        assert_eq!(s.gc_concurrent, Duration::from_millis(40));
        assert_eq!(s.total_task_time(), Duration::from_millis(30));
    }

    #[test]
    fn stage_recovery_rolls_up_into_job() {
        let mut s = StageMetrics::new("map");
        s.tasks = 4;
        s.attempts = 7;
        s.retries = 2;
        s.quarantines = 1;
        s.oom_reruns = 1;
        s.oom_recoveries = 1;
        s.rehydrated_blocks = 3;
        s.rehydrated_bytes = 4096;
        s.speculative_launched = 2;
        s.speculative_wins = 1;
        s.timeouts = 1;
        s.recovery = Duration::from_millis(20);
        let mut j = JobMetrics::default();
        j.add_stage_recovery(&s);
        j.add_stage_recovery(&s);
        assert_eq!(j.attempts, 14);
        assert_eq!(j.retries, 4);
        assert_eq!(j.quarantines, 2);
        assert_eq!(j.oom_reruns, 2);
        assert_eq!(j.oom_recoveries, 2);
        assert_eq!(j.rehydrated_blocks, 6);
        assert_eq!(j.rehydrated_bytes, 8192);
        assert_eq!(j.speculative_launched, 4);
        assert_eq!(j.speculative_wins, 2);
        assert_eq!(j.timeouts, 2);
        assert_eq!(j.cancelled, 0, "cancellation is job-level, not folded from stages");
        assert_eq!(j.recovery, Duration::from_millis(40));
    }

    #[test]
    fn gc_accounting_is_incremental() {
        let mut stats = GcStats::default();
        let mut acc = GcAccounting::new();
        stats.record(GcEvent {
            kind: GcEventKind::Minor,
            at: Duration::ZERO,
            duration: Duration::from_millis(4),
            objects_traced: 1,
            live_bytes_after: 0,
        });
        let (p1, c1) = acc.account(&stats);
        assert_eq!(p1, Duration::from_millis(4));
        assert_eq!(c1, Duration::ZERO);
        // No new collections: nothing more to attribute.
        let (p2, _) = acc.account(&stats);
        assert_eq!(p2, Duration::ZERO);
        stats.record(GcEvent {
            kind: GcEventKind::Full,
            at: Duration::ZERO,
            duration: Duration::from_millis(10),
            objects_traced: 1,
            live_bytes_after: 0,
        });
        let (p3, c3) = acc.account(&stats);
        assert_eq!(p3, Duration::from_millis(10), "a stop-the-world full trace is all pause");
        assert_eq!(c3, Duration::ZERO, "nothing ran concurrently");
    }

    #[test]
    fn gc_accounting_splits_pause_from_concurrent_overlap() {
        // A concurrent cycle's pauses (initial mark + remark) are charged
        // as pause; the measured mark overlap is reported separately.
        let mut stats = GcStats::default();
        let mut acc = GcAccounting::new();
        let ev = |kind, ms| GcEvent {
            kind,
            at: Duration::ZERO,
            duration: Duration::from_millis(ms),
            objects_traced: 1,
            live_bytes_after: 0,
        };
        stats.record(ev(GcEventKind::InitialMark, 1));
        stats.record(ev(GcEventKind::ConcMark, 90));
        stats.record(ev(GcEventKind::Remark, 3));
        let (pause, concurrent) = acc.account(&stats);
        assert_eq!(pause, Duration::from_millis(4), "only the cycle's two pauses stop the task");
        assert_eq!(concurrent, Duration::from_millis(90), "overlap is the measured mark wall");
        let (pause, concurrent) = acc.account(&stats);
        assert_eq!((pause, concurrent), (Duration::ZERO, Duration::ZERO), "drained");
    }

    #[test]
    fn timeline_summaries() {
        let mut tl = Timeline::new();
        tl.record(Duration::from_millis(1), 10, Duration::from_millis(0));
        tl.record(Duration::from_millis(2), 50, Duration::from_millis(3));
        tl.record(Duration::from_millis(3), 20, Duration::from_millis(7));
        assert_eq!(tl.peak_live(), 50);
        assert_eq!(tl.final_gc(), Duration::from_millis(7));
    }
}
