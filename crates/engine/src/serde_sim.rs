//! Kryo-like serializer simulation.
//!
//! The SparkSer baseline (§6.2) serializes cached data with Kryo. The
//! defining costs are per-object: a class tag, field-by-field encoding with
//! variable-length integers, and on read a full re-materialisation of the
//! object. `KryoSim` performs real encode/decode work of that shape so the
//! measured ser/deser times (Table 5, bottom rows) are genuine CPU costs,
//! slightly higher per object than Deca's flat layout writes — matching the
//! paper's observation that Deca serialization ≈ Kryo serialization while
//! Deca needs no deserialization at all.

use std::time::{Duration, Instant};

use crate::record::KryoRecord;

/// A Kryo-ish serializer with timing counters.
#[derive(Debug, Default)]
pub struct KryoSim {
    pub ser_time: Duration,
    pub deser_time: Duration,
    pub objects_serialized: u64,
    pub objects_deserialized: u64,
}

/// Per-object framing overhead: a 2-byte class registration id (Kryo's
/// registered-class varint is 1–2 bytes).
pub const CLASS_TAG: [u8; 2] = [0x5a, 0x01];

impl KryoSim {
    pub fn new() -> KryoSim {
        KryoSim::default()
    }

    /// Serialize one record, appending to `out`.
    pub fn serialize<T: KryoRecord>(&mut self, rec: &T, out: &mut Vec<u8>) {
        let t = Instant::now();
        out.extend_from_slice(&CLASS_TAG);
        rec.kryo_encode(out);
        self.ser_time += t.elapsed();
        self.objects_serialized += 1;
    }

    /// Deserialize one record from `buf` starting at `*pos`.
    pub fn deserialize<T: KryoRecord>(&mut self, buf: &[u8], pos: &mut usize) -> T {
        let t = Instant::now();
        debug_assert_eq!(&buf[*pos..*pos + 2], &CLASS_TAG);
        *pos += 2;
        let rec = T::kryo_decode(buf, pos);
        self.deser_time += t.elapsed();
        self.objects_deserialized += 1;
        rec
    }

    /// Serialize a whole slice into a fresh buffer.
    pub fn serialize_all<T: KryoRecord>(&mut self, recs: &[T]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in recs {
            self.serialize(r, &mut out);
        }
        out
    }

    /// Deserialize all records in `buf`.
    pub fn deserialize_all<T: KryoRecord>(&mut self, buf: &[u8]) -> Vec<T> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < buf.len() {
            out.push(self.deserialize(buf, &mut pos));
        }
        out
    }

    /// Average serialization time per object so far.
    pub fn avg_ser(&self) -> Duration {
        if self.objects_serialized == 0 {
            Duration::ZERO
        } else {
            self.ser_time / self.objects_serialized as u32
        }
    }

    pub fn avg_deser(&self) -> Duration {
        if self.objects_deserialized == 0 {
            Duration::ZERO
        } else {
            self.deser_time / self.objects_deserialized as u32
        }
    }
}

/// Kryo-style variable-length unsigned integer (1–5 bytes for u32).
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_with_timing() {
        let mut k = KryoSim::new();
        let recs: Vec<(i64, f64)> = (0..1000).map(|i| (i, i as f64 * 0.5)).collect();
        let buf = k.serialize_all(&recs);
        assert!(k.objects_serialized == 1000);
        let back: Vec<(i64, f64)> = k.deserialize_all(&buf);
        assert_eq!(back, recs);
        assert_eq!(k.objects_deserialized, 1000);
        // Per-object framing present: buffer is larger than raw payload.
        assert!(buf.len() > 1000 * 2);
    }
}
