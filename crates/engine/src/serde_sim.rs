//! Kryo-like serializer simulation.
//!
//! The SparkSer baseline (§6.2) serializes cached data with Kryo. The
//! defining costs are per-object: a class tag, field-by-field encoding with
//! variable-length integers, and on read a full re-materialisation of the
//! object. `KryoSim` performs real encode/decode work of that shape so the
//! measured ser/deser times (Table 5, bottom rows) are genuine CPU costs,
//! slightly higher per object than Deca's flat layout writes — matching the
//! paper's observation that Deca serialization ≈ Kryo serialization while
//! Deca needs no deserialization at all.
//!
//! ## Timing granularity
//!
//! Timing is **phase-scoped**, not per-record: encoding one `(i64, i64)`
//! pair is a handful of nanoseconds, so bracketing every record with two
//! `Instant::now()` calls (the original design) made the harness dominate
//! the cost it claims to measure — the measurement-overhead trap
//! "Garbage Collection or Serialization?" (Kolokasis et al.) warns
//! about. [`KryoSim::serialize_all`]/[`KryoSim::deserialize_all`] time
//! the whole batch with one timer pair; call sites that drive the
//! per-record API directly wrap their loop in
//! [`KryoSim::time_ser`]/[`KryoSim::time_deser`]. `ser_time`/`deser_time`
//! therefore cover the serialization *phase* (including buffer walking
//! interleaved with encode calls); the `objects_*` counters stay exact
//! per record.

use std::time::{Duration, Instant};

use crate::record::KryoRecord;

/// A Kryo-ish serializer with timing counters.
#[derive(Debug, Default)]
pub struct KryoSim {
    pub ser_time: Duration,
    pub deser_time: Duration,
    pub objects_serialized: u64,
    pub objects_deserialized: u64,
}

/// Per-object framing overhead: a 2-byte class registration id (Kryo's
/// registered-class varint is 1–2 bytes).
pub const CLASS_TAG: [u8; 2] = [0x5a, 0x01];

impl KryoSim {
    pub fn new() -> KryoSim {
        KryoSim::default()
    }

    /// Serialize one record, appending to `out`. Untimed — wrap the
    /// enclosing loop in [`KryoSim::time_ser`] (see the module docs on
    /// timing granularity); the object counter stays exact.
    pub fn serialize<T: KryoRecord>(&mut self, rec: &T, out: &mut Vec<u8>) {
        out.extend_from_slice(&CLASS_TAG);
        rec.kryo_encode(out);
        self.objects_serialized += 1;
    }

    /// Deserialize one record from `buf` starting at `*pos`. Untimed —
    /// wrap the enclosing loop in [`KryoSim::time_deser`].
    pub fn deserialize<T: KryoRecord>(&mut self, buf: &[u8], pos: &mut usize) -> T {
        debug_assert_eq!(&buf[*pos..*pos + 2], &CLASS_TAG);
        *pos += 2;
        let rec = T::kryo_decode(buf, pos);
        self.objects_deserialized += 1;
        rec
    }

    /// Scoped serialization timer: charge the closure's wall time to
    /// `ser_time` with a single timer pair, however many records it
    /// encodes.
    pub fn time_ser<R>(&mut self, f: impl FnOnce(&mut KryoSim) -> R) -> R {
        let t = Instant::now();
        let r = f(self);
        self.ser_time += t.elapsed();
        r
    }

    /// Scoped deserialization timer: charge the closure's wall time to
    /// `deser_time` with a single timer pair.
    pub fn time_deser<R>(&mut self, f: impl FnOnce(&mut KryoSim) -> R) -> R {
        let t = Instant::now();
        let r = f(self);
        self.deser_time += t.elapsed();
        r
    }

    /// Serialize a whole slice into a fresh buffer, timed at batch
    /// granularity.
    pub fn serialize_all<T: KryoRecord>(&mut self, recs: &[T]) -> Vec<u8> {
        self.time_ser(|k| {
            let mut out = Vec::new();
            for r in recs {
                k.serialize(r, &mut out);
            }
            out
        })
    }

    /// Deserialize all records in `buf`, timed at batch granularity.
    pub fn deserialize_all<T: KryoRecord>(&mut self, buf: &[u8]) -> Vec<T> {
        self.time_deser(|k| {
            let mut out = Vec::new();
            let mut pos = 0;
            while pos < buf.len() {
                out.push(k.deserialize(buf, &mut pos));
            }
            out
        })
    }

    /// Average serialization time per object so far.
    pub fn avg_ser(&self) -> Duration {
        if self.objects_serialized == 0 {
            Duration::ZERO
        } else {
            self.ser_time / self.objects_serialized as u32
        }
    }

    pub fn avg_deser(&self) -> Duration {
        if self.objects_deserialized == 0 {
            Duration::ZERO
        } else {
            self.deser_time / self.objects_deserialized as u32
        }
    }
}

/// Kryo-style variable-length unsigned integer (1–5 bytes for u32).
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn roundtrip_with_timing() {
        let mut k = KryoSim::new();
        let recs: Vec<(i64, f64)> = (0..1000).map(|i| (i, i as f64 * 0.5)).collect();
        let buf = k.serialize_all(&recs);
        assert!(k.objects_serialized == 1000);
        let back: Vec<(i64, f64)> = k.deserialize_all(&buf);
        assert_eq!(back, recs);
        assert_eq!(k.objects_deserialized, 1000);
        // Per-object framing present: buffer is larger than raw payload.
        assert!(buf.len() > 1000 * 2);
    }

    #[test]
    fn batch_timers_charge_phases_and_counters_stay_exact() {
        // The per-record API is untimed on its own; wrapped in a scoped
        // timer, the whole loop charges one phase with one timer pair.
        let mut k = KryoSim::new();
        let mut out = Vec::new();
        k.serialize(&(1i64, 2i64), &mut out);
        assert_eq!(k.objects_serialized, 1);
        assert_eq!(k.ser_time, Duration::ZERO, "bare per-record calls are untimed");
        let buf = k.time_ser(|k| {
            let mut buf = Vec::new();
            for i in 0..1000i64 {
                k.serialize(&(i, i), &mut buf);
            }
            buf
        });
        assert_eq!(k.objects_serialized, 1001, "counters stay exact per record");
        assert!(k.ser_time > Duration::ZERO, "the scope charged ser_time");
        let before = k.deser_time;
        let back: Vec<(i64, i64)> = k.time_deser(|k| {
            let mut pos = 0;
            let mut recs = Vec::new();
            while pos < buf.len() {
                recs.push(k.deserialize(&buf, &mut pos));
            }
            recs
        });
        assert_eq!(back.len(), 1000);
        assert_eq!(k.objects_deserialized, 1000);
        assert!(k.deser_time > before);
    }
}
