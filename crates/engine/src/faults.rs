//! Deterministic fault injection for the cluster driver.
//!
//! Spark's defining robustness property is that tasks are deterministic,
//! restartable units (§6.1 keeps shuffle/cache bytes reconstructible from
//! lineage precisely so failed work can be re-run). To test that property
//! we need failures that are themselves deterministic: a [`FaultPlan`] is
//! a pure function from an injection site — `(site, stage, task, attempt)`
//! — to a fire/no-fire decision, derived from a seed through the
//! `deca-check` PRNG. The same seed replays the same failure scenario on
//! any executor count, any mode, and any thread interleaving, which is
//! what lets the fault-tolerance tests assert *bit-identical* results
//! against the fault-free run.
//!
//! Four failure modes are modelled, mirroring what a real cluster throws
//! at a driver:
//!
//! * [`FaultSite::TaskBody`] — the task's user code fails (a thrown
//!   exception in Spark terms);
//! * [`FaultSite::ExecutorCrash`] — the executor process dies: the task
//!   fails and the executor is *poisoned*, failing every subsequent task
//!   until the driver quarantines or restarts it;
//! * [`FaultSite::ShuffleFrame`] — a map task's shuffle output is
//!   corrupted in flight; detection (a fetch-failure in Spark) forces the
//!   map task to be re-executed;
//! * [`FaultSite::Alloc`] — a forced allocation failure (OOM), which the
//!   driver degrades gracefully by spilling the executor's cache to disk
//!   and retrying in place;
//! * [`FaultSite::TaskHang`] — the task neither fails nor finishes: it
//!   sleeps past its deadline budget in *simulated* time. Without a
//!   watchdog this stalls the stage forever; with one, the overdue
//!   attempt is charged its deadline and retried like any transient
//!   failure (see `RetryPolicy::task_deadline`).
//!
//! Four more sites instrument the tiered cache's spill/restore/manifest
//! path. Each models the executor process dying *inside* the cache
//! machinery, at a point chosen so the on-disk state is maximally
//! awkward; the crash-recovery suite kills at every one of them and
//! asserts restart-in-place still rehydrates to a bit-identical result:
//!
//! * [`FaultSite::SpillWrite`] — crash before a demoted block's payload
//!   file is written (nothing durable exists yet);
//! * [`FaultSite::ManifestCommit`] — crash after the payload file and the
//!   manifest temp file are written but *before* the atomic rename (the
//!   old manifest is still the one in effect);
//! * [`FaultSite::SpillRead`] — crash while reading a cold block back;
//! * [`FaultSite::Rehydrate`] — crash in the middle of recovery itself
//!   (rehydration must be idempotent, so the next restart finishes the
//!   job).

use deca_check::SplitMix64;

/// A named place where the driver consults the plan before / while running
/// a task attempt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The task body itself errors.
    TaskBody,
    /// The hosting executor crashes (poisoning it for subsequent tasks).
    ExecutorCrash,
    /// The task's shuffle output frame is corrupted in transit.
    ShuffleFrame,
    /// A forced allocation failure inside the task.
    Alloc,
    /// The task hangs: it burns its whole deadline budget (in simulated
    /// time) without producing a result, and is failed by the watchdog.
    TaskHang,
    /// Crash before a demoted block's payload file is written.
    SpillWrite,
    /// Crash after payload + manifest temp file, before the atomic rename.
    ManifestCommit,
    /// Crash while reading a cold block back from disk.
    SpillRead,
    /// Crash partway through restart-in-place rehydration.
    Rehydrate,
}

impl FaultSite {
    /// All sites, for sweeps and reporting.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::TaskBody,
        FaultSite::ExecutorCrash,
        FaultSite::ShuffleFrame,
        FaultSite::Alloc,
        FaultSite::TaskHang,
        FaultSite::SpillWrite,
        FaultSite::ManifestCommit,
        FaultSite::SpillRead,
        FaultSite::Rehydrate,
    ];

    /// The sites instrumented inside the cache's spill/restore/manifest
    /// path. The crash-recovery suite iterates these; each kills the
    /// hosting executor when it fires (see [`FaultSite::kills_executor`]).
    pub const SPILL_PATH: [FaultSite; 4] = [
        FaultSite::SpillWrite,
        FaultSite::ManifestCommit,
        FaultSite::SpillRead,
        FaultSite::Rehydrate,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultSite::TaskBody => "task-body",
            FaultSite::ExecutorCrash => "executor-crash",
            FaultSite::ShuffleFrame => "shuffle-frame",
            FaultSite::Alloc => "alloc",
            FaultSite::TaskHang => "task-hang",
            FaultSite::SpillWrite => "spill-write",
            FaultSite::ManifestCommit => "manifest-commit",
            FaultSite::SpillRead => "spill-read",
            FaultSite::Rehydrate => "rehydrate",
        }
    }

    /// Does a firing at this site take the whole executor down (as opposed
    /// to failing just the attempt)? The spill-path sites model the
    /// process dying mid-I/O, so the driver poisons the executor exactly
    /// as it does for [`FaultSite::ExecutorCrash`].
    pub fn kills_executor(self) -> bool {
        matches!(
            self,
            FaultSite::SpillWrite
                | FaultSite::ManifestCommit
                | FaultSite::SpillRead
                | FaultSite::Rehydrate
        )
    }

    /// Domain-separation tag mixed into the decision hash, so the same
    /// `(stage, task, attempt)` draws independent decisions per site.
    fn tag(self) -> u64 {
        match self {
            FaultSite::TaskBody => 0x7461_736b,
            FaultSite::ExecutorCrash => 0x6372_6173,
            FaultSite::ShuffleFrame => 0x7368_7566,
            FaultSite::Alloc => 0x616c_6c6f,
            FaultSite::TaskHang => 0x6861_6e67,
            FaultSite::SpillWrite => 0x7370_696c,
            FaultSite::ManifestCommit => 0x6d61_6e69,
            FaultSite::SpillRead => 0x7265_6164,
            FaultSite::Rehydrate => 0x7265_6879,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site injection rates. A rate is the probability that the site fires
/// for a given `(stage, task)` on its **first** attempt; with
/// [`FaultSpec::repeat_on_retry`] false (the default) retries never draw
/// new faults, so any plan whose failures the [`crate::RetryPolicy`] can
/// absorb is survivable by construction.
#[derive(Copy, Clone, Debug, Default)]
pub struct FaultSpec {
    pub task_body: f64,
    pub executor_crash: f64,
    pub shuffle_frame: f64,
    pub alloc: f64,
    /// Rate for task hangs. A firing here consumes the attempt's whole
    /// deadline budget in simulated time before the watchdog fails it,
    /// so even a survivable hang shows up in the stage's recovery time.
    pub task_hang: f64,
    /// One shared rate for the four spill-path kill points (SpillWrite,
    /// ManifestCommit, SpillRead, Rehydrate). Unlike the task-level sites,
    /// these only fire when the cache actually reaches the instrumented
    /// point, so a nonzero rate here is a *conditional* crash probability.
    pub spill_path: f64,
    /// Draw fault decisions on retry attempts too. With this set, a site
    /// can fail the same task repeatedly — the way to build *unsurvivable*
    /// plans (attempts exhausted, every executor quarantined) on purpose.
    pub repeat_on_retry: bool,
}

impl FaultSpec {
    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::TaskBody => self.task_body,
            FaultSite::ExecutorCrash => self.executor_crash,
            FaultSite::ShuffleFrame => self.shuffle_frame,
            FaultSite::Alloc => self.alloc,
            FaultSite::TaskHang => self.task_hang,
            FaultSite::SpillWrite
            | FaultSite::ManifestCommit
            | FaultSite::SpillRead
            | FaultSite::Rehydrate => self.spill_path,
        }
    }
}

/// An explicitly scheduled fault, for tests that need a failure at an
/// exact place rather than a seeded scatter.
#[derive(Clone, Debug)]
struct ForcedFault {
    site: FaultSite,
    stage: String,
    /// `None`: every task of the stage.
    task: Option<usize>,
    /// `None`: every attempt (an *unsurvivable* repeat-failure).
    attempt: Option<u32>,
}

/// A replayable failure scenario: seeded random scatter plus explicitly
/// forced faults. Decisions are pure functions of the query, so a plan is
/// `Sync`, cheap to clone, and independent of execution order.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    forced: Vec<ForcedFault>,
}

impl FaultPlan {
    /// A plan drawing faults at the spec's rates, deterministically from
    /// `seed`.
    pub fn seeded(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan { seed, spec, forced: Vec::new() }
    }

    /// A plan that injects nothing by itself (combine with
    /// [`FaultPlan::force`] for surgically placed faults).
    pub fn quiet() -> FaultPlan {
        FaultPlan::seeded(0, FaultSpec::default())
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Force `site` to fire at `stage` for `task` (`None` = every task of
    /// the stage) on `attempt` (`None` = every attempt).
    pub fn force(
        mut self,
        site: FaultSite,
        stage: impl Into<String>,
        task: Option<usize>,
        attempt: Option<u32>,
    ) -> FaultPlan {
        self.forced.push(ForcedFault { site, stage: stage.into(), task, attempt });
        self
    }

    /// A plan that can never fire anywhere: no forced faults and every
    /// rate at zero. The pull scheduler uses this to skip its per-round
    /// fault-pinning precompute on the (overwhelmingly common) fault-free
    /// path.
    pub fn is_quiet(&self) -> bool {
        self.forced.is_empty()
            && self.spec.task_body <= 0.0
            && self.spec.executor_crash <= 0.0
            && self.spec.shuffle_frame <= 0.0
            && self.spec.alloc <= 0.0
            && self.spec.task_hang <= 0.0
            && self.spec.spill_path <= 0.0
    }

    /// Does `site` fire for this `(stage, task, attempt)`? Deterministic:
    /// the decision depends only on the arguments and the plan.
    pub fn fires(&self, site: FaultSite, stage: &str, task: usize, attempt: u32) -> bool {
        for f in &self.forced {
            if f.site == site
                && f.stage == stage
                && f.task.is_none_or(|t| t == task)
                && f.attempt.is_none_or(|a| a == attempt)
            {
                return true;
            }
        }
        let rate = self.spec.rate(site);
        if rate <= 0.0 || (attempt > 0 && !self.spec.repeat_on_retry) {
            return false;
        }
        // FNV-1a over the full site identity, avalanched through SplitMix64
        // (FNV alone correlates nearby task indices).
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(mut h: u64, word: u64) -> u64 {
            for b in word.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fold(h, self.seed);
        h = fold(h, site.tag());
        for b in stage.bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h = fold(h, task as u64);
        h = fold(h, attempt as u64);
        let draw = SplitMix64::new(h).next_u64();
        ((draw >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec { task_body: 0.5, ..FaultSpec::default() };
        let a = FaultPlan::seeded(7, spec);
        let b = FaultPlan::seeded(7, spec);
        let c = FaultPlan::seeded(8, spec);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..64).map(|t| p.fires(FaultSite::TaskBody, "wc-map", t, 0)).collect()
        };
        assert_eq!(pattern(&a), pattern(&b), "same seed, same scenario");
        assert_ne!(pattern(&a), pattern(&c), "different seed, different scenario");
        let hits = pattern(&a).iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "rate 0.5 over 64 draws, got {hits}");
    }

    #[test]
    fn sites_draw_independently() {
        let spec = FaultSpec { task_body: 0.5, alloc: 0.5, ..FaultSpec::default() };
        let p = FaultPlan::seeded(3, spec);
        let body: Vec<bool> = (0..64).map(|t| p.fires(FaultSite::TaskBody, "s", t, 0)).collect();
        let alloc: Vec<bool> = (0..64).map(|t| p.fires(FaultSite::Alloc, "s", t, 0)).collect();
        assert_ne!(body, alloc, "sites must not share decisions");
    }

    #[test]
    fn zero_rate_never_fires_and_retries_are_clean_by_default() {
        let p = FaultPlan::seeded(1, FaultSpec { task_body: 1.0, ..FaultSpec::default() });
        for t in 0..32 {
            assert!(p.fires(FaultSite::TaskBody, "s", t, 0), "rate 1.0 always fires");
            assert!(!p.fires(FaultSite::TaskBody, "s", t, 1), "retries are clean by default");
            assert!(!p.fires(FaultSite::ExecutorCrash, "s", t, 0), "rate 0.0 never fires");
        }
        let repeat = FaultPlan::seeded(
            1,
            FaultSpec { task_body: 1.0, repeat_on_retry: true, ..FaultSpec::default() },
        );
        assert!(repeat.fires(FaultSite::TaskBody, "s", 0, 3), "repeat_on_retry draws on retries");
    }

    #[test]
    fn forced_faults_fire_exactly_where_placed() {
        let p = FaultPlan::quiet()
            .force(FaultSite::ShuffleFrame, "wc-map", Some(2), Some(0))
            .force(FaultSite::ExecutorCrash, "doom", None, None);
        assert!(p.fires(FaultSite::ShuffleFrame, "wc-map", 2, 0));
        assert!(!p.fires(FaultSite::ShuffleFrame, "wc-map", 2, 1), "attempt-pinned");
        assert!(!p.fires(FaultSite::ShuffleFrame, "wc-map", 1, 0), "task-pinned");
        assert!(!p.fires(FaultSite::ShuffleFrame, "wc-reduce", 2, 0), "stage-pinned");
        for t in 0..8 {
            for a in 0..4 {
                assert!(p.fires(FaultSite::ExecutorCrash, "doom", t, a), "wildcard forced fault");
            }
        }
    }

    #[test]
    fn quietness_reflects_rates_and_forced_faults() {
        assert!(FaultPlan::quiet().is_quiet());
        assert!(FaultPlan::seeded(42, FaultSpec::default()).is_quiet(), "seed alone is harmless");
        let spec = FaultSpec { alloc: 0.01, ..FaultSpec::default() };
        assert!(!FaultPlan::seeded(1, spec).is_quiet());
        let forced = FaultPlan::quiet().force(FaultSite::TaskBody, "s", Some(0), Some(0));
        assert!(!forced.is_quiet());
    }

    #[test]
    fn site_names_render() {
        for site in FaultSite::ALL {
            assert!(!site.name().is_empty());
            assert_eq!(site.to_string(), site.name());
        }
    }

    #[test]
    fn all_is_exhaustive_with_distinct_names_and_tags() {
        // Exhaustiveness: this match has no wildcard arm, so adding a
        // variant without updating it (and, by this assertion, `ALL`)
        // breaks the build instead of silently shipping an unswept site.
        let expected = FaultSite::ALL.len();
        let mut covered = 0;
        for site in FaultSite::ALL {
            match site {
                FaultSite::TaskBody
                | FaultSite::ExecutorCrash
                | FaultSite::ShuffleFrame
                | FaultSite::Alloc
                | FaultSite::TaskHang
                | FaultSite::SpillWrite
                | FaultSite::ManifestCommit
                | FaultSite::SpillRead
                | FaultSite::Rehydrate => covered += 1,
            }
        }
        assert_eq!(covered, expected);
        // Names and domain-separation tags must be pairwise distinct —
        // a duplicated tag would make two sites share fault decisions.
        for (i, a) in FaultSite::ALL.iter().enumerate() {
            for b in FaultSite::ALL.iter().skip(i + 1) {
                assert_ne!(a.name(), b.name(), "duplicate site name {}", a.name());
                assert_ne!(a.tag(), b.tag(), "tag collision between {a} and {b}");
            }
        }
        // A hang fails the attempt, not the executor.
        assert!(!FaultSite::TaskHang.kills_executor());
        // Per-site spec rates map one-to-one onto their fields.
        let spec = FaultSpec { task_hang: 0.25, ..FaultSpec::default() };
        assert!((spec.rate(FaultSite::TaskHang) - 0.25).abs() < f64::EPSILON);
        assert_eq!(spec.rate(FaultSite::TaskBody), 0.0);
        assert!(!FaultPlan::seeded(1, spec).is_quiet(), "hang rate alone makes a plan loud");
    }

    #[test]
    fn spill_path_sites_share_a_rate_and_kill_the_executor() {
        for site in FaultSite::SPILL_PATH {
            assert!(site.kills_executor(), "{site} models a mid-I/O process death");
            assert!(FaultSite::ALL.contains(&site));
        }
        assert!(!FaultSite::TaskBody.kills_executor());
        assert!(!FaultSite::Alloc.kills_executor());
        let spec = FaultSpec { spill_path: 1.0, ..FaultSpec::default() };
        let p = FaultPlan::seeded(5, spec);
        assert!(!p.is_quiet(), "spill-path rate alone makes a plan loud");
        for site in FaultSite::SPILL_PATH {
            assert!(p.fires(site, "s", 0, 0), "rate 1.0 fires at {site}");
        }
        // Sites still draw independently at fractional rates.
        let half = FaultPlan::seeded(9, FaultSpec { spill_path: 0.5, ..FaultSpec::default() });
        let a: Vec<bool> = (0..64).map(|t| half.fires(FaultSite::SpillWrite, "s", t, 0)).collect();
        let b: Vec<bool> = (0..64).map(|t| half.fires(FaultSite::SpillRead, "s", t, 0)).collect();
        assert_ne!(a, b, "kill points must not share decisions");
    }
}
