//! Logistic Regression (§6.2, Figure 9): one stage, many jobs, a static
//! cached RDD, no shuffle.
//!
//! The cached `LabeledPoint`s dominate the heap. In Spark mode every
//! iteration walks millions of live objects (full collections trace them
//! all, fruitlessly) and the gradient map allocates a temporary
//! `DenseVector` per point. The Deca kernel is the runtime equivalent of
//! the transformed code in the paper's Figure 12: it reads `label` and the
//! feature doubles at fixed offsets inside the page bytes and accumulates
//! into a preallocated result array — no objects, no collections.
//!
//! The job is described once as an [`AppJob`] ([`job`]) and runs through
//! the cluster driver: an `lr-load` stage caches partition `p`'s points on
//! executor `p % E`, then each iteration is one `lr-iter{i}` stage whose
//! tasks return partial gradients the driver sums in task order — so the
//! f64 addition sequence, and hence the weights, are bit-identical for any
//! executor count, standalone or on a [`deca_engine::DecaServer`]. A
//! retried or stolen task that lands on an executor without its block
//! recaches it from the generated partition first (lineage recompute).

use std::collections::HashMap;
use std::sync::Mutex;

use deca_core::optimizer::ContainerDecision;
use deca_core::Optimizer;
use deca_engine::record::HeapRecord;
use deca_engine::{
    AppJob, ClusterSession, EngineError, ExecutionMode, Executor, ExecutorConfig, JobCtx,
};
use deca_udt::{ContainerId, ContainerKind, JobPhases, TypeRef};

use crate::datagen;
use crate::records::LabeledPointRec;
use crate::report::AppReport;

/// Parameters of one LR run.
#[derive(Clone, Debug)]
pub struct LrParams {
    pub points: usize,
    pub dims: usize,
    pub iterations: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub storage_fraction: f64,
    pub mode: ExecutionMode,
    /// Deca page size override (None = executor default). High-dimensional
    /// records need larger pages to bound tail waste (§4.3.1).
    pub page_size: Option<usize>,
    pub gc_algorithm: deca_heap::GcAlgorithm,
    pub seed: u64,
    /// Sample the LabeledPoint lifetime timeline once per iteration
    /// (Figure 9a).
    pub sample_timeline: bool,
}

impl LrParams {
    pub fn small(mode: ExecutionMode) -> LrParams {
        LrParams {
            points: 20_000,
            dims: 10,
            iterations: 10,
            partitions: 8,
            heap_bytes: 32 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            seed: 20160902,
            sample_timeline: false,
        }
    }
}

/// Run LR on one executor and report metrics, cache size, and the
/// final-weights checksum. (Unlike the paper's reported numbers, the
/// cluster-driven report includes the load stage in the job totals — the
/// `lr-load` stage metrics keep it separable.)
pub fn run(params: &LrParams) -> AppReport {
    run_local(params, 1)
}

/// Run LR across `executors` parallel executors. The weights are
/// bit-identical for any executor count: task `p` always scans its own
/// cached partition and the driver sums partial gradients in task order.
pub fn run_local(params: &LrParams, executors: usize) -> AppReport {
    crate::run_job_local(&job(params), lr_config(params), executors)
}

/// Run the LR job on an already-built session (any executor shape, any
/// installed fault plan) and return its checksum.
pub fn run_on(params: &LrParams, session: &mut ClusterSession) -> Result<f64, EngineError> {
    job(params).run(&mut JobCtx::local(session))
}

/// The executor configuration LR runs under (public so equivalence tests
/// can build sessions with the exact same memory split, then vary retry
/// policy and scheduler mode).
pub fn lr_config(params: &LrParams) -> ExecutorConfig {
    let mut config = ExecutorConfig::new(params.mode, params.heap_bytes)
        .storage_fraction(params.storage_fraction)
        .gc_algorithm(params.gc_algorithm);
    if let Some(page) = params.page_size {
        config = config.page_size(page);
    }
    config
}

/// Before caching, Deca's runtime optimizer classifies the cached UDT
/// from the job's IR (Appendix A). The LR stage refines LabeledPoint to
/// SFST, enabling unframed fixed-size decomposition. Driver-side, once
/// per job.
fn assert_deca_plan() {
    let analysis = crate::records::lr_analysis();
    let opt = Optimizer::new(&analysis.types.registry, &analysis.program);
    let phases = JobPhases::new().phase("map", analysis.stage_entry);
    let cache = deca_core::ContainerInfo {
        id: ContainerId(0),
        kind: ContainerKind::CachedRdd,
        created_seq: 0,
        content: TypeRef::Udt(analysis.types.labeled_point),
        write_phase: 0,
    };
    let plan = opt.plan(&phases, &[cache], &[]);
    assert_eq!(
        plan.decision(ContainerId(0)),
        &ContainerDecision::DecomposeSfst,
        "the optimizer must prove LabeledPoint SFST for the LR job"
    );
}

/// Cache one partition of labeled points in the mode's representation.
fn load_block(
    e: &mut Executor,
    part: &[crate::records::LabeledPointRec],
    mode: ExecutionMode,
    dims: usize,
    classes: &crate::records::LabeledPointClasses,
) -> Result<deca_engine::cache::BlockId, EngineError> {
    Ok(match mode {
        ExecutionMode::Spark => {
            e.cache.put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, classes, part)?
        }
        ExecutionMode::SparkSer => {
            e.cache.put_serialized(&mut e.heap, &mut e.kryo, &mut e.mm, part)?
        }
        ExecutionMode::Deca => {
            e.cache.put_deca_sfst(&mut e.heap, &mut e.mm, part, LabeledPointRec::sfst_size(dims))?
        }
    })
}

/// The LR job description: consumed by `DecaServer::submit` (via
/// `JobSpec::app`) and by the local shims above.
pub fn job(params: &LrParams) -> AppJob {
    let params = params.clone();
    AppJob::new("LR", move |job_ctx| run_logreg(&params, job_ctx))
}

fn run_logreg(params: &LrParams, job_ctx: &mut JobCtx) -> Result<f64, EngineError> {
    if params.mode == ExecutionMode::Deca {
        assert_deca_plan();
    }
    let data = datagen::labeled_vectors(params.points, params.dims, params.seed);
    let parts = datagen::partition(&data, params.partitions);
    let mode = params.mode;
    let dims = params.dims;

    // Load stage: partition p's points are cached on executor p % E,
    // where every iteration's task p (same pinning) will scan them.
    let blocks: Mutex<HashMap<(usize, usize), deca_engine::cache::BlockId>> =
        Mutex::new(HashMap::new());
    let parts_now = &parts;
    {
        let blocks_now = &blocks;
        job_ctx.run_stage("lr-load", params.partitions, |ctx, e| {
            let classes = LabeledPointRec::register(&mut e.heap);
            let block = load_block(e, &parts_now[ctx.task], mode, dims, &classes)?;
            blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), block);
            Ok(())
        })?;
    }
    job_ctx.note_cache_bytes();

    // ------------------------------------------------------ iterations
    let mut weights: Vec<f64> = (0..dims).map(|i| 0.1 * ((i % 7) as f64 - 3.0)).collect();
    for iter in 0..params.iterations {
        let weights_now = &weights;
        let blocks_now = &blocks;
        let sample = params.sample_timeline;
        let partials =
            job_ctx.run_stage(&format!("lr-iter{iter}"), params.partitions, |ctx, e| {
                let classes = LabeledPointRec::register(&mut e.heap);
                // The handle is only trusted if the cache still holds the
                // block — a retried or stolen attempt that landed on an
                // executor without it recaches from the generated partition
                // (lineage recompute), so the scanned bytes are identical
                // wherever the task lands.
                let cached = blocks_now
                    .lock()
                    .unwrap()
                    .get(&(ctx.executor, ctx.task))
                    .copied()
                    .filter(|b| e.cache.contains(*b));
                let block = match cached {
                    Some(b) => b,
                    None => {
                        let b = load_block(e, &parts_now[ctx.task], mode, dims, &classes)?;
                        blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), b);
                        b
                    }
                };
                let mut partial = vec![0.0f64; dims];
                match mode {
                    ExecutionMode::Spark => {
                        spark_gradient(e, block, &classes, weights_now, &mut partial)?
                    }
                    ExecutionMode::SparkSer => {
                        sparkser_gradient(e, block, &classes, weights_now, &mut partial)?
                    }
                    ExecutionMode::Deca => deca_gradient(e, block, weights_now, &mut partial)?,
                }
                if sample {
                    e.sample_timeline(classes.labeled_point);
                }
                Ok(partial)
            })?;
        // Sum partial gradients in task order (each partial is itself the
        // partition's in-order point sum), then apply the step — the f64
        // addition sequence never depends on where tasks ran.
        let mut gradient = vec![0.0f64; dims];
        for partial in &partials {
            for (g, p) in gradient.iter_mut().zip(partial) {
                *g += p;
            }
        }
        for (w, g) in weights.iter_mut().zip(&gradient) {
            *w -= 0.1 * g / params.points as f64;
        }
    }
    Ok(weights.iter().map(|w| w.abs()).sum())
}

/// One point's gradient term given the dot product machinery, shared by
/// every kernel so results agree bit-for-bit across modes.
#[inline]
fn factor_of(label: f64, dot: f64) -> f64 {
    (1.0 / (1.0 + (-label * dot).exp()) - 1.0) * label
}

/// Spark kernel: walk the heap object graphs; per point, allocate the
/// map's temporary gradient `DenseVector` (Figure 1 line 21-24) which dies
/// after the reduce consumes it.
#[allow(clippy::needless_range_loop)] // kernels index like the paper's code
fn spark_gradient(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    classes: &crate::records::LabeledPointClasses,
    weights: &[f64],
    gradient: &mut [f64],
) -> Result<(), EngineError> {
    let d = weights.len();
    let (root, len) = e.cache.objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)?;
    for i in 0..len {
        let arr = e.heap.root_ref(root);
        let lp = e.heap.array_get_ref(arr, i);
        let label = e.heap.read_f64(lp, 0);
        let dv = e.heap.read_ref(lp, 1);
        let data = e.heap.read_ref(dv, 0);
        let mut dot = 0.0;
        for j in 0..d {
            dot += weights[j] * e.heap.array_get_f64(data, j);
        }
        let factor = factor_of(label, dot);
        // Temporary map-output vector (allocated, filled, consumed, dead).
        let tmp = e.heap.alloc_array(classes.double_array, d).expect("temp vector");
        let ts = e.heap.push_stack(tmp);
        let data = {
            let arr = e.heap.root_ref(root);
            let lp = e.heap.array_get_ref(arr, i);
            let dv = e.heap.read_ref(lp, 1);
            e.heap.read_ref(dv, 0)
        };
        for j in 0..d {
            let v = e.heap.array_get_f64(data, j) * factor;
            let tmp = e.heap.stack_ref(ts);
            e.heap.array_set_f64(tmp, j, v);
        }
        let tmp = e.heap.stack_ref(ts);
        for j in 0..d {
            gradient[j] += e.heap.array_get_f64(tmp, j);
        }
        e.heap.truncate_stack(ts);
    }
    Ok(())
}

/// SparkSer kernel: deserialize each point (Kryo cost), materialise it as
/// temporary heap objects (the deserializer's output), then compute as the
/// Spark kernel does.
#[allow(clippy::needless_range_loop)]
fn sparkser_gradient(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    classes: &crate::records::LabeledPointClasses,
    weights: &[f64],
    gradient: &mut [f64],
) -> Result<(), EngineError> {
    let d = weights.len();
    // Collect first (the iterator holds &mut e), then process.
    let mut recs: Vec<LabeledPointRec> = Vec::new();
    e.cache.iter_serialized::<LabeledPointRec>(
        block,
        &mut e.heap,
        &mut e.kryo,
        &mut e.mm,
        |r| recs.push(r),
    )?;
    for rec in recs {
        // The deserializer materialises a temporary object graph.
        let lp = rec.store(&mut e.heap, classes).expect("temp graph");
        let ls = e.heap.push_stack(lp);
        let lp = e.heap.stack_ref(ls);
        let label = e.heap.read_f64(lp, 0);
        let dv = e.heap.read_ref(lp, 1);
        let data = e.heap.read_ref(dv, 0);
        let mut dot = 0.0;
        for j in 0..d {
            dot += weights[j] * e.heap.array_get_f64(data, j);
        }
        let factor = factor_of(label, dot);
        for j in 0..d {
            let data = {
                let lp = e.heap.stack_ref(ls);
                let dv = e.heap.read_ref(lp, 1);
                e.heap.read_ref(dv, 0)
            };
            gradient[j] += e.heap.array_get_f64(data, j) * factor;
        }
        e.heap.truncate_stack(ls);
    }
    Ok(())
}

/// Deca kernel — the Figure 12 transformed code: `label` at offset 0,
/// features at offsets 8, 16, … within each record's page segment;
/// accumulation into a preallocated result array.
fn deca_gradient(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    weights: &[f64],
    gradient: &mut [f64],
) -> Result<(), EngineError> {
    let d = weights.len();
    let heap = &mut e.heap;
    let mm = &mut e.mm;
    let cache = &mut e.cache;
    let block = cache.deca_block(block);
    block.scan_bytes(
        mm,
        heap,
        |bytes| {
            let label = f64::from_le_bytes(bytes[..8].try_into().unwrap());
            let mut dot = 0.0;
            let mut off = 8;
            for w in weights.iter().take(d) {
                dot += w * f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                off += 8;
            }
            let factor = factor_of(label, dot);
            off = 8;
            for g in gradient.iter_mut().take(d) {
                *g += f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) * factor;
                off += 8;
            }
        },
        |_| {},
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> LrParams {
        LrParams {
            points: 2_000,
            dims: 8,
            iterations: 3,
            partitions: 4,
            heap_bytes: 16 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            seed: 11,
            sample_timeline: false,
        }
    }

    #[test]
    fn all_modes_compute_identical_weights() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let ser = run(&tiny(ExecutionMode::SparkSer));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert!((spark.checksum - deca.checksum).abs() < 1e-12);
        assert!((ser.checksum - deca.checksum).abs() < 1e-12);
        assert!(spark.checksum > 0.0);
    }

    #[test]
    fn deca_cache_is_smaller_than_spark() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert!(
            deca.cache_bytes < spark.cache_bytes,
            "deca {} vs spark {}",
            deca.cache_bytes,
            spark.cache_bytes
        );
    }

    #[test]
    fn timeline_shows_live_points_in_spark_only() {
        let mut p = tiny(ExecutionMode::Spark);
        p.sample_timeline = true;
        let spark = run(&p);
        assert!(
            spark.timeline.peak_live() >= p.points,
            "cached points live on the heap: peak={} points={}",
            spark.timeline.peak_live(),
            p.points
        );
        let mut p = tiny(ExecutionMode::Deca);
        p.sample_timeline = true;
        let deca = run(&p);
        assert_eq!(deca.timeline.peak_live(), 0, "no LabeledPoint objects in Deca");
    }
}
