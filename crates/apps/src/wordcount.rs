//! WordCount (§6.1, Figure 8): two stages, one job, no cache, aggregated
//! (hash-based, eagerly-combined) shuffle.
//!
//! In Spark mode, every input word emits a temporary `Tuple2` object graph
//! that dies after the combiner consumes it, and every combine allocates a
//! fresh boxed count — the object churn whose census Figure 8(a) plots. In
//! Deca mode the combiner reuses the aggregate value's page segment in
//! place (§4.3.2) and the shuffle write is a raw byte copy.
//!
//! The job is described once as an [`AppJob`] ([`job`] for the integer-id
//! input, [`text_job`] for text tokens): one map task per partition, an
//! all-to-all exchange, one reduce task per partition. The same
//! description runs standalone ([`run`], [`run_local`]) or submitted to a
//! [`deca_engine::DecaServer`], with bit-identical results for any
//! executor count (the word checksums are integer-valued f64 sums, exact
//! under any addition order).

use deca_core::{DecaHashShuffle, DecaRecord, DecaVarHashShuffle};
use deca_engine::record::HeapRecord;
use deca_engine::{
    AppJob, ClusterSession, EngineError, ExecutionMode, ExecutorConfig, JobCtx, MapOutputs,
    ShufflePayload, SparkHashShuffle,
};

use crate::datagen;
use crate::report::AppReport;

/// Parameters of one WordCount run.
#[derive(Clone, Debug)]
pub struct WcParams {
    pub words: usize,
    pub distinct: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub mode: ExecutionMode,
    pub seed: u64,
    /// Sample the Tuple2 lifetime timeline every this many records
    /// (0 = off). Drives Figure 8(a).
    pub sample_every: usize,
}

impl WcParams {
    pub fn small(mode: ExecutionMode) -> WcParams {
        WcParams {
            words: 200_000,
            distinct: 10_000,
            partitions: 4,
            heap_bytes: 24 << 20,
            mode,
            seed: 20160901,
            sample_every: 0,
        }
    }
}

/// Run WordCount on one executor and report metrics plus a
/// mode-independent checksum.
pub fn run(params: &WcParams) -> AppReport {
    run_local(params, 1)
}

/// The executor configuration WordCount runs under (public so the
/// scheduler-equivalence tests can build sessions with the exact same
/// memory split, then vary retry policy and scheduler mode).
pub fn wc_config(params: &WcParams) -> ExecutorConfig {
    ExecutorConfig::builder()
        .mode(params.mode)
        .heap_bytes(params.heap_bytes)
        .shuffle_fraction(0.6)
        .storage_fraction(0.2)
        .build()
}

/// The WordCount job description: consumed by `DecaServer::submit`
/// (via `JobSpec::app`) and by the local shims below. WordCount's tasks
/// depend only on `(task index, partition data)` — never on cross-stage
/// executor-local state — so retried or stolen tasks may migrate freely.
pub fn job(params: &WcParams) -> AppJob {
    let p = params.clone();
    AppJob::new("WC", move |ctx| {
        let data = datagen::zipf_words(p.words, p.distinct, p.seed);
        let parts = datagen::partition(&data, p.partitions);
        let reducers = p.partitions;
        match p.mode {
            ExecutionMode::Spark | ExecutionMode::SparkSer => {
                run_spark(ctx, &parts, reducers, p.sample_every)
            }
            ExecutionMode::Deca => run_deca(ctx, &parts, reducers, p.sample_every),
        }
    })
}

/// Run the WordCount job on an already-built session (any executor shape,
/// any installed fault plan) and return its checksum.
pub fn run_on(params: &WcParams, session: &mut ClusterSession) -> Result<f64, EngineError> {
    job(params).run(&mut JobCtx::local(session))
}

/// Run WordCount across `executors` parallel executors. Results are
/// bit-identical for any executor count (tasks are pinned round-robin and
/// the exchange preserves map-task order).
pub fn run_local(params: &WcParams, executors: usize) -> AppReport {
    crate::run_job_local(&job(params), wc_config(params), executors)
}

fn run_spark(
    ctx: &mut JobCtx,
    parts: &[Vec<i64>],
    reducers: usize,
    sample_every: usize,
) -> Result<f64, EngineError> {
    let sums = ctx.run_shuffle_job(
        "wc",
        parts.len(),
        reducers,
        // ------------------------------------------------------------- map
        // One map task per partition: eager map-side combining, then a
        // serialized shuffle write per reduce partition.
        |ctx, e| {
            let pair_classes = <(i64, i64) as HeapRecord>::register(&mut e.heap);
            let mut buf: SparkHashShuffle<i64, i64> = SparkHashShuffle::new(&mut e.heap)?;
            for (i, &word) in parts[ctx.task].iter().enumerate() {
                // The map UDF emits a Tuple2 that dies after combining.
                let tuple = (word, 1i64);
                let tobj = tuple.store(&mut e.heap, &pair_classes)?;
                let ts = e.heap.push_stack(tobj);
                let (k, v) =
                    <(i64, i64) as HeapRecord>::load(&e.heap, &pair_classes, e.heap.stack_ref(ts));
                e.heap.truncate_stack(ts);
                buf.insert(&mut e.heap, k, v, |a, b| a + b)?;
                if sample_every != 0 && i % sample_every == 0 {
                    e.sample_timeline(pair_classes.tuple);
                }
            }
            // Shuffle write: Spark serializes combined pairs per reducer,
            // into pooled buffers reused across shuffle rounds.
            let out = e.shuffle_write_scope(|e| {
                let pairs = buf.drain(&e.heap);
                // ~2-byte tag + two small varints per pair; pre-size each
                // run near its share so the encode loop never reallocates.
                let cap = 8 * pairs.len().div_ceil(reducers);
                let mut out: Vec<Vec<u8>> =
                    (0..reducers).map(|_| e.take_shuffle_buf(cap)).collect();
                e.kryo.time_ser(|kr| {
                    for (k, v) in pairs {
                        let r = (k as u64 % reducers as u64) as usize;
                        kr.serialize(&(k, v), &mut out[r]);
                    }
                });
                out.into_iter().map(ShufflePayload::from).collect::<MapOutputs>()
            });
            buf.release(&mut e.heap);
            Ok(out)
        },
        // ---------------------------------------------------------- reduce
        |_ctx, e, bufs| {
            let mut buf: SparkHashShuffle<i64, i64> = SparkHashShuffle::new(&mut e.heap)?;
            e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                for payload in bufs {
                    let bytes = payload.contiguous();
                    let pairs: Vec<(i64, i64)> = e.kryo.deserialize_all(&bytes);
                    for (k, v) in pairs {
                        buf.insert(&mut e.heap, k, v, |a, b| a + b)?;
                    }
                }
                Ok(())
            })?;
            let mut sum = 0.0;
            buf.for_each(&e.heap, |k, v| {
                sum += (k as f64 + 1.0) * v as f64;
            });
            buf.release(&mut e.heap);
            Ok(sum)
        },
    )?;
    Ok(sums.into_iter().sum())
}

fn run_deca(
    ctx: &mut JobCtx,
    parts: &[Vec<i64>],
    reducers: usize,
    sample_every: usize,
) -> Result<f64, EngineError> {
    let sums = ctx.run_shuffle_job(
        "wc",
        parts.len(),
        reducers,
        |ctx, e| {
            // For the lifetime comparison we still register the Tuple2
            // classes so the census has the same class to count — Deca
            // simply never instantiates them (the transformed code writes
            // bytes directly).
            let pair_classes = <(i64, i64) as HeapRecord>::register(&mut e.heap);
            let mut buf = DecaHashShuffle::new(&mut e.mm, 8, 8);
            let mut kb = [0u8; 8];
            let one = 1i64.to_le_bytes();
            for (i, &word) in parts[ctx.task].iter().enumerate() {
                kb.copy_from_slice(&word.to_le_bytes());
                buf.insert(&mut e.mm, &mut e.heap, &kb, &one, add_i64_bytes)?;
                if sample_every != 0 && i % sample_every == 0 {
                    e.sample_timeline(pair_classes.tuple);
                }
            }
            // Shuffle write: raw bytes straight into arena pages, handed
            // to the exchange without a copy (§6.1 + zero-copy hand-over).
            let out = e.shuffle_write_scope(|e| -> Result<MapOutputs, EngineError> {
                let mut runs: Vec<_> = (0..reducers).map(|_| e.arena.new_run()).collect();
                let (mm, heap, arena) = (&mut e.mm, &mut e.heap, &mut e.arena);
                buf.for_each(mm, heap, |k, v| {
                    let key = i64::from_le_bytes(k[..8].try_into().unwrap());
                    let r = (key as u64 % reducers as u64) as usize;
                    runs[r].push_parts(arena, &[k, v]);
                })?;
                Ok(runs.into_iter().map(|run| e.hand_over(run)).collect())
            })?;
            buf.release(&mut e.mm, &mut e.heap);
            Ok(out)
        },
        |_ctx, e, bufs| {
            let mut buf = DecaHashShuffle::new(&mut e.mm, 8, 8);
            e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                // Records never span pages, so each chunk holds whole
                // 16-byte records and the concatenation is the exact byte
                // sequence a flat buffer would carry.
                for payload in bufs {
                    for bytes in payload.chunks() {
                        for rec in bytes.chunks_exact(16) {
                            buf.insert(
                                &mut e.mm,
                                &mut e.heap,
                                &rec[..8],
                                &rec[8..],
                                add_i64_bytes,
                            )?;
                        }
                    }
                }
                Ok(())
            })?;
            let mut sum = 0.0;
            buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                let key = i64::decode(k);
                let count = i64::decode(v);
                sum += (key as f64 + 1.0) * count as f64;
            })?;
            buf.release(&mut e.mm, &mut e.heap);
            Ok(sum)
        },
    )?;
    Ok(sums.into_iter().sum())
}

// =====================================================================
// Text-keyed WordCount (the paper's actual input is text): exercises the
// variable-size-key shuffle with its mandatory pointer array (§4.3.2).
// =====================================================================

/// Render a word id as its text token (variable lengths, as real words).
fn word_text(id: i64) -> String {
    format!("w{}{}", id, "x".repeat((id % 11) as usize))
}

/// The text-keyed WordCount job description. Spark mode materialises each
/// token as a `java.lang.String` + `char[]` graph (what
/// `textFile().flatMap(split)` produces) and the buffer holds String keys;
/// Deca mode stores UTF-8 key bytes framed in pages behind a pointer
/// array.
pub fn text_job(params: &WcParams) -> AppJob {
    let p = params.clone();
    AppJob::new("WC-text", move |ctx| {
        let ids = datagen::zipf_words(p.words, p.distinct, p.seed);
        let parts = datagen::partition(&ids, p.partitions);
        let reducers = p.partitions;
        match p.mode {
            ExecutionMode::Spark | ExecutionMode::SparkSer => run_text_spark(ctx, &parts, reducers),
            ExecutionMode::Deca => run_text_deca(ctx, &parts, reducers),
        }
    })
}

/// Run text-keyed WordCount over text tokens on one executor.
pub fn run_text(params: &WcParams) -> AppReport {
    run_text_local(params, 1)
}

/// Text-keyed WordCount across `executors` parallel executors.
pub fn run_text_local(params: &WcParams, executors: usize) -> AppReport {
    crate::run_job_local(&text_job(params), wc_config(params), executors)
}

fn text_checksum(word: &str, count: i64) -> f64 {
    (word.len() as f64 + word.as_bytes()[1] as f64) * count as f64
}

fn run_text_spark(
    ctx: &mut JobCtx,
    parts: &[Vec<i64>],
    reducers: usize,
) -> Result<f64, EngineError> {
    let sums = ctx.run_shuffle_job(
        "wct",
        parts.len(),
        reducers,
        |ctx, e| {
            let str_classes = <String as HeapRecord>::register(&mut e.heap);
            let mut buf: SparkHashShuffle<String, i64> = SparkHashShuffle::new(&mut e.heap)?;
            for &id in &parts[ctx.task] {
                // The tokenizer materialises a temporary String graph.
                let token = word_text(id);
                let tok_obj = token.store(&mut e.heap, &str_classes)?;
                let ts = e.heap.push_stack(tok_obj);
                let word = String::load(&e.heap, &str_classes, e.heap.stack_ref(ts));
                e.heap.truncate_stack(ts);
                buf.insert(&mut e.heap, word, 1, |a, b| a + b)?;
            }
            let out = e.shuffle_write_scope(|e| {
                let pairs = buf.drain(&e.heap);
                // Tokens average ~8 bytes plus framing and the count.
                let cap = 24 * pairs.len().div_ceil(reducers);
                let mut out: Vec<Vec<u8>> =
                    (0..reducers).map(|_| e.take_shuffle_buf(cap)).collect();
                e.kryo.time_ser(|kr| {
                    for (k, v) in pairs {
                        let r = (k.len() + k.as_bytes()[1] as usize) % reducers;
                        kr.serialize(&k, &mut out[r]);
                        kr.serialize(&v, &mut out[r]);
                    }
                });
                out.into_iter().map(ShufflePayload::from).collect::<MapOutputs>()
            });
            buf.release(&mut e.heap);
            Ok(out)
        },
        |_ctx, e, bufs| {
            let mut buf: SparkHashShuffle<String, i64> = SparkHashShuffle::new(&mut e.heap)?;
            e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                for payload in bufs {
                    let bytes = payload.contiguous();
                    let bytes: &[u8] = &bytes;
                    // Heterogeneous stream (String, i64, String, …):
                    // decode pairwise under one scoped timer, insert after.
                    let pairs: Vec<(String, i64)> = e.kryo.time_deser(|kr| {
                        let mut pairs = Vec::new();
                        let mut pos = 0;
                        while pos < bytes.len() {
                            let k: String = kr.deserialize(bytes, &mut pos);
                            let v: i64 = kr.deserialize(bytes, &mut pos);
                            pairs.push((k, v));
                        }
                        pairs
                    });
                    for (k, v) in pairs {
                        buf.insert(&mut e.heap, k, v, |a, b| a + b)?;
                    }
                }
                Ok(())
            })?;
            let mut sum = 0.0;
            buf.for_each(&e.heap, |k, v| sum += text_checksum(&k, v));
            buf.release(&mut e.heap);
            Ok(sum)
        },
    )?;
    Ok(sums.into_iter().sum())
}

fn run_text_deca(
    ctx: &mut JobCtx,
    parts: &[Vec<i64>],
    reducers: usize,
) -> Result<f64, EngineError> {
    let sums = ctx.run_shuffle_job(
        "wct",
        parts.len(),
        reducers,
        |ctx, e| {
            let mut buf = DecaVarHashShuffle::new(&mut e.mm, 8);
            for &id in &parts[ctx.task] {
                let token = word_text(id); // transformed code keeps bytes only
                buf.insert(
                    &mut e.mm,
                    &mut e.heap,
                    token.as_bytes(),
                    &1i64.to_le_bytes(),
                    add_i64_bytes,
                )?;
            }
            // Raw framed records (u32 key len + key + 8-byte count) written
            // whole into arena pages and handed over copy-free.
            let out = e.shuffle_write_scope(|e| -> Result<MapOutputs, EngineError> {
                let mut runs: Vec<_> = (0..reducers).map(|_| e.arena.new_run()).collect();
                let (mm, heap, arena) = (&mut e.mm, &mut e.heap, &mut e.arena);
                buf.for_each(mm, heap, |k, v| {
                    let r = (k.len() + k[1] as usize) % reducers;
                    runs[r].push_parts(arena, &[&(k.len() as u32).to_le_bytes(), k, v]);
                })?;
                Ok(runs.into_iter().map(|run| e.hand_over(run)).collect())
            })?;
            buf.release(&mut e.mm, &mut e.heap);
            Ok(out)
        },
        |_ctx, e, bufs| {
            let mut buf = DecaVarHashShuffle::new(&mut e.mm, 8);
            e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                // Frames never span pages, so each chunk parses standalone.
                for payload in bufs {
                    for bytes in payload.chunks() {
                        let mut pos = 0;
                        while pos < bytes.len() {
                            let klen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap())
                                as usize;
                            pos += 4;
                            let key = &bytes[pos..pos + klen];
                            pos += klen;
                            let val = &bytes[pos..pos + 8];
                            pos += 8;
                            buf.insert(&mut e.mm, &mut e.heap, key, val, add_i64_bytes)?;
                        }
                    }
                }
                Ok(())
            })?;
            let mut sum = 0.0;
            buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                let word = std::str::from_utf8(k).expect("utf8");
                sum += text_checksum(word, i64::decode(v));
            })?;
            buf.release(&mut e.mm, &mut e.heap);
            Ok(sum)
        },
    )?;
    Ok(sums.into_iter().sum())
}

fn add_i64_bytes(acc: &mut [u8], add: &[u8]) {
    let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
    let b = i64::from_le_bytes(add[..8].try_into().unwrap());
    acc[..8].copy_from_slice(&(a + b).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> WcParams {
        WcParams {
            words: 20_000,
            distinct: 500,
            partitions: 3,
            heap_bytes: 16 << 20,
            mode,
            seed: 7,
            sample_every: 0,
        }
    }

    #[test]
    fn spark_and_deca_agree() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert_eq!(spark.checksum, deca.checksum, "same aggregation result");
        assert!(spark.checksum > 0.0);
    }

    #[test]
    fn text_mode_agrees_across_spark_and_deca() {
        let spark = run_text(&tiny(ExecutionMode::Spark));
        let deca = run_text(&tiny(ExecutionMode::Deca));
        assert_eq!(spark.checksum, deca.checksum);
        assert!(spark.checksum > 0.0);
    }

    #[test]
    fn spark_mode_churns_objects_deca_does_not() {
        let mut p = tiny(ExecutionMode::Spark);
        p.sample_every = 1000;
        let spark = run(&p);
        let mut p = tiny(ExecutionMode::Deca);
        p.sample_every = 1000;
        let deca = run(&p);
        assert!(
            spark.timeline.peak_live() > 100,
            "Spark: temporary tuples populate the heap (peak {})",
            spark.timeline.peak_live()
        );
        assert_eq!(deca.timeline.peak_live(), 0, "Deca: no Tuple2 is ever instantiated");
    }

    #[test]
    fn executor_count_does_not_change_results() {
        for mode in [ExecutionMode::Spark, ExecutionMode::Deca] {
            let one = run_local(&tiny(mode), 1);
            let four = run_local(&tiny(mode), 4);
            assert_eq!(one.checksum, four.checksum, "{mode}");
        }
    }
}
