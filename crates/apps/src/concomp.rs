//! ConnectedComponents (§6.3, Figure 10b): label propagation over the
//! cached adjacency, with a min-aggregated message shuffle per iteration.
//!
//! Shares the grouping/caching machinery with PageRank; the combine is
//! `min` instead of `+`, and iteration stops when no label changes (or at
//! the iteration cap, as in the paper's 10-iteration runs).

use deca_core::DecaHashShuffle;
use deca_engine::record::HeapRecord;
use deca_engine::{ExecutionMode, Executor, ExecutorConfig, SparkHashShuffle};

use crate::datagen;
use crate::pagerank::build_adjacency;
use crate::records::AdjListRec;
use crate::report::AppReport;

/// Parameters of one ConnectedComponents run.
#[derive(Clone, Debug)]
pub struct CcParams {
    pub vertices: usize,
    pub edges: usize,
    pub max_iterations: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub mode: ExecutionMode,
    pub storage_fraction: f64,
    pub seed: u64,
}

impl CcParams {
    pub fn small(mode: ExecutionMode) -> CcParams {
        CcParams {
            vertices: 5_000,
            edges: 60_000,
            max_iterations: 10,
            partitions: 4,
            heap_bytes: 32 << 20,
            mode,
            storage_fraction: 0.4,
            seed: 20160905,
        }
    }
}

pub fn run(params: &CcParams) -> AppReport {
    let config = ExecutorConfig::new(params.mode, params.heap_bytes)
        .storage_fraction(params.storage_fraction);
    let mut exec = Executor::new(config);
    let edges = datagen::power_law_graph(params.vertices, params.edges, params.seed);
    let pair_classes = <(i64, i64) as HeapRecord>::register(&mut exec.heap);

    let (blocks, _degrees, adj_classes) =
        build_adjacency(&mut exec, &edges, params.vertices, params.partitions, params.mode);
    exec.finish_job();
    let cache_bytes = exec.job.cache_bytes + exec.job.swapped_cache_bytes;

    let mut labels: Vec<i64> = (0..params.vertices as i64).collect();
    for iter in 0..params.max_iterations {
        let mut spark_mins: Option<SparkHashShuffle<i64, i64>> = match params.mode {
            ExecutionMode::Deca => None,
            _ => Some(SparkHashShuffle::new(&mut exec.heap).expect("buffer")),
        };
        let mut deca_mins: Option<DecaHashShuffle> = match params.mode {
            ExecutionMode::Deca => Some(DecaHashShuffle::new(&mut exec.mm, 8, 8)),
            _ => None,
        };

        for (pi, &block) in blocks.iter().enumerate() {
            exec.run_task(format!("cc-iter{iter}-{pi}"), |e| match params.mode {
                ExecutionMode::Spark | ExecutionMode::SparkSer => {
                    let buf = spark_mins.as_mut().expect("spark buffer");
                    let mut adj: Vec<AdjListRec> = Vec::new();
                    match params.mode {
                        ExecutionMode::Spark => {
                            let (root, len) = e
                                .cache
                                .objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)
                                .expect("cache access");
                            for i in 0..len {
                                let arr = e.heap.root_ref(root);
                                let v = e.heap.array_get_ref(arr, i);
                                adj.push(AdjListRec::load(&e.heap, &adj_classes, v));
                            }
                        }
                        _ => {
                            e.cache
                                .iter_serialized(block, &mut e.heap, &mut e.kryo, &mut e.mm, |r| {
                                    adj.push(r)
                                })
                                .expect("cache access");
                        }
                    }
                    for a in adj {
                        let l = labels[a.vertex as usize];
                        for &dst in &a.neighbors {
                            // Message both ways so components converge.
                            for (k, v) in [(dst as i64, l), (a.vertex as i64, labels[dst as usize])]
                            {
                                let tmp =
                                    (k, v).store(&mut e.heap, &pair_classes).expect("temp msg");
                                let ts = e.heap.push_stack(tmp);
                                let (k, v) = <(i64, i64) as HeapRecord>::load(
                                    &e.heap,
                                    &pair_classes,
                                    e.heap.stack_ref(ts),
                                );
                                e.heap.truncate_stack(ts);
                                buf.insert(&mut e.heap, k, v, |a, b| a.min(b)).expect("combine");
                            }
                        }
                    }
                }
                ExecutionMode::Deca => {
                    let buf = deca_mins.as_mut().expect("deca buffer");
                    let heap = &mut e.heap;
                    let mm = &mut e.mm;
                    let mut msgs: Vec<(i64, i64)> = Vec::new();
                    let block = e.cache.deca_block(block);
                    block
                        .scan_bytes(
                            mm,
                            heap,
                            |bytes| {
                                let vertex = u32::from_le_bytes(bytes[..4].try_into().unwrap());
                                let n =
                                    u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
                                let l = labels[vertex as usize];
                                for j in 0..n {
                                    let dst = u32::from_le_bytes(
                                        bytes[8 + j * 4..12 + j * 4].try_into().unwrap(),
                                    );
                                    msgs.push((dst as i64, l));
                                    msgs.push((vertex as i64, labels[dst as usize]));
                                }
                            },
                            |_| {},
                        )
                        .expect("cache scan");
                    for (k, v) in msgs {
                        buf.insert(mm, heap, &k.to_le_bytes(), &v.to_le_bytes(), |acc, add| {
                            let a = i64::from_le_bytes(acc[..8].try_into().unwrap());
                            let b = i64::from_le_bytes(add[..8].try_into().unwrap());
                            acc[..8].copy_from_slice(&a.min(b).to_le_bytes());
                        })
                        .expect("combine");
                    }
                }
            });
        }

        let changed = exec.run_task(format!("cc-update{iter}"), |e| {
            let mut changed = 0usize;
            if let Some(buf) = &spark_mins {
                buf.for_each(&e.heap, |k, v| {
                    let k = k as usize;
                    if v < labels[k] {
                        labels[k] = v;
                        changed += 1;
                    }
                });
            }
            if let Some(buf) = &mut deca_mins {
                buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    let k = i64::from_le_bytes(k[..8].try_into().unwrap()) as usize;
                    let v = i64::from_le_bytes(v[..8].try_into().unwrap());
                    if v < labels[k] {
                        labels[k] = v;
                        changed += 1;
                    }
                })
                .expect("scan");
            }
            if let Some(mut buf) = spark_mins.take() {
                buf.release(&mut e.heap);
            }
            if let Some(mut buf) = deca_mins.take() {
                buf.release(&mut e.mm, &mut e.heap);
            }
            changed
        });
        if changed == 0 {
            break;
        }
    }

    exec.finish_job();
    let checksum: f64 = labels.iter().map(|&l| l as f64).sum();
    AppReport {
        app: "CC".into(),
        mode: params.mode,
        metrics: exec.job.clone(),
        timeline: exec.timeline.clone(),
        checksum,
        cache_bytes,
        objects_traced: exec.heap.stats().objects_traced,
        minor_gcs: exec.heap.stats().minor_collections,
        full_gcs: exec.heap.stats().full_collections,
        slowest_task: exec.slowest_task().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> CcParams {
        CcParams {
            vertices: 300,
            edges: 1_500,
            max_iterations: 10,
            partitions: 2,
            heap_bytes: 24 << 20,
            mode,
            storage_fraction: 0.4,
            seed: 9,
        }
    }

    #[test]
    fn all_modes_agree() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let ser = run(&tiny(ExecutionMode::SparkSer));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert_eq!(spark.checksum, deca.checksum);
        assert_eq!(ser.checksum, deca.checksum);
    }

    #[test]
    fn labels_decrease_monotonically() {
        let r = run(&tiny(ExecutionMode::Deca));
        // Components exist: the checksum is well below the no-propagation
        // sum of 0..V.
        let v = 300f64;
        assert!(r.checksum < v * (v - 1.0) / 2.0);
        assert!(r.checksum >= 0.0);
    }
}
