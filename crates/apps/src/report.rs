//! Uniform result reporting for the workloads.

use std::time::Duration;

use deca_engine::{ClusterSession, ExecutionMode, JobMetrics, TaskMetrics, Timeline};

/// The outcome of one workload run in one mode.
#[derive(Clone, Debug)]
pub struct AppReport {
    pub app: String,
    pub mode: ExecutionMode,
    pub metrics: JobMetrics,
    /// Lifetime timeline (populated by apps that sample it).
    pub timeline: Timeline,
    /// A mode-independent checksum of the computed result, for
    /// cross-mode correctness assertions.
    pub checksum: f64,
    /// Bytes of cached data (paper's "Cached Data" bars).
    pub cache_bytes: usize,
    /// Objects traced across all collections (the §2.2 pathology in one
    /// number — what the collector repeatedly walks).
    pub objects_traced: u64,
    /// GC collections observed.
    pub minor_gcs: u64,
    pub full_gcs: u64,
    /// The slowest task's breakdown (Figure 11 reports the slowest task).
    pub slowest_task: Option<TaskMetrics>,
}

impl AppReport {
    /// Assemble a report from a finished cluster session: summed metrics
    /// (exec = the parallel critical path), merged timelines, and GC
    /// counts totalled across executors. Call after
    /// [`ClusterSession::finish_job`] so cache occupancy is current.
    pub fn from_cluster(
        app: impl Into<String>,
        session: &ClusterSession,
        checksum: f64,
        cache_bytes: usize,
    ) -> AppReport {
        let execs = &session.cluster().executors;
        AppReport {
            app: app.into(),
            mode: session.mode(),
            metrics: session.job_summary(),
            timeline: session.merged_timeline(),
            checksum,
            cache_bytes,
            objects_traced: execs.iter().map(|e| e.heap_stats().objects_traced).sum(),
            minor_gcs: execs.iter().map(|e| e.heap_stats().minor_collections).sum(),
            full_gcs: execs.iter().map(|e| e.heap_stats().full_collections).sum(),
            slowest_task: session.slowest_task().cloned(),
        }
    }

    pub fn exec(&self) -> Duration {
        self.metrics.exec
    }

    pub fn gc(&self) -> Duration {
        self.metrics.gc
    }

    /// GC share of execution (Table 3).
    pub fn gc_ratio(&self) -> f64 {
        self.metrics.gc_ratio()
    }

    /// One summary line for harness output.
    pub fn line(&self) -> String {
        format!(
            "{:<10} {:<9} exec={:>8.3}s gc={:>8.3}s ({:>5.1}%) ser={:.3}s deser={:.3}s io={:.3}s cache={:.2}MB gcs={}m/{}f",
            self.app,
            self.mode.name(),
            self.metrics.exec.as_secs_f64(),
            self.metrics.gc.as_secs_f64(),
            self.gc_ratio() * 100.0,
            self.metrics.ser.as_secs_f64(),
            self.metrics.deser.as_secs_f64(),
            self.metrics.io.as_secs_f64(),
            self.cache_bytes as f64 / (1 << 20) as f64,
            self.minor_gcs,
            self.full_gcs,
        )
    }
}

/// Relative speedup of `other` over `self` (exec-time ratio).
pub fn speedup(baseline: &AppReport, other: &AppReport) -> f64 {
    baseline.metrics.exec.as_secs_f64() / other.metrics.exec.as_secs_f64().max(1e-9)
}

/// GC-time reduction of `other` relative to `baseline` (Table 3's
/// "reduction" column).
pub fn gc_reduction(baseline: &AppReport, other: &AppReport) -> f64 {
    let b = baseline.metrics.gc.as_secs_f64();
    if b <= 0.0 {
        return 0.0;
    }
    1.0 - other.metrics.gc.as_secs_f64() / b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(exec_ms: u64, gc_ms: u64) -> AppReport {
        let metrics = JobMetrics {
            exec: Duration::from_millis(exec_ms),
            gc: Duration::from_millis(gc_ms),
            ..Default::default()
        };
        AppReport {
            app: "t".into(),
            mode: ExecutionMode::Spark,
            metrics,
            timeline: Timeline::new(),
            checksum: 0.0,
            cache_bytes: 0,
            objects_traced: 0,
            minor_gcs: 0,
            full_gcs: 0,
            slowest_task: None,
        }
    }

    #[test]
    fn speedup_and_reduction() {
        let slow = report(1000, 800);
        let fast = report(100, 8);
        assert!((speedup(&slow, &fast) - 10.0).abs() < 1e-9);
        assert!((gc_reduction(&slow, &fast) - 0.99).abs() < 1e-9);
        assert!(gc_reduction(&fast, &slow) <= 0.0);
    }

    #[test]
    fn line_renders() {
        let r = report(1000, 500);
        let line = r.line();
        assert!(line.contains("Spark"));
        assert!(line.contains("50.0%"));
    }
}
