//! PageRank (§6.3, Figure 10a): multiple stages and jobs, a static cached
//! adjacency RDD built by `groupByKey`, and an aggregated message shuffle
//! every iteration.
//!
//! The adjacency build is the §4.3.3 partially-decomposable scenario
//! (Figure 7b): while grouping, the value lists are VSTs (heap objects in
//! *every* mode, including Deca), but the output copied into the cache is
//! an RFST which Deca decomposes into framed page segments. The dying
//! grouping buffer is then reclaimed wholesale.
//!
//! The job is described once as an [`AppJob`] ([`job`]) driving the
//! paper's stage structure: an adjacency-build stage caches partition
//! `p`'s block on executor `p % E` (tasks are pinned round-robin, so every
//! iteration's map task `p` finds its block executor-local), then each
//! iteration is a map/exchange/reduce shuffle job over the rank messages.
//! The same description runs standalone ([`run`], [`run_local`]) or
//! submitted to a [`deca_engine::DecaServer`].

use std::collections::HashMap;
use std::sync::Mutex;

use deca_core::optimizer::ContainerDecision;
use deca_core::{DecaHashShuffle, Optimizer};
use deca_engine::record::HeapRecord;
use deca_engine::{
    AppJob, ClusterSession, EngineError, ExecutionMode, Executor, ExecutorConfig, JobCtx,
    MapOutputs, ShufflePayload, SparkGroupShuffle, SparkHashShuffle,
};
use deca_udt::{ContainerId, ContainerKind, JobPhases, TypeRef};

use crate::datagen;
use crate::records::AdjListRec;
use crate::report::AppReport;

/// Parameters of one PageRank run.
#[derive(Clone, Debug)]
pub struct PrParams {
    pub vertices: usize,
    pub edges: usize,
    pub iterations: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub mode: ExecutionMode,
    pub gc_algorithm: deca_heap::GcAlgorithm,
    pub storage_fraction: f64,
    pub seed: u64,
}

impl PrParams {
    pub fn small(mode: ExecutionMode) -> PrParams {
        PrParams {
            vertices: 5_000,
            edges: 60_000,
            iterations: 5,
            partitions: 4,
            heap_bytes: 32 << 20,
            mode,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            storage_fraction: 0.4,
            seed: 20160904,
        }
    }
}

/// Partition edges by source vertex, as Spark's hash partitioner would.
fn partition_edges(edges: &[(u32, u32)], partitions: usize) -> Vec<Vec<(u32, u32)>> {
    let mut out: Vec<Vec<(u32, u32)>> = (0..partitions).map(|_| Vec::new()).collect();
    for &(s, d) in edges {
        out[(s as usize) % partitions].push((s, d));
    }
    out
}

/// Group one partition's edges into sorted adjacency lists and copy them
/// into the executor's cache in the mode's representation (the §4.3.3
/// scenario: VST grouping buffer, decompose-on-copy cache output).
fn build_adjacency_block(
    e: &mut Executor,
    part: &[(u32, u32)],
    mode: ExecutionMode,
    adj_classes: &crate::records::AdjClasses,
) -> Result<deca_engine::cache::BlockId, EngineError> {
    // The grouping buffer holds heap objects in every mode — its content
    // is a VST while being built (§4.3.3).
    let mut buf: SparkGroupShuffle<u32, i64> = SparkGroupShuffle::new(&mut e.heap);
    for &(s, d) in part {
        buf.append(&mut e.heap, s, d as i64)?;
    }
    let mut adj: Vec<AdjListRec> = Vec::new();
    buf.for_each_group(&e.heap, |&vertex, values| {
        adj.push(AdjListRec { vertex, neighbors: values.into_iter().map(|v| v as u32).collect() });
    });
    adj.sort_by_key(|a| a.vertex);
    // Copy into the cache in the mode's representation, then release the
    // dying buffer.
    let block = match mode {
        ExecutionMode::Spark => {
            e.cache.put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, adj_classes, &adj)?
        }
        ExecutionMode::SparkSer => {
            e.cache.put_serialized(&mut e.heap, &mut e.kryo, &mut e.mm, &adj)?
        }
        ExecutionMode::Deca => e.cache.put_deca(&mut e.heap, &mut e.mm, &adj)?,
    };
    buf.release(&mut e.heap);
    Ok(block)
}

/// Build the adjacency cache (grouping stage) on one executor and return
/// its block ids plus per-vertex out-degrees. Shared by PageRank and CC.
pub fn build_adjacency(
    exec: &mut Executor,
    edges: &[(u32, u32)],
    vertices: usize,
    partitions: usize,
    mode: ExecutionMode,
) -> (Vec<deca_engine::cache::BlockId>, Vec<u32>, crate::records::AdjClasses) {
    let adj_classes = AdjListRec::register(&mut exec.heap);
    let parts = partition_edges(edges, partitions);

    let mut degrees = vec![0u32; vertices];
    for &(s, _) in edges {
        degrees[s as usize] += 1;
    }

    let blocks = parts
        .iter()
        .enumerate()
        .map(|(pi, part)| {
            exec.run_task(format!("adj-build-{pi}"), |e| {
                build_adjacency_block(e, part, mode, &adj_classes).expect("adjacency build")
            })
        })
        .collect();
    (blocks, degrees, adj_classes)
}

/// Generate and aggregate one iteration's rank messages from one block.
/// Cache accesses propagate errors (rather than panicking) because the
/// cold-read path is fault-instrumented: an injected `SpillRead` kill
/// must surface as a failed task attempt the driver can retry.
#[allow(clippy::too_many_arguments)] // one parameter per shuffle representation
fn messages_from_block(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    mode: ExecutionMode,
    ranks: &[f64],
    degrees: &[u32],
    spark_sums: &mut Option<SparkHashShuffle<i64, f64>>,
    deca_sums: &mut Option<DecaHashShuffle>,
    pair_classes: &deca_engine::record::PairClasses,
) -> Result<(), EngineError> {
    match mode {
        ExecutionMode::Spark | ExecutionMode::SparkSer => {
            let buf = spark_sums.as_mut().expect("spark buffer");
            match mode {
                ExecutionMode::Spark => {
                    let (root, len) =
                        e.cache.objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)?;
                    for i in 0..len {
                        let arr = e.heap.root_ref(root);
                        let v = e.heap.array_get_ref(arr, i);
                        let vertex = e.heap.read_word(v, 0) as u32;
                        let edges_arr = e.heap.read_ref(v, 1);
                        let deg = degrees[vertex as usize].max(1) as f64;
                        let contrib = ranks[vertex as usize] / deg;
                        let n = e.heap.array_len(edges_arr);
                        for j in 0..n {
                            let arr = e.heap.root_ref(root);
                            let v = e.heap.array_get_ref(arr, i);
                            let edges_arr = e.heap.read_ref(v, 1);
                            let dst = e.heap.array_get_i32(edges_arr, j) as i64;
                            // Temporary message tuple, then eager combine.
                            let tmp =
                                (dst, contrib).store(&mut e.heap, pair_classes).expect("temp msg");
                            let ts = e.heap.push_stack(tmp);
                            let (k, val) = <(i64, f64) as HeapRecord>::load(
                                &e.heap,
                                pair_classes,
                                e.heap.stack_ref(ts),
                            );
                            e.heap.truncate_stack(ts);
                            buf.insert(&mut e.heap, k, val, |a, b| a + b).expect("combine");
                        }
                    }
                }
                _ => {
                    // SparkSer: deserialize adjacency, then emit as Spark.
                    let mut adj: Vec<AdjListRec> = Vec::new();
                    e.cache.iter_serialized(block, &mut e.heap, &mut e.kryo, &mut e.mm, |r| {
                        adj.push(r)
                    })?;
                    for a in adj {
                        let deg = degrees[a.vertex as usize].max(1) as f64;
                        let contrib = ranks[a.vertex as usize] / deg;
                        for &dst in &a.neighbors {
                            let tmp = (dst as i64, contrib)
                                .store(&mut e.heap, pair_classes)
                                .expect("temp msg");
                            let ts = e.heap.push_stack(tmp);
                            let (k, val) = <(i64, f64) as HeapRecord>::load(
                                &e.heap,
                                pair_classes,
                                e.heap.stack_ref(ts),
                            );
                            e.heap.truncate_stack(ts);
                            buf.insert(&mut e.heap, k, val, |x, y| x + y).expect("combine");
                        }
                    }
                }
            }
        }
        ExecutionMode::Deca => {
            let buf = deca_sums.as_mut().expect("deca buffer");
            let heap = &mut e.heap;
            let mm = &mut e.mm;
            // Two-phase borrow: collect the (dst, contrib) stream from the
            // scan, then insert (the scan holds the cache borrow).
            let mut msgs: Vec<(i64, f64)> = Vec::new();
            let block = e.cache.deca_block(block);
            block
                .scan_bytes(
                    mm,
                    heap,
                    |bytes| {
                        let vertex = u32::from_le_bytes(bytes[..4].try_into().unwrap());
                        let n = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
                        let deg = degrees[vertex as usize].max(1) as f64;
                        let contrib = ranks[vertex as usize] / deg;
                        for j in 0..n {
                            let dst = u32::from_le_bytes(
                                bytes[8 + j * 4..12 + j * 4].try_into().unwrap(),
                            ) as i64;
                            msgs.push((dst, contrib));
                        }
                    },
                    |_| {},
                )
                .expect("cache scan");
            for (dst, contrib) in msgs {
                buf.insert(mm, heap, &dst.to_le_bytes(), &contrib.to_le_bytes(), add_f64_bytes)
                    .expect("combine");
            }
        }
    }
    Ok(())
}

fn add_f64_bytes(acc: &mut [u8], add: &[u8]) {
    let a = f64::from_le_bytes(acc[..8].try_into().unwrap());
    let b = f64::from_le_bytes(add[..8].try_into().unwrap());
    acc[..8].copy_from_slice(&(a + b).to_le_bytes());
}

/// Run PageRank on one executor.
pub fn run(params: &PrParams) -> AppReport {
    run_local(params, 1)
}

/// Assert the Deca optimizer reproduces the §4.3.3 plan (VST grouping
/// buffer kept on the heap, adjacency cache decomposed on copy) before the
/// engine follows it. Driver-side, once per job.
fn assert_deca_plan() {
    let analysis = deca_udt::fixtures::group_by_program();
    let opt = Optimizer::new(&analysis.registry, &analysis.program);
    let phases = JobPhases::new()
        .phase("combine", analysis.build_entry)
        .phase("iterate", analysis.read_entry);
    let shuffle = deca_core::ContainerInfo {
        id: ContainerId(0),
        kind: ContainerKind::ShuffleBuffer,
        created_seq: 0,
        content: TypeRef::Udt(analysis.group),
        write_phase: 0,
    };
    let cache = deca_core::ContainerInfo {
        id: ContainerId(1),
        kind: ContainerKind::CachedRdd,
        created_seq: 1,
        content: TypeRef::Udt(analysis.group),
        write_phase: 0,
    };
    let plan = opt.plan(&phases, &[shuffle, cache], &[]);
    assert!(
        matches!(plan.decision(ContainerId(0)), ContainerDecision::Keep(_)),
        "the grouping buffer must stay on the heap (VST while combining)"
    );
    assert_eq!(
        plan.decision(ContainerId(1)),
        &ContainerDecision::DecomposeOnCopy,
        "the adjacency cache decomposes when the dying shuffle's output is copied"
    );
}

/// The executor configuration PageRank runs under (public so the
/// scheduler-equivalence tests can build sessions with the exact same
/// memory split, then vary retry policy and scheduler mode).
pub fn pr_config(params: &PrParams) -> ExecutorConfig {
    ExecutorConfig::builder()
        .mode(params.mode)
        .heap_bytes(params.heap_bytes)
        .storage_fraction(params.storage_fraction)
        .gc(params.gc_algorithm)
        .build()
}

/// Run PageRank across `executors` parallel executors. The rank vector is
/// identical for any executor count: map task `p` always scans block `p`
/// (cached on executor `p % E`), and each reduce task combines mapper
/// subtotals in map-task order, so the f64 addition sequence per vertex
/// never depends on the cluster shape.
pub fn run_local(params: &PrParams, executors: usize) -> AppReport {
    crate::run_job_local(&job(params), pr_config(params), executors)
}

/// Run the PageRank job on an already-built session (any executor shape,
/// any installed fault plan) and return `(checksum, cache_bytes)`.
pub fn run_on(
    params: &PrParams,
    session: &mut ClusterSession,
) -> Result<(f64, usize), EngineError> {
    let (checksum, cache_bytes) = {
        let mut ctx = JobCtx::local(session);
        let checksum = job(params).run(&mut ctx)?;
        (checksum, ctx.noted_cache_bytes())
    };
    session.finish_job();
    Ok((checksum, cache_bytes))
}

/// The PageRank job description: consumed by `DecaServer::submit` (via
/// `JobSpec::app`) and by the local shims above.
///
/// The adjacency cache is tracked per `(executor, partition)`: with the
/// static round-robin pinning every iteration's map task finds its block
/// executor-local, but a retried task that migrated rebuilds the block
/// deterministically from its edge partition first — Spark's lineage
/// story (§6.1) — so the scanned bytes, and hence the f64 message
/// sequence, are identical wherever the task lands.
pub fn job(params: &PrParams) -> AppJob {
    let params = params.clone();
    AppJob::new("PR", move |job_ctx| run_pagerank(&params, job_ctx))
}

fn run_pagerank(params: &PrParams, job_ctx: &mut JobCtx) -> Result<f64, EngineError> {
    if params.mode == ExecutionMode::Deca {
        assert_deca_plan();
    }
    let edges = datagen::power_law_graph(params.vertices, params.edges, params.seed);
    let parts = partition_edges(&edges, params.partitions);
    let mut degrees = vec![0u32; params.vertices];
    for &(s, _) in &edges {
        degrees[s as usize] += 1;
    }
    let mode = params.mode;

    // Grouping stage: partition p's adjacency block is cached on executor
    // p % E, where iteration map task p (same pinning) will scan it.
    let blocks: Mutex<HashMap<(usize, usize), deca_engine::cache::BlockId>> =
        Mutex::new(HashMap::new());
    let parts_now = &parts;
    {
        let blocks_now = &blocks;
        job_ctx.run_stage("adj-build", params.partitions, |ctx, e| {
            let adj_classes = AdjListRec::register(&mut e.heap);
            let block = build_adjacency_block(e, &parts_now[ctx.task], mode, &adj_classes)?;
            blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), block);
            Ok(())
        })?;
    }
    job_ctx.note_cache_bytes();

    let reducers = params.partitions;
    let mut ranks = vec![1.0f64; params.vertices];
    for iter in 0..params.iterations {
        let ranks_now = &ranks;
        let degrees_now = &degrees;
        let blocks_now = &blocks;
        let updates = job_ctx.run_shuffle_job(
            &format!("pr-iter{iter}"),
            params.partitions,
            reducers,
            // Map: scan the executor-local adjacency block, emit and
            // eagerly combine rank messages, then write per-reducer
            // runs (serialized in Spark modes, raw bytes in Deca).
            |ctx, e| {
                // A crash restart may have wiped the block the map built
                // (restart-in-place rehydrates only manifest-verified cold
                // blocks), so the handle is only trusted if the cache
                // still holds it — otherwise lineage recompute, exactly as
                // for a migrated attempt.
                let cached = blocks_now
                    .lock()
                    .unwrap()
                    .get(&(ctx.executor, ctx.task))
                    .copied()
                    .filter(|b| e.cache.contains(*b));
                let block = match cached {
                    Some(b) => b,
                    // Lineage recompute: this attempt migrated to an
                    // executor that never built partition `task`.
                    None => {
                        let adj_classes = AdjListRec::register(&mut e.heap);
                        let b = build_adjacency_block(e, &parts_now[ctx.task], mode, &adj_classes)?;
                        blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), b);
                        b
                    }
                };
                let pair_classes = <(i64, f64) as HeapRecord>::register(&mut e.heap);
                let mut spark_sums: Option<SparkHashShuffle<i64, f64>> = match mode {
                    ExecutionMode::Deca => None,
                    _ => Some(SparkHashShuffle::new(&mut e.heap)?),
                };
                let mut deca_sums: Option<DecaHashShuffle> = match mode {
                    ExecutionMode::Deca => Some(DecaHashShuffle::new(&mut e.mm, 8, 8)),
                    _ => None,
                };
                // Message emission + eager combining is the shuffle
                // write.
                e.shuffle_write_scope(|e| {
                    messages_from_block(
                        e,
                        block,
                        mode,
                        ranks_now,
                        degrees_now,
                        &mut spark_sums,
                        &mut deca_sums,
                        &pair_classes,
                    )
                })?;
                let out = e.shuffle_write_scope(|e| -> Result<MapOutputs, EngineError> {
                    // Spark modes serialize into pooled byte buffers
                    // (~2-byte tag + varint key + 8-byte f64 per record);
                    // Deca writes fixed 16-byte records into arena pages
                    // and hands them over without a copy.
                    if let Some(mut buf) = spark_sums.take() {
                        let cap = 16 * buf.len().div_ceil(reducers);
                        let mut out: Vec<Vec<u8>> =
                            (0..reducers).map(|_| e.take_shuffle_buf(cap)).collect();
                        let pairs = buf.drain(&e.heap);
                        e.kryo.time_ser(|kr| {
                            for (k, v) in pairs {
                                let r = (k as u64 % reducers as u64) as usize;
                                kr.serialize(&(k, v), &mut out[r]);
                            }
                        });
                        buf.release(&mut e.heap);
                        return Ok(out.into_iter().map(ShufflePayload::from).collect());
                    }
                    let mut buf = deca_sums.take().expect("one mode buffer exists");
                    let mut runs: Vec<_> = (0..reducers).map(|_| e.arena.new_run()).collect();
                    let (mm, heap, arena) = (&mut e.mm, &mut e.heap, &mut e.arena);
                    buf.for_each(mm, heap, |k, v| {
                        let dst = i64::from_le_bytes(k[..8].try_into().unwrap());
                        let r = (dst as u64 % reducers as u64) as usize;
                        runs[r].push_parts(arena, &[k, v]);
                    })?;
                    buf.release(&mut e.mm, &mut e.heap);
                    Ok(runs.into_iter().map(|run| e.hand_over(run)).collect())
                })?;
                Ok(out)
            },
            // Reduce: sum per-destination subtotals in map-task order,
            // then apply the damped update for the received vertices.
            |_ctx, e, bufs| {
                let mut updates: Vec<(u32, f64)> = Vec::new();
                match mode {
                    ExecutionMode::Deca => {
                        let mut buf = DecaHashShuffle::new(&mut e.mm, 8, 8);
                        e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                            // 16-byte records never span pages; chunk
                            // concatenation is the exact flat sequence.
                            for payload in bufs {
                                for bytes in payload.chunks() {
                                    for rec in bytes.chunks_exact(16) {
                                        buf.insert(
                                            &mut e.mm,
                                            &mut e.heap,
                                            &rec[..8],
                                            &rec[8..],
                                            add_f64_bytes,
                                        )?;
                                    }
                                }
                            }
                            Ok(())
                        })?;
                        buf.for_each(&mut e.mm, &mut e.heap, |k, v| {
                            let dst = i64::from_le_bytes(k[..8].try_into().unwrap()) as u32;
                            let sum = f64::from_le_bytes(v[..8].try_into().unwrap());
                            updates.push((dst, 0.15 + 0.85 * sum));
                        })?;
                        buf.release(&mut e.mm, &mut e.heap);
                    }
                    _ => {
                        let mut buf: SparkHashShuffle<i64, f64> =
                            SparkHashShuffle::new(&mut e.heap)?;
                        e.shuffle_read_scope(|e| -> Result<(), EngineError> {
                            for payload in bufs {
                                let bytes = payload.contiguous();
                                let pairs: Vec<(i64, f64)> = e.kryo.deserialize_all(&bytes);
                                for (k, v) in pairs {
                                    buf.insert(&mut e.heap, k, v, |a, b| a + b)?;
                                }
                            }
                            Ok(())
                        })?;
                        buf.for_each(&e.heap, |k, v| {
                            updates.push((k as u32, 0.15 + 0.85 * v));
                        });
                        buf.release(&mut e.heap);
                    }
                }
                Ok(updates)
            },
        )?;

        // Damped update: vertices with no in-messages keep the 0.15 base.
        let mut next = vec![0.15f64; params.vertices];
        for task_updates in updates {
            for (dst, rank) in task_updates {
                next[dst as usize] = rank;
            }
        }
        ranks = next;
    }

    Ok(ranks.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> PrParams {
        PrParams {
            vertices: 500,
            edges: 4_000,
            iterations: 3,
            partitions: 2,
            heap_bytes: 24 << 20,
            mode,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            storage_fraction: 0.4,
            seed: 3,
        }
    }

    #[test]
    fn all_modes_agree() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let ser = run(&tiny(ExecutionMode::SparkSer));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert!((spark.checksum - deca.checksum).abs() < 1e-9);
        assert!((ser.checksum - deca.checksum).abs() < 1e-9);
        assert!(deca.checksum > 0.0);
    }

    #[test]
    fn ranks_sum_is_conserved_reasonably() {
        // With damping 0.15/0.85 and dangling mass leakage, the sum stays
        // within sane bounds of |V|.
        let r = run(&tiny(ExecutionMode::Deca));
        assert!(r.checksum > 0.15 * 500.0);
        assert!(r.checksum < 2.0 * 500.0);
    }

    #[test]
    fn executor_count_does_not_change_ranks() {
        for mode in ExecutionMode::ALL {
            let one = run_local(&tiny(mode), 1);
            let two = run_local(&tiny(mode), 2);
            assert_eq!(one.checksum, two.checksum, "{mode}: ranks must be bit-identical");
        }
    }
}
