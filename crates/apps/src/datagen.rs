//! Seeded synthetic data generators replacing the paper's datasets.
//!
//! | Paper dataset | Generator | Preserved property |
//! |---|---|---|
//! | Hadoop RandomWriter text (§6.1) | [`zipf_words`] | key skew & distinct-key count |
//! | random 10-dim / Amazon 4096-dim vectors (§6.2) | [`labeled_vectors`] | dimensionality, cache/heap ratio |
//! | LiveJournal / webbase / HiBench graphs (§6.3) | [`power_law_graph`] | degree skew, edge/vertex ratio |
//! | Common Crawl rankings / uservisits (§6.6) | [`rankings`], [`uservisits`] | group-key cardinality |
//!
//! Everything is deterministic given a seed, so cross-mode result checks
//! and repeated benchmark runs compare identical inputs.

use deca_check::rng::{Rng, Xoshiro256StarStar};

use crate::records::{LabeledPointRec, RankingRec, UserVisitRec};

/// Greatest common divisor (for coprime permutation strides).
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A multiplication stride coprime to `n`, so `rank -> rank * stride % n`
/// is a bijection (used to de-correlate Zipf rank from id).
fn coprime_stride(n: usize) -> u64 {
    let n = n as u64;
    let mut stride = (n / 3).max(1) * 2 + 1;
    while gcd(stride, n) != 1 {
        stride += 2;
    }
    stride % n.max(1)
}

/// A table-based Zipf(s) sampler over `1..=n` (CDF + binary search; exact,
/// adequate for n up to a few million).
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, exponent: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (0 = most frequent).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u)
    }
}

/// Word-id stream with Zipf-distributed frequencies over `distinct` keys
/// (the WC input; the paper varies both size and distinct-key count).
pub fn zipf_words(n: usize, distinct: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let zipf = Zipf::new(distinct, 1.05);
    // Permute ranks to ids so frequent keys are not consecutive.
    let stride = coprime_stride(distinct);
    (0..n)
        .map(|_| {
            let rank = zipf.sample(&mut rng) as u64;
            ((rank.wrapping_mul(stride)) % distinct as u64) as i64
        })
        .collect()
}

/// `n` labeled dense vectors of dimension `d` (LR/KMeans input). Labels are
/// ±1; features are two noisy Gaussian-ish clusters so LR has signal.
pub fn labeled_vectors(n: usize, d: usize, seed: u64) -> Vec<LabeledPointRec> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let label = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let features = (0..d)
                .map(|j| {
                    let center = label * if j % 2 == 0 { 0.5 } else { -0.25 };
                    center + rng.gen_range(-1.0..1.0)
                })
                .collect();
            LabeledPointRec { label, features }
        })
        .collect()
}

/// A power-law directed graph: `edges` edges over `vertices` vertices with
/// Zipf-skewed source and destination degrees (LiveJournal-like shape).
/// Returns an edge list.
pub fn power_law_graph(vertices: usize, edges: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let zipf = Zipf::new(vertices, 0.9);
    let stride = coprime_stride(vertices);
    let perm = |rank: usize| ((rank as u64 * stride) % vertices as u64) as u32;
    let mut out = Vec::with_capacity(edges);
    for _ in 0..edges {
        let src = perm(zipf.sample(&mut rng));
        let mut dst = perm(zipf.sample(&mut rng));
        if dst == src {
            dst = (dst + 1) % vertices as u32;
        }
        out.push((src, dst));
    }
    out
}

/// `rankings(n)` rows: pageRank Zipf-ish in 0..1000.
pub fn rankings(n: usize, seed: u64) -> Vec<RankingRec> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n)
        .map(|i| RankingRec {
            url_id: i as i64,
            page_rank: (1000.0 / (1.0 + rng.gen_f64() * 99.0)) as i32,
            avg_duration: rng.gen_range(1..100),
        })
        .collect()
}

/// `uservisits(n)` rows: `groups` distinct sourceIP prefixes (the Query 2
/// GROUP BY cardinality), revenue uniform.
pub fn uservisits(n: usize, groups: usize, seed: u64) -> Vec<UserVisitRec> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n)
        .map(|_| UserVisitRec {
            ip_prefix: rng.gen_range(0..groups as i64),
            url_id: rng.gen_range(0..1_000_000),
            ad_revenue: rng.gen_range(0.0..1.0),
        })
        .collect()
}

/// Split records into `parts` roughly equal partitions.
pub fn partition<T: Clone>(records: &[T], parts: usize) -> Vec<Vec<T>> {
    assert!(parts > 0);
    let mut out: Vec<Vec<T>> = (0..parts).map(|_| Vec::new()).collect();
    let per = records.len().div_ceil(parts);
    for (i, chunk) in records.chunks(per.max(1)).enumerate() {
        if i < parts {
            out[i] = chunk.to_vec();
        } else {
            out[parts - 1].extend_from_slice(chunk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_is_skewed_and_seeded() {
        let a = zipf_words(50_000, 1000, 42);
        let b = zipf_words(50_000, 1000, 42);
        assert_eq!(a, b, "deterministic for equal seeds");
        let c = zipf_words(50_000, 1000, 43);
        assert_ne!(a, c);

        let mut freq: HashMap<i64, usize> = HashMap::new();
        for w in &a {
            *freq.entry(*w).or_insert(0) += 1;
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|x, y| y.cmp(x));
        assert!(counts[0] > 10 * counts[counts.len() / 2], "head much heavier than median");
        assert!(freq.len() <= 1000);
        assert!(freq.len() > 500, "most keys appear");
    }

    /// FNV-1a over a byte stream: a stable fingerprint for golden tests.
    fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Golden checksums: the generators are part of the experimental
    /// record (EXPERIMENTS.md compares runs across PRs), so their output
    /// for a fixed seed must never drift — not across platforms, and not
    /// when the PRNG or samplers are "improved".
    #[test]
    fn generator_outputs_match_golden_checksums() {
        let words = zipf_words(10_000, 500, 42);
        let wc = fnv1a(words.iter().flat_map(|w| w.to_le_bytes()));
        assert_eq!(wc, 0x03d6c9c61dc2d4a3, "zipf_words(10000, 500, 42) drifted");

        let vecs = labeled_vectors(200, 8, 7);
        let vc = fnv1a(vecs.iter().flat_map(|p| {
            p.label.to_le_bytes().into_iter().chain(p.features.iter().flat_map(|f| f.to_le_bytes()))
        }));
        assert_eq!(vc, 0xde78e031eb106daf, "labeled_vectors(200, 8, 7) drifted");

        let graph = power_law_graph(1000, 5_000, 1);
        let gc = fnv1a(
            graph.iter().flat_map(|(s, d)| s.to_le_bytes().into_iter().chain(d.to_le_bytes())),
        );
        assert_eq!(gc, 0xee96e6310686d07e, "power_law_graph(1000, 5000, 1) drifted");

        let visits = uservisits(1_000, 50, 4);
        let uc = fnv1a(visits.iter().flat_map(|u| {
            u.ip_prefix
                .to_le_bytes()
                .into_iter()
                .chain(u.url_id.to_le_bytes())
                .chain(u.ad_revenue.to_le_bytes())
        }));
        assert_eq!(uc, 0xca44f7e6695176b2, "uservisits(1000, 50, 4) drifted");
    }

    #[test]
    fn vectors_have_requested_shape() {
        let v = labeled_vectors(100, 10, 7);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|p| p.features.len() == 10));
        assert!(v.iter().all(|p| p.label == 1.0 || p.label == -1.0));
        assert!(v.iter().any(|p| p.label == 1.0) && v.iter().any(|p| p.label == -1.0));
    }

    #[test]
    fn permutation_strides_are_bijective() {
        for n in [3usize, 10, 1000, 15999, 16000, 16001, 300_000] {
            let stride = coprime_stride(n);
            assert_eq!(gcd(stride, n as u64), 1, "n={n}");
            assert_ne!(stride % n as u64, 0, "n={n}");
            // Spot-check bijectivity on small n.
            if n <= 1000 {
                let mut seen = vec![false; n];
                for r in 0..n {
                    let id = (r as u64 * stride % n as u64) as usize;
                    assert!(!seen[id], "collision at n={n}, rank={r}");
                    seen[id] = true;
                }
            }
        }
    }

    #[test]
    fn graph_with_power_of_ten_vertices_is_not_degenerate() {
        // Regression: vertices=16000 once collapsed all ranks to vertex 0.
        let g = power_law_graph(16_000, 100_000, 1);
        let mut deg = vec![0usize; 16_000];
        for &(s, _) in &g {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!(max < 20_000, "hub degree {max} implies a degenerate permutation");
        let nonzero = deg.iter().filter(|&&d| d > 0).count();
        assert!(nonzero > 1_000, "sources must spread over many vertices");
    }

    #[test]
    fn graph_degrees_are_skewed() {
        let g = power_law_graph(1000, 20_000, 1);
        assert_eq!(g.len(), 20_000);
        assert!(g.iter().all(|&(s, d)| s < 1000 && d < 1000 && s != d));
        let mut deg = vec![0usize; 1000];
        for &(s, _) in &g {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let med = {
            let mut d = deg.clone();
            d.sort_unstable();
            d[500]
        };
        assert!(max > 5 * med.max(1), "power-law head: max {max}, median {med}");
    }

    #[test]
    fn tables_and_partitioning() {
        let r = rankings(1000, 3);
        assert!(r.iter().all(|x| x.page_rank >= 10 && x.page_rank <= 1000));
        let u = uservisits(1000, 50, 4);
        assert!(u.iter().all(|x| x.ip_prefix < 50));

        let parts = partition(&r, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1000);
        let single = partition(&r, 1);
        assert_eq!(single[0].len(), 1000);
    }
}
