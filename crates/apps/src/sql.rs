//! The exploratory SQL queries of §6.6 (Table 6), over synthetic
//! `rankings` and `uservisits` tables:
//!
//! ```sql
//! -- Query 1
//! SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100;
//! -- Query 2
//! SELECT SUBSTR(sourceIP,1,5), SUM(adRevenue) FROM uservisits
//! GROUP BY SUBSTR(sourceIP,1,5);
//! ```
//!
//! Three systems, as in the paper: hand-written RDD programs on **Spark**
//! (row objects on the heap) and **Deca** (decomposed rows), plus a
//! **Spark SQL** simulation — serialized column-oriented in-memory tables
//! (project Tungsten-style), scanned without materialising row objects and
//! aggregated in a serialized hash buffer.

use deca_core::{DecaHashShuffle, DecaRecord};
use deca_engine::record::HeapRecord;
use deca_engine::{ExecutionMode, Executor, ExecutorConfig, SparkHashShuffle};
use deca_heap::FieldKind;

use crate::datagen;
use crate::records::{JoinAggRec, RankingRec, UserVisitRec};
use crate::report::AppReport;

/// Which system executes the query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SqlSystem {
    Spark,
    SparkSql,
    Deca,
}

impl SqlSystem {
    pub fn name(self) -> &'static str {
        match self {
            SqlSystem::Spark => "Spark",
            SqlSystem::SparkSql => "Spark SQL",
            SqlSystem::Deca => "Deca",
        }
    }

    pub const ALL: [SqlSystem; 3] = [SqlSystem::Spark, SqlSystem::SparkSql, SqlSystem::Deca];

    fn engine_mode(self) -> ExecutionMode {
        match self {
            SqlSystem::Spark => ExecutionMode::Spark,
            // SparkSql's columnar store is modelled separately; the engine
            // mode only sizes the heap.
            SqlSystem::SparkSql => ExecutionMode::SparkSer,
            SqlSystem::Deca => ExecutionMode::Deca,
        }
    }
}

/// Parameters of the SQL experiment.
#[derive(Clone, Debug)]
pub struct SqlParams {
    pub rankings_rows: usize,
    pub uservisits_rows: usize,
    pub groups: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub system: SqlSystem,
    pub seed: u64,
}

impl SqlParams {
    pub fn small(system: SqlSystem) -> SqlParams {
        SqlParams {
            rankings_rows: 50_000,
            uservisits_rows: 100_000,
            groups: 2_000,
            partitions: 4,
            heap_bytes: 48 << 20,
            system,
            seed: 20160906,
        }
    }
}

/// Columnar table chunks for the Spark SQL simulation: each column is one
/// heap `byte[]` (few objects; typed scans at fixed strides).
struct ColumnarRankings {
    roots: Vec<(deca_heap::RootId, usize)>, // (byte[] root, rows)
}

struct ColumnarVisits {
    roots: Vec<(deca_heap::RootId, usize)>,
}

fn byte_array_class(heap: &mut deca_heap::Heap) -> deca_heap::ClassId {
    match heap.registry().by_name("byte[]") {
        Some(c) => c,
        None => heap.define_array_class("byte[]", FieldKind::I8),
    }
}

/// Result of one query run.
pub struct SqlReport {
    pub report: AppReport,
}

/// Run Query 1 (filter on `rankings`).
pub fn run_query1(params: &SqlParams) -> AppReport {
    let mut exec =
        Executor::new(ExecutorConfig::new(params.system.engine_mode(), params.heap_bytes));
    let rows = datagen::rankings(params.rankings_rows, params.seed);
    let parts = datagen::partition(&rows, params.partitions);
    let classes = RankingRec::register(&mut exec.heap);

    // ------------------------------------------------------------ cache
    enum Cached {
        Blocks(Vec<deca_engine::cache::BlockId>),
        Columnar(ColumnarRankings),
    }
    let cached = exec.run_task("q1-cache", |e| match params.system {
        SqlSystem::Spark => Cached::Blocks(
            parts
                .iter()
                .map(|p| {
                    e.cache
                        .put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &classes, p)
                        .expect("cache put")
                })
                .collect(),
        ),
        SqlSystem::Deca => Cached::Blocks(
            parts
                .iter()
                .map(|p| e.cache.put_deca(&mut e.heap, &mut e.mm, p).expect("cache put"))
                .collect(),
        ),
        SqlSystem::SparkSql => {
            // Column-oriented serialized chunks: url i64 col + rank i32 col.
            let cls = byte_array_class(&mut e.heap);
            let roots = parts
                .iter()
                .map(|p| {
                    let bytes = 12 * p.len();
                    let arr = e.heap.alloc_array(cls, bytes).expect("column chunk");
                    let mut buf = vec![0u8; bytes];
                    for (i, r) in p.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&r.url_id.to_le_bytes());
                        let off = 8 * p.len() + i * 4;
                        buf[off..off + 4].copy_from_slice(&r.page_rank.to_le_bytes());
                    }
                    e.heap.byte_array_write(arr, 0, &buf);
                    (e.heap.add_root(arr), p.len())
                })
                .collect();
            Cached::Columnar(ColumnarRankings { roots })
        }
    });
    exec.finish_job();
    let cache_bytes = match &cached {
        Cached::Blocks(_) => exec.job.cache_bytes,
        Cached::Columnar(c) => c.roots.iter().map(|&(_, n)| n * 12 + 16).sum(),
    };
    exec.job = Default::default();

    // ------------------------------------------------------------ query
    let checksum = exec.run_task("q1-filter", |e| {
        let mut count = 0u64;
        let mut ranksum = 0i64;
        match &cached {
            Cached::Blocks(blocks) => {
                for &b in blocks {
                    match params.system {
                        SqlSystem::Spark => {
                            let (root, len) = e
                                .cache
                                .objects_root(b, &mut e.heap, &mut e.kryo, &mut e.mm)
                                .expect("cache access");
                            for i in 0..len {
                                let arr = e.heap.root_ref(root);
                                let row = e.heap.array_get_ref(arr, i);
                                let rank = e.heap.read_word(row, 1) as u32 as i32;
                                if rank > 100 {
                                    count += 1;
                                    ranksum += rank as i64;
                                }
                            }
                        }
                        SqlSystem::Deca => {
                            let heap = &mut e.heap;
                            let mm = &mut e.mm;
                            let block = e.cache.deca_block(b);
                            block
                                .scan_bytes(
                                    mm,
                                    heap,
                                    |bytes| {
                                        let rank =
                                            i32::from_le_bytes(bytes[8..12].try_into().unwrap());
                                        if rank > 100 {
                                            count += 1;
                                            ranksum += rank as i64;
                                        }
                                    },
                                    |_| {},
                                )
                                .expect("scan");
                        }
                        SqlSystem::SparkSql => unreachable!(),
                    }
                }
            }
            Cached::Columnar(c) => {
                for &(root, n) in &c.roots {
                    let arr = e.heap.root_ref(root);
                    let mut col = vec![0u8; 4 * n];
                    e.heap.byte_array_read(arr, 8 * n, &mut col);
                    for i in 0..n {
                        let rank = i32::from_le_bytes(col[i * 4..i * 4 + 4].try_into().unwrap());
                        if rank > 100 {
                            count += 1;
                            ranksum += rank as i64;
                        }
                    }
                }
            }
        }
        count as f64 + ranksum as f64 / 1e9
    });

    exec.finish_job();
    AppReport {
        app: "SQL-Q1".into(),
        mode: params.system.engine_mode(),
        metrics: exec.job.clone(),
        timeline: exec.timeline.clone(),
        checksum,
        cache_bytes,
        objects_traced: exec.heap.stats().objects_traced,
        minor_gcs: exec.heap.stats().minor_collections,
        full_gcs: exec.heap.stats().full_collections,
        slowest_task: exec.slowest_task().cloned(),
    }
}

/// Run Query 2 (group-by aggregation on `uservisits`).
pub fn run_query2(params: &SqlParams) -> AppReport {
    let mut exec =
        Executor::new(ExecutorConfig::new(params.system.engine_mode(), params.heap_bytes));
    let rows = datagen::uservisits(params.uservisits_rows, params.groups, params.seed + 1);
    let parts = datagen::partition(&rows, params.partitions);
    let classes = UserVisitRec::register(&mut exec.heap);
    let pair_classes = <(i64, f64) as HeapRecord>::register(&mut exec.heap);

    enum Cached {
        Blocks(Vec<deca_engine::cache::BlockId>),
        Columnar(ColumnarVisits),
    }
    let cached = exec.run_task("q2-cache", |e| match params.system {
        SqlSystem::Spark => Cached::Blocks(
            parts
                .iter()
                .map(|p| {
                    e.cache
                        .put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &classes, p)
                        .expect("cache put")
                })
                .collect(),
        ),
        SqlSystem::Deca => Cached::Blocks(
            parts
                .iter()
                .map(|p| e.cache.put_deca(&mut e.heap, &mut e.mm, p).expect("cache put"))
                .collect(),
        ),
        SqlSystem::SparkSql => {
            let cls = byte_array_class(&mut e.heap);
            let roots = parts
                .iter()
                .map(|p| {
                    // ip col (i64) + revenue col (f64)
                    let bytes = 16 * p.len();
                    let arr = e.heap.alloc_array(cls, bytes).expect("column chunk");
                    let mut buf = vec![0u8; bytes];
                    for (i, r) in p.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&r.ip_prefix.to_le_bytes());
                        let off = 8 * p.len() + i * 8;
                        buf[off..off + 8].copy_from_slice(&r.ad_revenue.to_le_bytes());
                    }
                    e.heap.byte_array_write(arr, 0, &buf);
                    (e.heap.add_root(arr), p.len())
                })
                .collect();
            Cached::Columnar(ColumnarVisits { roots })
        }
    });
    exec.finish_job();
    let cache_bytes = match &cached {
        Cached::Blocks(_) => exec.job.cache_bytes,
        Cached::Columnar(c) => c.roots.iter().map(|&(_, n)| n * 16 + 16).sum(),
    };
    exec.job = Default::default();

    let checksum = exec.run_task("q2-groupby", |e| {
        match &cached {
            Cached::Blocks(blocks) => match params.system {
                SqlSystem::Spark => {
                    // Row objects -> temp pair per row -> heap hash agg
                    // with boxed-Double combine churn.
                    let mut agg: SparkHashShuffle<i64, f64> =
                        SparkHashShuffle::new(&mut e.heap).expect("agg buffer");
                    for &b in blocks {
                        let (root, len) = e
                            .cache
                            .objects_root(b, &mut e.heap, &mut e.kryo, &mut e.mm)
                            .expect("cache access");
                        for i in 0..len {
                            let arr = e.heap.root_ref(root);
                            let row = e.heap.array_get_ref(arr, i);
                            let ip = e.heap.read_i64(row, 0);
                            let rev = e.heap.read_f64(row, 2);
                            let tmp = (ip, rev).store(&mut e.heap, &pair_classes).expect("temp");
                            let ts = e.heap.push_stack(tmp);
                            let (k, v) = <(i64, f64) as HeapRecord>::load(
                                &e.heap,
                                &pair_classes,
                                e.heap.stack_ref(ts),
                            );
                            e.heap.truncate_stack(ts);
                            agg.insert(&mut e.heap, k, v, |a, b| a + b).expect("combine");
                        }
                    }
                    let mut sum = 0.0;
                    agg.for_each(&e.heap, |k, v| sum += (k as f64 + 1.0).ln_1p() * v);
                    agg.release(&mut e.heap);
                    sum
                }
                SqlSystem::Deca => {
                    let mut agg = DecaHashShuffle::new(&mut e.mm, 8, 8);
                    for &b in blocks {
                        let heap = &mut e.heap;
                        let mm = &mut e.mm;
                        let mut pairs: Vec<(i64, f64)> = Vec::new();
                        let block = e.cache.deca_block(b);
                        block
                            .scan_bytes(
                                mm,
                                heap,
                                |bytes| {
                                    let ip = i64::from_le_bytes(bytes[..8].try_into().unwrap());
                                    let rev = f64::from_le_bytes(bytes[16..24].try_into().unwrap());
                                    pairs.push((ip, rev));
                                },
                                |_| {},
                            )
                            .expect("scan");
                        for (ip, rev) in pairs {
                            agg.insert(
                                mm,
                                heap,
                                &ip.to_le_bytes(),
                                &rev.to_le_bytes(),
                                |acc, add| {
                                    let a = f64::from_le_bytes(acc[..8].try_into().unwrap());
                                    let b = f64::from_le_bytes(add[..8].try_into().unwrap());
                                    acc[..8].copy_from_slice(&(a + b).to_le_bytes());
                                },
                            )
                            .expect("combine");
                        }
                    }
                    let mut sum = 0.0;
                    agg.for_each(&mut e.mm, &mut e.heap, |k, v| {
                        let ip = i64::from_le_bytes(k[..8].try_into().unwrap());
                        let rev = f64::from_le_bytes(v[..8].try_into().unwrap());
                        sum += (ip as f64 + 1.0).ln_1p() * rev;
                    })
                    .expect("scan");
                    agg.release(&mut e.mm, &mut e.heap);
                    sum
                }
                SqlSystem::SparkSql => unreachable!(),
            },
            Cached::Columnar(c) => {
                // Tungsten-style: columnar scan + serialized agg buffer
                // (a Deca page-backed hash buffer models Tungsten's
                // serialized shuffle state well).
                let mut agg = DecaHashShuffle::new(&mut e.mm, 8, 8);
                for &(root, n) in &c.roots {
                    let arr = e.heap.root_ref(root);
                    let mut buf = vec![0u8; 16 * n];
                    e.heap.byte_array_read(arr, 0, &mut buf);
                    for i in 0..n {
                        let ip = &buf[i * 8..i * 8 + 8];
                        let rev = &buf[8 * n + i * 8..8 * n + i * 8 + 8];
                        agg.insert(&mut e.mm, &mut e.heap, ip, rev, |acc, add| {
                            let a = f64::from_le_bytes(acc[..8].try_into().unwrap());
                            let b = f64::from_le_bytes(add[..8].try_into().unwrap());
                            acc[..8].copy_from_slice(&(a + b).to_le_bytes());
                        })
                        .expect("combine");
                    }
                }
                let mut sum = 0.0;
                agg.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    let ip = i64::from_le_bytes(k[..8].try_into().unwrap());
                    let rev = f64::from_le_bytes(v[..8].try_into().unwrap());
                    sum += (ip as f64 + 1.0).ln_1p() * rev;
                })
                .expect("scan");
                agg.release(&mut e.mm, &mut e.heap);
                sum
            }
        }
    });

    exec.finish_job();
    AppReport {
        app: "SQL-Q2".into(),
        mode: params.system.engine_mode(),
        metrics: exec.job.clone(),
        timeline: exec.timeline.clone(),
        checksum,
        cache_bytes,
        objects_traced: exec.heap.stats().objects_traced,
        minor_gcs: exec.heap.stats().minor_collections,
        full_gcs: exec.heap.stats().full_collections,
        slowest_task: exec.slowest_task().cloned(),
    }
}

/// Run Query 3 — the join query of the same exploratory benchmark suite
/// (an *extension*: the paper reports Q1/Q2 but discusses the join
/// pathology in §6.5):
///
/// ```sql
/// SELECT SUBSTR(sourceIP,1,5), SUM(adRevenue), AVG(pageRank)
/// FROM uservisits UV JOIN rankings R ON UV.urlId = R.urlId
/// GROUP BY SUBSTR(sourceIP,1,5);
/// ```
///
/// The build side (rankings) is probed per visit; the aggregate buffer
/// holds a 24-byte SFST value per group. In Spark mode every probe's
/// output materialises a temporary aggregate object and every combine
/// allocates a new one; Deca and the columnar engine combine in place.
pub fn run_query3(params: &SqlParams) -> AppReport {
    let mut exec =
        Executor::new(ExecutorConfig::new(params.system.engine_mode(), params.heap_bytes));
    // url space must overlap: rankings urls are 0..rankings_rows, and the
    // generator draws visit urls from 0..1M — restrict for join hits.
    let rankings: Vec<RankingRec> = datagen::rankings(params.rankings_rows, params.seed);
    let visits: Vec<UserVisitRec> =
        datagen::uservisits(params.uservisits_rows, params.groups, params.seed + 1)
            .into_iter()
            .map(|mut v| {
                v.url_id %= params.rankings_rows as i64;
                v
            })
            .collect();
    let rank_parts = datagen::partition(&rankings, params.partitions);
    let visit_parts = datagen::partition(&visits, params.partitions);
    let r_classes = RankingRec::register(&mut exec.heap);
    let v_classes = UserVisitRec::register(&mut exec.heap);
    let agg_classes = JoinAggRec::register(&mut exec.heap);

    enum Cached {
        Blocks { rank: Vec<deca_engine::cache::BlockId>, visit: Vec<deca_engine::cache::BlockId> },
        Columnar { rank: Vec<(deca_heap::RootId, usize)>, visit: Vec<(deca_heap::RootId, usize)> },
    }
    let cached = exec.run_task("q3-cache", |e| match params.system {
        SqlSystem::Spark => Cached::Blocks {
            rank: rank_parts
                .iter()
                .map(|p| {
                    e.cache
                        .put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &r_classes, p)
                        .expect("cache put")
                })
                .collect(),
            visit: visit_parts
                .iter()
                .map(|p| {
                    e.cache
                        .put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &v_classes, p)
                        .expect("cache put")
                })
                .collect(),
        },
        SqlSystem::Deca => Cached::Blocks {
            rank: rank_parts
                .iter()
                .map(|p| e.cache.put_deca(&mut e.heap, &mut e.mm, p).expect("cache put"))
                .collect(),
            visit: visit_parts
                .iter()
                .map(|p| e.cache.put_deca(&mut e.heap, &mut e.mm, p).expect("cache put"))
                .collect(),
        },
        SqlSystem::SparkSql => {
            let cls = byte_array_class(&mut e.heap);
            let mut pack = |rows: &[Vec<u8>]| -> Vec<(deca_heap::RootId, usize)> {
                rows.iter()
                    .map(|buf| {
                        let arr = e.heap.alloc_array(cls, buf.len()).expect("column chunk");
                        e.heap.byte_array_write(arr, 0, buf);
                        (e.heap.add_root(arr), buf.len())
                    })
                    .collect()
            };
            // rankings: url col (i64) + rank col (i32); visits: ip col +
            // url col (i64) + revenue col (f64).
            let rank_chunks: Vec<Vec<u8>> = rank_parts
                .iter()
                .map(|p| {
                    let mut buf = vec![0u8; 12 * p.len()];
                    for (i, r) in p.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&r.url_id.to_le_bytes());
                        let off = 8 * p.len() + i * 4;
                        buf[off..off + 4].copy_from_slice(&r.page_rank.to_le_bytes());
                    }
                    buf
                })
                .collect();
            let visit_chunks: Vec<Vec<u8>> = visit_parts
                .iter()
                .map(|p| {
                    let mut buf = vec![0u8; 24 * p.len()];
                    for (i, v) in p.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&v.ip_prefix.to_le_bytes());
                        let off = 8 * p.len() + i * 8;
                        buf[off..off + 8].copy_from_slice(&v.url_id.to_le_bytes());
                        let off = 16 * p.len() + i * 8;
                        buf[off..off + 8].copy_from_slice(&v.ad_revenue.to_le_bytes());
                    }
                    buf
                })
                .collect();
            Cached::Columnar { rank: pack(&rank_chunks), visit: pack(&visit_chunks) }
        }
    });
    exec.finish_job();
    let cache_bytes = exec.job.cache_bytes
        + match &cached {
            Cached::Columnar { rank, visit } => {
                rank.iter().chain(visit).map(|&(_, n)| n + 16).sum()
            }
            _ => 0,
        };
    exec.job = Default::default();

    let checksum = exec.run_task("q3-join", |e| {
        // Build side: url -> pageRank.
        let mut build: std::collections::HashMap<i64, i32> = std::collections::HashMap::new();
        match &cached {
            Cached::Blocks { rank, .. } => {
                for &b in rank {
                    match params.system {
                        SqlSystem::Spark => {
                            let (root, len) = e
                                .cache
                                .objects_root(b, &mut e.heap, &mut e.kryo, &mut e.mm)
                                .expect("cache access");
                            for i in 0..len {
                                let arr = e.heap.root_ref(root);
                                let row = e.heap.array_get_ref(arr, i);
                                build.insert(
                                    e.heap.read_i64(row, 0),
                                    e.heap.read_word(row, 1) as u32 as i32,
                                );
                            }
                        }
                        SqlSystem::Deca => {
                            let heap = &mut e.heap;
                            let mm = &mut e.mm;
                            let block = e.cache.deca_block(b);
                            block
                                .scan_bytes(
                                    mm,
                                    heap,
                                    |bytes| {
                                        let r = RankingRec::decode(bytes);
                                        build.insert(r.url_id, r.page_rank);
                                    },
                                    |_| {},
                                )
                                .expect("scan");
                        }
                        SqlSystem::SparkSql => unreachable!(),
                    }
                }
            }
            Cached::Columnar { rank, .. } => {
                for &(root, bytes) in rank {
                    let n = bytes / 12;
                    let arr = e.heap.root_ref(root);
                    let mut buf = vec![0u8; bytes];
                    e.heap.byte_array_read(arr, 0, &mut buf);
                    for i in 0..n {
                        let url = i64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
                        let off = 8 * n + i * 4;
                        let rank = i32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                        build.insert(url, rank);
                    }
                }
            }
        }

        // Probe + aggregate per ip group.
        match (&cached, params.system) {
            (Cached::Blocks { visit, .. }, SqlSystem::Spark) => {
                let mut agg: SparkHashShuffle<i64, JoinAggRec> =
                    SparkHashShuffle::new(&mut e.heap).expect("agg buffer");
                for &b in visit {
                    let (root, len) = e
                        .cache
                        .objects_root(b, &mut e.heap, &mut e.kryo, &mut e.mm)
                        .expect("cache access");
                    for i in 0..len {
                        let arr = e.heap.root_ref(root);
                        let row = e.heap.array_get_ref(arr, i);
                        let ip = e.heap.read_i64(row, 0);
                        let url = e.heap.read_i64(row, 1);
                        let rev = e.heap.read_f64(row, 2);
                        if let Some(&rank) = build.get(&url) {
                            // Probe output materialises a temp aggregate.
                            let delta =
                                JoinAggRec { revenue: rev, rank_sum: rank as f64, count: 1 };
                            let tmp = delta.store(&mut e.heap, &agg_classes).expect("temp agg");
                            let ts = e.heap.push_stack(tmp);
                            let delta =
                                JoinAggRec::load(&e.heap, &agg_classes, e.heap.stack_ref(ts));
                            e.heap.truncate_stack(ts);
                            agg.insert(&mut e.heap, ip, delta, JoinAggRec::merge).expect("combine");
                        }
                    }
                }
                let mut sum = 0.0;
                agg.for_each(&e.heap, |k, v| {
                    sum +=
                        (k as f64 + 1.0).ln_1p() * (v.revenue + v.rank_sum / v.count.max(1) as f64);
                });
                agg.release(&mut e.heap);
                sum
            }
            (Cached::Blocks { visit, .. }, SqlSystem::Deca) => {
                let mut agg = DecaHashShuffle::new(&mut e.mm, 8, 24);
                for &b in visit {
                    let heap = &mut e.heap;
                    let mm = &mut e.mm;
                    let mut deltas: Vec<(i64, JoinAggRec)> = Vec::new();
                    let block = e.cache.deca_block(b);
                    block
                        .scan_bytes(
                            mm,
                            heap,
                            |bytes| {
                                let v = UserVisitRec::decode(bytes);
                                if let Some(&rank) = build.get(&v.url_id) {
                                    deltas.push((
                                        v.ip_prefix,
                                        JoinAggRec {
                                            revenue: v.ad_revenue,
                                            rank_sum: rank as f64,
                                            count: 1,
                                        },
                                    ));
                                }
                            },
                            |_| {},
                        )
                        .expect("scan");
                    for (ip, delta) in deltas {
                        let mut db = [0u8; 24];
                        delta.encode(&mut db);
                        agg.insert(mm, heap, &ip.to_le_bytes(), &db, JoinAggRec::combine_bytes)
                            .expect("combine");
                    }
                }
                let mut sum = 0.0;
                agg.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    let ip = i64::from_le_bytes(k[..8].try_into().unwrap());
                    let a = JoinAggRec::decode(v);
                    sum += (ip as f64 + 1.0).ln_1p()
                        * (a.revenue + a.rank_sum / a.count.max(1) as f64);
                })
                .expect("scan");
                agg.release(&mut e.mm, &mut e.heap);
                sum
            }
            (Cached::Columnar { visit, .. }, _) => {
                let mut agg = DecaHashShuffle::new(&mut e.mm, 8, 24);
                for &(root, bytes) in visit {
                    let n = bytes / 24;
                    let arr = e.heap.root_ref(root);
                    let mut buf = vec![0u8; bytes];
                    e.heap.byte_array_read(arr, 0, &mut buf);
                    for i in 0..n {
                        let ip = i64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
                        let url = i64::from_le_bytes(
                            buf[8 * n + i * 8..8 * n + i * 8 + 8].try_into().unwrap(),
                        );
                        let rev = f64::from_le_bytes(
                            buf[16 * n + i * 8..16 * n + i * 8 + 8].try_into().unwrap(),
                        );
                        if let Some(&rank) = build.get(&url) {
                            let delta =
                                JoinAggRec { revenue: rev, rank_sum: rank as f64, count: 1 };
                            let mut db = [0u8; 24];
                            delta.encode(&mut db);
                            agg.insert(
                                &mut e.mm,
                                &mut e.heap,
                                &ip.to_le_bytes(),
                                &db,
                                JoinAggRec::combine_bytes,
                            )
                            .expect("combine");
                        }
                    }
                }
                let mut sum = 0.0;
                agg.for_each(&mut e.mm, &mut e.heap, |k, v| {
                    let ip = i64::from_le_bytes(k[..8].try_into().unwrap());
                    let a = JoinAggRec::decode(v);
                    sum += (ip as f64 + 1.0).ln_1p()
                        * (a.revenue + a.rank_sum / a.count.max(1) as f64);
                })
                .expect("scan");
                agg.release(&mut e.mm, &mut e.heap);
                sum
            }
            _ => unreachable!(),
        }
    });

    exec.finish_job();
    AppReport {
        app: "SQL-Q3".into(),
        mode: params.system.engine_mode(),
        metrics: exec.job.clone(),
        timeline: exec.timeline.clone(),
        checksum,
        cache_bytes,
        objects_traced: exec.heap.stats().objects_traced,
        minor_gcs: exec.heap.stats().minor_collections,
        full_gcs: exec.heap.stats().full_collections,
        slowest_task: exec.slowest_task().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(system: SqlSystem) -> SqlParams {
        SqlParams {
            rankings_rows: 5_000,
            uservisits_rows: 10_000,
            groups: 200,
            partitions: 2,
            heap_bytes: 24 << 20,
            system,
            seed: 77,
        }
    }

    #[test]
    fn query1_agrees_across_systems() {
        let a = run_query1(&tiny(SqlSystem::Spark));
        let b = run_query1(&tiny(SqlSystem::SparkSql));
        let c = run_query1(&tiny(SqlSystem::Deca));
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(b.checksum, c.checksum);
        assert!(a.checksum > 0.0);
    }

    #[test]
    fn query2_agrees_across_systems() {
        let a = run_query2(&tiny(SqlSystem::Spark));
        let b = run_query2(&tiny(SqlSystem::SparkSql));
        let c = run_query2(&tiny(SqlSystem::Deca));
        assert!((a.checksum - c.checksum).abs() < 1e-6);
        assert!((b.checksum - c.checksum).abs() < 1e-6);
    }

    #[test]
    fn query3_join_agrees_across_systems() {
        let a = run_query3(&tiny(SqlSystem::Spark));
        let b = run_query3(&tiny(SqlSystem::SparkSql));
        let c = run_query3(&tiny(SqlSystem::Deca));
        assert!((a.checksum - c.checksum).abs() < 1e-6 * c.checksum.abs().max(1.0));
        assert!((b.checksum - c.checksum).abs() < 1e-6 * c.checksum.abs().max(1.0));
        assert!(c.checksum > 0.0);
    }

    #[test]
    fn row_cache_is_larger_than_columnar_and_deca() {
        let spark = run_query2(&tiny(SqlSystem::Spark));
        let sql = run_query2(&tiny(SqlSystem::SparkSql));
        let deca = run_query2(&tiny(SqlSystem::Deca));
        assert!(spark.cache_bytes > sql.cache_bytes, "Table 6: Spark cache largest");
        assert!(spark.cache_bytes > deca.cache_bytes);
    }
}
