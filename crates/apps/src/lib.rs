//! # deca-apps — the evaluation workloads
//!
//! The five benchmark applications of the paper's §6 (Table 1), plus the
//! two SQL queries of §6.6, each runnable in the three execution modes
//! (Spark / SparkSer / Deca) over the same generated data:
//!
//! | App | Stages | Jobs | Cache | Shuffle |
//! |-----|--------|------|-------|---------|
//! | WordCount | two | single | none | aggregated |
//! | LogisticRegression | single | multiple | static | none |
//! | KMeans | two | multiple | static | aggregated |
//! | PageRank | multiple | multiple | static | grouped+aggregated |
//! | ConnectedComponents | multiple | multiple | static | grouped+aggregated |
//! | SQL Q1/Q2 | 1–2 | single | static | none / aggregated |
//!
//! Each app returns an [`report::AppReport`] with the measured breakdown
//! and a result checksum, asserted identical across modes by the
//! integration tests.
//!
//! Data generators ([`datagen`]) replace the paper's datasets (Hadoop
//! RandomWriter text, Amazon image vectors, LiveJournal/webbase/HiBench
//! graphs, Common Crawl tables) with seeded synthetic equivalents that
//! preserve the properties the experiments depend on: key skew, degree
//! skew, dimensionality, and cache-to-heap ratios.

pub mod concomp;
pub mod datagen;
pub mod kmeans;
pub mod logreg;
pub mod pagerank;
pub mod records;
pub mod report;
pub mod sql;
pub mod wordcount;

pub use report::AppReport;

use deca_engine::{
    AppJob, ClusterSession, EngineError, ExecutorConfig, FaultPlan, JobCtx, RetryPolicy,
};

/// Run an [`AppJob`] on a private standalone cluster — the thin local shim
/// over the same job description [`deca_engine::DecaServer::submit`]
/// consumes. The report's label is the job's name.
pub fn run_job_local(app: &AppJob, config: ExecutorConfig, executors: usize) -> AppReport {
    run_job_faulty(app, config, executors, FaultPlan::quiet(), None)
        .expect("fault-free local job run")
}

/// Run an [`AppJob`] on a private standalone cluster under an injected
/// fault plan (and optionally a retry policy override). For any survivable
/// plan the checksum is bit-identical to the fault-free run; an
/// unsurvivable plan surfaces as the task-attributed [`EngineError`].
pub fn run_job_faulty(
    app: &AppJob,
    config: ExecutorConfig,
    executors: usize,
    plan: FaultPlan,
    policy: Option<RetryPolicy>,
) -> Result<AppReport, EngineError> {
    let config = match policy {
        Some(p) => config.retry(p),
        None => config,
    };
    let mut session = ClusterSession::new(executors, config);
    session.install_faults(plan);
    let (checksum, cache_bytes) = {
        let mut ctx = JobCtx::local(&mut session);
        let checksum = app.run(&mut ctx)?;
        (checksum, ctx.noted_cache_bytes())
    };
    session.finish_job();
    Ok(AppReport::from_cluster(app.name(), &session, checksum, cache_bytes))
}
