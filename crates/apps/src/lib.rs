//! # deca-apps — the evaluation workloads
//!
//! The five benchmark applications of the paper's §6 (Table 1), plus the
//! two SQL queries of §6.6, each runnable in the three execution modes
//! (Spark / SparkSer / Deca) over the same generated data:
//!
//! | App | Stages | Jobs | Cache | Shuffle |
//! |-----|--------|------|-------|---------|
//! | WordCount | two | single | none | aggregated |
//! | LogisticRegression | single | multiple | static | none |
//! | KMeans | two | multiple | static | aggregated |
//! | PageRank | multiple | multiple | static | grouped+aggregated |
//! | ConnectedComponents | multiple | multiple | static | grouped+aggregated |
//! | SQL Q1/Q2 | 1–2 | single | static | none / aggregated |
//!
//! Each app returns an [`report::AppReport`] with the measured breakdown
//! and a result checksum, asserted identical across modes by the
//! integration tests.
//!
//! Data generators ([`datagen`]) replace the paper's datasets (Hadoop
//! RandomWriter text, Amazon image vectors, LiveJournal/webbase/HiBench
//! graphs, Common Crawl tables) with seeded synthetic equivalents that
//! preserve the properties the experiments depend on: key skew, degree
//! skew, dimensionality, and cache-to-heap ratios.

pub mod concomp;
pub mod datagen;
pub mod kmeans;
pub mod logreg;
pub mod pagerank;
pub mod records;
pub mod report;
pub mod sql;
pub mod wordcount;

pub use report::AppReport;
