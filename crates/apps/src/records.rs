//! Workload UDTs in all three physical representations, plus their
//! `deca-udt` descriptors for the optimizer.
//!
//! * [`LabeledPointRec`] — the paper's running example (Figure 1):
//!   `LabeledPoint { label: Double, features: DenseVector { data: double[] } }`.
//!   SFST when the dimension is a global constant.
//! * [`AdjListRec`] — PageRank/CC adjacency: `(vertexId, int[] neighbors)`.
//!   RFST (per-vertex degree fixed after the grouping phase — §3.4).
//! * [`RankingRec`] / [`UserVisitRec`] — the §6.6 table rows.

use deca_core::DecaRecord;
use deca_engine::record::{HeapRecord, KryoRecord};
use deca_engine::serde_sim::{read_varint, write_varint};
use deca_heap::{ClassBuilder, ClassId, FieldKind, Heap, ObjRef, OomError};

// =====================================================================
// LabeledPoint
// =====================================================================

/// A labeled feature vector (LR / KMeans cache records).
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledPointRec {
    pub label: f64,
    pub features: Vec<f64>,
}

impl LabeledPointRec {
    /// Decomposed size for dimension `d` (no headers, no refs, no
    /// offset/stride/length ints — they are derivable constants and the
    /// transformed code does not need them; cf. Figure 2 which keeps only
    /// `label` and `data[0..D]`).
    pub fn sfst_size(d: usize) -> usize {
        8 + 8 * d
    }
}

/// Heap classes of the LabeledPoint graph (Figure 2's upper half).
#[derive(Copy, Clone)]
pub struct LabeledPointClasses {
    pub labeled_point: ClassId,
    pub dense_vector: ClassId,
    pub double_array: ClassId,
}

impl HeapRecord for LabeledPointRec {
    type Classes = LabeledPointClasses;

    fn register(heap: &mut Heap) -> Self::Classes {
        // Registration must be idempotent: under the cluster driver every
        // task re-registers, and a later task's sample/recompute must see
        // the same ClassId the cached objects were allocated with.
        let labeled_point = match heap.registry().by_name("LabeledPoint") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("LabeledPoint")
                    .field("label", FieldKind::F64)
                    .field("features", FieldKind::Ref),
            ),
        };
        let dense_vector = match heap.registry().by_name("DenseVector") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("DenseVector")
                    .field("data", FieldKind::Ref)
                    .field("offset", FieldKind::I32)
                    .field("stride", FieldKind::I32)
                    .field("length", FieldKind::I32),
            ),
        };
        let double_array = match heap.registry().by_name("double[]") {
            Some(c) => c,
            None => heap.define_array_class("double[]", FieldKind::F64),
        };
        LabeledPointClasses { labeled_point, dense_vector, double_array }
    }

    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError> {
        let d = self.features.len();
        let arr = heap.alloc_array(cls.double_array, d)?;
        for (i, v) in self.features.iter().enumerate() {
            heap.array_set_f64(arr, i, *v);
        }
        let sa = heap.push_stack(arr);
        let dv = heap.alloc(cls.dense_vector)?;
        heap.write_ref(dv, 0, heap.stack_ref(sa));
        heap.write_word(dv, 1, 0); // offset
        heap.write_word(dv, 2, 1); // stride
        heap.write_word(dv, 3, d as u64); // length
        let sdv = heap.push_stack(dv);
        let lp = heap.alloc(cls.labeled_point)?;
        heap.write_f64(lp, 0, self.label);
        heap.write_ref(lp, 1, heap.stack_ref(sdv));
        heap.truncate_stack(sa);
        Ok(lp)
    }

    fn load(heap: &Heap, _cls: &Self::Classes, obj: ObjRef) -> Self {
        let label = heap.read_f64(obj, 0);
        let dv = heap.read_ref(obj, 1);
        let arr = heap.read_ref(dv, 0);
        let d = heap.array_len(arr);
        let mut features = Vec::with_capacity(d);
        for i in 0..d {
            features.push(heap.array_get_f64(arr, i));
        }
        LabeledPointRec { label, features }
    }

    fn heap_size(&self) -> usize {
        let d = self.features.len();
        // LabeledPoint 32 + DenseVector 40 + double[d] 16+8d aligned
        32 + 40 + (16 + 8 * d).div_ceil(8) * 8
    }
}

impl DecaRecord for LabeledPointRec {
    const FIXED_SIZE: Option<usize> = None; // runtime-resolved SFST

    fn data_size(&self) -> usize {
        Self::sfst_size(self.features.len())
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.label.to_le_bytes());
        for (i, v) in self.features.iter().enumerate() {
            out[8 + i * 8..16 + i * 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let label = f64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let d = (buf.len() - 8) / 8;
        let features = (0..d)
            .map(|i| f64::from_le_bytes(buf[8 + i * 8..16 + i * 8].try_into().expect("8 bytes")))
            .collect();
        LabeledPointRec { label, features }
    }
}

impl KryoRecord for LabeledPointRec {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.label.to_le_bytes());
        write_varint(self.features.len() as u64, out);
        for v in &self.features {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let label = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        let d = read_varint(buf, pos) as usize;
        let mut features = Vec::with_capacity(d);
        for _ in 0..d {
            features.push(f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes")));
            *pos += 8;
        }
        LabeledPointRec { label, features }
    }
}

// =====================================================================
// Adjacency lists (PageRank / ConnectedComponents)
// =====================================================================

/// One vertex's adjacency list.
#[derive(Clone, Debug, PartialEq)]
pub struct AdjListRec {
    pub vertex: u32,
    pub neighbors: Vec<u32>,
}

/// Heap classes of the adjacency graph: `VertexEdges { id, edges: int[] }`.
#[derive(Copy, Clone)]
pub struct AdjClasses {
    pub vertex: ClassId,
    pub int_array: ClassId,
}

impl HeapRecord for AdjListRec {
    type Classes = AdjClasses;

    fn register(heap: &mut Heap) -> Self::Classes {
        let vertex = match heap.registry().by_name("VertexEdges") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("VertexEdges")
                    .field("id", FieldKind::I32)
                    .field("edges", FieldKind::Ref),
            ),
        };
        let int_array = match heap.registry().by_name("int[]") {
            Some(c) => c,
            None => heap.define_array_class("int[]", FieldKind::I32),
        };
        AdjClasses { vertex, int_array }
    }

    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError> {
        let arr = heap.alloc_array(cls.int_array, self.neighbors.len())?;
        for (i, n) in self.neighbors.iter().enumerate() {
            heap.array_set_i32(arr, i, *n as i32);
        }
        let sa = heap.push_stack(arr);
        let v = heap.alloc(cls.vertex)?;
        heap.write_word(v, 0, self.vertex as u64);
        heap.write_ref(v, 1, heap.stack_ref(sa));
        heap.truncate_stack(sa);
        Ok(v)
    }

    fn load(heap: &Heap, _cls: &Self::Classes, obj: ObjRef) -> Self {
        let vertex = heap.read_word(obj, 0) as u32;
        let arr = heap.read_ref(obj, 1);
        let n = heap.array_len(arr);
        let neighbors = (0..n).map(|i| heap.array_get_i32(arr, i) as u32).collect();
        AdjListRec { vertex, neighbors }
    }

    fn heap_size(&self) -> usize {
        // VertexEdges 16+4+8 -> 32 aligned; int[n] 16+4n aligned
        32 + (16 + 4 * self.neighbors.len()).div_ceil(8) * 8
    }
}

impl DecaRecord for AdjListRec {
    const FIXED_SIZE: Option<usize> = None; // RFST (framed)

    fn data_size(&self) -> usize {
        4 + 4 + 4 * self.neighbors.len()
    }

    fn encode(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.vertex.to_le_bytes());
        out[4..8].copy_from_slice(&(self.neighbors.len() as u32).to_le_bytes());
        for (i, n) in self.neighbors.iter().enumerate() {
            out[8 + i * 4..12 + i * 4].copy_from_slice(&n.to_le_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let vertex = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        let n = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
        let neighbors = (0..n)
            .map(|i| u32::from_le_bytes(buf[8 + i * 4..12 + i * 4].try_into().expect("4 bytes")))
            .collect();
        AdjListRec { vertex, neighbors }
    }
}

impl KryoRecord for AdjListRec {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(self.vertex as u64, out);
        write_varint(self.neighbors.len() as u64, out);
        for n in &self.neighbors {
            write_varint(*n as u64, out);
        }
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let vertex = read_varint(buf, pos) as u32;
        let n = read_varint(buf, pos) as usize;
        let neighbors = (0..n).map(|_| read_varint(buf, pos) as u32).collect();
        AdjListRec { vertex, neighbors }
    }
}

// =====================================================================
// SQL rows (§6.6)
// =====================================================================

/// A row of the `rankings` table (pageURL modelled as a synthetic id).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RankingRec {
    pub url_id: i64,
    pub page_rank: i32,
    pub avg_duration: i32,
}

/// Heap classes for RankingRec (a flat row object).
#[derive(Copy, Clone)]
pub struct RowClasses {
    pub row: ClassId,
}

impl HeapRecord for RankingRec {
    type Classes = RowClasses;

    fn register(heap: &mut Heap) -> Self::Classes {
        let row = match heap.registry().by_name("Ranking") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("Ranking")
                    .field("urlId", FieldKind::I64)
                    .field("pageRank", FieldKind::I32)
                    .field("avgDuration", FieldKind::I32),
            ),
        };
        RowClasses { row }
    }

    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError> {
        let o = heap.alloc(cls.row)?;
        heap.write_i64(o, 0, self.url_id);
        heap.write_word(o, 1, self.page_rank as u32 as u64);
        heap.write_word(o, 2, self.avg_duration as u32 as u64);
        Ok(o)
    }

    fn load(heap: &Heap, _cls: &Self::Classes, obj: ObjRef) -> Self {
        RankingRec {
            url_id: heap.read_i64(obj, 0),
            page_rank: heap.read_word(obj, 1) as u32 as i32,
            avg_duration: heap.read_word(obj, 2) as u32 as i32,
        }
    }

    fn heap_size(&self) -> usize {
        16 + 8 + 4 + 4 // -> 32
    }
}

impl DecaRecord for RankingRec {
    const FIXED_SIZE: Option<usize> = Some(16);

    fn data_size(&self) -> usize {
        16
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.url_id.to_le_bytes());
        out[8..12].copy_from_slice(&self.page_rank.to_le_bytes());
        out[12..16].copy_from_slice(&self.avg_duration.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        RankingRec {
            url_id: i64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            page_rank: i32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
            avg_duration: i32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
        }
    }
}

impl KryoRecord for RankingRec {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(self.url_id as u64, out);
        write_varint(self.page_rank as u32 as u64, out);
        write_varint(self.avg_duration as u32 as u64, out);
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        RankingRec {
            url_id: read_varint(buf, pos) as i64,
            page_rank: read_varint(buf, pos) as u32 as i32,
            avg_duration: read_varint(buf, pos) as u32 as i32,
        }
    }
}

/// A row of the `uservisits` table (sourceIP prefix packed into an i64).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct UserVisitRec {
    pub ip_prefix: i64,
    pub url_id: i64,
    pub ad_revenue: f64,
}

impl HeapRecord for UserVisitRec {
    type Classes = RowClasses;

    fn register(heap: &mut Heap) -> Self::Classes {
        let row = match heap.registry().by_name("UserVisit") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("UserVisit")
                    .field("ipPrefix", FieldKind::I64)
                    .field("urlId", FieldKind::I64)
                    .field("adRevenue", FieldKind::F64),
            ),
        };
        RowClasses { row }
    }

    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError> {
        let o = heap.alloc(cls.row)?;
        heap.write_i64(o, 0, self.ip_prefix);
        heap.write_i64(o, 1, self.url_id);
        heap.write_f64(o, 2, self.ad_revenue);
        Ok(o)
    }

    fn load(heap: &Heap, _cls: &Self::Classes, obj: ObjRef) -> Self {
        UserVisitRec {
            ip_prefix: heap.read_i64(obj, 0),
            url_id: heap.read_i64(obj, 1),
            ad_revenue: heap.read_f64(obj, 2),
        }
    }

    fn heap_size(&self) -> usize {
        16 + 24
    }
}

impl DecaRecord for UserVisitRec {
    const FIXED_SIZE: Option<usize> = Some(24);

    fn data_size(&self) -> usize {
        24
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.ip_prefix.to_le_bytes());
        out[8..16].copy_from_slice(&self.url_id.to_le_bytes());
        out[16..24].copy_from_slice(&self.ad_revenue.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        UserVisitRec {
            ip_prefix: i64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            url_id: i64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            ad_revenue: f64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        }
    }
}

impl KryoRecord for UserVisitRec {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        write_varint(self.ip_prefix as u64, out);
        write_varint(self.url_id as u64, out);
        out.extend_from_slice(&self.ad_revenue.to_le_bytes());
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let ip_prefix = read_varint(buf, pos) as i64;
        let url_id = read_varint(buf, pos) as i64;
        let ad_revenue = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        UserVisitRec { ip_prefix, url_id, ad_revenue }
    }
}

// =====================================================================
// Join aggregates (SQL Query 3 — extension)
// =====================================================================

/// Per-group aggregate of the join query: revenue sum, pageRank sum, and
/// row count (to derive AVG). An SFST of 24 bytes.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct JoinAggRec {
    pub revenue: f64,
    pub rank_sum: f64,
    pub count: i64,
}

impl JoinAggRec {
    pub fn merge(self, other: JoinAggRec) -> JoinAggRec {
        JoinAggRec {
            revenue: self.revenue + other.revenue,
            rank_sum: self.rank_sum + other.rank_sum,
            count: self.count + other.count,
        }
    }

    /// In-place byte combine for the decomposed buffers.
    pub fn combine_bytes(acc: &mut [u8], add: &[u8]) {
        let a = JoinAggRec::decode(acc);
        let b = JoinAggRec::decode(add);
        a.merge(b).encode(acc);
    }
}

/// Heap classes: a three-field aggregate object.
impl HeapRecord for JoinAggRec {
    type Classes = RowClasses;

    fn register(heap: &mut Heap) -> Self::Classes {
        let row = match heap.registry().by_name("JoinAgg") {
            Some(c) => c,
            None => heap.define_class(
                ClassBuilder::new("JoinAgg")
                    .field("revenue", FieldKind::F64)
                    .field("rankSum", FieldKind::F64)
                    .field("count", FieldKind::I64),
            ),
        };
        RowClasses { row }
    }

    fn store(&self, heap: &mut Heap, cls: &Self::Classes) -> Result<ObjRef, OomError> {
        let o = heap.alloc(cls.row)?;
        heap.write_f64(o, 0, self.revenue);
        heap.write_f64(o, 1, self.rank_sum);
        heap.write_i64(o, 2, self.count);
        Ok(o)
    }

    fn load(heap: &Heap, _cls: &Self::Classes, obj: ObjRef) -> Self {
        JoinAggRec {
            revenue: heap.read_f64(obj, 0),
            rank_sum: heap.read_f64(obj, 1),
            count: heap.read_i64(obj, 2),
        }
    }

    fn heap_size(&self) -> usize {
        40
    }
}

impl DecaRecord for JoinAggRec {
    const FIXED_SIZE: Option<usize> = Some(24);

    fn data_size(&self) -> usize {
        24
    }

    fn encode(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.revenue.to_le_bytes());
        out[8..16].copy_from_slice(&self.rank_sum.to_le_bytes());
        out[16..24].copy_from_slice(&self.count.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        JoinAggRec {
            revenue: f64::from_le_bytes(buf[..8].try_into().expect("8 bytes")),
            rank_sum: f64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            count: i64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        }
    }
}

impl KryoRecord for JoinAggRec {
    fn kryo_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.revenue.to_le_bytes());
        out.extend_from_slice(&self.rank_sum.to_le_bytes());
        write_varint(self.count as u64, out);
    }

    fn kryo_decode(buf: &[u8], pos: &mut usize) -> Self {
        let revenue = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        let rank_sum = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
        *pos += 8;
        let count = read_varint(buf, pos) as i64;
        JoinAggRec { revenue, rank_sum, count }
    }
}

// =====================================================================
// deca-udt descriptors (what the optimizer analyses)
// =====================================================================

/// Build the `deca-udt` descriptor universe and stage program for the LR
/// job, delegating to the shared fixture (the paper's running example).
pub fn lr_analysis() -> deca_udt::fixtures::LrProgram {
    deca_udt::fixtures::lr_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_heap::HeapConfig;

    fn roundtrip_all<T>(rec: T)
    where
        T: DecaRecord + KryoRecord + HeapRecord + Clone + PartialEq + std::fmt::Debug,
    {
        // Deca
        let mut buf = vec![0u8; rec.data_size()];
        rec.encode(&mut buf);
        assert_eq!(T::decode(&buf), rec, "deca layout roundtrip");
        // Kryo
        let mut kbuf = Vec::new();
        rec.kryo_encode(&mut kbuf);
        let mut pos = 0;
        assert_eq!(T::kryo_decode(&kbuf, &mut pos), rec, "kryo roundtrip");
        assert_eq!(pos, kbuf.len());
        // Heap
        let mut heap = Heap::new(HeapConfig::small());
        let cls = T::register(&mut heap);
        let obj = rec.store(&mut heap, &cls).unwrap();
        assert_eq!(T::load(&heap, &cls, obj), rec, "heap graph roundtrip");
    }

    #[test]
    fn labeled_point_roundtrips() {
        roundtrip_all(LabeledPointRec { label: 1.0, features: vec![0.5, -2.5, 3.25] });
        roundtrip_all(LabeledPointRec { label: -1.0, features: vec![] });
    }

    #[test]
    fn labeled_point_sizes_match_figure_2() {
        let p = LabeledPointRec { label: 1.0, features: vec![0.0; 10] };
        // Decomposed: 8 + 80 = 88 bytes of raw data.
        assert_eq!(p.data_size(), 88);
        assert_eq!(LabeledPointRec::sfst_size(10), 88);
        // Heap graph: 32 + 40 + 96 = 168 bytes — the ~2x bloat of Figure 2.
        assert_eq!(p.heap_size(), 168);
    }

    #[test]
    fn adjacency_roundtrips() {
        roundtrip_all(AdjListRec { vertex: 7, neighbors: vec![1, 2, 3, 4, 5] });
        roundtrip_all(AdjListRec { vertex: 0, neighbors: vec![] });
    }

    #[test]
    fn sql_rows_roundtrip() {
        roundtrip_all(RankingRec { url_id: 123, page_rank: 77, avg_duration: 9 });
        roundtrip_all(UserVisitRec { ip_prefix: 0x3132333435, url_id: 5, ad_revenue: 0.75 });
        roundtrip_all(JoinAggRec { revenue: 1.5, rank_sum: 300.0, count: 4 });
    }

    #[test]
    fn join_agg_merge_and_byte_combine_agree() {
        let a = JoinAggRec { revenue: 1.0, rank_sum: 10.0, count: 1 };
        let b = JoinAggRec { revenue: 2.5, rank_sum: 20.0, count: 2 };
        let merged = a.merge(b);
        let mut acc = [0u8; 24];
        a.encode(&mut acc);
        let mut add = [0u8; 24];
        b.encode(&mut add);
        JoinAggRec::combine_bytes(&mut acc, &add);
        assert_eq!(JoinAggRec::decode(&acc), merged);
        assert_eq!(merged.count, 3);
    }

    #[test]
    fn lr_analysis_classifies_sfst() {
        use deca_udt::{Classification, SizeType, TypeRef};
        let f = lr_analysis();
        let c = deca_udt::classify_global(
            &f.types.registry,
            &f.program,
            f.stage_entry,
            TypeRef::Udt(f.types.labeled_point),
        );
        assert_eq!(c, Classification::Sized(SizeType::StaticFixed));
    }
}
