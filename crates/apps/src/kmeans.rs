//! KMeans (§6.2, Figure 9c): two stages, many jobs, static cache,
//! aggregated shuffle.
//!
//! The cached vectors behave exactly as LR's; the per-iteration map emits
//! `(closestCenter, point)` pairs whose temporaries churn the young
//! generation in Spark mode, and cluster sums are eagerly aggregated.
//!
//! Like LR, the job is described once as an [`AppJob`] ([`job`]) and runs
//! through the cluster driver: a `km-load` stage caches partition `p`'s
//! points on executor `p % E`, then each iteration is one `km-iter{i}`
//! stage whose tasks return partial `(sums, counts)` the driver folds in
//! task order — so the f64 addition sequence, and hence the centroids,
//! are bit-identical for any executor count, standalone or on a
//! [`deca_engine::DecaServer`]. A retried or stolen task that lands on an
//! executor without its block recaches it from the generated partition
//! first (lineage recompute).

use std::collections::HashMap;
use std::sync::Mutex;

use deca_engine::record::HeapRecord;
use deca_engine::{
    AppJob, ClusterSession, EngineError, ExecutionMode, Executor, ExecutorConfig, JobCtx,
};

use crate::datagen;
use crate::records::LabeledPointRec;
use crate::report::AppReport;

/// Parameters of one KMeans run.
#[derive(Clone, Debug)]
pub struct KmParams {
    pub points: usize,
    pub dims: usize,
    pub clusters: usize,
    pub iterations: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub storage_fraction: f64,
    pub mode: ExecutionMode,
    /// Deca page size override (None = executor default). High-dimensional
    /// records need larger pages to bound tail waste (§4.3.1).
    pub page_size: Option<usize>,
    pub gc_algorithm: deca_heap::GcAlgorithm,
    pub seed: u64,
}

impl KmParams {
    pub fn small(mode: ExecutionMode) -> KmParams {
        KmParams {
            points: 20_000,
            dims: 10,
            clusters: 8,
            iterations: 8,
            partitions: 8,
            heap_bytes: 32 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            seed: 20160903,
        }
    }
}

/// Run KMeans on one executor and report metrics, cache size, and the
/// final-centroids checksum (the single-executor shim kept for the bench
/// binaries and cross-mode tests).
pub fn run(params: &KmParams) -> AppReport {
    run_local(params, 1)
}

/// Run KMeans across `executors` parallel executors. The centroids are
/// bit-identical for any executor count: task `p` always scans its own
/// cached partition and the driver folds partial sums in task order.
pub fn run_local(params: &KmParams, executors: usize) -> AppReport {
    crate::run_job_local(&job(params), km_config(params), executors)
}

/// Run the KMeans job on an already-built session (any executor shape,
/// any installed fault plan) and return its checksum.
pub fn run_on(params: &KmParams, session: &mut ClusterSession) -> Result<f64, EngineError> {
    job(params).run(&mut JobCtx::local(session))
}

/// The executor configuration KMeans runs under (public so equivalence
/// tests can build sessions with the exact same memory split, then vary
/// retry policy and scheduler mode).
pub fn km_config(params: &KmParams) -> ExecutorConfig {
    let mut config = ExecutorConfig::new(params.mode, params.heap_bytes)
        .storage_fraction(params.storage_fraction)
        .gc_algorithm(params.gc_algorithm);
    if let Some(page) = params.page_size {
        config = config.page_size(page);
    }
    config
}

/// Cache one partition of labeled points in the mode's representation.
fn load_block(
    e: &mut Executor,
    part: &[LabeledPointRec],
    mode: ExecutionMode,
    dims: usize,
    classes: &crate::records::LabeledPointClasses,
) -> Result<deca_engine::cache::BlockId, EngineError> {
    Ok(match mode {
        ExecutionMode::Spark => {
            e.cache.put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, classes, part)?
        }
        ExecutionMode::SparkSer => {
            e.cache.put_serialized(&mut e.heap, &mut e.kryo, &mut e.mm, part)?
        }
        ExecutionMode::Deca => {
            e.cache.put_deca_sfst(&mut e.heap, &mut e.mm, part, LabeledPointRec::sfst_size(dims))?
        }
    })
}

/// The KMeans job description: consumed by `DecaServer::submit` (via
/// `JobSpec::app`) and by the local shims above.
pub fn job(params: &KmParams) -> AppJob {
    let params = params.clone();
    AppJob::new("KMeans", move |job_ctx| run_kmeans(&params, job_ctx))
}

/// One iteration task's contribution: per-cluster coordinate sums and
/// member counts for its partition, in partition point order.
type KmPartial = (Vec<Vec<f64>>, Vec<usize>);

fn run_kmeans(params: &KmParams, job_ctx: &mut JobCtx) -> Result<f64, EngineError> {
    let data = datagen::labeled_vectors(params.points, params.dims, params.seed);
    let parts = datagen::partition(&data, params.partitions);
    let mode = params.mode;
    let d = params.dims;
    let k = params.clusters;

    // Load stage: partition p's points are cached on executor p % E,
    // where every iteration's task p (same pinning) will scan them.
    let blocks: Mutex<HashMap<(usize, usize), deca_engine::cache::BlockId>> =
        Mutex::new(HashMap::new());
    let parts_now = &parts;
    {
        let blocks_now = &blocks;
        job_ctx.run_stage("km-load", params.partitions, |ctx, e| {
            let classes = LabeledPointRec::register(&mut e.heap);
            let block = load_block(e, &parts_now[ctx.task], mode, d, &classes)?;
            blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), block);
            Ok(())
        })?;
    }
    job_ctx.note_cache_bytes();

    // Deterministic initial centroids from the data.
    let mut centroids: Vec<Vec<f64>> = data
        .iter()
        .step_by((params.points / k).max(1))
        .take(k)
        .map(|p| p.features.clone())
        .collect();
    while centroids.len() < k {
        centroids.push(vec![0.0; d]);
    }

    // ------------------------------------------------------ iterations
    for iter in 0..params.iterations {
        let centroids_now = &centroids;
        let blocks_now = &blocks;
        let partials: Vec<KmPartial> =
            job_ctx.run_stage(&format!("km-iter{iter}"), params.partitions, |ctx, e| {
                let classes = LabeledPointRec::register(&mut e.heap);
                // Trust the cached handle only if the block is still
                // resident on this executor; a retried or stolen attempt
                // recaches from the generated partition (lineage
                // recompute), so the scanned bytes are identical wherever
                // the task lands.
                let cached = blocks_now
                    .lock()
                    .unwrap()
                    .get(&(ctx.executor, ctx.task))
                    .copied()
                    .filter(|b| e.cache.contains(*b));
                let block = match cached {
                    Some(b) => b,
                    None => {
                        let b = load_block(e, &parts_now[ctx.task], mode, d, &classes)?;
                        blocks_now.lock().unwrap().insert((ctx.executor, ctx.task), b);
                        b
                    }
                };
                let mut sums = vec![vec![0.0f64; d]; k];
                let mut counts = vec![0usize; k];
                match mode {
                    ExecutionMode::Spark => {
                        spark_assign(e, block, centroids_now, &mut sums, &mut counts)?
                    }
                    ExecutionMode::SparkSer => {
                        sparkser_assign(e, block, &classes, centroids_now, &mut sums, &mut counts)?
                    }
                    ExecutionMode::Deca => {
                        deca_assign(e, block, centroids_now, &mut sums, &mut counts)?
                    }
                }
                Ok((sums, counts))
            })?;
        // Fold partials in task order (each partial is itself the
        // partition's in-order point sum), then move the centroids — the
        // f64 addition sequence never depends on where tasks ran.
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (psums, pcounts) in &partials {
            for c in 0..k {
                counts[c] += pcounts[c];
                for j in 0..d {
                    sums[c][j] += psums[c][j];
                }
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
    }
    Ok(centroids.iter().flatten().map(|v| v.abs()).sum())
}

/// Nearest centroid by squared euclidean distance, shared by every kernel
/// so assignments agree bit-for-bit across modes.
#[allow(clippy::needless_range_loop)] // kernels index like the paper's code
fn assign(features: &dyn Fn(usize) -> f64, centroids: &[Vec<f64>], d: usize) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let mut dist = 0.0;
        for j in 0..d {
            let diff = features(j) - cent[j];
            dist += diff * diff;
        }
        if dist < best_d {
            best_d = dist;
            best = c;
        }
    }
    best
}

/// Spark kernel: walk the heap object graphs; per point, allocate the
/// map's temporary `(closestCenter, 1.0)` pair which dies after the
/// aggregation consumes it.
#[allow(clippy::needless_range_loop)]
fn spark_assign(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    centroids: &[Vec<f64>],
    sums: &mut [Vec<f64>],
    counts: &mut [usize],
) -> Result<(), EngineError> {
    let d = centroids[0].len();
    let pair_classes = <(i64, f64) as HeapRecord>::register(&mut e.heap);
    let (root, len) = e.cache.objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)?;
    for i in 0..len {
        let arr = e.heap.root_ref(root);
        let lp = e.heap.array_get_ref(arr, i);
        let dv = e.heap.read_ref(lp, 1);
        let data_arr = e.heap.read_ref(dv, 0);
        let heap = &e.heap;
        let best = assign(&|j| heap.array_get_f64(data_arr, j), centroids, d);
        // The map's temporary (closest, 1.0) pair.
        let tmp = (best as i64, 1.0f64).store(&mut e.heap, &pair_classes).expect("temp pair");
        let ts = e.heap.push_stack(tmp);
        let (c, w) = <(i64, f64) as HeapRecord>::load(&e.heap, &pair_classes, e.heap.stack_ref(ts));
        e.heap.truncate_stack(ts);
        counts[c as usize] += w as usize;
        let arr = e.heap.root_ref(root);
        let lp = e.heap.array_get_ref(arr, i);
        let dv = e.heap.read_ref(lp, 1);
        let data_arr = e.heap.read_ref(dv, 0);
        for j in 0..d {
            sums[c as usize][j] += e.heap.array_get_f64(data_arr, j);
        }
    }
    Ok(())
}

/// SparkSer kernel: deserialize each point (Kryo cost), materialise it as
/// temporary heap objects, then compute as the Spark kernel does.
#[allow(clippy::needless_range_loop)]
fn sparkser_assign(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    classes: &crate::records::LabeledPointClasses,
    centroids: &[Vec<f64>],
    sums: &mut [Vec<f64>],
    counts: &mut [usize],
) -> Result<(), EngineError> {
    let d = centroids[0].len();
    let mut recs: Vec<LabeledPointRec> = Vec::new();
    e.cache.iter_serialized(block, &mut e.heap, &mut e.kryo, &mut e.mm, |r| recs.push(r))?;
    for rec in recs {
        let lp = rec.store(&mut e.heap, classes).expect("temp graph");
        let ls = e.heap.push_stack(lp);
        let lp = e.heap.stack_ref(ls);
        let dv = e.heap.read_ref(lp, 1);
        let data_arr = e.heap.read_ref(dv, 0);
        let heap = &e.heap;
        let best = assign(&|j| heap.array_get_f64(data_arr, j), centroids, d);
        counts[best] += 1;
        for j in 0..d {
            sums[best][j] += e.heap.array_get_f64(data_arr, j);
        }
        e.heap.truncate_stack(ls);
    }
    Ok(())
}

/// Deca kernel — the transformed code: features at fixed offsets inside
/// the page bytes, accumulation into preallocated arrays; no objects.
fn deca_assign(
    e: &mut Executor,
    block: deca_engine::cache::BlockId,
    centroids: &[Vec<f64>],
    sums: &mut [Vec<f64>],
    counts: &mut [usize],
) -> Result<(), EngineError> {
    let d = centroids[0].len();
    let heap = &mut e.heap;
    let mm = &mut e.mm;
    let block = e.cache.deca_block(block);
    block.scan_bytes(
        mm,
        heap,
        |bytes| {
            let feat =
                |j: usize| f64::from_le_bytes(bytes[8 + j * 8..16 + j * 8].try_into().unwrap());
            let best = assign(&feat, centroids, d);
            counts[best] += 1;
            for (j, s) in sums[best].iter_mut().enumerate().take(d) {
                *s += feat(j);
            }
        },
        |_| {},
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> KmParams {
        KmParams {
            points: 3_000,
            dims: 6,
            clusters: 4,
            iterations: 3,
            partitions: 3,
            heap_bytes: 16 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            gc_algorithm: deca_heap::GcAlgorithm::ParallelScavenge,
            seed: 5,
        }
    }

    #[test]
    fn all_modes_agree() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let ser = run(&tiny(ExecutionMode::SparkSer));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert!((spark.checksum - deca.checksum).abs() < 1e-9);
        assert!((ser.checksum - deca.checksum).abs() < 1e-9);
        assert!(deca.checksum > 0.0);
    }

    #[test]
    fn cluster_width_never_changes_centroids() {
        // The unified-job migration's invariant: the same KmParams produce
        // bit-identical centroids on 1, 2, and 4 executors, in every mode
        // (driver folds partials in task order; stolen tasks recache).
        for mode in ExecutionMode::ALL {
            let reference = run_local(&tiny(mode), 1).checksum;
            for width in [2usize, 4] {
                let got = run_local(&tiny(mode), width).checksum;
                assert_eq!(got.to_bits(), reference.to_bits(), "{mode} x{width}");
            }
        }
    }
}
