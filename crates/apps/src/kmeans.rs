//! KMeans (§6.2, Figure 9c): two stages, many jobs, static cache,
//! aggregated shuffle.
//!
//! The cached vectors behave exactly as LR's; the per-iteration map emits
//! `(closestCenter, point)` pairs whose temporaries churn the young
//! generation in Spark mode, and cluster sums are eagerly aggregated.

use deca_engine::record::HeapRecord;
use deca_engine::{ExecutionMode, Executor, ExecutorConfig};

use crate::datagen;
use crate::records::LabeledPointRec;
use crate::report::AppReport;

/// Parameters of one KMeans run.
#[derive(Clone, Debug)]
pub struct KmParams {
    pub points: usize,
    pub dims: usize,
    pub clusters: usize,
    pub iterations: usize,
    pub partitions: usize,
    pub heap_bytes: usize,
    pub storage_fraction: f64,
    pub mode: ExecutionMode,
    /// Deca page size override (None = executor default). High-dimensional
    /// records need larger pages to bound tail waste (§4.3.1).
    pub page_size: Option<usize>,
    pub seed: u64,
}

impl KmParams {
    pub fn small(mode: ExecutionMode) -> KmParams {
        KmParams {
            points: 20_000,
            dims: 10,
            clusters: 8,
            iterations: 8,
            partitions: 8,
            heap_bytes: 32 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            seed: 20160903,
        }
    }
}

#[allow(clippy::needless_range_loop)] // kernels index like the paper's code
pub fn run(params: &KmParams) -> AppReport {
    let mut config = ExecutorConfig::new(params.mode, params.heap_bytes)
        .storage_fraction(params.storage_fraction);
    if let Some(page) = params.page_size {
        config = config.page_size(page);
    }
    let mut exec = Executor::new(config);
    let data = datagen::labeled_vectors(params.points, params.dims, params.seed);
    let parts = datagen::partition(&data, params.partitions);
    let classes = LabeledPointRec::register(&mut exec.heap);
    let pair_classes = <(i64, f64) as HeapRecord>::register(&mut exec.heap);
    let d = params.dims;
    let k = params.clusters;

    // ------------------------------------------------------------ load
    let blocks: Vec<_> = parts
        .iter()
        .enumerate()
        .map(|(pi, part)| {
            exec.run_task(format!("km-load-{pi}"), |e| match params.mode {
                ExecutionMode::Spark => e
                    .cache
                    .put_objects(&mut e.heap, &mut e.kryo, &mut e.mm, &classes, part)
                    .expect("cache put"),
                ExecutionMode::SparkSer => e
                    .cache
                    .put_serialized(&mut e.heap, &mut e.kryo, &mut e.mm, part)
                    .expect("cache put"),
                ExecutionMode::Deca => e
                    .cache
                    .put_deca_sfst(&mut e.heap, &mut e.mm, part, LabeledPointRec::sfst_size(d))
                    .expect("cache put"),
            })
        })
        .collect();
    let cache_bytes = {
        exec.finish_job();
        exec.job.cache_bytes + exec.job.swapped_cache_bytes
    };
    exec.job = Default::default();

    // Deterministic initial centroids from the data.
    let mut centroids: Vec<Vec<f64>> = data
        .iter()
        .step_by((params.points / k).max(1))
        .take(k)
        .map(|p| p.features.clone())
        .collect();
    while centroids.len() < k {
        centroids.push(vec![0.0; d]);
    }

    // ------------------------------------------------------ iterations
    for iter in 0..params.iterations {
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (pi, &block) in blocks.iter().enumerate() {
            exec.run_task(format!("km-iter{iter}-{pi}"), |e| {
                let assign = |features: &dyn Fn(usize) -> f64, centroids: &[Vec<f64>]| -> usize {
                    let mut best = 0;
                    let mut best_d = f64::INFINITY;
                    for (c, cent) in centroids.iter().enumerate() {
                        let mut dist = 0.0;
                        for j in 0..d {
                            let diff = features(j) - cent[j];
                            dist += diff * diff;
                        }
                        if dist < best_d {
                            best_d = dist;
                            best = c;
                        }
                    }
                    best
                };
                match params.mode {
                    ExecutionMode::Spark => {
                        let (root, len) = e
                            .cache
                            .objects_root(block, &mut e.heap, &mut e.kryo, &mut e.mm)
                            .expect("cache access");
                        for i in 0..len {
                            let arr = e.heap.root_ref(root);
                            let lp = e.heap.array_get_ref(arr, i);
                            let dv = e.heap.read_ref(lp, 1);
                            let data_arr = e.heap.read_ref(dv, 0);
                            let heap = &e.heap;
                            let best = assign(&|j| heap.array_get_f64(data_arr, j), &centroids);
                            // The map's temporary (closest, 1.0) pair.
                            let tmp = (best as i64, 1.0f64)
                                .store(&mut e.heap, &pair_classes)
                                .expect("temp pair");
                            let ts = e.heap.push_stack(tmp);
                            let (c, w) = <(i64, f64) as HeapRecord>::load(
                                &e.heap,
                                &pair_classes,
                                e.heap.stack_ref(ts),
                            );
                            e.heap.truncate_stack(ts);
                            counts[c as usize] += w as usize;
                            let arr = e.heap.root_ref(root);
                            let lp = e.heap.array_get_ref(arr, i);
                            let dv = e.heap.read_ref(lp, 1);
                            let data_arr = e.heap.read_ref(dv, 0);
                            for j in 0..d {
                                sums[c as usize][j] += e.heap.array_get_f64(data_arr, j);
                            }
                        }
                    }
                    ExecutionMode::SparkSer => {
                        let mut recs: Vec<LabeledPointRec> = Vec::new();
                        e.cache
                            .iter_serialized(block, &mut e.heap, &mut e.kryo, &mut e.mm, |r| {
                                recs.push(r)
                            })
                            .expect("cache access");
                        for rec in recs {
                            let lp = rec.store(&mut e.heap, &classes).expect("temp graph");
                            let ls = e.heap.push_stack(lp);
                            let lp = e.heap.stack_ref(ls);
                            let dv = e.heap.read_ref(lp, 1);
                            let data_arr = e.heap.read_ref(dv, 0);
                            let heap = &e.heap;
                            let best = assign(&|j| heap.array_get_f64(data_arr, j), &centroids);
                            counts[best] += 1;
                            for j in 0..d {
                                sums[best][j] += e.heap.array_get_f64(data_arr, j);
                            }
                            e.heap.truncate_stack(ls);
                        }
                    }
                    ExecutionMode::Deca => {
                        let heap = &mut e.heap;
                        let mm = &mut e.mm;
                        let block = e.cache.deca_block(block);
                        block
                            .scan_bytes(
                                mm,
                                heap,
                                |bytes| {
                                    let feat = |j: usize| {
                                        f64::from_le_bytes(
                                            bytes[8 + j * 8..16 + j * 8].try_into().unwrap(),
                                        )
                                    };
                                    let best = assign(&feat, &centroids);
                                    counts[best] += 1;
                                    for j in 0..d {
                                        sums[best][j] += feat(j);
                                    }
                                },
                                |_| {},
                            )
                            .expect("cache scan");
                    }
                }
            });
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
    }

    exec.finish_job();
    let checksum: f64 = centroids.iter().flatten().map(|v| v.abs()).sum();
    AppReport {
        app: "KMeans".into(),
        mode: params.mode,
        metrics: exec.job.clone(),
        timeline: exec.timeline.clone(),
        checksum,
        cache_bytes,
        objects_traced: exec.heap.stats().objects_traced,
        minor_gcs: exec.heap.stats().minor_collections,
        full_gcs: exec.heap.stats().full_collections,
        slowest_task: exec.slowest_task().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ExecutionMode) -> KmParams {
        KmParams {
            points: 3_000,
            dims: 6,
            clusters: 4,
            iterations: 3,
            partitions: 3,
            heap_bytes: 16 << 20,
            storage_fraction: 0.6,
            mode,
            page_size: None,
            seed: 5,
        }
    }

    #[test]
    fn all_modes_agree() {
        let spark = run(&tiny(ExecutionMode::Spark));
        let ser = run(&tiny(ExecutionMode::SparkSer));
        let deca = run(&tiny(ExecutionMode::Deca));
        assert!((spark.checksum - deca.checksum).abs() < 1e-9);
        assert!((ser.checksum - deca.checksum).abs() < 1e-9);
        assert!(deca.checksum > 0.0);
    }
}
